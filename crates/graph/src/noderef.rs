//! Node handles: a node is named by the real peer that simulates it plus its
//! virtual level.

use core::fmt;
use rechord_id::{Ident, MAX_LEVEL};

/// A reference to a node of the Re-Chord graph.
///
/// * `level == 0`: the **real** node `u_0 = u` (the peer itself, `V_r`).
/// * `level == i >= 1`: the **virtual** node `u_i = u + 1/2^i (mod 1)`
///   simulated by the peer at `owner` (`V_v`).
///
/// An edge to a virtual node is physically an edge to the peer simulating
/// it, so a `NodeRef` is exactly the information a message needs to carry.
///
/// Ordering is by ring position first (the paper's linear order on `[0,1)`),
/// with `(owner, level)` as a deterministic tie-break for the measure-zero
/// case of two nodes occupying the same position.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeRef {
    /// The real peer simulating this node.
    pub owner: Ident,
    /// Virtual level; `0` means the real node itself.
    pub level: u8,
}

impl NodeRef {
    /// The real node of the peer at `owner`.
    #[inline]
    pub fn real(owner: Ident) -> Self {
        NodeRef { owner, level: 0 }
    }

    /// The `level`-th virtual node of the peer at `owner`
    /// (`level` in `1..=MAX_LEVEL`).
    #[inline]
    pub fn virtual_node(owner: Ident, level: u8) -> Self {
        debug_assert!((1..=MAX_LEVEL).contains(&level));
        NodeRef { owner, level }
    }

    /// Ring position of this node: `owner + 1/2^level (mod 1)`.
    #[inline]
    pub fn pos(&self) -> Ident {
        self.owner.virtual_position(self.level)
    }

    /// Is this a real node (`V_r`)? The paper's `w ∈ V_r` guard.
    #[inline]
    pub fn is_real(&self) -> bool {
        self.level == 0
    }

    /// Is this a virtual node (`V_v`)?
    #[inline]
    pub fn is_virtual(&self) -> bool {
        self.level != 0
    }

    /// Are `self` and `other` siblings (simulated by the same peer)?
    /// Per §2.2, `S(u_i)` is the set of nodes sharing `u_i`'s owner.
    #[inline]
    pub fn is_sibling_of(&self, other: &NodeRef) -> bool {
        self.owner == other.owner
    }
}

impl PartialOrd for NodeRef {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodeRef {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.pos(), self.owner, self.level).cmp(&(other.pos(), other.owner, other.level))
    }
}

impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_real() {
            write!(f, "R[{}]", self.owner)
        } else {
            write!(f, "V[{}+2^-{} @{}]", self.owner, self.level, self.pos())
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_derivation() {
        let u = Ident::from_f64(0.3);
        assert_eq!(NodeRef::real(u).pos(), u);
        let v1 = NodeRef::virtual_node(u, 1);
        assert!((v1.pos().to_f64() - 0.8).abs() < 1e-12);
        assert!(v1.is_virtual() && !v1.is_real());
    }

    #[test]
    fn ordering_is_by_position() {
        let a = NodeRef::real(Ident::from_f64(0.9));
        // virtual node of a at level 1 sits at 0.4 < 0.9
        let a1 = NodeRef::virtual_node(a.owner, 1);
        assert!(a1 < a);
        let b = NodeRef::real(Ident::from_f64(0.5));
        assert!(a1 < b && b < a);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Construct two distinct nodes at the same position: owner x level 1
        // and owner x + 1/2 level 0 share pos.
        let x = Ident::from_f64(0.25);
        let v = NodeRef::virtual_node(x, 1);
        let r = NodeRef::real(x.virtual_position(1));
        assert_eq!(v.pos(), r.pos());
        assert_ne!(v, r);
        // total order still separates them, consistently
        assert_eq!(v.cmp(&r), v.cmp(&r));
        assert_ne!(v.cmp(&r), core::cmp::Ordering::Equal);
    }

    #[test]
    fn sibling_relation() {
        let u = Ident::from_f64(0.1);
        let w = Ident::from_f64(0.2);
        assert!(NodeRef::real(u).is_sibling_of(&NodeRef::virtual_node(u, 3)));
        assert!(!NodeRef::real(u).is_sibling_of(&NodeRef::real(w)));
    }
}

//! A fast non-cryptographic hasher for maps keyed by 64-bit identifiers.
//!
//! Peer identifiers are already uniform pseudo-random 64-bit values, so the
//! default SipHash is wasted work on the simulator's hottest maps (Rust
//! Performance Book, "Hashing"). `FxStyleHasher` folds words with the
//! Fx/Firefox multiply-rotate mix — quality is irrelevant here because the
//! keys themselves are uniform, speed is what matters.

// lint: allow(determinism, "these are re-exported only with the fixed-seed FxStyleHasher below — no RandomState, iteration order is stable")
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxStyleHasher`].
// lint: allow(determinism, "BuildHasherDefault pins the hasher state — FastMap iteration is deterministic")
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxStyleHasher>>;

/// A `HashSet` keyed with [`FxStyleHasher`].
// lint: allow(determinism, "BuildHasherDefault pins the hasher state — FastSet iteration is deterministic")
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxStyleHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher (rustc-hash style).
#[derive(Default, Clone)]
pub struct FxStyleHasher {
    state: u64,
}

impl FxStyleHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxStyleHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_are_deterministic() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(3, "three");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&3), Some(&"three"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distinct_keys_distinct_hashes_smoke() {
        let mut seen: FastSet<u64> = FastSet::default();
        for k in 0..10_000u64 {
            let mut h = FxStyleHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        // Not a collision-resistance claim; just "the mix isn't degenerate".
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_alignment() {
        let mut a = FxStyleHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxStyleHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}

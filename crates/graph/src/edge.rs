//! The three edge classes of the Re-Chord multigraph.

use crate::NodeRef;
use core::fmt;

/// Edge marking (paper §2.2): the multigraph may hold the same `(u,v)` pair
/// once per class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EdgeKind {
    /// `E_u`: unmarked edges — the working topology that linearization sorts;
    /// only these (plus ring edges) project into the final Re-Chord network.
    Unmarked,
    /// `E_r`: ring edges — special marked edges that close the `[0,1)`
    /// wrap-around between the extremal nodes (rule 5).
    Ring,
    /// `E_c`: connection edges — keep contiguous virtual siblings in one
    /// weakly connected component (rule 6); never used for routing.
    Connection,
}

impl EdgeKind {
    /// All three classes, in rule order.
    pub const ALL: [EdgeKind; 3] = [EdgeKind::Unmarked, EdgeKind::Ring, EdgeKind::Connection];
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Unmarked => write!(f, "unmarked"),
            EdgeKind::Ring => write!(f, "ring"),
            EdgeKind::Connection => write!(f, "connection"),
        }
    }
}

/// A directed, classed edge of the overlay multigraph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Source node (the node whose neighborhood set holds the edge).
    pub from: NodeRef,
    /// Target node.
    pub to: NodeRef,
    /// Which of `E_u`, `E_r`, `E_c` the edge belongs to.
    pub kind: EdgeKind,
}

impl Edge {
    /// Convenience constructor for an unmarked edge.
    pub fn unmarked(from: NodeRef, to: NodeRef) -> Self {
        Edge { from, to, kind: EdgeKind::Unmarked }
    }

    /// Convenience constructor for a ring edge.
    pub fn ring(from: NodeRef, to: NodeRef) -> Self {
        Edge { from, to, kind: EdgeKind::Ring }
    }

    /// Convenience constructor for a connection edge.
    pub fn connection(from: NodeRef, to: NodeRef) -> Self {
        Edge { from, to, kind: EdgeKind::Connection }
    }

    /// The edge with source and target swapped (same class). Used by
    /// weak-connectivity arguments, not by the protocol itself.
    pub fn reversed(self) -> Self {
        Edge { from: self.to, to: self.from, kind: self.kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_id::Ident;

    #[test]
    fn kind_display_and_order() {
        assert_eq!(EdgeKind::Unmarked.to_string(), "unmarked");
        assert_eq!(EdgeKind::ALL.len(), 3);
        assert!(EdgeKind::Unmarked < EdgeKind::Ring);
    }

    #[test]
    fn reversal_swaps_endpoints() {
        let a = NodeRef::real(Ident::from_f64(0.1));
        let b = NodeRef::real(Ident::from_f64(0.9));
        let e = Edge::ring(a, b);
        assert_eq!(e.reversed().from, b);
        assert_eq!(e.reversed().to, a);
        assert_eq!(e.reversed().kind, EdgeKind::Ring);
    }
}

//! Weak-connectivity analysis.
//!
//! Self-stabilization is only possible from states where a legal state is
//! reachable, i.e. the initial directed graph is **weakly connected** (paper
//! §2.1). The convergence proof additionally tracks connectivity of the
//! *real-peer* projection (an edge `(u_i, v_j)` of any class weakly connects
//! peers `u` and `v`). This module provides a union-find and both checks.

use crate::{NodeRef, OverlayGraph};
use rechord_id::Ident;
use std::collections::BTreeMap;

/// Disjoint-set forest with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]]; // path halving
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Is the multigraph weakly connected over **all** nodes (edges of every
/// class, direction ignored)? Empty and single-node graphs count as
/// connected.
pub fn weakly_connected(g: &OverlayGraph) -> bool {
    component_count(g) <= 1
}

/// Number of weakly connected components over all nodes.
pub fn component_count(g: &OverlayGraph) -> usize {
    let index: BTreeMap<&NodeRef, usize> = g.nodes().enumerate().map(|(i, n)| (n, i)).collect();
    if index.is_empty() {
        return 0;
    }
    let mut uf = UnionFind::new(index.len());
    for e in g.edges() {
        uf.union(index[&e.from], index[&e.to]);
    }
    uf.component_count()
}

/// Is the **real-peer projection** weakly connected? Two peers are joined
/// when any edge (any class) runs between any of their nodes — and a peer's
/// own virtual nodes always count as attached to it (they are simulated
/// locally; paper §2.2 notes `V_r ∩ N(u_0) ≠ ∅`).
pub fn peers_weakly_connected(g: &OverlayGraph) -> bool {
    peer_component_count(g) <= 1
}

/// Number of weakly connected components of the real-peer projection.
pub fn peer_component_count(g: &OverlayGraph) -> usize {
    let mut owners: BTreeMap<Ident, usize> = BTreeMap::new();
    for n in g.nodes() {
        let next = owners.len();
        owners.entry(n.owner).or_insert(next);
    }
    if owners.is_empty() {
        return 0;
    }
    let mut uf = UnionFind::new(owners.len());
    for e in g.edges() {
        uf.union(owners[&e.from.owner], owners[&e.to.owner]);
    }
    uf.component_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;

    fn r(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    fn v(x: f64, lvl: u8) -> NodeRef {
        NodeRef::virtual_node(Ident::from_f64(x), lvl)
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        uf.union(1, 3);
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn direction_is_ignored() {
        let g: OverlayGraph =
            [Edge::unmarked(r(0.1), r(0.5)), Edge::unmarked(r(0.9), r(0.5))].into_iter().collect();
        assert!(weakly_connected(&g));
    }

    #[test]
    fn disconnected_components_counted() {
        let mut g: OverlayGraph = [Edge::unmarked(r(0.1), r(0.2))].into_iter().collect();
        g.add_node(r(0.7));
        assert_eq!(component_count(&g), 2);
        assert!(!weakly_connected(&g));
    }

    #[test]
    fn all_edge_classes_connect() {
        let g: OverlayGraph =
            [Edge::ring(r(0.1), r(0.2)), Edge::connection(r(0.2), r(0.3))].into_iter().collect();
        assert!(weakly_connected(&g));
    }

    #[test]
    fn peer_projection_joins_siblings_implicitly() {
        // u's virtual node and u's real node have no explicit edge, but the
        // peer projection treats them as one peer.
        let mut g = OverlayGraph::new();
        g.add_node(r(0.1));
        g.add_node(v(0.1, 3));
        g.add_node(r(0.6));
        g.add_edge(Edge::unmarked(v(0.1, 3), r(0.6)));
        // Node-level: r(0.1) is isolated from the rest.
        assert_eq!(component_count(&g), 2);
        // Peer-level: only two peers, connected.
        assert_eq!(peer_component_count(&g), 1);
        assert!(peers_weakly_connected(&g));
    }

    #[test]
    fn empty_graph_is_trivially_connected() {
        let g = OverlayGraph::new();
        assert!(weakly_connected(&g));
        assert_eq!(component_count(&g), 0);
        assert_eq!(peer_component_count(&g), 0);
    }
}

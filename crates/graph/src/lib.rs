//! The overlay graph model of Re-Chord (paper §2.2).
//!
//! Re-Chord's state is a directed multigraph `G = (V_r ∪ V_v, E_u ∪ E_c ∪ E_r)`:
//! real nodes and the virtual nodes they simulate, connected by three
//! disjoint classes of directed edges — *unmarked* (the working topology),
//! *ring* (wrap-around closure), and *connection* (sibling connectivity).
//! This crate provides:
//!
//! * [`NodeRef`] — a handle naming a (real or virtual) node by its owner and
//!   level, with its derived ring position;
//! * [`EdgeKind`] / [`Edge`] — the three edge classes;
//! * [`OverlayGraph`] — a snapshot multigraph with per-class neighborhoods,
//!   used by the oracle, the metrics, and the stability checks;
//! * [`connectivity`] — weak-connectivity analysis (the paper's precondition
//!   "the n peers are weakly connected" and the invariant its proofs track);
//! * [`hasher`] — an identity/Fx-style hasher so hot maps keyed by 64-bit
//!   identifiers skip SipHash (Rust Performance Book, "Hashing").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod dot;
mod edge;
pub mod hasher;
mod noderef;
mod overlay;

pub use edge::{Edge, EdgeKind};
pub use noderef::NodeRef;
pub use overlay::{DegreeSummary, EdgeCounts, OverlayGraph};

#[cfg(test)]
mod proptests;

//! Property tests for the overlay multigraph.

use crate::{connectivity, Edge, EdgeKind, NodeRef, OverlayGraph};
use proptest::prelude::*;
use rechord_id::Ident;

fn node_refs() -> impl Strategy<Value = NodeRef> {
    (any::<u64>(), 0u8..=8).prop_map(|(o, l)| NodeRef { owner: Ident::from_raw(o), level: l })
}

fn kinds() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![Just(EdgeKind::Unmarked), Just(EdgeKind::Ring), Just(EdgeKind::Connection)]
}

fn edges() -> impl Strategy<Value = Edge> {
    (node_refs(), node_refs(), kinds()).prop_map(|(from, to, kind)| Edge { from, to, kind })
}

proptest! {
    /// Edge insertion is idempotent and `has_edge` agrees with `add_edge`.
    #[test]
    fn insertion_idempotent(es in prop::collection::vec(edges(), 0..60)) {
        let mut g = OverlayGraph::new();
        for e in &es {
            g.add_edge(*e);
        }
        let count_once = g.edge_counts();
        for e in &es {
            prop_assert!(!g.add_edge(*e) || e.from == e.to);
        }
        prop_assert_eq!(g.edge_counts(), count_once);
        for e in &es {
            if e.from != e.to {
                prop_assert!(g.has_edge(e));
            }
        }
    }

    /// FromIterator equals incremental construction.
    #[test]
    fn from_iter_equals_incremental(es in prop::collection::vec(edges(), 0..60)) {
        let g1: OverlayGraph = es.iter().copied().collect();
        let mut g2 = OverlayGraph::new();
        for e in &es {
            g2.add_edge(*e);
        }
        prop_assert_eq!(g1, g2);
    }

    /// `edges()` round-trips: rebuilding from the iterator reproduces the graph
    /// up to isolated nodes.
    #[test]
    fn edge_iterator_roundtrip(es in prop::collection::vec(edges(), 0..60)) {
        let g: OverlayGraph = es.iter().copied().collect();
        let mut rebuilt: OverlayGraph = g.edges().collect();
        for n in g.nodes() {
            rebuilt.add_node(*n);
        }
        prop_assert_eq!(g, rebuilt);
    }

    /// Removing an edge then re-adding it restores the graph.
    #[test]
    fn remove_restore(es in prop::collection::vec(edges(), 1..40), idx in any::<prop::sample::Index>()) {
        let g: OverlayGraph = es.iter().copied().collect();
        let all: Vec<Edge> = g.edges().collect();
        prop_assume!(!all.is_empty());
        let victim = all[idx.index(all.len())];
        let mut h = g.clone();
        prop_assert!(h.remove_edge(&victim));
        prop_assert!(!h.has_edge(&victim));
        h.add_edge(victim);
        prop_assert_eq!(g, h);
    }

    /// Adding edges never increases the number of weak components.
    #[test]
    fn edges_only_merge_components(es in prop::collection::vec(edges(), 0..60), extra in edges()) {
        let g: OverlayGraph = es.iter().copied().collect();
        let before = connectivity::component_count(&g);
        let mut h = g.clone();
        let grew = h.add_edge(extra);
        let after = connectivity::component_count(&h);
        // New nodes may appear (components +), but an edge between existing
        // nodes can only merge. Check the invariant that holds universally:
        if !grew {
            prop_assert_eq!(after, before);
        } else {
            prop_assert!(after <= before + 2);
            // and peers connected by the new edge are in one component
            prop_assert!(connectivity::peer_component_count(&h)
                <= connectivity::peer_component_count(&g) + 2);
        }
    }

    /// Peer components never exceed node components.
    #[test]
    fn peer_projection_coarsens(es in prop::collection::vec(edges(), 0..60)) {
        let g: OverlayGraph = es.iter().copied().collect();
        prop_assert!(connectivity::peer_component_count(&g) <= connectivity::component_count(&g));
    }

    /// Edge counts agree with the edge iterator.
    #[test]
    fn counts_agree_with_iterator(es in prop::collection::vec(edges(), 0..60)) {
        let g: OverlayGraph = es.iter().copied().collect();
        let c = g.edge_counts();
        prop_assert_eq!(c.total(), g.edges().count());
        prop_assert_eq!(c.unmarked, g.edges().filter(|e| e.kind == EdgeKind::Unmarked).count());
        prop_assert_eq!(c.ring, g.edges().filter(|e| e.kind == EdgeKind::Ring).count());
        prop_assert_eq!(c.connection, g.edges().filter(|e| e.kind == EdgeKind::Connection).count());
    }
}

//! Graphviz DOT export of overlay snapshots — the debugging view used while
//! developing the rules, kept as a user-facing feature (render with
//! `dot -Tsvg`).

use crate::{EdgeKind, NodeRef, OverlayGraph};
use std::fmt::Write as _;

/// Options for the DOT rendering.
#[derive(Clone, Debug)]
pub struct DotStyle {
    /// Graph name.
    pub name: String,
    /// Lay nodes out on a circle in ring order (`circo`-friendly).
    pub circular: bool,
    /// Include connection edges (they dominate visually on large graphs).
    pub include_connection: bool,
}

impl Default for DotStyle {
    fn default() -> Self {
        DotStyle { name: "rechord".into(), circular: true, include_connection: true }
    }
}

/// Renders the overlay as a Graphviz digraph: real nodes are boxes, virtual
/// nodes are ellipses; unmarked edges solid, ring edges bold red, connection
/// edges dashed gray.
pub fn to_dot(g: &OverlayGraph, style: &DotStyle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", style.name);
    if style.circular {
        let _ = writeln!(out, "  layout=circo;");
    }
    let _ = writeln!(out, "  node [fontsize=9];");
    for n in g.nodes() {
        let (shape, fill) = if n.is_real() { ("box", "lightblue") } else { ("ellipse", "white") };
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, style=filled, fillcolor={fill}, label=\"{}\"];",
            node_id(n),
            node_label(n)
        );
    }
    for e in g.edges() {
        let attrs = match e.kind {
            EdgeKind::Unmarked => "color=black",
            EdgeKind::Ring => "color=red, penwidth=2",
            EdgeKind::Connection => {
                if !style.include_connection {
                    continue;
                }
                "color=gray, style=dashed"
            }
        };
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [{attrs}];", node_id(&e.from), node_id(&e.to));
    }
    out.push_str("}\n");
    out
}

fn node_id(n: &NodeRef) -> String {
    format!("{:016x}.{}", n.owner.raw(), n.level)
}

fn node_label(n: &NodeRef) -> String {
    if n.is_real() {
        format!("{:.4}", n.pos().to_f64())
    } else {
        format!("{:.4}\\n(+2^-{})", n.pos().to_f64(), n.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;
    use rechord_id::Ident;

    fn sample() -> OverlayGraph {
        let a = NodeRef::real(Ident::from_f64(0.1));
        let v = NodeRef::virtual_node(Ident::from_f64(0.1), 2);
        let b = NodeRef::real(Ident::from_f64(0.7));
        [Edge::unmarked(a, b), Edge::ring(b, a), Edge::connection(v, b)].into_iter().collect()
    }

    #[test]
    fn renders_all_edge_kinds() {
        let dot = to_dot(&sample(), &DotStyle::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("color=red"), "ring edge styled");
        assert!(dot.contains("style=dashed"), "connection edge styled");
        assert!(dot.contains("shape=box"), "real node styled");
        assert!(dot.contains("shape=ellipse"), "virtual node styled");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn connection_edges_can_be_suppressed() {
        let style = DotStyle { include_connection: false, ..Default::default() };
        let dot = to_dot(&sample(), &style);
        assert!(!dot.contains("dashed"));
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn node_ids_are_unique_per_level() {
        let dot = to_dot(&sample(), &DotStyle::default());
        // owner 0.1 appears as both level 0 and level 2 with distinct ids
        let a0 = format!("{:016x}.0", Ident::from_f64(0.1).raw());
        let a2 = format!("{:016x}.2", Ident::from_f64(0.1).raw());
        assert!(dot.contains(&a0) && dot.contains(&a2));
    }
}

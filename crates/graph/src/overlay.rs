//! A snapshot multigraph of the overlay, used for analysis and checking.
//!
//! The protocol itself keeps neighborhoods in per-node state (crate
//! `rechord-core`); an [`OverlayGraph`] is the flattened global view `G =
//! (V, E_u ∪ E_r ∪ E_c)` extracted at a round boundary, on which the oracle
//! comparison, metrics, and connectivity checks operate.

use crate::{Edge, EdgeKind, NodeRef};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

/// Out-neighborhoods of one node, per edge class
/// (`N_u(v)`, `N_r(v)`, `N_c(v)` of §2.2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeAdjacency {
    /// Unmarked out-neighbors `N_u(v)`.
    pub unmarked: BTreeSet<NodeRef>,
    /// Ring out-neighbors `N_r(v)`.
    pub ring: BTreeSet<NodeRef>,
    /// Connection out-neighbors `N_c(v)`.
    pub connection: BTreeSet<NodeRef>,
}

impl NodeAdjacency {
    /// The set for one edge class.
    pub fn of(&self, kind: EdgeKind) -> &BTreeSet<NodeRef> {
        match kind {
            EdgeKind::Unmarked => &self.unmarked,
            EdgeKind::Ring => &self.ring,
            EdgeKind::Connection => &self.connection,
        }
    }

    /// Mutable set for one edge class.
    pub fn of_mut(&mut self, kind: EdgeKind) -> &mut BTreeSet<NodeRef> {
        match kind {
            EdgeKind::Unmarked => &mut self.unmarked,
            EdgeKind::Ring => &mut self.ring,
            EdgeKind::Connection => &mut self.connection,
        }
    }

    /// Total out-degree across all classes (multigraph degree).
    pub fn out_degree(&self) -> usize {
        self.unmarked.len() + self.ring.len() + self.connection.len()
    }
}

/// Edge totals per class — the quantities plotted in the paper's Figure 5
/// ("normal edges" are unmarked + ring; "connection edges" are `E_c`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeCounts {
    /// `|E_u|`.
    pub unmarked: usize,
    /// `|E_r|`.
    pub ring: usize,
    /// `|E_c|`.
    pub connection: usize,
}

impl EdgeCounts {
    /// The paper's "normal edges": everything that is not a connection edge.
    pub fn normal(&self) -> usize {
        self.unmarked + self.ring
    }

    /// All edges of the multigraph.
    pub fn total(&self) -> usize {
        self.unmarked + self.ring + self.connection
    }
}

/// Degree distribution summary for a graph snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeSummary {
    /// Largest out-degree over all nodes.
    pub max_out: usize,
    /// Mean out-degree.
    pub mean_out: f64,
    /// Largest in-degree over all nodes.
    pub max_in: usize,
}

/// A directed multigraph snapshot over [`NodeRef`] nodes with classed edges.
///
/// Deterministic iteration order everywhere (`BTreeMap`/`BTreeSet`), so two
/// snapshots compare with `==` — that equality is exactly the paper's
/// "no more state changes" stability criterion when applied to consecutive
/// rounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OverlayGraph {
    nodes: BTreeMap<NodeRef, NodeAdjacency>,
}

impl OverlayGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a node with empty neighborhoods (no-op if present).
    pub fn add_node(&mut self, node: NodeRef) {
        self.nodes.entry(node).or_default();
    }

    /// Is the node present?
    pub fn contains_node(&self, node: &NodeRef) -> bool {
        self.nodes.contains_key(node)
    }

    /// Inserts an edge, creating endpoints as needed. Self-loops are
    /// rejected (the protocol never stores an edge from a node to itself).
    /// Returns `true` if the edge was new.
    pub fn add_edge(&mut self, edge: Edge) -> bool {
        if edge.from == edge.to {
            return false;
        }
        self.add_node(edge.to);
        let adj = self.nodes.entry(edge.from).or_default();
        adj.of_mut(edge.kind).insert(edge.to)
    }

    /// Removes an edge; returns `true` if it existed.
    pub fn remove_edge(&mut self, edge: &Edge) -> bool {
        match self.nodes.entry(edge.from) {
            Entry::Occupied(mut o) => o.get_mut().of_mut(edge.kind).remove(&edge.to),
            Entry::Vacant(_) => false,
        }
    }

    /// Removes a node and every edge incident to it (both directions).
    pub fn remove_node(&mut self, node: &NodeRef) {
        self.nodes.remove(node);
        for adj in self.nodes.values_mut() {
            adj.unmarked.remove(node);
            adj.ring.remove(node);
            adj.connection.remove(node);
        }
    }

    /// Does the graph contain this exact classed edge?
    pub fn has_edge(&self, edge: &Edge) -> bool {
        self.nodes.get(&edge.from).is_some_and(|adj| adj.of(edge.kind).contains(&edge.to))
    }

    /// All nodes, in position order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeRef> + '_ {
        self.nodes.keys()
    }

    /// Real nodes only (`V_r`).
    pub fn real_nodes(&self) -> impl Iterator<Item = &NodeRef> + '_ {
        self.nodes.keys().filter(|n| n.is_real())
    }

    /// Virtual nodes only (`V_v`).
    pub fn virtual_nodes(&self) -> impl Iterator<Item = &NodeRef> + '_ {
        self.nodes.keys().filter(|n| n.is_virtual())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of real nodes.
    pub fn real_count(&self) -> usize {
        self.real_nodes().count()
    }

    /// Number of virtual nodes.
    pub fn virtual_count(&self) -> usize {
        self.virtual_nodes().count()
    }

    /// The adjacency record of one node, if present.
    pub fn adjacency(&self, node: &NodeRef) -> Option<&NodeAdjacency> {
        self.nodes.get(node)
    }

    /// Iterates every classed edge, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes.iter().flat_map(|(&from, adj)| {
            EdgeKind::ALL
                .into_iter()
                .flat_map(move |kind| adj.of(kind).iter().map(move |&to| Edge { from, to, kind }))
        })
    }

    /// Edge totals per class.
    pub fn edge_counts(&self) -> EdgeCounts {
        let mut c = EdgeCounts::default();
        for adj in self.nodes.values() {
            c.unmarked += adj.unmarked.len();
            c.ring += adj.ring.len();
            c.connection += adj.connection.len();
        }
        c
    }

    /// Degree distribution summary (multigraph out/in degrees).
    pub fn degree_summary(&self) -> DegreeSummary {
        if self.nodes.is_empty() {
            return DegreeSummary::default();
        }
        let mut indeg: BTreeMap<NodeRef, usize> = BTreeMap::new();
        let mut max_out = 0usize;
        let mut sum_out = 0usize;
        for (_, adj) in self.nodes.iter() {
            let d = adj.out_degree();
            max_out = max_out.max(d);
            sum_out += d;
            for kind in EdgeKind::ALL {
                for t in adj.of(kind) {
                    *indeg.entry(*t).or_default() += 1;
                }
            }
        }
        DegreeSummary {
            max_out,
            mean_out: sum_out as f64 / self.nodes.len() as f64,
            max_in: indeg.values().copied().max().unwrap_or(0),
        }
    }

    /// Edges present in `self` but not in `other` — the debugging view for
    /// "which edges are still missing/extra vs. the oracle topology".
    pub fn edge_difference(&self, other: &OverlayGraph) -> Vec<Edge> {
        self.edges().filter(|e| !other.has_edge(e)).collect()
    }

    /// Is every edge of `self` present in `other`? (Subgraph on edges; node
    /// sets may differ.) This is the check behind both Fact 2.1
    /// (Chord ⊆ Re-Chord) and the "almost stable" criterion of Figure 6.
    pub fn edges_subset_of(&self, other: &OverlayGraph) -> bool {
        self.edges().all(|e| other.has_edge(&e))
    }
}

impl FromIterator<Edge> for OverlayGraph {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let mut g = OverlayGraph::new();
        for e in iter {
            g.add_edge(e);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_id::Ident;

    fn r(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    #[test]
    fn multigraph_allows_same_pair_in_distinct_classes() {
        let a = r(0.1);
        let b = r(0.2);
        let mut g = OverlayGraph::new();
        assert!(g.add_edge(Edge::unmarked(a, b)));
        assert!(g.add_edge(Edge::ring(a, b)));
        assert!(g.add_edge(Edge::connection(a, b)));
        assert!(!g.add_edge(Edge::unmarked(a, b)), "within a class: a set");
        let c = g.edge_counts();
        assert_eq!((c.unmarked, c.ring, c.connection), (1, 1, 1));
        assert_eq!(c.normal(), 2);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn self_loops_rejected() {
        let a = r(0.5);
        let mut g = OverlayGraph::new();
        assert!(!g.add_edge(Edge::unmarked(a, a)));
        assert_eq!(g.edge_counts().total(), 0);
    }

    #[test]
    fn remove_node_clears_incident_edges() {
        let (a, b, c) = (r(0.1), r(0.2), r(0.3));
        let mut g: OverlayGraph =
            [Edge::unmarked(a, b), Edge::unmarked(b, c), Edge::ring(c, b)].into_iter().collect();
        g.remove_node(&b);
        assert!(!g.contains_node(&b));
        assert_eq!(g.edge_counts().total(), 0, "all incident edges gone");
        assert!(g.contains_node(&a) && g.contains_node(&c));
    }

    #[test]
    fn subset_and_difference() {
        let (a, b, c) = (r(0.1), r(0.2), r(0.3));
        let small: OverlayGraph = [Edge::unmarked(a, b)].into_iter().collect();
        let big: OverlayGraph = [Edge::unmarked(a, b), Edge::unmarked(b, c)].into_iter().collect();
        assert!(small.edges_subset_of(&big));
        assert!(!big.edges_subset_of(&small));
        assert_eq!(big.edge_difference(&small), vec![Edge::unmarked(b, c)]);
    }

    #[test]
    fn counts_split_real_virtual() {
        let a = r(0.1);
        let v = NodeRef::virtual_node(Ident::from_f64(0.1), 2);
        let mut g = OverlayGraph::new();
        g.add_edge(Edge::unmarked(a, v));
        assert_eq!(g.real_count(), 1);
        assert_eq!(g.virtual_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn degree_summary_counts_in_and_out() {
        let (a, b, c) = (r(0.1), r(0.2), r(0.3));
        let g: OverlayGraph =
            [Edge::unmarked(a, b), Edge::unmarked(a, c), Edge::ring(b, c)].into_iter().collect();
        let d = g.degree_summary();
        assert_eq!(d.max_out, 2);
        assert_eq!(d.max_in, 2); // c has two in-edges
        assert!((d.mean_out - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_equality_is_structural() {
        let (a, b) = (r(0.1), r(0.2));
        let g1: OverlayGraph = [Edge::unmarked(a, b)].into_iter().collect();
        let mut g2 = OverlayGraph::new();
        g2.add_node(b);
        g2.add_edge(Edge::unmarked(a, b));
        assert_eq!(g1, g2);
        g2.add_edge(Edge::ring(b, a));
        assert_ne!(g1, g2);
    }
}

//! Initial states and churn schedules for self-stabilization experiments.
//!
//! The paper's simulations (§5) start from "a random undirected weakly
//! connected graph" whose vertices carry identifiers drawn uniformly at
//! random from `(0,1)`. A self-stabilizing protocol, however, must recover
//! from *any* weakly connected state, so this crate also generates the
//! classic adversarial shapes (line in random identifier order, star,
//! clique, binary tree, and the "two stable rings joined by one bridge edge"
//! state that defeats classic Chord's stabilization).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod generators;
mod initial;

pub use churn::{ChurnEvent, ChurnPlan, TimedChurnEvent, TimedChurnPlan};
pub use generators::TopologyKind;
pub use initial::InitialTopology;

#[cfg(test)]
mod proptests;

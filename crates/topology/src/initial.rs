//! The protocol-agnostic description of an initial overlay state.

use rand::seq::SliceRandom;
use rand::Rng;
use rechord_id::Ident;
use std::collections::BTreeSet;

/// An initial network state: `n` peers with distinct identifiers and a set
/// of directed knowledge edges between them (peer `i` initially knows peer
/// `j`). Protocols seed their own state representation from this (Re-Chord
/// loads the edges into `N_u(u_0)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InitialTopology {
    /// Peer identifiers, ascending and distinct.
    pub ids: Vec<Ident>,
    /// Directed edges as index pairs into `ids` (`from != to`).
    pub edges: Vec<(usize, usize)>,
}

impl InitialTopology {
    /// Builds a topology from identifiers and edges, normalizing the
    /// representation (sorts + dedups ids, remaps and dedups edges, drops
    /// self-loops).
    pub fn new(mut ids: Vec<Ident>, edges: Vec<(usize, usize)>) -> Self {
        let original = ids.clone();
        ids.sort_unstable();
        ids.dedup();
        let remap =
            |i: usize| -> usize { ids.binary_search(&original[i]).expect("id present after sort") };
        let set: BTreeSet<(usize, usize)> = edges
            .into_iter()
            .filter(|(a, b)| *a < original.len() && *b < original.len())
            .map(|(a, b)| (remap(a), remap(b)))
            .filter(|(a, b)| a != b)
            .collect();
        InitialTopology { ids, edges: set.into_iter().collect() }
    }

    /// Draws `n` distinct identifiers uniformly at random (the paper's
    /// "chosen uniformly at random from (0,1)").
    pub fn random_ids(n: usize, rng: &mut impl Rng) -> Vec<Ident> {
        let mut set = BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen::<u64>());
        }
        set.into_iter().map(Ident::from_raw).collect()
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff there are no peers.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The initial out-contacts of the peer `id` — exactly the identifiers a
    /// protocol seeds into that peer's knowledge (Re-Chord: `N_u(u_0)`).
    /// A distributed node process uses this to start from the same state a
    /// simulated peer would. Unknown identifiers have no contacts.
    pub fn contacts_of(&self, id: Ident) -> Vec<Ident> {
        let Ok(idx) = self.ids.binary_search(&id) else { return Vec::new() };
        self.edges.iter().filter(|(a, _)| *a == idx).map(|&(_, b)| self.ids[b]).collect()
    }

    /// Is the topology weakly connected (undirected reachability over the
    /// knowledge edges)? The precondition of Theorem 1.1.
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.ids.len();
        if n <= 1 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// A uniformly random spanning structure: each peer (in a random order,
    /// after the first) gets one directed edge to or from a random earlier
    /// peer. Guarantees weak connectivity with exactly `n - 1` edges.
    pub fn random_attachment_tree(ids: Vec<Ident>, rng: &mut impl Rng) -> Self {
        let n = ids.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut edges = Vec::with_capacity(n.saturating_sub(1));
        for k in 1..n {
            let parent = order[rng.gen_range(0..k)];
            let child = order[k];
            if rng.gen_bool(0.5) {
                edges.push((parent, child));
            } else {
                edges.push((child, parent));
            }
        }
        InitialTopology::new(ids, edges)
    }

    /// Adds `extra` random directed edges (no self-loops, dedup applied).
    pub fn with_extra_random_edges(mut self, extra: usize, rng: &mut impl Rng) -> Self {
        let n = self.ids.len();
        if n < 2 {
            return self;
        }
        let mut set: BTreeSet<(usize, usize)> = self.edges.iter().copied().collect();
        let mut budget = extra;
        let mut attempts = 0usize;
        while budget > 0 && attempts < extra * 20 + 100 {
            attempts += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && set.insert((a, b)) {
                budget -= 1;
            }
        }
        self.edges = set.into_iter().collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normalization_sorts_and_dedups() {
        let a = Ident::from_raw(30);
        let b = Ident::from_raw(10);
        let t = InitialTopology::new(vec![a, b], vec![(0, 1), (0, 1), (1, 1)]);
        assert_eq!(t.ids, vec![b, a]);
        // (0,1) on the original indexing is (a -> b) = (index1 -> index0)
        assert_eq!(t.edges, vec![(1, 0)]);
    }

    #[test]
    fn random_ids_distinct_and_sorted() {
        let mut rng = SmallRng::seed_from_u64(7);
        let ids = InitialTopology::random_ids(100, &mut rng);
        assert_eq!(ids.len(), 100);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn attachment_tree_is_weakly_connected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 17, 64] {
            let ids = InitialTopology::random_ids(n, &mut rng);
            let t = InitialTopology::random_attachment_tree(ids, &mut rng);
            assert!(t.is_weakly_connected(), "n={n}");
            assert_eq!(t.edges.len(), n.saturating_sub(1));
        }
    }

    #[test]
    fn extra_edges_preserve_connectivity() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ids = InitialTopology::random_ids(20, &mut rng);
        let t = InitialTopology::random_attachment_tree(ids, &mut rng)
            .with_extra_random_edges(15, &mut rng);
        assert!(t.is_weakly_connected());
        assert!(t.edges.len() >= 19);
    }

    #[test]
    fn disconnected_detected() {
        let ids: Vec<Ident> = (0..4).map(|i| Ident::from_raw(i * 100)).collect();
        let t = InitialTopology::new(ids, vec![(0, 1), (2, 3)]);
        assert!(!t.is_weakly_connected());
    }
}

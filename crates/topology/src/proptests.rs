//! Property tests for the topology generators.

use crate::{InitialTopology, TopologyKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Every generated family, at every size, is weakly connected, has the
    /// requested peer count, distinct sorted identifiers, and no self-loops.
    #[test]
    fn families_well_formed(kind_idx in 0usize..TopologyKind::ALL.len(),
                            n in 1usize..40,
                            seed in any::<u64>()) {
        let kind = TopologyKind::ALL[kind_idx];
        let t = kind.generate(n, seed);
        prop_assert_eq!(t.len(), n);
        prop_assert!(t.is_weakly_connected(), "{}", kind.name());
        prop_assert!(t.ids.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(t.edges.iter().all(|(a, b)| a != b && *a < n && *b < n));
    }

    /// Normalization is idempotent: re-normalizing a generated topology
    /// changes nothing.
    #[test]
    fn normalization_idempotent(n in 1usize..30, seed in any::<u64>()) {
        let t = TopologyKind::Random.generate(n, seed);
        let again = InitialTopology::new(t.ids.clone(), t.edges.clone());
        prop_assert_eq!(t, again);
    }

    /// Extra edges never break connectivity and never shrink the edge set.
    #[test]
    fn extra_edges_monotone(n in 2usize..30, extra in 0usize..40, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = InitialTopology::random_ids(n, &mut rng);
        let base = InitialTopology::random_attachment_tree(ids, &mut rng);
        let base_edges = base.edges.len();
        let grown = base.with_extra_random_edges(extra, &mut rng);
        prop_assert!(grown.edges.len() >= base_edges);
        prop_assert!(grown.is_weakly_connected());
        // upper bound: n(n-1) possible directed edges
        prop_assert!(grown.edges.len() <= n * (n - 1));
    }

    /// Identifier drawing yields exactly n distinct sorted values.
    #[test]
    fn random_ids_contract(n in 0usize..200, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = InitialTopology::random_ids(n, &mut rng);
        prop_assert_eq!(ids.len(), n);
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }
}

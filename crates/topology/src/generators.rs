//! Named topology families for convergence sweeps.

use crate::InitialTopology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The initial-state families exercised by the experiments.
///
/// `Random` is the paper's §5 workload; the rest are adversarial weakly
/// connected shapes a self-stabilizing protocol must also recover from.
///
/// ```
/// use rechord_topology::TopologyKind;
///
/// let topo = TopologyKind::Random.generate(16, 42);
/// assert_eq!(topo.ids.len(), 16);
/// // Generation is deterministic in the seed…
/// assert_eq!(topo, TopologyKind::Random.generate(16, 42));
/// // …and every family produces a weakly connected state.
/// assert!(!topo.edges.is_empty());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Random attachment tree plus `~n/2` extra random directed edges — the
    /// paper's "random undirected weakly connected graph".
    Random,
    /// A path visiting the peers in *random* (not identifier) order: maximal
    /// linearization work.
    RandomLine,
    /// A path in identifier order (already sorted; tests the fast path).
    SortedLine,
    /// A star: one random center knows everyone (or is known by everyone).
    Star,
    /// The complete directed graph (maximal initial knowledge).
    Clique,
    /// A balanced binary tree over a random permutation of the peers.
    BinaryTree,
    /// Two sorted rings over the odd/even halves of the identifier space,
    /// weakly connected by a single bridge edge. Classic Chord's stabilize
    /// cannot merge such "loopy" states; Re-Chord must.
    DoubleRingBridge,
    /// A sorted ring with power-of-two index fingers (each peer knows its
    /// predecessor, successor, and the peers 2^k positions clockwise):
    /// greedy-routable in O(log n) hops *before* any protocol round runs.
    /// This is how the scale benches get a routable 10k-peer overlay
    /// without paying the O(n)-round stabilization bill up front.
    FingerRing,
}

impl TopologyKind {
    /// All families, for sweep tables.
    pub const ALL: [TopologyKind; 8] = [
        TopologyKind::Random,
        TopologyKind::RandomLine,
        TopologyKind::SortedLine,
        TopologyKind::Star,
        TopologyKind::Clique,
        TopologyKind::BinaryTree,
        TopologyKind::DoubleRingBridge,
        TopologyKind::FingerRing,
    ];

    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Random => "random",
            TopologyKind::RandomLine => "random-line",
            TopologyKind::SortedLine => "sorted-line",
            TopologyKind::Star => "star",
            TopologyKind::Clique => "clique",
            TopologyKind::BinaryTree => "binary-tree",
            TopologyKind::DoubleRingBridge => "double-ring-bridge",
            TopologyKind::FingerRing => "finger-ring",
        }
    }

    /// Generates an `n`-peer instance of this family with fresh random
    /// identifiers, deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> InitialTopology {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc2b2_ae3d_27d4_eb4f);
        let ids = InitialTopology::random_ids(n, &mut rng);
        self.generate_over(ids, &mut rng)
    }

    /// Generates this family over caller-provided identifiers.
    pub fn generate_over(&self, ids: Vec<Ident2>, rng: &mut SmallRng) -> InitialTopology {
        let n = ids.len();
        match self {
            TopologyKind::Random => {
                let extra = n / 2;
                InitialTopology::random_attachment_tree(ids, rng)
                    .with_extra_random_edges(extra, rng)
            }
            TopologyKind::RandomLine => {
                let perm = permutation(n, rng);
                let edges = (1..n).map(|k| (perm[k - 1], perm[k])).collect();
                InitialTopology::new(ids, edges)
            }
            TopologyKind::SortedLine => {
                let edges = (1..n).map(|k| (k - 1, k)).collect();
                InitialTopology::new(ids, edges)
            }
            TopologyKind::Star => {
                let center = if n == 0 { 0 } else { rng.gen_range(0..n) };
                let edges = (0..n)
                    .filter(|&i| i != center)
                    .map(|i| if rng.gen_bool(0.5) { (center, i) } else { (i, center) })
                    .collect();
                InitialTopology::new(ids, edges)
            }
            TopologyKind::Clique => {
                let mut edges = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            edges.push((a, b));
                        }
                    }
                }
                InitialTopology::new(ids, edges)
            }
            TopologyKind::BinaryTree => {
                let perm = permutation(n, rng);
                let mut edges = Vec::with_capacity(n.saturating_sub(1));
                for k in 1..n {
                    edges.push((perm[(k - 1) / 2], perm[k]));
                }
                InitialTopology::new(ids, edges)
            }
            TopologyKind::DoubleRingBridge => {
                // ids are sorted; ring A = even indices, ring B = odd ones.
                let mut edges = Vec::new();
                for (ring, parity) in [(0usize, 0usize), (0, 1)].iter().zip([0usize, 1]) {
                    let _ = ring;
                    let members: Vec<usize> = (0..n).filter(|i| i % 2 == parity).collect();
                    for w in 0..members.len() {
                        if members.len() > 1 {
                            edges.push((members[w], members[(w + 1) % members.len()]));
                        }
                    }
                }
                if n >= 2 {
                    edges.push((0, 1)); // the single bridge
                }
                InitialTopology::new(ids, edges)
            }
            TopologyKind::FingerRing => {
                // ids are sorted, so index order is clockwise ident order:
                // the finger at +2^k spans exactly 2^k ring positions and
                // greedy routing halves the remaining index gap per hop.
                let mut edges = Vec::new();
                for i in 0..n {
                    if n > 1 {
                        edges.push((i, (i + n - 1) % n)); // predecessor
                    }
                    let mut step = 1usize;
                    while step < n {
                        edges.push((i, (i + step) % n));
                        step <<= 1;
                    }
                }
                InitialTopology::new(ids, edges)
            }
        }
    }
}

/// Identifier type re-exported for `generate_over`'s signature clarity.
pub type Ident2 = rechord_id::Ident;

fn permutation(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_weakly_connected() {
        for kind in TopologyKind::ALL {
            for n in [1usize, 2, 5, 33] {
                let t = kind.generate(n, 42);
                assert!(
                    t.is_weakly_connected(),
                    "{} with n={n} must be weakly connected",
                    kind.name()
                );
                assert_eq!(t.len(), n);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in TopologyKind::ALL {
            assert_eq!(kind.generate(12, 9), kind.generate(12, 9), "{}", kind.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyKind::Random.generate(20, 1);
        let b = TopologyKind::Random.generate(20, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn clique_has_all_pairs() {
        let t = TopologyKind::Clique.generate(6, 3);
        assert_eq!(t.edges.len(), 6 * 5);
    }

    #[test]
    fn line_edge_counts() {
        assert_eq!(TopologyKind::SortedLine.generate(10, 0).edges.len(), 9);
        assert_eq!(TopologyKind::RandomLine.generate(10, 0).edges.len(), 9);
    }

    #[test]
    fn double_ring_is_two_rings_plus_bridge() {
        let t = TopologyKind::DoubleRingBridge.generate(10, 5);
        // 5-cycles over each parity class: 5 + 5 edges, plus one bridge.
        assert_eq!(t.edges.len(), 11);
        assert!(t.is_weakly_connected());
        // Without the bridge the graph splits in two.
        let without: Vec<_> = t.edges.iter().copied().filter(|&e| e != (0, 1)).collect();
        let split = InitialTopology::new(t.ids.clone(), without);
        assert!(!split.is_weakly_connected());
    }

    #[test]
    fn star_connects_everyone_through_center() {
        let t = TopologyKind::Star.generate(9, 8);
        assert_eq!(t.edges.len(), 8);
        assert!(t.is_weakly_connected());
    }

    #[test]
    fn finger_ring_has_logarithmic_degree_in_ident_order() {
        let n = 64;
        let t = TopologyKind::FingerRing.generate(n, 11);
        // Per peer: predecessor + fingers at 1, 2, 4, …, 32 — all distinct.
        assert_eq!(t.edges.len(), n * 7);
        assert!(t.is_weakly_connected());
        // Fingers follow sorted-ident order: every peer's +1 finger is its
        // clockwise successor, so the successor cycle is fully present.
        for i in 0..n {
            assert!(t.edges.contains(&(i, (i + 1) % n)), "missing successor edge of {i}");
            assert!(t.edges.contains(&(i, (i + 32) % n)), "missing widest finger of {i}");
        }
    }
}

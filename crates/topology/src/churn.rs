//! Churn schedules: timed join/leave sequences applied to a running network.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One churn event, scheduled relative to the experiment's round clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A fresh peer (identified by an address to be hashed) joins by
    /// contacting a uniformly chosen existing peer (paper §4.1: "a peer
    /// connects to one peer in the network").
    Join {
        /// New peer's address (hashed onto the ring by the driver).
        address: u64,
    },
    /// A uniformly chosen existing peer leaves gracefully (informs its
    /// neighbors; paper §4.2).
    GracefulLeave,
    /// A uniformly chosen existing peer crashes: it vanishes with all its
    /// edges and cannot say goodbye (paper §4.2 "a fault can occur").
    Crash,
}

/// A deterministic schedule of churn events with inter-event gaps measured
/// in *stabilization opportunities* (the driver lets the network re-stabilize
/// or run a fixed number of rounds between events).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Events in application order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// `joins` joins followed by nothing else — Theorem 4.1's workload.
    pub fn joins_only(joins: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        ChurnPlan { events: (0..joins).map(|_| ChurnEvent::Join { address: rng.gen() }).collect() }
    }

    /// `leaves` graceful leaves — Theorem 4.2's workload.
    pub fn leaves_only(leaves: usize) -> Self {
        ChurnPlan { events: vec![ChurnEvent::GracefulLeave; leaves] }
    }

    /// `crashes` crash failures — Theorem 4.2's fault variant.
    pub fn crashes_only(crashes: usize) -> Self {
        ChurnPlan { events: vec![ChurnEvent::Crash; crashes] }
    }

    /// A mixed schedule: each event is a join with probability `p_join`,
    /// otherwise a crash or graceful leave with equal probability.
    pub fn mixed(events: usize, p_join: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let events = (0..events)
            .map(|_| {
                if rng.gen_bool(p_join.clamp(0.0, 1.0)) {
                    ChurnEvent::Join { address: rng.gen() }
                } else if rng.gen_bool(0.5) {
                    ChurnEvent::GracefulLeave
                } else {
                    ChurnEvent::Crash
                }
            })
            .collect();
        ChurnPlan { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Net population change if every event succeeds.
    pub fn net_population_delta(&self) -> isize {
        self.events
            .iter()
            .map(|e| match e {
                ChurnEvent::Join { .. } => 1isize,
                ChurnEvent::GracefulLeave | ChurnEvent::Crash => -1,
            })
            .sum()
    }
}

/// A churn event pinned to an instant of a discrete-event clock (virtual
/// ticks), for drivers that interleave churn with request traffic instead of
/// politely waiting for re-stabilization between events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedChurnEvent {
    /// Virtual time at which the event strikes.
    pub at: u64,
    /// The event itself.
    pub event: ChurnEvent,
}

/// A deterministic schedule of [`TimedChurnEvent`]s, kept sorted by time
/// (ties preserve insertion order, so merged plans replay identically).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimedChurnPlan {
    events: Vec<TimedChurnEvent>,
}

impl TimedChurnPlan {
    /// Lays an untimed plan out on the clock: event `k` fires at
    /// `start + k * spacing`.
    pub fn from_plan(plan: &ChurnPlan, start: u64, spacing: u64) -> Self {
        TimedChurnPlan {
            events: plan
                .events
                .iter()
                .enumerate()
                .map(|(k, &event)| TimedChurnEvent { at: start + k as u64 * spacing, event })
                .collect(),
        }
    }

    /// A churn storm: `events` mixed join/leave/crash events starting at
    /// `start`, one every `spacing` ticks — far faster than re-stabilization,
    /// which is the point.
    pub fn storm(events: usize, p_join: f64, start: u64, spacing: u64, seed: u64) -> Self {
        Self::from_plan(&ChurnPlan::mixed(events, p_join, seed), start, spacing)
    }

    /// A join wave: `joins` fresh peers arriving every `spacing` ticks from
    /// `start` (Theorem 4.1's workload under load).
    pub fn join_wave(joins: usize, start: u64, spacing: u64, seed: u64) -> Self {
        Self::from_plan(&ChurnPlan::joins_only(joins, seed), start, spacing)
    }

    /// A crash wave: `crashes` peers failing every `spacing` ticks.
    pub fn crash_wave(crashes: usize, start: u64, spacing: u64) -> Self {
        Self::from_plan(&ChurnPlan::crashes_only(crashes), start, spacing)
    }

    /// Merges two plans into one schedule, re-sorted by time (stable, so
    /// same-instant events keep `self`-before-`other` order).
    pub fn merged(mut self, other: TimedChurnPlan) -> Self {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The events, ascending by time.
    pub fn events(&self) -> &[TimedChurnEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `(first, last)` strike times, or `None` when empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.at, b.at)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_only_is_deterministic_and_join_only() {
        let a = ChurnPlan::joins_only(5, 1);
        let b = ChurnPlan::joins_only(5, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.events.iter().all(|e| matches!(e, ChurnEvent::Join { .. })));
        assert_eq!(a.net_population_delta(), 5);
    }

    #[test]
    fn leaves_and_crashes() {
        assert_eq!(ChurnPlan::leaves_only(3).net_population_delta(), -3);
        assert_eq!(ChurnPlan::crashes_only(2).net_population_delta(), -2);
    }

    #[test]
    fn mixed_respects_probability_extremes() {
        let all_joins = ChurnPlan::mixed(20, 1.0, 7);
        assert!(all_joins.events.iter().all(|e| matches!(e, ChurnEvent::Join { .. })));
        let no_joins = ChurnPlan::mixed(20, 0.0, 7);
        assert!(no_joins.events.iter().all(|e| !matches!(e, ChurnEvent::Join { .. })));
    }

    #[test]
    fn empty_plan() {
        let p = ChurnPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.net_population_delta(), 0);
    }

    #[test]
    fn timed_plan_lays_out_on_the_clock() {
        let plan = TimedChurnPlan::from_plan(&ChurnPlan::crashes_only(3), 100, 25);
        assert_eq!(plan.len(), 3);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![100, 125, 150]);
        assert_eq!(plan.span(), Some((100, 150)));
        assert!(plan.events().iter().all(|e| matches!(e.event, ChurnEvent::Crash)));
    }

    #[test]
    fn timed_plan_merge_sorts_stably() {
        let joins = TimedChurnPlan::join_wave(2, 50, 100, 7); // 50, 150
        let crashes = TimedChurnPlan::crash_wave(2, 50, 50); // 50, 100
        let merged = joins.clone().merged(crashes);
        let times: Vec<u64> = merged.events().iter().map(|e| e.at).collect();
        assert_eq!(times, vec![50, 50, 100, 150]);
        // stable: the join scheduled at 50 precedes the crash at 50
        assert!(matches!(merged.events()[0].event, ChurnEvent::Join { .. }));
        assert!(matches!(merged.events()[1].event, ChurnEvent::Crash));
        // determinism end to end
        let again =
            TimedChurnPlan::join_wave(2, 50, 100, 7).merged(TimedChurnPlan::crash_wave(2, 50, 50));
        assert_eq!(merged, again);
    }

    #[test]
    fn timed_plan_empty_and_storm() {
        assert!(TimedChurnPlan::default().is_empty());
        assert_eq!(TimedChurnPlan::default().span(), None);
        let storm = TimedChurnPlan::storm(10, 0.4, 1_000, 10, 3);
        assert_eq!(storm.len(), 10);
        assert_eq!(storm.span(), Some((1_000, 1_090)));
        assert_eq!(storm, TimedChurnPlan::storm(10, 0.4, 1_000, 10, 3));
    }
}

//! Churn schedules: timed join/leave sequences applied to a running network.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One churn event, scheduled relative to the experiment's round clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A fresh peer (identified by an address to be hashed) joins by
    /// contacting a uniformly chosen existing peer (paper §4.1: "a peer
    /// connects to one peer in the network").
    Join {
        /// New peer's address (hashed onto the ring by the driver).
        address: u64,
    },
    /// A uniformly chosen existing peer leaves gracefully (informs its
    /// neighbors; paper §4.2).
    GracefulLeave,
    /// A uniformly chosen existing peer crashes: it vanishes with all its
    /// edges and cannot say goodbye (paper §4.2 "a fault can occur").
    Crash,
}

/// A deterministic schedule of churn events with inter-event gaps measured
/// in *stabilization opportunities* (the driver lets the network re-stabilize
/// or run a fixed number of rounds between events).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Events in application order.
    pub events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// `joins` joins followed by nothing else — Theorem 4.1's workload.
    pub fn joins_only(joins: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        ChurnPlan {
            events: (0..joins).map(|_| ChurnEvent::Join { address: rng.gen() }).collect(),
        }
    }

    /// `leaves` graceful leaves — Theorem 4.2's workload.
    pub fn leaves_only(leaves: usize) -> Self {
        ChurnPlan { events: vec![ChurnEvent::GracefulLeave; leaves] }
    }

    /// `crashes` crash failures — Theorem 4.2's fault variant.
    pub fn crashes_only(crashes: usize) -> Self {
        ChurnPlan { events: vec![ChurnEvent::Crash; crashes] }
    }

    /// A mixed schedule: each event is a join with probability `p_join`,
    /// otherwise a crash or graceful leave with equal probability.
    pub fn mixed(events: usize, p_join: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let events = (0..events)
            .map(|_| {
                if rng.gen_bool(p_join.clamp(0.0, 1.0)) {
                    ChurnEvent::Join { address: rng.gen() }
                } else if rng.gen_bool(0.5) {
                    ChurnEvent::GracefulLeave
                } else {
                    ChurnEvent::Crash
                }
            })
            .collect();
        ChurnPlan { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Net population change if every event succeeds.
    pub fn net_population_delta(&self) -> isize {
        self.events
            .iter()
            .map(|e| match e {
                ChurnEvent::Join { .. } => 1isize,
                ChurnEvent::GracefulLeave | ChurnEvent::Crash => -1,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_only_is_deterministic_and_join_only() {
        let a = ChurnPlan::joins_only(5, 1);
        let b = ChurnPlan::joins_only(5, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.events.iter().all(|e| matches!(e, ChurnEvent::Join { .. })));
        assert_eq!(a.net_population_delta(), 5);
    }

    #[test]
    fn leaves_and_crashes() {
        assert_eq!(ChurnPlan::leaves_only(3).net_population_delta(), -3);
        assert_eq!(ChurnPlan::crashes_only(2).net_population_delta(), -2);
    }

    #[test]
    fn mixed_respects_probability_extremes() {
        let all_joins = ChurnPlan::mixed(20, 1.0, 7);
        assert!(all_joins.events.iter().all(|e| matches!(e, ChurnEvent::Join { .. })));
        let no_joins = ChurnPlan::mixed(20, 0.0, 7);
        assert!(no_joins.events.iter().all(|e| !matches!(e, ChurnEvent::Join { .. })));
    }

    #[test]
    fn empty_plan() {
        let p = ChurnPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.net_population_delta(), 0);
    }
}

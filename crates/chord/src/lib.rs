//! Classic Chord (Stoica, Morris, Karger, Kaashoek, Balakrishnan —
//! SIGCOMM 2001), as the Re-Chord paper's baseline comparator.
//!
//! This is the standard maintenance protocol: every node keeps a successor
//! (plus a successor list for fault tolerance), a predecessor, and a finger
//! table, and periodically runs `stabilize` / `notify` / `fix_fingers`.
//! Chord handles churn well — but it is **not self-stabilizing**: from an
//! arbitrary weakly connected state it can converge to *loopy* states (e.g.
//! two disjoint rings over interleaved identifiers) from which the
//! stabilization routine never recovers, which is exactly the motivation of
//! the Re-Chord paper. Experiment E10 (`baseline_compare`) demonstrates
//! this: classic Chord quiesces into multiple rings while Re-Chord merges
//! them.
//!
//! Modeling note: we run Chord on the same synchronous engine. RPCs that
//! classic Chord performs synchronously (reading the successor's
//! predecessor in `stabilize`, iterative lookups in `fix_fingers`/`join`)
//! are resolved against the previous-round snapshot — a *one-round RPC*
//! idealization that is strictly generous to the baseline: real Chord gets
//! less information per round, so anything classic Chord fails at here it
//! also fails at in reality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod protocol;
mod state;

pub use network::ChordNetwork;
pub use protocol::{ChordMsg, ChordProtocol};
pub use state::{ChordState, SUCCESSOR_LIST_LEN};

//! Per-node state of classic Chord.

use rechord_id::Ident;
use std::collections::BTreeSet;

/// Successor-list length `r`. The original paper uses `r = Θ(log n)`; a
/// small constant suffices at simulation scale.
pub const SUCCESSOR_LIST_LEN: usize = 4;

/// Classic Chord node state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ChordState {
    /// Immediate successor on the ring (`finger[1]` in the original paper).
    pub successor: Option<Ident>,
    /// Backup successors (fault tolerance).
    pub successor_list: Vec<Ident>,
    /// Predecessor pointer, set by `notify`.
    pub predecessor: Option<Ident>,
    /// Finger table: `fingers[i]` targets `me + 1/2^(i+1)`.
    pub fingers: Vec<Option<Ident>>,
    /// Bootstrap knowledge (initial contacts; consulted only while the
    /// successor pointer is unset).
    pub known: BTreeSet<Ident>,
}

/// Number of finger-table slots (identifier space is 64 bits).
pub const FINGER_SLOTS: usize = 64;

impl ChordState {
    /// A node that initially knows `contacts`.
    pub fn with_contacts(contacts: impl IntoIterator<Item = Ident>) -> Self {
        ChordState {
            successor: None,
            successor_list: Vec::new(),
            predecessor: None,
            fingers: vec![None; FINGER_SLOTS],
            known: contacts.into_iter().collect(),
        }
    }

    /// All peers this node currently points at (used for reachability
    /// analysis and crash cleanup).
    pub fn all_pointers(&self) -> BTreeSet<Ident> {
        let mut out: BTreeSet<Ident> = self.known.iter().copied().collect();
        out.extend(self.successor);
        out.extend(self.predecessor);
        out.extend(self.successor_list.iter().copied());
        out.extend(self.fingers.iter().flatten().copied());
        out
    }

    /// Drops every pointer to `dead` (crash semantics).
    pub fn purge(&mut self, dead: Ident) {
        self.known.remove(&dead);
        if self.successor == Some(dead) {
            self.successor = None;
        }
        if self.predecessor == Some(dead) {
            self.predecessor = None;
        }
        self.successor_list.retain(|&s| s != dead);
        for f in self.fingers.iter_mut() {
            if *f == Some(dead) {
                *f = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointers_collect_everything() {
        let a = Ident::from_raw(1);
        let b = Ident::from_raw(2);
        let c = Ident::from_raw(3);
        let mut st = ChordState::with_contacts([a]);
        st.successor = Some(b);
        st.predecessor = Some(c);
        st.fingers[5] = Some(a);
        st.successor_list.push(c);
        let p = st.all_pointers();
        assert!(p.contains(&a) && p.contains(&b) && p.contains(&c));
    }

    #[test]
    fn purge_clears_dead_peer() {
        let dead = Ident::from_raw(9);
        let mut st = ChordState::with_contacts([dead]);
        st.successor = Some(dead);
        st.predecessor = Some(dead);
        st.successor_list.push(dead);
        st.fingers[0] = Some(dead);
        st.purge(dead);
        assert!(st.all_pointers().is_empty());
    }
}

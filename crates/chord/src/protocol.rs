//! The classic Chord maintenance protocol on the synchronous engine.

use crate::state::{ChordState, FINGER_SLOTS, SUCCESSOR_LIST_LEN};
use rechord_id::Ident;
use rechord_sim::{Outbox, RoundView, SyncProtocol};

/// Chord's only asynchronous message: `notify` (the rest of the protocol is
/// modeled as one-round RPCs against the snapshot; see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChordMsg {
    /// "I believe I might be your predecessor."
    Notify {
        /// The notifying node.
        from: Ident,
    },
}

/// Classic Chord: bootstrap, stabilize, notify, fix-fingers, each round.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChordProtocol;

impl SyncProtocol for ChordProtocol {
    type State = ChordState;
    type Msg = ChordMsg;

    fn step(
        &self,
        me: Ident,
        state: &mut ChordState,
        view: &RoundView<'_, ChordState>,
        out: &mut Outbox<ChordMsg>,
    ) {
        // Drop pointers to vanished peers (failure detection).
        let dead: Vec<Ident> =
            state.all_pointers().into_iter().filter(|p| view.get(*p).is_none()).collect();
        for d in dead {
            state.purge(d);
        }
        state.successor_list.retain(|&s| s != me);

        // Re-adopt a successor: first backup from the list, else the best
        // (closest clockwise) pointer we still have.
        if state.successor.is_none() || state.successor == Some(me) {
            state.successor = state
                .successor_list
                .first()
                .copied()
                .or_else(|| closest_clockwise(me, state.all_pointers().into_iter()));
        }

        let Some(mut succ) = state.successor else { return };

        // stabilize: x = successor.predecessor; if x ∈ (me, successor) adopt.
        if let Some(sp) = view.get(succ).and_then(|s| s.predecessor) {
            if sp != me && sp != succ && sp.in_open_arc(me, succ) && view.get(sp).is_some() {
                succ = sp;
                state.successor = Some(sp);
            }
        }

        // successor list: our successor plus its list, truncated.
        let mut list = vec![succ];
        if let Some(ss) = view.get(succ) {
            list.extend(ss.successor_list.iter().copied());
        }
        list.retain(|&s| s != me);
        list.dedup();
        list.truncate(SUCCESSOR_LIST_LEN);
        state.successor_list = list;

        // notify our successor.
        out.send(succ, ChordMsg::Notify { from: me });

        // fix_fingers: resolve every finger target by snapshot lookup.
        for i in 0..FINGER_SLOTS {
            let target = me.virtual_position((i + 1) as u8);
            state.fingers[i] = snapshot_lookup(view, me, target);
        }
    }

    fn deliver(&self, me: Ident, state: &mut ChordState, msg: &ChordMsg) {
        match *msg {
            ChordMsg::Notify { from } => {
                if from == me {
                    return;
                }
                let adopt = match state.predecessor {
                    None => true,
                    Some(p) => from.in_open_arc(p, me),
                };
                if adopt {
                    state.predecessor = Some(from);
                }
            }
        }
    }
}

/// The pointer minimizing clockwise distance from `me` (bootstrap helper).
fn closest_clockwise(me: Ident, pointers: impl Iterator<Item = Ident>) -> Option<Ident> {
    pointers.filter(|&p| p != me).min_by_key(|&p| me.dist_cw(p))
}

/// Chord's `find_successor(target)`, resolved greedily against the
/// snapshot: follow closest-preceding fingers until the target falls in
/// `(current, successor(current)]`. Returns `None` when the chain is broken
/// or does not terminate within a hop budget.
pub fn snapshot_lookup(
    view: &RoundView<'_, ChordState>,
    from: Ident,
    target: Ident,
) -> Option<Ident> {
    snapshot_lookup_traced(view, from, target).map(|(succ, _)| succ)
}

/// Like [`snapshot_lookup`], also returning the hop count.
pub fn snapshot_lookup_traced(
    view: &RoundView<'_, ChordState>,
    from: Ident,
    target: Ident,
) -> Option<(Ident, usize)> {
    let mut current = from;
    for hops in 0..(2 * FINGER_SLOTS) {
        let st = view.get(current)?;
        let succ = st.successor?;
        if target == succ || target.in_open_arc(current, succ) || current == succ {
            return Some((succ, hops));
        }
        // closest preceding node from fingers + successor
        let next = st
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(std::iter::once(succ))
            .filter(|&f| f != current && f.in_open_arc(current, target))
            .max_by_key(|&f| current.dist_cw(f));
        match next {
            Some(n) if n != current => current = n,
            _ => return Some((succ, hops)),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_sim::Engine;

    fn ids(xs: &[f64]) -> Vec<Ident> {
        xs.iter().map(|&x| Ident::from_f64(x)).collect()
    }

    /// Engine with every node knowing its clockwise neighbor (a valid ring
    /// bootstrap).
    fn ring_engine(xs: &[f64]) -> Engine<ChordProtocol> {
        let v = ids(xs);
        let mut e = Engine::new(ChordProtocol, 1);
        for (k, &id) in v.iter().enumerate() {
            let next = v[(k + 1) % v.len()];
            e.insert_node(id, ChordState::with_contacts([next]));
        }
        e
    }

    #[test]
    fn sorted_ring_stabilizes() {
        let mut e = ring_engine(&[0.1, 0.3, 0.5, 0.7, 0.9]);
        let report = e.run_until_fixpoint(500);
        assert!(report.converged);
        let v = ids(&[0.1, 0.3, 0.5, 0.7, 0.9]);
        for (k, &id) in v.iter().enumerate() {
            let st = e.state(id).unwrap();
            assert_eq!(st.successor, Some(v[(k + 1) % v.len()]), "succ of {id}");
            assert_eq!(st.predecessor, Some(v[(k + v.len() - 1) % v.len()]), "pred of {id}");
        }
    }

    #[test]
    fn fingers_point_at_cyclic_successors() {
        let xs = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95];
        let mut e = ring_engine(&xs);
        e.run_until_fixpoint(500);
        let v = ids(&xs);
        // finger 1 of 0.05 targets 0.55 → first node ≥ 0.55 is 0.65
        let st = e.state(v[0]).unwrap();
        assert_eq!(st.fingers[0], Some(v[4]));
        // finger 2 targets 0.3 → 0.35
        assert_eq!(st.fingers[1], Some(v[2]));
    }

    #[test]
    fn lookup_routes_to_responsible_node() {
        let xs = [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95];
        let mut e = ring_engine(&xs);
        e.run_until_fixpoint(500);
        let v = ids(&xs);
        // run one more round to get a view; emulate via a fresh snapshot
        // by reading through a probe round
        let mut found = None;
        let probe_ids: Vec<Ident> = e.ids().to_vec();
        let states: Vec<ChordState> =
            probe_ids.iter().map(|i| e.state(*i).unwrap().clone()).collect();
        let view = RoundView::new(&probe_ids, &states);
        // key 0.4 → responsible node is 0.5
        let key = Ident::from_f64(0.4);
        for &src in &v {
            found = snapshot_lookup(&view, src, key);
            assert_eq!(found, Some(v[3]), "lookup from {src}");
        }
        assert!(found.is_some());
    }

    #[test]
    fn crash_recovery_through_successor_list() {
        let xs = [0.1, 0.3, 0.5, 0.7, 0.9];
        let mut e = ring_engine(&xs);
        e.run_until_fixpoint(500);
        let v = ids(&xs);
        e.remove_node(v[2]); // crash 0.5
        let report = e.run_until_fixpoint(500);
        assert!(report.converged, "chord must survive a single crash");
        // 0.3's successor must now be 0.7
        assert_eq!(e.state(v[1]).unwrap().successor, Some(v[3]));
    }
}

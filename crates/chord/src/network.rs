//! [`ChordNetwork`]: driver and diagnostics for the classic-Chord baseline.

use crate::protocol::{snapshot_lookup, ChordProtocol};
use crate::state::ChordState;
use rechord_id::Ident;
use rechord_sim::{Engine, FixpointReport, RoundView};
use rechord_topology::InitialTopology;
use std::collections::{BTreeMap, BTreeSet};

/// A classic-Chord network under simulation.
pub struct ChordNetwork {
    engine: Engine<ChordProtocol>,
}

impl ChordNetwork {
    /// Seeds each peer's bootstrap knowledge with the topology's directed
    /// edges — the same initial information Re-Chord receives.
    pub fn from_topology(topology: &InitialTopology, threads: usize) -> Self {
        let mut engine = Engine::new(ChordProtocol, threads);
        for &id in &topology.ids {
            engine.insert_node(id, ChordState::with_contacts([]));
        }
        for &(a, b) in &topology.edges {
            let (from, to) = (topology.ids[a], topology.ids[b]);
            if let Some(st) = engine.state_mut(from) {
                st.known.insert(to);
            }
        }
        ChordNetwork { engine }
    }

    /// The canonical **loopy** adversarial state (Liben-Nowell et al.):
    /// successor pointers over the sorted identifiers form `i → i+2 (mod n)`
    /// — two interleaved cycles, each winding once around the ring — and the
    /// smallest peer additionally *knows* its true successor (a bridge, so
    /// the state is weakly connected). Classic stabilize/notify never uses
    /// the dormant bridge and never merges the cycles; Re-Chord, seeded with
    /// the identical knowledge graph
    /// ([`rechord_topology::TopologyKind::DoubleRingBridge`]), recovers.
    pub fn loopy_double_ring(ids: &[Ident], threads: usize) -> Self {
        let mut sorted: Vec<Ident> = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let n = sorted.len();
        let mut engine = Engine::new(ChordProtocol, threads);
        for (k, &id) in sorted.iter().enumerate() {
            let mut st = ChordState::with_contacts([]);
            if n > 1 {
                st.successor = Some(sorted[(k + 2) % n]);
            }
            if k == 0 && n > 1 {
                st.known.insert(sorted[1]); // the weakly-connecting bridge
            }
            engine.insert_node(id, st);
        }
        ChordNetwork { engine }
    }

    /// Runs to a fixpoint or until `max_rounds`.
    pub fn run_until_stable(&mut self, max_rounds: u64) -> FixpointReport {
        self.engine.run_until_fixpoint(max_rounds)
    }

    /// Live peers, ascending.
    pub fn real_ids(&self) -> Vec<Ident> {
        self.engine.ids().to_vec()
    }

    /// Number of distinct successor-pointer cycles ("rings"). A healthy
    /// Chord network has exactly one; a loopy state that classic
    /// stabilization cannot repair has more.
    pub fn ring_count(&self) -> usize {
        let mut cycle_reps: BTreeSet<Ident> = BTreeSet::new();
        let succ: BTreeMap<Ident, Option<Ident>> =
            self.engine.iter().map(|(id, st)| (id, st.successor)).collect();
        for &start in succ.keys() {
            // follow successor pointers until a repeat; the cycle is
            // identified by its minimal member.
            let mut seen: Vec<Ident> = Vec::new();
            let mut cur = start;
            let rep = loop {
                if let Some(pos) = seen.iter().position(|&s| s == cur) {
                    break seen[pos..].iter().copied().min();
                }
                seen.push(cur);
                match succ.get(&cur).copied().flatten() {
                    Some(next) => cur = next,
                    None => break None, // dangling chain: no ring reached
                }
                if seen.len() > succ.len() + 1 {
                    break None;
                }
            };
            if let Some(rep) = rep {
                cycle_reps.insert(rep);
            }
        }
        cycle_reps.len()
    }

    /// Fraction of `(source, key)` probes for which a lookup reaches the
    /// globally responsible node (the true cyclic successor of the key).
    /// In a loopy state, lookups starting in the wrong ring miss.
    pub fn lookup_success_rate(&self, keys: &[Ident]) -> f64 {
        let ids = self.real_ids();
        if ids.is_empty() || keys.is_empty() {
            return 0.0;
        }
        let states: Vec<ChordState> =
            ids.iter().map(|i| self.engine.state(*i).expect("live").clone()).collect();
        let view = RoundView::new(&ids, &states);
        let mut ok = 0usize;
        let mut total = 0usize;
        for &key in keys {
            let responsible = cyclic_successor(&ids, key);
            for &src in &ids {
                total += 1;
                if snapshot_lookup(&view, src, key) == Some(responsible) {
                    ok += 1;
                }
            }
        }
        ok as f64 / total as f64
    }

    /// A peer joins via `contact` (standard Chord join: look up the
    /// successor of the joiner's identifier from the contact).
    pub fn join_via(&mut self, joiner: Ident, contact: Ident) -> bool {
        if self.engine.contains(joiner) || !self.engine.contains(contact) {
            return false;
        }
        self.engine.insert_node(joiner, ChordState::with_contacts([contact]))
    }

    /// A peer crashes without goodbye.
    pub fn crash(&mut self, victim: Ident) -> bool {
        self.engine.remove_node(victim).is_some()
    }

    /// Read access to the engine.
    pub fn engine(&self) -> &Engine<ChordProtocol> {
        &self.engine
    }
}

/// First identifier at or clockwise-after `key`.
fn cyclic_successor(sorted_ids: &[Ident], key: Ident) -> Ident {
    match sorted_ids.binary_search(&key) {
        Ok(i) => sorted_ids[i],
        Err(i) if i < sorted_ids.len() => sorted_ids[i],
        Err(_) => sorted_ids[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_topology::TopologyKind;

    #[test]
    fn healthy_bootstrap_forms_one_ring() {
        let topo = TopologyKind::SortedLine.generate(10, 3);
        let mut net = ChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(2_000);
        assert!(report.converged);
        assert_eq!(net.ring_count(), 1, "sorted-line bootstrap must form one ring");
        let keys: Vec<Ident> =
            (0..16).map(|k| Ident::from_raw(k * 0x1111_1111_1111_1111)).collect();
        assert!(net.lookup_success_rate(&keys) > 0.99);
    }

    #[test]
    fn loopy_state_defeats_classic_chord() {
        // The motivating failure: successor pointers forming two interleaved
        // cycles. Classic stabilize/notify cannot merge them, even though a
        // bridge contact keeps the state weakly connected.
        let topo = TopologyKind::Random.generate(16, 5);
        let mut net = ChordNetwork::loopy_double_ring(&topo.ids, 1);
        assert_eq!(net.ring_count(), 2, "initial state is two rings");
        let report = net.run_until_stable(3_000);
        assert!(report.converged, "chord quiesces...");
        assert!(net.ring_count() > 1, "...but into a loopy multi-ring state");
        // and lookups are broken: many probes resolve in the wrong ring
        let keys: Vec<Ident> =
            (0..16).map(|k| Ident::from_raw(k * 0x0f0f_0f0f_0f0f_0f0f)).collect();
        assert!(net.lookup_success_rate(&keys) < 0.9);
    }

    #[test]
    fn smart_bootstrap_from_knowledge_can_still_merge() {
        // With successor pointers *unset* and only knowledge edges, Chord's
        // join-style bootstrap may merge the two halves — the weakness is
        // specifically about repairing an established loopy pointer state.
        let topo = TopologyKind::DoubleRingBridge.generate(16, 5);
        let mut net = ChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(3_000);
        assert!(report.converged);
        assert!(net.ring_count() >= 1);
    }

    #[test]
    fn join_and_crash_maintain_single_ring() {
        let topo = TopologyKind::SortedLine.generate(8, 9);
        let mut net = ChordNetwork::from_topology(&topo, 1);
        net.run_until_stable(2_000);
        let joiner = Ident::from_raw(0xaaaa_bbbb_cccc_dddd);
        assert!(net.join_via(joiner, net.real_ids()[0]));
        net.run_until_stable(2_000);
        assert_eq!(net.ring_count(), 1);
        assert!(net.crash(net.real_ids()[3]));
        net.run_until_stable(2_000);
        assert_eq!(net.ring_count(), 1, "chord handles isolated churn fine");
    }
}

//! The [`Transport`] abstraction: how one cluster actor (a peer or a
//! client) exchanges [`NetMsg`]s with others, independent of whether
//! "others" are structs in the same process or processes across sockets.
//!
//! The contract every backend honors:
//!
//! * actors are addressed by [`Ident`] — the same identifier the protocol
//!   ring uses, so no separate naming layer exists;
//! * `send` is reliable and per-pair FIFO (messages between two actors
//!   arrive in send order; no ordering is promised across pairs);
//! * `recv` surfaces `(sender, message)` pairs and supports deadlines, so
//!   drivers can poll without hanging forever on a dead peer.
//!
//! [`crate::inmem::InMemTransport`] provides loopback delivery with
//! deterministic FIFO queues (the simulator's semantics, bit for bit);
//! [`crate::tcp::TcpTransport`] provides the same API over real sockets
//! with a connect/accept lifecycle and per-peer reconnect/backoff.

use crate::message::NetMsg;
use crate::wire::WireError;
use rechord_id::Ident;
use std::fmt;
use std::time::Duration;

/// Where an actor can be reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PeerAddr {
    /// In-memory fabric: the identifier is the whole address.
    Mem,
    /// A socket address (`host:port`) for the TCP backend.
    Socket(std::net::SocketAddr),
}

/// Transport-layer failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No route to the addressed actor (never connected, or closed and
    /// reconnect exhausted its backoff budget).
    Unreachable(Ident),
    /// The deadline passed with nothing to receive.
    Timeout,
    /// The transport was shut down locally.
    Closed,
    /// A frame failed to decode (the connection it arrived on is dropped).
    Wire(WireError),
    /// An OS-level socket error.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(id) => write!(f, "peer {id} unreachable"),
            NetError::Timeout => write!(f, "recv deadline elapsed"),
            NetError::Closed => write!(f, "transport closed"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

/// A reliable, identifier-addressed message channel for one cluster actor.
pub trait Transport {
    /// The identifier of the local actor.
    fn local(&self) -> Ident;

    /// Establishes (or re-establishes) a route to `peer` at `addr`.
    /// In-memory backends resolve by identifier and ignore the address;
    /// socket backends dial, retrying with backoff until the connection
    /// budget is exhausted.
    fn connect(&mut self, peer: Ident, addr: &PeerAddr) -> Result<(), NetError>;

    /// Sends `msg` to `peer`. Reliable and FIFO per destination once
    /// `connect` succeeded (socket backends also accept sends to actors
    /// that dialed *us*, routed over the accepted connection).
    fn send(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError>;

    /// Queues `msg` for `peer` without forcing it onto the wire — a
    /// *corked* send. Ordering relative to other sends to the same peer is
    /// preserved, but delivery may be deferred until [`Transport::flush`]
    /// or [`Transport::flush_all`]; back-to-back corked frames coalesce
    /// into one write on socket backends. Callers MUST flush before
    /// blocking on a reply, or the request may never leave the buffer.
    /// Backends without a cork buffer deliver immediately.
    fn send_corked(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError> {
        self.send(to, msg)
    }

    /// Pushes any corked frames for `peer` onto the wire. A no-op for
    /// backends that deliver eagerly.
    fn flush(&mut self, to: Ident) -> Result<(), NetError> {
        let _ = to;
        Ok(())
    }

    /// Pushes all corked frames, for every peer, onto the wire.
    fn flush_all(&mut self) -> Result<(), NetError> {
        Ok(())
    }

    /// Frames this endpoint dropped as undecodable since it was created
    /// (corrupt header or payload). Nonzero means a connected peer is
    /// mis-speaking the protocol — observable via [`NetMsg::Stats`]
    /// instead of just a hung connection.
    fn wire_errors(&self) -> u64 {
        0
    }

    /// Receives the next `(sender, message)` pair, waiting at most
    /// `deadline` (`None` = do not block). Returns [`NetError::Timeout`]
    /// when nothing arrived in time.
    fn recv(&mut self, deadline: Option<Duration>) -> Result<(Ident, NetMsg), NetError>;

    /// Non-blocking receive: `Ok(None)` when no message is pending.
    fn try_recv(&mut self) -> Result<Option<(Ident, NetMsg)>, NetError> {
        match self.recv(None) {
            Ok(pair) => Ok(Some(pair)),
            Err(NetError::Timeout) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

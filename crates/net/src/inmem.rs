//! The deterministic loopback backend: a process-local message fabric
//! with per-actor FIFO queues.
//!
//! Semantics match the simulator exactly: a send enqueues synchronously,
//! a receive pops the oldest pending message, and nothing else happens in
//! between — so a driver that pumps actors in a fixed order replays the
//! direct-call engine bit for bit (pinned by `tests/transport_parity.rs`).
//! The fabric is internally locked, so endpoints may also be moved onto
//! threads; determinism then becomes the driver's problem, exactly as
//! with real sockets.
//!
//! Corked sends ([`Transport::send_corked`]) keep their default meaning
//! here — enqueue immediately, flush is a no-op. There is no syscall to
//! coalesce on a loopback fabric, and eager delivery preserves the
//! simulator's synchronous-send semantics, so lock-step replays see the
//! exact same interleavings whether callers cork or not.

use crate::lock::{lock_or_poison, lock_or_recover};
use crate::message::NetMsg;
use crate::transport::{NetError, PeerAddr, Transport};
use rechord_id::Ident;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Default)]
struct FabricInner {
    queues: BTreeMap<Ident, VecDeque<(Ident, NetMsg)>>,
}

#[derive(Default)]
struct Shared {
    inner: Mutex<FabricInner>,
    /// Woken on every send and disconnect, so threaded receivers block
    /// instead of polling (lock-step drivers never wait here).
    wake: Condvar,
}

/// A process-local message fabric. Clone handles freely; all clones share
/// the same queues.
#[derive(Clone, Default)]
pub struct InMemFabric {
    shared: Arc<Shared>,
}

impl InMemFabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the actor `me` and returns its transport endpoint. An
    /// actor must be registered before anyone can send to it; repeated
    /// registration keeps the existing queue.
    pub fn endpoint(&self, me: Ident) -> InMemTransport {
        lock_or_recover(&self.shared.inner).queues.entry(me).or_default();
        InMemTransport { me, shared: Arc::clone(&self.shared) }
    }

    /// Removes the actor and its pending messages (a crash or shutdown).
    pub fn disconnect(&self, me: Ident) {
        lock_or_recover(&self.shared.inner).queues.remove(&me);
        self.shared.wake.notify_all();
    }

    /// Total messages currently queued across all actors.
    pub fn pending(&self) -> usize {
        lock_or_recover(&self.shared.inner).queues.values().map(|q| q.len()).sum()
    }
}

/// One actor's endpoint on an [`InMemFabric`].
pub struct InMemTransport {
    me: Ident,
    shared: Arc<Shared>,
}

impl Transport for InMemTransport {
    fn local(&self) -> Ident {
        self.me
    }

    fn connect(&mut self, peer: Ident, _addr: &PeerAddr) -> Result<(), NetError> {
        // The fabric resolves by identifier; "connecting" just checks the
        // peer exists, mirroring a successful dial.
        let inner = lock_or_poison(&self.shared.inner, "fabric")?;
        if inner.queues.contains_key(&peer) {
            Ok(())
        } else {
            Err(NetError::Unreachable(peer))
        }
    }

    fn send(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError> {
        let mut inner = lock_or_poison(&self.shared.inner, "fabric")?;
        match inner.queues.get_mut(&to) {
            Some(q) => {
                q.push_back((self.me, msg));
                drop(inner);
                self.shared.wake.notify_all();
                Ok(())
            }
            None => Err(NetError::Unreachable(to)),
        }
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<(Ident, NetMsg), NetError> {
        let until = deadline.map(|d| Instant::now() + d);
        let mut inner = lock_or_poison(&self.shared.inner, "fabric")?;
        loop {
            match inner.queues.get_mut(&self.me) {
                Some(q) => {
                    if let Some(pair) = q.pop_front() {
                        return Ok(pair);
                    }
                }
                None => return Err(NetError::Closed),
            }
            // Queue empty: block on the condvar until a send wakes us or
            // the deadline passes (lock-step drivers pass None and bail).
            let Some(until) = until else { return Err(NetError::Timeout) };
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Timeout);
            }
            let (guard, _timed_out) = self.shared.wake.wait_timeout(inner, left).map_err(|_| {
                NetError::Io(
                    "fabric mutex poisoned: a peer thread panicked while holding it".into(),
                )
            })?;
            inner = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u64) -> Ident {
        Ident::from_raw(x)
    }

    #[test]
    fn fifo_per_pair_and_by_arrival() {
        let fabric = InMemFabric::new();
        let mut a = fabric.endpoint(id(1));
        let mut b = fabric.endpoint(id(2));
        a.send(id(2), NetMsg::Ping).unwrap();
        a.send(id(2), NetMsg::Shutdown).unwrap();
        assert_eq!(b.try_recv().unwrap(), Some((id(1), NetMsg::Ping)));
        assert_eq!(b.try_recv().unwrap(), Some((id(1), NetMsg::Shutdown)));
        assert_eq!(b.try_recv().unwrap(), None);
    }

    #[test]
    fn unknown_target_is_unreachable() {
        let fabric = InMemFabric::new();
        let mut a = fabric.endpoint(id(1));
        assert_eq!(a.send(id(9), NetMsg::Ping), Err(NetError::Unreachable(id(9))));
        assert_eq!(a.connect(id(9), &PeerAddr::Mem), Err(NetError::Unreachable(id(9))));
        let _b = fabric.endpoint(id(9));
        assert_eq!(a.connect(id(9), &PeerAddr::Mem), Ok(()));
    }

    #[test]
    fn disconnect_closes_the_endpoint() {
        let fabric = InMemFabric::new();
        let mut a = fabric.endpoint(id(1));
        fabric.disconnect(id(1));
        assert_eq!(a.recv(None), Err(NetError::Closed));
    }

    #[test]
    fn deadline_times_out() {
        let fabric = InMemFabric::new();
        let mut a = fabric.endpoint(id(1));
        let t = Instant::now();
        assert_eq!(a.recv(Some(Duration::from_millis(5))), Err(NetError::Timeout));
        assert!(t.elapsed() >= Duration::from_millis(5));
    }
}

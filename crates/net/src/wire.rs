//! The hand-rolled wire format: a versioned, length-prefixed frame codec
//! over fixed-width big-endian integers. No serde — the whole protocol is
//! a few dozen fixed layouts, and a reproduction should own its bytes.
//!
//! Frame layout:
//!
//! ```text
//! +------+------+---------+----------+===================+
//! | 0x52 | 0x43 | version | reserved | u32 BE payload len | payload …
//! +------+------+---------+----------+===================+
//! ```
//!
//! The magic is `b"RC"`; `version` is [`WIRE_VERSION`]; `reserved` must be
//! zero. The length prefix counts payload bytes only and is capped at
//! [`MAX_FRAME_LEN`], so a corrupt or hostile prefix cannot drive an
//! allocation. Every decode error is a typed [`WireError`] — malformed
//! input must never panic (pinned by the crate's property tests).

use std::fmt;

/// First magic byte (`b'R'`).
pub const MAGIC0: u8 = 0x52;
/// Second magic byte (`b'C'`).
pub const MAGIC1: u8 = 0x43;
/// Current wire protocol version. Bumps are breaking: a node refuses
/// frames from any other version rather than guessing at layouts.
pub const WIRE_VERSION: u8 = 1;
/// Frame header length: magic (2) + version (1) + reserved (1) + len (4).
pub const HEADER_LEN: usize = 8;
/// Hard cap on a frame payload. A full `StateSync` for a large overlay is
/// well under a mebibyte; 16 MiB leaves room without letting a corrupt
/// length prefix allocate the moon.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong decoding bytes into a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the layout said it would.
    Truncated,
    /// The frame does not start with the `b"RC"` magic.
    BadMagic([u8; 2]),
    /// The frame carries an unknown protocol version.
    BadVersion(u8),
    /// The reserved header byte was not zero.
    BadReserved(u8),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Unknown message tag byte.
    BadTag(u8),
    /// Unknown edge-class byte inside a message body.
    BadKind(u8),
    /// A declared collection length exceeds what the payload could hold.
    BadLength(u32),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes were left over after the message body was fully decoded.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadReserved(b) => write!(f, "reserved header byte {b:#04x} is not zero"),
            WireError::Oversized(n) => write!(f, "length prefix {n} exceeds {MAX_FRAME_LEN}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadKind(k) => write!(f, "unknown edge kind {k:#04x}"),
            WireError::BadLength(n) => write!(f, "declared length {n} exceeds payload"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message body"),
        }
    }
}

impl std::error::Error for WireError {}

/// A byte cursor over one frame payload. All reads are bounds-checked and
/// return [`WireError::Truncated`] instead of slicing past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors with [`WireError::Trailing`] unless everything was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(self.remaining()))
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos.checked_add(4).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u32::from_be_bytes(bytes.try_into().expect("4-byte slice")))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_be_bytes(bytes.try_into().expect("8-byte slice")))
    }

    /// Reads a collection length and sanity-checks it against the bytes
    /// actually remaining: each element occupies at least `min_elem_bytes`,
    /// so a length that could not possibly fit is rejected up front instead
    /// of looping until [`WireError::Truncated`] (defense against hostile
    /// lengths driving large pre-allocations).
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()?;
        let need =
            (n as usize).checked_mul(min_elem_bytes.max(1)).ok_or(WireError::BadLength(n))?;
        if need > self.remaining() {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

/// Appends a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_be_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Wraps an encoded payload in a frame header.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME_LEN as usize, "payload exceeds MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(WIRE_VERSION);
    out.push(0);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

/// Appends a frame header with a placeholder length to `out` and returns a
/// mark for [`end_frame`]. Together they let a payload be encoded straight
/// into `out` — no intermediate payload allocation — with the length
/// prefix backfilled once the payload size is known.
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    let mark = out.len();
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(WIRE_VERSION);
    out.push(0);
    put_u32(out, 0); // backfilled by end_frame
    mark
}

/// Closes a frame opened by [`begin_frame`] at `mark`: everything appended
/// since is the payload, whose length is backfilled into the header.
pub fn end_frame(out: &mut [u8], mark: usize) {
    let payload_len = out.len() - mark - HEADER_LEN;
    assert!(payload_len <= MAX_FRAME_LEN as usize, "payload exceeds MAX_FRAME_LEN");
    out[mark + 4..mark + HEADER_LEN].copy_from_slice(&(payload_len as u32).to_be_bytes());
}

/// Validates a frame header, returning the declared payload length.
/// `header` must be exactly [`HEADER_LEN`] bytes.
pub fn check_header(header: &[u8; HEADER_LEN]) -> Result<u32, WireError> {
    if header[0] != MAGIC0 || header[1] != MAGIC1 {
        return Err(WireError::BadMagic([header[0], header[1]]));
    }
    if header[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[2]));
    }
    if header[3] != 0 {
        return Err(WireError::BadReserved(header[3]));
    }
    let len = u32::from_be_bytes(header[4..8].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    Ok(len)
}

/// Splits one frame off the front of `buf`: returns the payload slice and
/// the total bytes consumed, or `None` when more input is needed (a frame
/// is still arriving). Malformed headers are typed errors.
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("header slice");
    let len = check_header(&header)? as usize;
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((&buf[HEADER_LEN..total], total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let f = frame(b"hello");
        let (payload, used) = split_frame(&f).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(used, f.len());
    }

    #[test]
    fn in_place_framing_matches_frame_and_appends() {
        // A frame built with begin/end into a dirty buffer is the same
        // bytes `frame` produces, appended after the existing contents.
        let mut buf = b"already-there".to_vec();
        let mark = begin_frame(&mut buf);
        buf.extend_from_slice(b"hello");
        end_frame(&mut buf, mark);
        assert_eq!(&buf[..mark], b"already-there");
        assert_eq!(&buf[mark..], &frame(b"hello")[..]);
    }

    #[test]
    fn short_input_wants_more() {
        let f = frame(b"payload");
        for cut in 0..f.len() {
            assert_eq!(split_frame(&f[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_version_reserved_rejected() {
        let mut f = frame(b"x");
        f[0] = 0x00;
        assert!(matches!(split_frame(&f), Err(WireError::BadMagic(_))));
        let mut f = frame(b"x");
        f[2] = 99;
        assert_eq!(split_frame(&f), Err(WireError::BadVersion(99)));
        let mut f = frame(b"x");
        f[3] = 1;
        assert_eq!(split_frame(&f), Err(WireError::BadReserved(1)));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocating() {
        let mut f = frame(b"x");
        f[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(split_frame(&f), Err(WireError::Oversized(u32::MAX)));
    }

    #[test]
    fn reader_bounds_are_checked() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        assert_eq!(r.remaining(), 2);
        let mut r = Reader::new(&[0, 0, 0, 9, b'a']);
        assert_eq!(r.len(1), Err(WireError::BadLength(9)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = Reader::new(&[7, 8]);
        r.u8().unwrap();
        assert_eq!(r.finish(), Err(WireError::Trailing(1)));
    }
}

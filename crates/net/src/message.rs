//! The typed message set of the cluster protocol — protocol plane
//! (state/message exchange for synchronous rounds), repair plane
//! (successor-list gossip, replica pushes), data plane (get/put/lookup
//! RPCs with recursive forwarding), and control plane (ping, shutdown,
//! stats) — plus its byte codec over the [`crate::wire`] frame format.
//!
//! Every variant encodes to `tag byte + fixed-width big-endian fields`;
//! collections carry a `u32` length prefix that is sanity-checked against
//! the remaining payload before anything is allocated. Decode of any byte
//! string either yields a message that re-encodes to the same bytes or a
//! typed [`WireError`] — never a panic (pinned by the property tests in
//! `src/proptests.rs`).

use crate::wire::{put_string, put_u32, put_u64, Reader, WireError};
use rechord_core::msg::Msg;
use rechord_core::state::{PeerState, VirtualState};
use rechord_graph::{EdgeKind, NodeRef};
use rechord_id::Ident;
use std::collections::BTreeMap;

/// Encoded size of a [`NodeRef`]: owner (8) + level (1).
const NODEREF_LEN: usize = 9;
/// Encoded size of a protocol [`Msg`]: two refs + the edge-class byte.
const MSG_LEN: usize = 2 * NODEREF_LEN + 1;

/// The DHT operation a forwarded request performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RpcOp {
    /// Read the value under the key.
    Get,
    /// Write a fresh version under the key.
    Put,
    /// Resolve the responsible peer only (no store access).
    Lookup,
}

impl RpcOp {
    fn to_byte(self) -> u8 {
        match self {
            RpcOp::Get => 0,
            RpcOp::Put => 1,
            RpcOp::Lookup => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(RpcOp::Get),
            1 => Ok(RpcOp::Put),
            2 => Ok(RpcOp::Lookup),
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// One in-flight RPC being routed hop by hop toward the responsible peer.
///
/// Carried whole in [`NetMsg::Forward`] so any peer can resume the route:
/// the cursor is the monotone ring position greedy routing has reached,
/// `hops` counts peer-to-peer transfers, and `steps` counts route-step
/// evaluations against the shared budget (the same 2·64 cap
/// [`rechord_routing::route`] uses, so a distributed route can never loop
/// longer than the direct-call one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForwardedRpc {
    /// Client-assigned request id; replies correlate on it.
    pub rpc: u64,
    /// Peer to send the final [`NetMsg::Reply`] to.
    pub client: Ident,
    /// The operation to perform at the responsible peer.
    pub op: RpcOp,
    /// Application key.
    pub key: u64,
    /// Value for puts (empty for gets/lookups).
    pub value: String,
    /// Client-assigned version for puts (monotone write counter).
    pub version: u64,
    /// Greedy-routing cursor: ring position reached so far.
    pub cursor: Ident,
    /// Peer-to-peer hops taken so far.
    pub hops: u32,
    /// Route-step evaluations consumed so far (shared budget).
    pub steps: u32,
}

/// A message between cluster actors (peers and clients).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetMsg {
    /// Connection handshake: identifies the dialing actor. First message
    /// on every TCP connection; the accepting side routes replies to
    /// `from` over it.
    Hello {
        /// The dialer's identifier.
        from: Ident,
    },
    /// Full protocol state of the sender at the start of `round` — the
    /// bulk-synchronous broadcast every peer uses to reconstruct the
    /// engine's global round snapshot.
    StateSync {
        /// The 1-based round this state is an input to.
        round: u64,
        /// The sender's complete per-peer state.
        state: Box<PeerState>,
    },
    /// All delayed-assignment messages the sender's `step` addressed to
    /// the receiver in `round`. Sent to every peer each executed round —
    /// an empty batch is the round barrier.
    RoundMsgs {
        /// The 1-based round these messages were generated in.
        round: u64,
        /// The messages, in sender-local order (receivers sort).
        msgs: Vec<Msg>,
    },
    /// Repair-plane gossip: the sender's successor list (its view of the
    /// next peers clockwise), exchanged after stabilization. Receivers
    /// cross-check it against the shared roster before serving traffic.
    GossipSuccessors {
        /// The sender's successors, nearest first.
        successors: Vec<Ident>,
    },
    /// Liveness/readiness probe.
    Ping,
    /// Probe answer: `serving` is true once the peer has stabilized and
    /// verified gossip, i.e. will answer data-plane RPCs.
    Pong {
        /// Ready to serve get/put/lookup traffic?
        serving: bool,
    },
    /// Client-issued read.
    GetReq {
        /// Client-assigned request id.
        rpc: u64,
        /// Application key.
        key: u64,
    },
    /// Client-issued write.
    PutReq {
        /// Client-assigned request id.
        rpc: u64,
        /// Application key.
        key: u64,
        /// The value to store.
        value: String,
        /// Client-assigned monotone version (last write wins).
        version: u64,
    },
    /// Client-issued responsible-peer resolution.
    LookupReq {
        /// Client-assigned request id.
        rpc: u64,
        /// Application key.
        key: u64,
    },
    /// An RPC in flight between peers (recursive routing).
    Forward(Box<ForwardedRpc>),
    /// Terminal answer for an RPC, sent straight to the client.
    Reply {
        /// Echo of the request id.
        rpc: u64,
        /// Did routing reach the responsible peer?
        ok: bool,
        /// Total overlay hops the request took (probe misses included,
        /// mirroring [`rechord_routing::KvStore`] accounting).
        hops: u32,
        /// The peer that answered (or would store the key).
        responsible: Ident,
        /// The value, for gets that hit.
        value: Option<String>,
    },
    /// Fire-and-forget replica copy pushed from the responsible peer to a
    /// successor after a put.
    ReplicaPut {
        /// Ring position of the key.
        pos: Ident,
        /// Application key.
        key: u64,
        /// Version of the copy (last write wins).
        version: u64,
        /// The value.
        value: String,
    },
    /// Orderly termination request.
    Shutdown,
    /// Request for end-of-run counters.
    StatsReq,
    /// End-of-run counters, for cross-checking against the direct-call
    /// engine's [`rechord_sim::FixpointReport`].
    Stats {
        /// Protocol rounds this peer executed.
        rounds: u64,
        /// Did the peer observe the global fixpoint?
        converged: bool,
        /// Protocol messages delivered to this peer.
        delivered: u64,
        /// Messages this peer addressed to unknown targets (dropped).
        dropped: u64,
        /// Data-plane RPCs this peer answered (as responsible peer).
        served: u64,
        /// Frames the transport dropped as undecodable (corrupt header or
        /// payload) — a mis-speaking peer shows up here instead of as a
        /// silent hang.
        wire_errors: u64,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_STATE_SYNC: u8 = 0x02;
const TAG_ROUND_MSGS: u8 = 0x03;
const TAG_GOSSIP: u8 = 0x04;
const TAG_PING: u8 = 0x05;
const TAG_PONG: u8 = 0x06;
const TAG_GET: u8 = 0x07;
const TAG_PUT: u8 = 0x08;
const TAG_LOOKUP: u8 = 0x09;
const TAG_FORWARD: u8 = 0x0a;
const TAG_REPLY: u8 = 0x0b;
const TAG_REPLICA_PUT: u8 = 0x0c;
const TAG_SHUTDOWN: u8 = 0x0d;
const TAG_STATS_REQ: u8 = 0x0e;
const TAG_STATS: u8 = 0x0f;

fn put_node_ref(out: &mut Vec<u8>, r: NodeRef) {
    put_u64(out, r.owner.raw());
    out.push(r.level);
}

fn read_node_ref(r: &mut Reader<'_>) -> Result<NodeRef, WireError> {
    let owner = Ident::from_raw(r.u64()?);
    let level = r.u8()?;
    Ok(NodeRef { owner, level })
}

fn put_opt_node_ref(out: &mut Vec<u8>, r: Option<NodeRef>) {
    match r {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            put_node_ref(out, r);
        }
    }
}

fn read_opt_node_ref(r: &mut Reader<'_>) -> Result<Option<NodeRef>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_node_ref(r)?)),
        other => Err(WireError::BadTag(other)),
    }
}

fn put_ref_set(out: &mut Vec<u8>, set: &std::collections::BTreeSet<NodeRef>) {
    put_u32(out, set.len() as u32);
    for &r in set {
        put_node_ref(out, r);
    }
}

fn read_ref_set(r: &mut Reader<'_>) -> Result<std::collections::BTreeSet<NodeRef>, WireError> {
    let n = r.len(NODEREF_LEN)?;
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..n {
        set.insert(read_node_ref(r)?);
    }
    Ok(set)
}

fn put_edge_kind(out: &mut Vec<u8>, kind: EdgeKind) {
    out.push(match kind {
        EdgeKind::Unmarked => 0,
        EdgeKind::Ring => 1,
        EdgeKind::Connection => 2,
    });
}

fn read_edge_kind(r: &mut Reader<'_>) -> Result<EdgeKind, WireError> {
    match r.u8()? {
        0 => Ok(EdgeKind::Unmarked),
        1 => Ok(EdgeKind::Ring),
        2 => Ok(EdgeKind::Connection),
        other => Err(WireError::BadKind(other)),
    }
}

/// Appends the encoding of one protocol [`Msg`].
fn put_msg(out: &mut Vec<u8>, m: &Msg) {
    put_node_ref(out, m.at);
    put_edge_kind(out, m.kind);
    put_node_ref(out, m.edge);
}

fn read_msg(r: &mut Reader<'_>) -> Result<Msg, WireError> {
    let at = read_node_ref(r)?;
    let kind = read_edge_kind(r)?;
    let edge = read_node_ref(r)?;
    Ok(Msg { at, kind, edge })
}

/// Appends the encoding of a full [`PeerState`].
fn put_peer_state(out: &mut Vec<u8>, st: &PeerState) {
    put_u32(out, st.levels.len() as u32);
    for (&lvl, vs) in &st.levels {
        out.push(lvl);
        put_ref_set(out, &vs.nu);
        put_ref_set(out, &vs.nr);
        put_ref_set(out, &vs.nc);
        put_opt_node_ref(out, vs.rl);
        put_opt_node_ref(out, vs.rr);
    }
}

fn read_peer_state(r: &mut Reader<'_>) -> Result<PeerState, WireError> {
    // Each level entry is at least: level byte + three empty set prefixes
    // + two absent-option bytes.
    let n = r.len(1 + 3 * 4 + 2)?;
    let mut levels = BTreeMap::new();
    for _ in 0..n {
        let lvl = r.u8()?;
        let nu = read_ref_set(r)?;
        let nr = read_ref_set(r)?;
        let nc = read_ref_set(r)?;
        let rl = read_opt_node_ref(r)?;
        let rr = read_opt_node_ref(r)?;
        levels.insert(lvl, VirtualState { nu, nr, nc, rl, rr });
    }
    Ok(PeerState { levels })
}

fn put_opt_string(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_string(out, s);
        }
    }
}

fn read_opt_string(r: &mut Reader<'_>) -> Result<Option<String>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.string()?)),
        other => Err(WireError::BadTag(other)),
    }
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::BadTag(other)),
    }
}

impl NetMsg {
    /// Encodes the message body (tag byte + fields, no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Appends the message body to `out` — the allocation-free wire path:
    /// callers reuse one grow-only scratch buffer per connection instead
    /// of allocating a fresh `Vec` per send. Bytes already in `out` are
    /// left untouched.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            NetMsg::Hello { from } => {
                out.push(TAG_HELLO);
                put_u64(out, from.raw());
            }
            NetMsg::StateSync { round, state } => {
                out.push(TAG_STATE_SYNC);
                put_u64(out, *round);
                put_peer_state(out, state);
            }
            NetMsg::RoundMsgs { round, msgs } => {
                out.push(TAG_ROUND_MSGS);
                put_u64(out, *round);
                put_u32(out, msgs.len() as u32);
                for m in msgs {
                    put_msg(out, m);
                }
            }
            NetMsg::GossipSuccessors { successors } => {
                out.push(TAG_GOSSIP);
                put_u32(out, successors.len() as u32);
                for s in successors {
                    put_u64(out, s.raw());
                }
            }
            NetMsg::Ping => out.push(TAG_PING),
            NetMsg::Pong { serving } => {
                out.push(TAG_PONG);
                put_bool(out, *serving);
            }
            NetMsg::GetReq { rpc, key } => {
                out.push(TAG_GET);
                put_u64(out, *rpc);
                put_u64(out, *key);
            }
            NetMsg::PutReq { rpc, key, value, version } => {
                out.push(TAG_PUT);
                put_u64(out, *rpc);
                put_u64(out, *key);
                put_string(out, value);
                put_u64(out, *version);
            }
            NetMsg::LookupReq { rpc, key } => {
                out.push(TAG_LOOKUP);
                put_u64(out, *rpc);
                put_u64(out, *key);
            }
            NetMsg::Forward(f) => {
                out.push(TAG_FORWARD);
                put_u64(out, f.rpc);
                put_u64(out, f.client.raw());
                out.push(f.op.to_byte());
                put_u64(out, f.key);
                put_string(out, &f.value);
                put_u64(out, f.version);
                put_u64(out, f.cursor.raw());
                put_u32(out, f.hops);
                put_u32(out, f.steps);
            }
            NetMsg::Reply { rpc, ok, hops, responsible, value } => {
                out.push(TAG_REPLY);
                put_u64(out, *rpc);
                put_bool(out, *ok);
                put_u32(out, *hops);
                put_u64(out, responsible.raw());
                put_opt_string(out, value);
            }
            NetMsg::ReplicaPut { pos, key, version, value } => {
                out.push(TAG_REPLICA_PUT);
                put_u64(out, pos.raw());
                put_u64(out, *key);
                put_u64(out, *version);
                put_string(out, value);
            }
            NetMsg::Shutdown => out.push(TAG_SHUTDOWN),
            NetMsg::StatsReq => out.push(TAG_STATS_REQ),
            NetMsg::Stats { rounds, converged, delivered, dropped, served, wire_errors } => {
                out.push(TAG_STATS);
                put_u64(out, *rounds);
                put_bool(out, *converged);
                put_u64(out, *delivered);
                put_u64(out, *dropped);
                put_u64(out, *served);
                put_u64(out, *wire_errors);
            }
        }
    }

    /// Decodes a message body (as produced by [`NetMsg::encode`]). The
    /// whole input must be consumed; trailing bytes are an error.
    pub fn decode(buf: &[u8]) -> Result<NetMsg, WireError> {
        let mut r = Reader::new(buf);
        let msg = match r.u8()? {
            TAG_HELLO => NetMsg::Hello { from: Ident::from_raw(r.u64()?) },
            TAG_STATE_SYNC => {
                let round = r.u64()?;
                let state = Box::new(read_peer_state(&mut r)?);
                NetMsg::StateSync { round, state }
            }
            TAG_ROUND_MSGS => {
                let round = r.u64()?;
                let n = r.len(MSG_LEN)?;
                let mut msgs = Vec::with_capacity(n);
                for _ in 0..n {
                    msgs.push(read_msg(&mut r)?);
                }
                NetMsg::RoundMsgs { round, msgs }
            }
            TAG_GOSSIP => {
                let n = r.len(8)?;
                let mut successors = Vec::with_capacity(n);
                for _ in 0..n {
                    successors.push(Ident::from_raw(r.u64()?));
                }
                NetMsg::GossipSuccessors { successors }
            }
            TAG_PING => NetMsg::Ping,
            TAG_PONG => NetMsg::Pong { serving: read_bool(&mut r)? },
            TAG_GET => NetMsg::GetReq { rpc: r.u64()?, key: r.u64()? },
            TAG_PUT => NetMsg::PutReq {
                rpc: r.u64()?,
                key: r.u64()?,
                value: r.string()?,
                version: r.u64()?,
            },
            TAG_LOOKUP => NetMsg::LookupReq { rpc: r.u64()?, key: r.u64()? },
            TAG_FORWARD => NetMsg::Forward(Box::new(ForwardedRpc {
                rpc: r.u64()?,
                client: Ident::from_raw(r.u64()?),
                op: RpcOp::from_byte(r.u8()?)?,
                key: r.u64()?,
                value: r.string()?,
                version: r.u64()?,
                cursor: Ident::from_raw(r.u64()?),
                hops: r.u32()?,
                steps: r.u32()?,
            })),
            TAG_REPLY => NetMsg::Reply {
                rpc: r.u64()?,
                ok: read_bool(&mut r)?,
                hops: r.u32()?,
                responsible: Ident::from_raw(r.u64()?),
                value: read_opt_string(&mut r)?,
            },
            TAG_REPLICA_PUT => NetMsg::ReplicaPut {
                pos: Ident::from_raw(r.u64()?),
                key: r.u64()?,
                version: r.u64()?,
                value: r.string()?,
            },
            TAG_SHUTDOWN => NetMsg::Shutdown,
            TAG_STATS_REQ => NetMsg::StatsReq,
            TAG_STATS => NetMsg::Stats {
                rounds: r.u64()?,
                converged: read_bool(&mut r)?,
                delivered: r.u64()?,
                dropped: r.u64()?,
                served: r.u64()?,
                wire_errors: r.u64()?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Encodes the message into a complete wire frame (header + body).
    /// Thin wrapper over [`NetMsg::frame_into`], kept for compatibility
    /// and one-shot sends (handshakes, tests).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.frame_into(&mut out);
        out
    }

    /// Appends a complete wire frame (header + body) to `out`, encoding
    /// the body in place and backfilling the length prefix — zero
    /// intermediate allocations. Corked senders call this repeatedly on
    /// one buffer so back-to-back frames coalesce into a single write.
    pub fn frame_into(&self, out: &mut Vec<u8>) {
        let mark = crate::wire::begin_frame(out);
        self.encode_into(out);
        crate::wire::end_frame(out, mark);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> PeerState {
        let mut st = PeerState::new();
        let a = NodeRef::real(Ident::from_raw(0x1111));
        let b = NodeRef::virtual_node(Ident::from_raw(0x2222), 3);
        st.levels.get_mut(&0).unwrap().nu.insert(a);
        st.levels.get_mut(&0).unwrap().nr.insert(b);
        st.levels.get_mut(&0).unwrap().rr = Some(a);
        st.levels.insert(
            5,
            VirtualState {
                nu: [a, b].into_iter().collect(),
                nc: [b].into_iter().collect(),
                rl: Some(b),
                ..Default::default()
            },
        );
        st
    }

    #[test]
    fn every_variant_roundtrips() {
        let id = Ident::from_raw(0xfeed_beef);
        let msgs = vec![
            NetMsg::Hello { from: id },
            NetMsg::StateSync { round: 17, state: Box::new(sample_state()) },
            NetMsg::RoundMsgs {
                round: 3,
                msgs: vec![Msg {
                    at: NodeRef::real(id),
                    kind: EdgeKind::Ring,
                    edge: NodeRef::virtual_node(Ident::from_raw(9), 2),
                }],
            },
            NetMsg::RoundMsgs { round: 4, msgs: vec![] },
            NetMsg::GossipSuccessors { successors: vec![id, Ident::from_raw(1)] },
            NetMsg::Ping,
            NetMsg::Pong { serving: true },
            NetMsg::GetReq { rpc: 1, key: 42 },
            NetMsg::PutReq { rpc: 2, key: 42, value: "näf".into(), version: 7 },
            NetMsg::LookupReq { rpc: 3, key: 0 },
            NetMsg::Forward(Box::new(ForwardedRpc {
                rpc: 4,
                client: id,
                op: RpcOp::Put,
                key: 9,
                value: "v".into(),
                version: 2,
                cursor: Ident::from_raw(55),
                hops: 3,
                steps: 11,
            })),
            NetMsg::Reply { rpc: 4, ok: true, hops: 3, responsible: id, value: Some("v".into()) },
            NetMsg::Reply { rpc: 5, ok: false, hops: 0, responsible: id, value: None },
            NetMsg::ReplicaPut { pos: id, key: 9, version: 2, value: "v".into() },
            NetMsg::Shutdown,
            NetMsg::StatsReq,
            NetMsg::Stats {
                rounds: 9,
                converged: true,
                delivered: 100,
                dropped: 2,
                served: 50,
                wire_errors: 1,
            },
        ];
        for m in msgs {
            let bytes = m.encode();
            assert_eq!(NetMsg::decode(&bytes), Ok(m.clone()), "body roundtrip");
            let frame = m.to_frame();
            let (payload, used) = crate::wire::split_frame(&frame).unwrap().unwrap();
            assert_eq!(used, frame.len());
            // The in-place path appends the identical bytes to a dirty
            // buffer without disturbing what is already there.
            let mut corked = vec![0xAA, 0xBB];
            m.frame_into(&mut corked);
            assert_eq!(&corked[..2], &[0xAA, 0xBB]);
            assert_eq!(&corked[2..], &frame[..], "frame_into ≡ to_frame");
            assert_eq!(NetMsg::decode(payload), Ok(m), "frame roundtrip");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(NetMsg::decode(&[0xff]), Err(WireError::BadTag(0xff)));
        assert_eq!(NetMsg::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = NetMsg::Ping.encode();
        bytes.push(0);
        assert_eq!(NetMsg::decode(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn bad_edge_kind_rejected() {
        let m = NetMsg::RoundMsgs {
            round: 1,
            msgs: vec![Msg {
                at: NodeRef::real(Ident::from_raw(1)),
                kind: EdgeKind::Unmarked,
                edge: NodeRef::real(Ident::from_raw(2)),
            }],
        };
        let mut bytes = m.encode();
        // The kind byte sits after tag(1) + round(8) + count(4) + at(9).
        bytes[1 + 8 + 4 + 9] = 7;
        assert_eq!(NetMsg::decode(&bytes), Err(WireError::BadKind(7)));
    }
}

//! Poison-safe mutex acquisition for the transport layer.
//!
//! `Mutex::lock` fails only when another thread panicked while holding
//! the guard. Panicking *again* at every acquisition site (the
//! `.expect("… lock")` idiom this module replaces) turns one crashed
//! reader thread into a cascade that takes the whole node down. The
//! transport's policy is graded instead:
//!
//! * fallible paths ([`lock_or_poison`]) surface the poison as a
//!   [`NetError::Io`], so the RPC fails like any other I/O error and the
//!   caller's retry/failover logic applies;
//! * infallible accessors ([`lock_or_recover`]) take the data anyway —
//!   the guarded structures here (queue maps, write buffers) are valid
//!   after any partial mutation, at worst losing the crashed thread's
//!   in-flight frame, which the wire protocol already tolerates.

use crate::transport::NetError;
use std::sync::{Mutex, MutexGuard};

/// Locks `m`, mapping a poisoned mutex to [`NetError::Io`] naming `what`
/// (e.g. `"write map"`). Use on every fallible transport path.
pub fn lock_or_poison<'a, T>(m: &'a Mutex<T>, what: &str) -> Result<MutexGuard<'a, T>, NetError> {
    m.lock().map_err(|_| {
        NetError::Io(format!("{what} mutex poisoned: a peer thread panicked while holding it"))
    })
}

/// Locks `m`, recovering the guarded data even if the mutex is poisoned.
/// Use only where the guarded structure is valid after any partial
/// mutation and the caller's signature has no error channel.
pub fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn poison(m: &Mutex<Vec<u8>>) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
    }

    #[test]
    fn poison_maps_to_io_error() {
        let m = Mutex::new(vec![1u8]);
        assert!(lock_or_poison(&m, "test").is_ok());
        poison(&m);
        match lock_or_poison(&m, "write map") {
            Err(NetError::Io(msg)) => assert!(msg.contains("write map")),
            other => panic!("expected Io error, got {other:?}"),
        };
    }

    #[test]
    fn recover_yields_the_data_after_poison() {
        let m = Mutex::new(vec![7u8]);
        poison(&m);
        assert_eq!(*lock_or_recover(&m), vec![7u8]);
    }
}

//! Bulk-synchronous replay of the simulator's round semantics over a
//! message transport.
//!
//! The direct-call [`Engine`](rechord_sim::Engine) computes a round as:
//! snapshot all states, step every node against the snapshot, sort the
//! message union by `(target, message)`, deliver. [`RoundSync`] is the
//! distributed equivalent for ONE node: each cycle it
//!
//! 1. **announces** its current state (a `StateSync` broadcast),
//! 2. **collects** the states of every roster peer, rebuilding the exact
//!    global snapshot the engine would have taken,
//! 3. **steps** the protocol against that snapshot, partitioning the
//!    outbox into one batch per roster peer (a batch is sent even when
//!    empty — it doubles as the round barrier),
//! 4. **exchanges** batches, sorts the received union by message, and
//!    delivers.
//!
//! Sorting the per-receiver union by `Msg` is equivalent to the engine's
//! global `(target, message)` sort restricted to one receiver, and
//! delivery only touches the receiver's own state — so the distributed
//! run is bit-identical to the engine, which `tests/transport_parity.rs`
//! pins on the golden determinism scenarios.
//!
//! **Fixpoint.** The engine stops after the first round that changes no
//! state. A node only learns the round was globally quiet one cycle
//! later, when the collected snapshot equals the previous one; every node
//! compares the same two snapshots, so all of them detect convergence at
//! the same cycle without any extra coordination. The detection cycle
//! costs one `StateSync` exchange but executes no round and counts no
//! messages — matching the engine's message totals exactly.
//!
//! **Pacing.** A peer may run at most one cycle ahead of another: its
//! next `StateSync` can arrive while we still collect the current one
//! (buffered in `future`), but its next message batch cannot, because
//! producing it requires *our* next `StateSync`, which we have not sent
//! yet. One cycle of state buffering is therefore sufficient.

use rechord_id::Ident;
use rechord_sim::{Outbox, RoundView, SyncProtocol};
use std::collections::BTreeMap;
use std::fmt;

/// Local accounting for one executed round (summed across nodes these
/// match the engine's per-round delivered/dropped counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetRoundStats {
    /// 1-based round number, matching `Engine::round_number` after the round.
    pub round: u64,
    /// Messages this node delivered to itself at the round boundary.
    pub delivered: usize,
    /// Messages this node addressed to targets outside the roster (the
    /// engine drops these at delivery; a fixed roster drops them at send).
    pub dropped: usize,
}

/// Protocol-violation errors: a peer sent something the lock-step schedule
/// cannot produce (wrong round tag, unknown sender, duplicate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// A message arrived tagged with a round the schedule cannot reach.
    WrongRound {
        /// Round tag carried by the offending message.
        got: u64,
        /// The cycle this node is currently in.
        expected: u64,
    },
    /// The sender is not part of the agreed roster.
    UnknownSender(Ident),
    /// The same peer contributed twice to one phase of one cycle.
    Duplicate(Ident),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::WrongRound { got, expected } => {
                write!(f, "message for round {got} in cycle {expected}")
            }
            SyncError::UnknownSender(id) => write!(f, "sender {id} not in roster"),
            SyncError::Duplicate(id) => write!(f, "duplicate contribution from {id}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// What `try_step` produced.
pub enum StepOutcome<P: SyncProtocol> {
    /// The snapshot is still incomplete — keep receiving.
    Pending,
    /// The collected snapshot equals the previous one: the prior round was
    /// globally quiet. `rounds` matches `FixpointReport::rounds`.
    Converged {
        /// Executed rounds, counting the final quiet round.
        rounds: u64,
    },
    /// The step ran; send each batch to its peer (empty batches included —
    /// they are the round barrier).
    Batches(Vec<(Ident, Vec<P::Msg>)>),
}

enum Phase {
    /// Waiting for the driver to announce this cycle's state.
    Announce,
    /// Announced; collecting roster states for the snapshot.
    Collect,
    /// Stepped; collecting message batches before delivery.
    Exchange,
}

/// The BSP state machine executing [`SyncProtocol`] rounds for one node.
pub struct RoundSync<P: SyncProtocol> {
    protocol: P,
    me: Ident,
    roster: Vec<Ident>,
    state: P::State,
    executed: u64,
    phase: Phase,
    /// Snapshot used by the previous cycle's step (fixpoint comparand).
    prev_view: Option<Vec<P::State>>,
    /// States collected for the current cycle, aligned with `roster`.
    collecting: BTreeMap<Ident, P::State>,
    /// States that arrived one cycle early.
    future: BTreeMap<Ident, P::State>,
    /// Message batches collected for the current cycle, keyed by sender.
    batches: BTreeMap<Ident, Vec<P::Msg>>,
    converged: Option<u64>,
    dropped_this_round: usize,
    trace: Vec<NetRoundStats>,
}

impl<P: SyncProtocol> RoundSync<P> {
    /// A node `me` with `initial` state, synchronizing with `roster` (which
    /// must contain `me`; it is sorted internally).
    pub fn new(protocol: P, me: Ident, roster: Vec<Ident>, initial: P::State) -> Self {
        let mut roster = roster;
        roster.sort_unstable();
        roster.dedup();
        debug_assert!(roster.binary_search(&me).is_ok(), "roster must contain me");
        RoundSync {
            protocol,
            me,
            roster,
            state: initial,
            executed: 0,
            phase: Phase::Announce,
            prev_view: None,
            collecting: BTreeMap::new(),
            future: BTreeMap::new(),
            batches: BTreeMap::new(),
            converged: None,
            dropped_this_round: 0,
            trace: Vec::new(),
        }
    }

    /// This node's identifier.
    pub fn me(&self) -> Ident {
        self.me
    }

    /// The agreed roster, ascending.
    pub fn roster(&self) -> &[Ident] {
        &self.roster
    }

    /// The node's current protocol state.
    pub fn state(&self) -> &P::State {
        &self.state
    }

    /// Executed rounds so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// `Some(rounds)` once convergence was detected.
    pub fn converged(&self) -> Option<u64> {
        self.converged
    }

    /// Per-round local accounting, one entry per executed round.
    pub fn trace(&self) -> &[NetRoundStats] {
        &self.trace
    }

    /// Sum of delivered plus dropped over all executed rounds (this node's
    /// share of `FixpointReport::total_messages`).
    pub fn local_messages(&self) -> usize {
        self.trace.iter().map(|s| s.delivered + s.dropped).sum()
    }

    /// Opens a cycle: returns `(round_tag, state)` for the `StateSync`
    /// broadcast and records our own contribution to the snapshot. Returns
    /// `None` when a cycle is already open (announce once per cycle).
    pub fn announce(&mut self) -> Option<(u64, P::State)> {
        if !matches!(self.phase, Phase::Announce) || self.converged.is_some() {
            return None;
        }
        self.phase = Phase::Collect;
        self.collecting.insert(self.me, self.state.clone());
        Some((self.executed, self.state.clone()))
    }

    /// Accepts a roster peer's `StateSync`. States tagged one cycle ahead
    /// are buffered; anything else is a schedule violation.
    pub fn on_state(&mut self, from: Ident, round: u64, state: P::State) -> Result<(), SyncError> {
        if self.roster.binary_search(&from).is_err() {
            return Err(SyncError::UnknownSender(from));
        }
        if round == self.executed {
            if self.collecting.insert(from, state).is_some() && from != self.me {
                return Err(SyncError::Duplicate(from));
            }
            Ok(())
        } else if round == self.executed + 1 {
            if self.future.insert(from, state).is_some() {
                return Err(SyncError::Duplicate(from));
            }
            Ok(())
        } else {
            Err(SyncError::WrongRound { got: round, expected: self.executed })
        }
    }

    /// Accepts a roster peer's message batch for the current cycle.
    pub fn on_msgs(&mut self, from: Ident, round: u64, msgs: Vec<P::Msg>) -> Result<(), SyncError> {
        if self.roster.binary_search(&from).is_err() {
            return Err(SyncError::UnknownSender(from));
        }
        if round != self.executed {
            return Err(SyncError::WrongRound { got: round, expected: self.executed });
        }
        if self.batches.insert(from, msgs).is_some() && from != self.me {
            return Err(SyncError::Duplicate(from));
        }
        Ok(())
    }

    /// Once every roster state arrived: check the fixpoint, then step the
    /// protocol against the snapshot and partition the outbox per peer.
    pub fn try_step(&mut self) -> StepOutcome<P> {
        if let Some(rounds) = self.converged {
            return StepOutcome::Converged { rounds };
        }
        if !matches!(self.phase, Phase::Collect) || self.collecting.len() != self.roster.len() {
            return StepOutcome::Pending;
        }

        // The snapshot, aligned with the sorted roster — exactly the
        // engine's (ids, states) columns.
        let view_states: Vec<P::State> =
            self.roster.iter().map(|id| self.collecting[id].clone()).collect();

        // Fixpoint: the previous cycle's snapshot equals this one, so the
        // round just executed changed nothing, globally. Every node runs
        // this same comparison on the same data.
        if self.prev_view.as_ref() == Some(&view_states) {
            self.converged = Some(self.executed);
            return StepOutcome::Converged { rounds: self.executed };
        }

        let view = RoundView::new(&self.roster, &view_states);
        let mut out = Outbox::new();
        self.protocol.step(self.me, &mut self.state, &view, &mut out);

        // Partition the outbox per roster peer, preserving emission order
        // within each batch (the engine's sort makes order irrelevant, but
        // FIFO batches keep the wire deterministic). Targets outside the
        // roster would be dropped at the engine's delivery; with a fixed
        // roster we can count them at the sender.
        let mut batches: BTreeMap<Ident, Vec<P::Msg>> =
            self.roster.iter().map(|&id| (id, Vec::new())).collect();
        self.dropped_this_round = 0;
        for (to, msg) in out.into_inner() {
            match batches.get_mut(&to) {
                Some(batch) => batch.push(msg),
                None => self.dropped_this_round += 1,
            }
        }

        self.prev_view = Some(view_states);
        self.collecting.clear();
        self.phase = Phase::Exchange;

        // Our own batch joins the exchange directly.
        let mine = batches.remove(&self.me).unwrap_or_default();
        self.batches.insert(self.me, mine);
        StepOutcome::Batches(batches.into_iter().collect())
    }

    /// Once every batch arrived: sort the union by message and deliver —
    /// the engine's canonical `(target, message)` order restricted to this
    /// receiver. Closes the cycle and returns its accounting.
    pub fn try_finish(&mut self) -> Option<NetRoundStats> {
        if !matches!(self.phase, Phase::Exchange) || self.batches.len() != self.roster.len() {
            return None;
        }
        let mut inbox: Vec<P::Msg> =
            std::mem::take(&mut self.batches).into_values().flatten().collect();
        inbox.sort_unstable();
        let delivered = inbox.len();
        for msg in &inbox {
            self.protocol.deliver(self.me, &mut self.state, msg);
        }

        self.executed += 1;
        let stats =
            NetRoundStats { round: self.executed, delivered, dropped: self.dropped_this_round };
        self.trace.push(stats);
        self.dropped_this_round = 0;

        // States that arrived one cycle early now belong to the cycle we
        // are entering.
        self.collecting = std::mem::take(&mut self.future);
        self.phase = Phase::Announce;
        Some(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_chord::{ChordProtocol, ChordState};
    use rechord_id::Ident;
    use rechord_sim::Engine;

    fn ids(n: u64) -> Vec<Ident> {
        (0..n).map(|i| Ident::from_raw(i * 97 + 13)).collect()
    }

    /// Drives N RoundSync instances by direct method calls (no transport)
    /// and pins the outcome against the engine — proving the BSP seam is
    /// protocol-generic, not something special-cased for Re-Chord.
    #[test]
    fn lockstep_chord_matches_engine() {
        let peers = ids(12);
        let contacts = |i: usize| {
            // A ring of singleton contacts: each knows its list successor.
            vec![peers[(i + 1) % peers.len()]]
        };

        let mut engine = Engine::new(ChordProtocol, 1);
        for (i, &id) in peers.iter().enumerate() {
            engine.insert_node(id, ChordState::with_contacts(contacts(i)));
        }
        let report = engine.run_until_fixpoint(10_000);
        assert!(report.converged);

        let mut nodes: Vec<RoundSync<ChordProtocol>> = peers
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                RoundSync::new(
                    ChordProtocol,
                    id,
                    peers.clone(),
                    ChordState::with_contacts(contacts(i)),
                )
            })
            .collect();

        let mut rounds = None;
        'outer: loop {
            // Announce phase: everyone broadcasts, everyone receives.
            let announces: Vec<(Ident, u64, ChordState)> = nodes
                .iter_mut()
                .filter_map(|n| n.announce().map(|(r, s)| (n.me(), r, s)))
                .collect();
            for (from, r, st) in &announces {
                for node in nodes.iter_mut() {
                    if node.me() != *from {
                        node.on_state(*from, *r, st.clone()).unwrap();
                    }
                }
            }
            // Step phase: collect outgoing batches, then exchange. Every
            // node sees the same snapshots, so convergence is unanimous
            // within one cycle.
            let mut sends: Vec<(Ident, u64, Ident, Vec<_>)> = Vec::new();
            let mut converged_here = 0usize;
            for node in nodes.iter_mut() {
                match node.try_step() {
                    StepOutcome::Converged { rounds: r } => {
                        rounds = Some(r);
                        converged_here += 1;
                    }
                    StepOutcome::Batches(batches) => {
                        let (from, r) = (node.me(), node.executed());
                        sends.extend(batches.into_iter().map(|(to, b)| (from, r, to, b)));
                    }
                    StepOutcome::Pending => panic!("snapshot incomplete in lock step"),
                }
            }
            if converged_here > 0 {
                assert_eq!(converged_here, nodes.len(), "convergence must be unanimous");
                break 'outer;
            }
            for (from, r, to, batch) in sends {
                let node = nodes.iter_mut().find(|n| n.me() == to).unwrap();
                node.on_msgs(from, r, batch).unwrap();
            }
            for node in nodes.iter_mut() {
                node.try_finish().expect("all batches present in lock step");
            }
        }

        assert_eq!(rounds, Some(report.rounds), "round counts must match the engine");
        let total: usize = nodes.iter().map(|n| n.local_messages()).sum();
        assert_eq!(total, report.total_messages, "message totals must match the engine");
        for node in &nodes {
            assert_eq!(node.converged(), Some(report.rounds));
            assert_eq!(
                Some(node.state()),
                engine.state(node.me()),
                "state of {} must match the engine",
                node.me()
            );
        }
    }

    #[test]
    fn schedule_violations_are_typed_errors() {
        let peers = ids(3);
        let mut node = RoundSync::new(
            ChordProtocol,
            peers[0],
            peers.clone(),
            ChordState::with_contacts([peers[1]]),
        );
        node.announce().unwrap();
        let st = ChordState::with_contacts([peers[0]]);
        assert_eq!(
            node.on_state(Ident::from_raw(999), 0, st.clone()),
            Err(SyncError::UnknownSender(Ident::from_raw(999)))
        );
        assert_eq!(
            node.on_state(peers[1], 5, st.clone()),
            Err(SyncError::WrongRound { got: 5, expected: 0 })
        );
        node.on_state(peers[1], 0, st.clone()).unwrap();
        assert_eq!(node.on_state(peers[1], 0, st.clone()), Err(SyncError::Duplicate(peers[1])));
        // One cycle ahead is legal (buffered), further ahead is not.
        node.on_state(peers[2], 1, st.clone()).unwrap();
        assert_eq!(
            node.on_state(peers[2], 2, st),
            Err(SyncError::WrongRound { got: 2, expected: 0 })
        );
    }
}

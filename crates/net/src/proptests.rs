//! Wire-codec property tests: every message variant round-trips through
//! encode/decode (bare body and full frame), and malformed input — any
//! truncation, bad version bytes, oversized length prefixes, arbitrary
//! byte soup — produces a typed [`WireError`], never a panic.

use crate::message::{ForwardedRpc, NetMsg, RpcOp};
use crate::wire::{self, split_frame, WireError, HEADER_LEN, MAX_FRAME_LEN};
use proptest::prelude::*;
use rechord_core::msg::Msg;
use rechord_core::state::{PeerState, VirtualState};
use rechord_graph::{EdgeKind, NodeRef};
use rechord_id::Ident;
use std::collections::BTreeMap;

fn ident() -> impl Strategy<Value = Ident> {
    any::<u64>().prop_map(Ident::from_raw)
}

fn node_ref() -> impl Strategy<Value = NodeRef> {
    (any::<u64>(), 0u8..12).prop_map(|(o, l)| NodeRef { owner: Ident::from_raw(o), level: l })
}

fn edge_kind() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![Just(EdgeKind::Unmarked), Just(EdgeKind::Ring), Just(EdgeKind::Connection)]
}

fn proto_msg() -> impl Strategy<Value = Msg> {
    (node_ref(), edge_kind(), node_ref()).prop_map(|(at, kind, edge)| Msg { at, kind, edge })
}

fn virtual_state() -> impl Strategy<Value = VirtualState> {
    (
        prop::collection::btree_set(node_ref(), 0..5),
        prop::collection::btree_set(node_ref(), 0..4),
        prop::collection::btree_set(node_ref(), 0..3),
        prop::option::of(node_ref()),
        prop::option::of(node_ref()),
    )
        .prop_map(|(nu, nr, nc, rl, rr)| VirtualState { nu, nr, nc, rl, rr })
}

fn peer_state() -> impl Strategy<Value = PeerState> {
    prop::collection::vec((0u8..10, virtual_state()), 1..5).prop_map(|lvls| {
        let levels: BTreeMap<u8, VirtualState> = lvls.into_iter().collect();
        PeerState { levels }
    })
}

fn value_string() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        any::<u64>().prop_map(|x| format!("value-{x}")),
        Just("π ≠ RC — ünïcodé".to_string()),
    ]
}

fn rpc_op() -> impl Strategy<Value = RpcOp> {
    prop_oneof![Just(RpcOp::Get), Just(RpcOp::Put), Just(RpcOp::Lookup)]
}

fn forwarded() -> impl Strategy<Value = ForwardedRpc> {
    (
        (any::<u64>(), ident(), rpc_op(), any::<u64>()),
        (value_string(), any::<u64>(), ident(), 0u32..1000, 0u32..1000),
    )
        .prop_map(|((rpc, client, op, key), (value, version, cursor, hops, steps))| {
            ForwardedRpc { rpc, client, op, key, value, version, cursor, hops, steps }
        })
}

/// Every variant, weighted so the structurally rich ones dominate.
fn net_msg() -> impl Strategy<Value = NetMsg> {
    prop_oneof![
        ident().prop_map(|from| NetMsg::Hello { from }),
        (any::<u64>(), peer_state())
            .prop_map(|(round, st)| NetMsg::StateSync { round, state: Box::new(st) }),
        (any::<u64>(), prop::collection::vec(proto_msg(), 0..6))
            .prop_map(|(round, msgs)| NetMsg::RoundMsgs { round, msgs }),
        prop::collection::vec(ident(), 0..5)
            .prop_map(|successors| NetMsg::GossipSuccessors { successors }),
        Just(NetMsg::Ping),
        any::<bool>().prop_map(|serving| NetMsg::Pong { serving }),
        (any::<u64>(), any::<u64>()).prop_map(|(rpc, key)| NetMsg::GetReq { rpc, key }),
        ((any::<u64>(), any::<u64>()), (value_string(), any::<u64>()))
            .prop_map(|((rpc, key), (value, version))| NetMsg::PutReq { rpc, key, value, version }),
        (any::<u64>(), any::<u64>()).prop_map(|(rpc, key)| NetMsg::LookupReq { rpc, key }),
        forwarded().prop_map(|f| NetMsg::Forward(Box::new(f))),
        ((any::<u64>(), any::<bool>(), 0u32..500), (ident(), prop::option::of(value_string())))
            .prop_map(|((rpc, ok, hops), (responsible, value))| NetMsg::Reply {
                rpc,
                ok,
                hops,
                responsible,
                value
            }),
        ((ident(), any::<u64>()), (any::<u64>(), value_string())).prop_map(
            |((pos, key), (version, value))| NetMsg::ReplicaPut { pos, key, version, value }
        ),
        Just(NetMsg::Shutdown),
        Just(NetMsg::StatsReq),
        ((any::<u64>(), any::<bool>()), (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()))
            .prop_map(|((rounds, converged), (delivered, dropped, served, wire_errors))| {
                NetMsg::Stats { rounds, converged, delivered, dropped, served, wire_errors }
            }),
    ]
}

proptest! {
    #[test]
    fn every_message_roundtrips(msg in net_msg()) {
        let body = msg.encode();
        prop_assert_eq!(NetMsg::decode(&body).unwrap(), msg.clone());
        // And through a full frame.
        let framed = msg.to_frame();
        let (payload, used) = split_frame(&framed).unwrap().expect("complete frame");
        prop_assert_eq!(used, framed.len());
        prop_assert_eq!(NetMsg::decode(payload).unwrap(), msg);
    }

    #[test]
    fn encode_into_matches_legacy_framing(msg in net_msg(), prefix in prop::collection::vec(any::<u8>(), 0..32)) {
        // The allocation-free path must be byte-identical to the legacy
        // allocate-per-message path — appended after arbitrary dirty
        // prefixes, as a cork buffer holds earlier frames.
        let legacy_body = msg.encode();
        let legacy_frame = wire::frame(&legacy_body);
        prop_assert_eq!(&msg.to_frame(), &legacy_frame);

        let mut buf = prefix.clone();
        msg.encode_into(&mut buf);
        prop_assert_eq!(&buf[prefix.len()..], &legacy_body[..]);

        let mut buf = prefix.clone();
        msg.frame_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
        prop_assert_eq!(&buf[prefix.len()..], &legacy_frame[..]);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error(msg in net_msg(), frac in 0u32..1000) {
        // A strict prefix of a valid body can never decode: the bytes up to
        // the cut parse identically, the read crossing the cut fails — and
        // a parse completing exactly at the cut would contradict the full
        // body parsing with no trailing bytes.
        let body = msg.encode();
        let cut = (frac as usize * body.len()) / 1000;
        prop_assume!(cut < body.len());
        prop_assert!(NetMsg::decode(&body[..cut]).is_err());
    }

    #[test]
    fn bad_version_and_reserved_bytes_are_rejected(msg in net_msg(), v in 0u8..250) {
        let mut framed = msg.to_frame();
        framed[2] = v;
        match split_frame(&framed) {
            Ok(Some(_)) => prop_assert_eq!(v, wire::WIRE_VERSION),
            Err(WireError::BadVersion(got)) => prop_assert_eq!(got, v),
            other => panic!("unexpected outcome for version {v}: {other:?}"),
        }
        let mut framed = msg.to_frame();
        framed[3] = v.max(1); // any nonzero reserved byte
        prop_assert_eq!(split_frame(&framed), Err(WireError::BadReserved(v.max(1))));
    }

    #[test]
    fn oversized_length_prefixes_never_allocate(msg in net_msg(), extra in 1u32..(u32::MAX - MAX_FRAME_LEN)) {
        let mut framed = msg.to_frame();
        let bogus = MAX_FRAME_LEN + extra;
        framed[4..8].copy_from_slice(&bogus.to_be_bytes());
        prop_assert_eq!(split_frame(&framed), Err(WireError::Oversized(bogus)));
    }

    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Whatever arrives, decoding returns — Ok for the rare accidental
        // valid message, a typed error otherwise. No panics, no unbounded
        // allocation (collection lengths are checked against remaining
        // payload before any reservation).
        let _ = NetMsg::decode(&bytes);
        let _ = split_frame(&bytes);
    }

    #[test]
    fn declared_collection_lengths_are_capped_by_payload(n in 20u32..u32::MAX) {
        // A RoundMsgs header declaring n messages with no bytes behind it
        // must die on the length check, not in an allocation.
        let mut body = vec![0x03]; // RoundMsgs tag
        body.extend_from_slice(&7u64.to_be_bytes());
        body.extend_from_slice(&n.to_be_bytes());
        prop_assert_eq!(NetMsg::decode(&body), Err(WireError::BadLength(n)));
    }
}

#[test]
fn truncated_frame_headers_want_more_input_not_errors() {
    let framed = NetMsg::Ping.to_frame();
    for cut in 0..framed.len() {
        assert_eq!(split_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
    }
    assert!(framed.len() > HEADER_LEN);
}

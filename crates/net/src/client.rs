//! The client side of the data plane: a closed-loop RPC issuer over any
//! [`Transport`].
//!
//! The client participates in the cluster as one more identifier-addressed
//! actor: it connects to every node, waits until all of them report
//! `serving` (via ping polling), then issues get/put/lookup RPCs
//! sequentially — each request waits for its reply before the next one is
//! sent, so versions assigned by the client form the same monotone write
//! stream `KvStore` numbers internally, and results are comparable RPC
//! for RPC against the direct-call oracle.
//!
//! The entry peer of each RPC is drawn deterministically from the request
//! id (`mix(seed, rpc) % n`), so the in-memory run, the TCP run, and the
//! oracle replay all route from the same peer.

use crate::message::NetMsg;
use crate::transport::{NetError, Transport};
use rechord_core::adversary::mix;
use rechord_id::Ident;
use std::time::{Duration, Instant};

/// Outcome of one client RPC, aligned field-for-field with what the
/// direct-call `KvStore` oracle reports (`LookupOutcome` plus the value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcResult {
    /// Request id.
    pub rpc: u64,
    /// Did routing reach the responsible peer?
    pub ok: bool,
    /// Overlay hops, probe misses included.
    pub hops: u32,
    /// The responsible peer.
    pub responsible: Ident,
    /// The value (gets that hit).
    pub value: Option<String>,
}

/// A closed-loop RPC client bound to a transport endpoint.
pub struct ClusterClient<T: Transport> {
    transport: T,
    roster: Vec<Ident>,
    entry_seed: u64,
    next_rpc: u64,
    puts_issued: u64,
    reply_deadline: Duration,
}

impl<T: Transport> ClusterClient<T> {
    /// A client talking to `roster` (sorted internally). `entry_seed`
    /// fixes the entry-peer sequence; `reply_deadline` bounds each wait.
    pub fn new(
        transport: T,
        roster: Vec<Ident>,
        entry_seed: u64,
        reply_deadline: Duration,
    ) -> Self {
        let mut roster = roster;
        roster.sort_unstable();
        roster.dedup();
        ClusterClient { transport, roster, entry_seed, next_rpc: 0, puts_issued: 0, reply_deadline }
    }

    /// The transport underneath (e.g. to connect to peers before use).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The entry peer for a request id — deterministic, uniform over the
    /// roster, identical across backends and the oracle replay.
    pub fn entry_peer(&self, rpc: u64) -> Ident {
        self.roster[(mix(&[self.entry_seed, rpc]) as usize) % self.roster.len()]
    }

    /// Polls every node with pings until all report `serving`, or the
    /// deadline passes. Returns whether the cluster is ready.
    pub fn wait_serving(&mut self, deadline: Duration) -> Result<bool, NetError> {
        let until = Instant::now() + deadline;
        'poll: loop {
            if Instant::now() >= until {
                return Ok(false);
            }
            for &peer in &self.roster.clone() {
                self.transport.send(peer, NetMsg::Ping)?;
                match self.recv_filtered(Duration::from_secs(5))? {
                    Some(NetMsg::Pong { serving: true }) => {}
                    _ => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue 'poll;
                    }
                }
            }
            return Ok(true);
        }
    }

    /// Issues a get and waits for the reply.
    pub fn get(&mut self, key: u64) -> Result<RpcResult, NetError> {
        let rpc = self.fresh_rpc();
        let entry = self.entry_peer(rpc);
        self.transport.send(entry, NetMsg::GetReq { rpc, key })?;
        self.await_reply(rpc)
    }

    /// Issues a put (the client assigns the next monotone version) and
    /// waits for the reply.
    pub fn put(&mut self, key: u64, value: impl Into<String>) -> Result<RpcResult, NetError> {
        let rpc = self.fresh_rpc();
        let entry = self.entry_peer(rpc);
        self.puts_issued += 1;
        let version = self.puts_issued;
        self.transport.send(entry, NetMsg::PutReq { rpc, key, value: value.into(), version })?;
        self.await_reply(rpc)
    }

    /// Resolves the responsible peer for a key without touching the store.
    pub fn lookup(&mut self, key: u64) -> Result<RpcResult, NetError> {
        let rpc = self.fresh_rpc();
        let entry = self.entry_peer(rpc);
        self.transport.send(entry, NetMsg::LookupReq { rpc, key })?;
        self.await_reply(rpc)
    }

    /// Asks one node for its final counters.
    pub fn stats_of(&mut self, peer: Ident) -> Result<NetMsg, NetError> {
        self.transport.send(peer, NetMsg::StatsReq)?;
        let until = Instant::now() + self.reply_deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Timeout);
            }
            if let (got_from, msg @ NetMsg::Stats { .. }) = self.transport.recv(Some(left))? {
                if got_from == peer {
                    return Ok(msg);
                }
            }
        }
    }

    /// Sends an orderly shutdown to every node.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        for &peer in &self.roster.clone() {
            self.transport.send(peer, NetMsg::Shutdown)?;
        }
        Ok(())
    }

    /// Puts issued so far (the client-side mirror of the oracle's write
    /// counter while availability is 1.0).
    pub fn puts_issued(&self) -> u64 {
        self.puts_issued
    }

    fn fresh_rpc(&mut self) -> u64 {
        self.next_rpc += 1;
        self.next_rpc
    }

    /// Receives one message, dropping anything that is not a reply-like
    /// answer (stray pongs from overlapping ping polls are harmless).
    fn recv_filtered(&mut self, deadline: Duration) -> Result<Option<NetMsg>, NetError> {
        match self.transport.recv(Some(deadline)) {
            Ok((_, msg)) => Ok(Some(msg)),
            Err(NetError::Timeout) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Waits for the reply correlated to `rpc`, skipping stale messages.
    fn await_reply(&mut self, rpc: u64) -> Result<RpcResult, NetError> {
        let until = Instant::now() + self.reply_deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Timeout);
            }
            let (_, msg) = self.transport.recv(Some(left))?;
            if let NetMsg::Reply { rpc: got, ok, hops, responsible, value } = msg {
                if got == rpc {
                    return Ok(RpcResult { rpc, ok, hops, responsible, value });
                }
            }
        }
    }
}

//! The client side of the data plane: a windowed, pipelined RPC issuer
//! over any [`Transport`].
//!
//! The client participates in the cluster as one more identifier-addressed
//! actor: it connects to every node, waits until all of them report
//! `serving` (via ping polling), then issues get/put/lookup RPCs with up
//! to `window` requests in flight. Replies are correlated on the rpc id
//! (they may arrive out of issue order when requests enter at different
//! peers) and results are handed back **in issue order**, so the per-RPC
//! oracle parity check is unchanged at any window. `window = 1`
//! reproduces the strictly serial one-in-flight client exactly.
//!
//! Two invariants make pipelined results identical to a serial replay:
//!
//! * **Per-key fencing** — a request is never issued while a *conflicting*
//!   request on the same key is in flight (conflicting = at least one of
//!   the two is a put). Two concurrent requests on different keys touch
//!   disjoint store entries, and concurrent gets are read-only, so every
//!   interleaving the cluster can produce yields the serial answer.
//! * **Cork discipline** — requests are sent corked ([`Transport::send_corked`])
//!   and flushed when the window fills or before the client blocks on a
//!   reply, so back-to-back requests coalesce into one write without ever
//!   waiting on an unsent frame.
//!
//! The entry peer of each RPC is drawn deterministically from the request
//! id (`mix(seed, rpc) % n`), so the in-memory run, the TCP run, and the
//! oracle replay all route from the same peer.

use crate::message::{NetMsg, RpcOp};
use crate::transport::{NetError, Transport};
use rechord_core::adversary::mix;
use rechord_id::Ident;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// Outcome of one client RPC, aligned field-for-field with what the
/// direct-call `KvStore` oracle reports (`LookupOutcome` plus the value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RpcResult {
    /// Request id.
    pub rpc: u64,
    /// Did routing reach the responsible peer?
    pub ok: bool,
    /// Overlay hops, probe misses included.
    pub hops: u32,
    /// The responsible peer.
    pub responsible: Ident,
    /// The value (gets that hit).
    pub value: Option<String>,
}

/// One issued, not-yet-completed RPC.
struct Inflight {
    rpc: u64,
    key: u64,
    put: bool,
    issued: Instant,
}

/// A windowed RPC client bound to a transport endpoint.
pub struct ClusterClient<T: Transport> {
    transport: T,
    roster: Vec<Ident>,
    entry_seed: u64,
    window: usize,
    next_rpc: u64,
    puts_issued: u64,
    reply_deadline: Duration,
    /// Issued requests awaiting completion, in issue order.
    inflight: VecDeque<Inflight>,
    /// Replies that arrived ahead of an earlier in-flight rpc, keyed on
    /// rpc id until the head of `inflight` catches up.
    ready: BTreeMap<u64, RpcResult>,
    /// Issue→completion latency of every completed rpc, in microseconds,
    /// since the last [`ClusterClient::take_latencies_us`].
    lat_us: Vec<f64>,
}

impl<T: Transport> ClusterClient<T> {
    /// A client talking to `roster` (sorted internally). `entry_seed`
    /// fixes the entry-peer sequence; `reply_deadline` bounds each wait.
    /// The window starts at 1 (strictly serial); see
    /// [`ClusterClient::with_window`].
    pub fn new(
        transport: T,
        roster: Vec<Ident>,
        entry_seed: u64,
        reply_deadline: Duration,
    ) -> Self {
        let mut roster = roster;
        roster.sort_unstable();
        roster.dedup();
        ClusterClient {
            transport,
            roster,
            entry_seed,
            window: 1,
            next_rpc: 0,
            puts_issued: 0,
            reply_deadline,
            inflight: VecDeque::new(),
            ready: BTreeMap::new(),
            lat_us: Vec::new(),
        }
    }

    /// Sets the pipelining window: up to `window` RPCs in flight (clamped
    /// to at least 1, which is the serial client).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The pipelining window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The transport underneath (e.g. to connect to peers before use).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The entry peer for a request id — deterministic, uniform over the
    /// roster, identical across backends and the oracle replay.
    pub fn entry_peer(&self, rpc: u64) -> Ident {
        self.roster[(mix(&[self.entry_seed, rpc]) % self.roster.len() as u64) as usize]
    }

    /// Polls every node with pings until all report `serving`, or the
    /// deadline passes. Returns whether the cluster is ready.
    pub fn wait_serving(&mut self, deadline: Duration) -> Result<bool, NetError> {
        let until = Instant::now() + deadline;
        'poll: loop {
            if Instant::now() >= until {
                return Ok(false);
            }
            for i in 0..self.roster.len() {
                let peer = self.roster[i];
                self.transport.send(peer, NetMsg::Ping)?;
                // Credit only *this peer's* pong: a stale pong from another
                // peer's earlier poll must not vouch for this one.
                if !self.await_pong_from(peer, Duration::from_secs(5))? {
                    std::thread::sleep(Duration::from_millis(20));
                    continue 'poll;
                }
            }
            return Ok(true);
        }
    }

    /// Waits for a `Pong` *from `peer`*, skipping unrelated messages.
    /// `Ok(false)` on a timeout or a not-serving pong.
    fn await_pong_from(&mut self, peer: Ident, deadline: Duration) -> Result<bool, NetError> {
        let until = Instant::now() + deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(false);
            }
            match self.transport.recv(Some(left)) {
                Ok((from, NetMsg::Pong { serving })) if from == peer => return Ok(serving),
                Ok(_) => continue, // stale pong from another peer, or noise
                Err(NetError::Timeout) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
    }

    /// Issues a get and waits for the reply (drains the whole pipeline;
    /// use [`ClusterClient::submit_get`] when pipelining).
    pub fn get(&mut self, key: u64) -> Result<RpcResult, NetError> {
        self.blocking(RpcOp::Get, key, String::new())
    }

    /// Issues a put (the client assigns the next monotone version) and
    /// waits for the reply (drains the whole pipeline; use
    /// [`ClusterClient::submit_put`] when pipelining).
    pub fn put(&mut self, key: u64, value: impl Into<String>) -> Result<RpcResult, NetError> {
        self.blocking(RpcOp::Put, key, value.into())
    }

    /// Resolves the responsible peer for a key without touching the store
    /// (blocking, like [`ClusterClient::get`]).
    pub fn lookup(&mut self, key: u64) -> Result<RpcResult, NetError> {
        self.blocking(RpcOp::Lookup, key, String::new())
    }

    /// Pipelined get: issues the request (waiting only if the window is
    /// full or a conflicting put is in flight) and returns whatever
    /// requests completed, in issue order.
    pub fn submit_get(&mut self, key: u64) -> Result<Vec<RpcResult>, NetError> {
        self.submit(RpcOp::Get, key, String::new())
    }

    /// Pipelined put (client-assigned monotone version); see
    /// [`ClusterClient::submit_get`] for the completion contract.
    pub fn submit_put(
        &mut self,
        key: u64,
        value: impl Into<String>,
    ) -> Result<Vec<RpcResult>, NetError> {
        self.submit(RpcOp::Put, key, value.into())
    }

    /// Pipelined lookup; see [`ClusterClient::submit_get`].
    pub fn submit_lookup(&mut self, key: u64) -> Result<Vec<RpcResult>, NetError> {
        self.submit(RpcOp::Lookup, key, String::new())
    }

    /// Waits for every in-flight request and returns their results in
    /// issue order.
    pub fn drain(&mut self) -> Result<Vec<RpcResult>, NetError> {
        let mut done = Vec::with_capacity(self.inflight.len());
        while !self.inflight.is_empty() {
            self.await_one()?;
            self.pop_ready(&mut done);
        }
        Ok(done)
    }

    /// Asks one node for its final counters.
    pub fn stats_of(&mut self, peer: Ident) -> Result<NetMsg, NetError> {
        self.transport.send(peer, NetMsg::StatsReq)?;
        let until = Instant::now() + self.reply_deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Timeout);
            }
            if let (got_from, msg @ NetMsg::Stats { .. }) = self.transport.recv(Some(left))? {
                if got_from == peer {
                    return Ok(msg);
                }
            }
        }
    }

    /// Sends an orderly shutdown to every node.
    pub fn shutdown_all(&mut self) -> Result<(), NetError> {
        for i in 0..self.roster.len() {
            let peer = self.roster[i];
            self.transport.send_corked(peer, NetMsg::Shutdown)?;
        }
        self.transport.flush_all()
    }

    /// Puts issued so far (the client-side mirror of the oracle's write
    /// counter while availability is 1.0).
    pub fn puts_issued(&self) -> u64 {
        self.puts_issued
    }

    /// Issue→completion latencies (µs) of requests completed since the
    /// last call, in completion order. Drains the internal record.
    pub fn take_latencies_us(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.lat_us)
    }

    fn fresh_rpc(&mut self) -> u64 {
        self.next_rpc += 1;
        self.next_rpc
    }

    /// Serial wrapper over the pipelined path: drains everything, so
    /// exactly this call's result comes back. Mixing blocking calls into
    /// an open pipeline would discard completions — drain first.
    fn blocking(&mut self, op: RpcOp, key: u64, value: String) -> Result<RpcResult, NetError> {
        debug_assert!(self.inflight.is_empty(), "drain() the pipeline before blocking calls");
        let mut done = self.submit(op, key, value)?;
        let rpc = self.next_rpc;
        done.extend(self.drain()?);
        done.into_iter().find(|r| r.rpc == rpc).ok_or(NetError::Timeout)
    }

    /// The pipelined issue path: fence conflicting keys, make window
    /// room, send corked, and hand back whatever completed.
    fn submit(&mut self, op: RpcOp, key: u64, value: String) -> Result<Vec<RpcResult>, NetError> {
        let mut done = Vec::new();
        let put = op == RpcOp::Put;
        // Per-key fence: wait out any in-flight request this one conflicts
        // with (see module docs), so pipelined answers stay serial.
        while self.inflight.iter().any(|f| f.key == key && (f.put || put)) {
            self.await_one()?;
            self.pop_ready(&mut done);
        }
        // Window room: at most `window` in flight after this issue.
        while self.inflight.len() >= self.window {
            self.await_one()?;
            self.pop_ready(&mut done);
        }
        let rpc = self.fresh_rpc();
        let entry = self.entry_peer(rpc);
        let msg = match op {
            RpcOp::Get => NetMsg::GetReq { rpc, key },
            RpcOp::Lookup => NetMsg::LookupReq { rpc, key },
            RpcOp::Put => {
                self.puts_issued += 1;
                NetMsg::PutReq { rpc, key, value, version: self.puts_issued }
            }
        };
        self.transport.send_corked(entry, msg)?;
        self.inflight.push_back(Inflight { rpc, key, put, issued: Instant::now() });
        if self.inflight.len() >= self.window {
            // Window full: the next submit must wait for a reply, so the
            // corked requests have to be on the wire now.
            self.transport.flush_all()?;
        }
        self.pop_ready(&mut done);
        Ok(done)
    }

    /// Blocks until one more in-flight request completes, stashing its
    /// result in `ready`. Replies for unknown rpc ids (stale retries,
    /// duplicates) are skipped, as are non-reply messages.
    fn await_one(&mut self) -> Result<(), NetError> {
        // Queue-empty cork rule: never wait on requests still in a buffer.
        self.transport.flush_all()?;
        let until = Instant::now() + self.reply_deadline;
        loop {
            let left = until.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(NetError::Timeout);
            }
            let (_, msg) = self.transport.recv(Some(left))?;
            if let NetMsg::Reply { rpc, ok, hops, responsible, value } = msg {
                if self.ready.contains_key(&rpc) {
                    continue; // duplicate reply
                }
                let Some(f) = self.inflight.iter().find(|f| f.rpc == rpc) else {
                    continue; // stale reply for a completed rpc
                };
                self.lat_us.push(f.issued.elapsed().as_secs_f64() * 1e6);
                self.ready.insert(rpc, RpcResult { rpc, ok, hops, responsible, value });
                return Ok(());
            }
        }
    }

    /// Moves completed results out in issue order: the head of `inflight`
    /// leaves only once its reply is in `ready`, which is what keeps the
    /// output stream identical to the serial client's.
    fn pop_ready(&mut self, out: &mut Vec<RpcResult>) {
        while let Some(front) = self.inflight.front() {
            match self.ready.remove(&front.rpc) {
                Some(r) => {
                    self.inflight.pop_front();
                    out.push(r);
                }
                None => break,
            }
        }
    }
}

//! In-process clusters over the loopback fabric: the deterministic
//! lock-step driver (bit-for-bit engine parity) and the threaded serving
//! cluster (one OS thread per node, a blocking client in the caller).
//!
//! The lock-step driver is the reference: it pumps every node round-robin
//! in ascending identifier order, so message interleavings are a pure
//! function of the configuration and the convergence trace can be compared
//! against the direct-call engine equality-by-equality
//! (`tests/transport_parity.rs`). The threaded cluster gives up scheduling
//! determinism — the BSP barriers restore it for protocol state, and the
//! closed-loop client restores it for data-plane results, which is exactly
//! the claim the cluster bench checks across in-mem, TCP, and the oracle.

use crate::inmem::{InMemFabric, InMemTransport};
use crate::peer::{NodeConfig, NodePeer, NodeReport};
use crate::transport::NetError;
use rechord_core::state::PeerState;
use rechord_id::Ident;
use rechord_topology::InitialTopology;
use std::time::Duration;

/// Shared description of an in-process cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Initial knowledge topology; its `ids` are the roster.
    pub topology: InitialTopology,
    /// Key-hashing seed shared by peers, clients, and oracles.
    pub space_seed: u64,
    /// Replica-set width for puts.
    pub replication: usize,
    /// Stabilization round cap.
    pub max_rounds: u64,
}

impl ClusterConfig {
    /// Per-node configuration for the peer `id`.
    pub fn node_config(&self, id: Ident) -> NodeConfig {
        NodeConfig {
            me: id,
            roster: self.topology.ids.clone(),
            contacts: self.topology.contacts_of(id),
            space_seed: self.space_seed,
            replication: self.replication,
            max_rounds: self.max_rounds,
        }
    }
}

/// Convergence outcome of a lock-step run, aggregated across nodes into
/// the engine's [`rechord_sim::FixpointReport`] shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockstepReport {
    /// Rounds to the fixpoint (counting the final quiet round).
    pub rounds: u64,
    /// Did every node observe the fixpoint?
    pub converged: bool,
    /// Delivered plus dropped protocol messages over the whole run.
    pub total_messages: usize,
    /// Per-round `(delivered, dropped)` sums across nodes, 1-based.
    pub per_round: Vec<(usize, usize)>,
}

/// Runs the whole cluster to its fixpoint inside one thread, pumping the
/// nodes round-robin in ascending identifier order. Returns the aggregate
/// report and every node's converged state (ascending by identifier) —
/// directly comparable against `Engine::run_until_fixpoint` plus
/// `Engine::iter` on the same topology.
pub fn stabilize_lockstep(
    cfg: &ClusterConfig,
) -> Result<(LockstepReport, Vec<(Ident, PeerState)>), NetError> {
    let fabric = InMemFabric::new();
    let mut nodes: Vec<NodePeer<InMemTransport>> = cfg
        .topology
        .ids
        .iter()
        .map(|&id| NodePeer::new(fabric.endpoint(id), cfg.node_config(id)))
        .collect();

    // Each pass pumps every node once; progress is guaranteed while the
    // fabric holds messages or a node can announce. The bound is generous:
    // a round costs a handful of passes.
    let max_passes = cfg.max_rounds.saturating_mul(8).max(64);
    for _ in 0..max_passes {
        for node in nodes.iter_mut() {
            node.pump()?;
        }
        if nodes.iter().all(|n| n.converged().is_some()) && fabric.pending() == 0 {
            break;
        }
    }

    let converged = nodes.iter().all(|n| n.converged().is_some());
    let rounds = nodes.first().map_or(0, |n| n.executed());
    let longest = nodes.iter().map(|n| n.trace().len()).max().unwrap_or(0);
    let mut per_round = vec![(0usize, 0usize); longest];
    for node in &nodes {
        for (i, s) in node.trace().iter().enumerate() {
            per_round[i].0 += s.delivered;
            per_round[i].1 += s.dropped;
        }
    }
    let total_messages = per_round.iter().map(|(d, x)| d + x).sum();
    let states: Vec<(Ident, PeerState)> =
        nodes.iter().map(|n| (n.me(), n.state().clone())).collect();
    Ok((LockstepReport { rounds, converged, total_messages, per_round }, states))
}

/// A running threaded cluster: every node on its own OS thread, all on one
/// loopback fabric.
pub struct ThreadedCluster {
    fabric: InMemFabric,
    roster: Vec<Ident>,
    handles: Vec<std::thread::JoinHandle<Result<NodeReport, NetError>>>,
}

impl ThreadedCluster {
    /// Spawns one thread per roster peer, each running `NodePeer::run`.
    pub fn launch(cfg: &ClusterConfig) -> Self {
        let fabric = InMemFabric::new();
        let roster = cfg.topology.ids.clone();
        // Register every endpoint before any thread starts, so early sends
        // never race the receiver's registration.
        let endpoints: Vec<(Ident, InMemTransport)> =
            roster.iter().map(|&id| (id, fabric.endpoint(id))).collect();
        let handles = endpoints
            .into_iter()
            .map(|(id, endpoint)| {
                let node_cfg = cfg.node_config(id);
                std::thread::spawn(move || {
                    NodePeer::new(endpoint, node_cfg).run(Duration::from_millis(2))
                })
            })
            .collect();
        ThreadedCluster { fabric, roster, handles }
    }

    /// The cluster roster, ascending.
    pub fn roster(&self) -> &[Ident] {
        &self.roster
    }

    /// A client endpoint on the cluster's fabric. `client_id` must not
    /// collide with any roster identifier.
    pub fn client_endpoint(&self, client_id: Ident) -> InMemTransport {
        debug_assert!(!self.roster.contains(&client_id), "client id collides with a peer");
        self.fabric.endpoint(client_id)
    }

    /// Waits for every node thread to finish (send [`crate::message::NetMsg::Shutdown`]
    /// first, e.g. via `ClusterClient::shutdown_all`). Returns the node
    /// reports in spawn (roster) order.
    pub fn join(self) -> Result<Vec<NodeReport>, NetError> {
        self.handles
            .into_iter()
            .map(|h| h.join().map_err(|_| NetError::Io("node thread panicked".into()))?)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClusterClient;
    use rechord_topology::TopologyKind;

    fn small_cfg(n: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            topology: TopologyKind::Random.generate(n, seed),
            space_seed: seed,
            replication: 2,
            max_rounds: 20_000,
        }
    }

    #[test]
    fn lockstep_cluster_converges() {
        let cfg = small_cfg(8, 11);
        let (report, states) = stabilize_lockstep(&cfg).unwrap();
        assert!(report.converged);
        assert_eq!(states.len(), 8);
        assert_eq!(report.per_round.len() as u64, report.rounds);
        assert!(report.total_messages > 0);
    }

    #[test]
    fn threaded_cluster_serves_the_data_plane() {
        let cfg = small_cfg(6, 3);
        let cluster = ThreadedCluster::launch(&cfg);
        let client_id = Ident::from_raw(u64::MAX); // random ids never collide here
        let transport = cluster.client_endpoint(client_id);
        let mut client = ClusterClient::new(
            transport,
            cluster.roster().to_vec(),
            cfg.space_seed,
            Duration::from_secs(30),
        );
        assert!(client.wait_serving(Duration::from_secs(60)).unwrap(), "cluster must go ready");
        let put = client.put(7, "hello").unwrap();
        assert!(put.ok);
        let get = client.get(7).unwrap();
        assert!(get.ok);
        assert_eq!(get.value.as_deref(), Some("hello"));
        assert_eq!(get.responsible, put.responsible);
        let miss = client.get(9999).unwrap();
        assert!(miss.ok);
        assert_eq!(miss.value, None);
        let look = client.lookup(7).unwrap();
        assert_eq!(look.responsible, put.responsible);
        client.shutdown_all().unwrap();
        let reports = cluster.join().unwrap();
        assert!(reports.iter().all(|r| r.converged));
        assert!(reports.iter().map(|r| r.served).sum::<u64>() >= 4);
    }
}

//! `rechord_net` — the transport subsystem: Re-Chord as real processes.
//!
//! Everything below the simulator assumes direct calls: the engine owns
//! all states and rounds are function applications. This crate removes
//! that assumption while keeping the semantics byte-identical:
//!
//! * [`wire`] — a hand-rolled, versioned, length-prefixed frame codec
//!   (fixed-width big-endian integers, no serde); every malformed input
//!   is a typed [`wire::WireError`], never a panic.
//! * [`message`] — the [`message::NetMsg`] protocol: BSP state/message
//!   exchange, repair-plane gossip, and the get/put/lookup data plane.
//! * [`transport`] — the [`transport::Transport`] trait: identifier-
//!   addressed, reliable, per-pair-FIFO messaging with deadline-aware
//!   receive.
//! * [`inmem`] — deterministic loopback fabric (simulator semantics).
//! * [`tcp`] — the same contract over `std::net` sockets with a
//!   connect/accept lifecycle and per-peer reconnect/backoff.
//! * [`sync`] — [`sync::RoundSync`], the bulk-synchronous round state
//!   machine replaying the engine bit for bit for any
//!   [`rechord_sim::SyncProtocol`].
//! * [`peer`] / [`client`] / [`cluster`] — a full Re-Chord node actor,
//!   the closed-loop RPC client, and in-process cluster drivers.
//!
//! The `node` binary hosts one peer over TCP; the bench-side `cluster`
//! binary spawns N of them on loopback and pins TCP ≡ in-mem ≡ oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod inmem;
pub mod lock;
pub mod message;
pub mod peer;
pub mod sync;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::{ClusterClient, RpcResult};
pub use cluster::{stabilize_lockstep, ClusterConfig, LockstepReport, ThreadedCluster};
pub use inmem::{InMemFabric, InMemTransport};
pub use lock::{lock_or_poison, lock_or_recover};
pub use message::{ForwardedRpc, NetMsg, RpcOp};
pub use peer::{Control, NodeConfig, NodePeer, NodeReport};
pub use sync::{NetRoundStats, RoundSync, StepOutcome, SyncError};
pub use tcp::TcpTransport;
pub use transport::{NetError, PeerAddr, Transport};
pub use wire::WireError;

#[cfg(test)]
mod proptests;

//! `node` — one Re-Chord peer as a real process over TCP.
//!
//! ```text
//! node --ident 42 --listen 127.0.0.1:7101 \
//!      --roster 42@127.0.0.1:7101,99@127.0.0.1:7102,7@127.0.0.1:7103 \
//!      --contacts 99,7 --seed 3 --replication 2 [--max-rounds 200000]
//! ```
//!
//! The process binds its listen address, dials every other roster peer
//! (retrying with backoff while they come up), runs Re-Chord rounds to the
//! global fixpoint, gossips its successor list, and then serves get/put/
//! lookup RPCs until an orderly `Shutdown` frame arrives — at which point
//! it prints its final counters to stdout and exits 0. Any protocol or
//! transport failure exits nonzero with a diagnostic on stderr.

use rechord_id::Ident;
use rechord_net::{NodeConfig, NodePeer, PeerAddr, TcpTransport, Transport};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

struct Args {
    me: Ident,
    listen: SocketAddr,
    roster: BTreeMap<Ident, SocketAddr>,
    contacts: Vec<Ident>,
    seed: u64,
    replication: usize,
    max_rounds: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: node --ident <u64> --listen <host:port> \
         --roster <id@host:port,...> [--contacts <id,...>] \
         [--seed <u64>] [--replication <n>] [--max-rounds <n>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut me = None;
    let mut listen = None;
    let mut roster: BTreeMap<Ident, SocketAddr> = BTreeMap::new();
    let mut contacts = Vec::new();
    let mut seed = 0u64;
    let mut replication = 1usize;
    let mut max_rounds = 200_000u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--ident" => me = value.parse().ok().map(Ident::from_raw),
            "--listen" => listen = value.parse().ok(),
            "--roster" => {
                for entry in value.split(',').filter(|s| !s.is_empty()) {
                    let Some((id, addr)) = entry.split_once('@') else { usage() };
                    let (Ok(id), Ok(addr)) = (id.parse::<u64>(), addr.parse()) else { usage() };
                    roster.insert(Ident::from_raw(id), addr);
                }
            }
            "--contacts" => {
                for id in value.split(',').filter(|s| !s.is_empty()) {
                    let Ok(id) = id.parse::<u64>() else { usage() };
                    contacts.push(Ident::from_raw(id));
                }
            }
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            "--replication" => replication = value.parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => max_rounds = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let (Some(me), Some(listen)) = (me, listen) else { usage() };
    if !roster.contains_key(&me) {
        eprintln!("node: --roster must include --ident");
        std::process::exit(2);
    }
    Args { me, listen, roster, contacts, seed, replication, max_rounds }
}

fn main() {
    let args = parse_args();

    let mut transport = match TcpTransport::bind(args.me, args.listen) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("node {}: bind {} failed: {e}", args.me, args.listen);
            std::process::exit(1);
        }
    };
    for (&peer, &addr) in args.roster.iter().filter(|(&p, _)| p != args.me) {
        if let Err(e) = transport.connect(peer, &PeerAddr::Socket(addr)) {
            eprintln!("node {}: dialing {peer} at {addr} failed: {e}", args.me);
            std::process::exit(1);
        }
    }

    let cfg = NodeConfig {
        me: args.me,
        roster: args.roster.keys().copied().collect(),
        contacts: args.contacts,
        space_seed: args.seed,
        replication: args.replication,
        max_rounds: args.max_rounds,
    };
    match NodePeer::new(transport, cfg).run(Duration::from_millis(5)) {
        Ok(report) => {
            println!(
                "node {} done: rounds={} converged={} delivered={} dropped={} served={} wire_errors={}",
                args.me,
                report.rounds,
                report.converged,
                report.delivered,
                report.dropped,
                report.served,
                report.wire_errors
            );
        }
        Err(e) => {
            eprintln!("node {}: {e}", args.me);
            std::process::exit(1);
        }
    }
}

//! The socket backend: [`NetMsg`] frames over `std::net` TCP.
//!
//! Lifecycle: an actor `bind`s a listener (an accept thread runs for the
//! transport's lifetime), then `connect`s to the peers it wants to dial —
//! each dial retries with linear backoff until the attempt budget runs
//! out, sends a [`NetMsg::Hello`] so the acceptor knows who arrived, and
//! spawns a reader thread that decodes frames into one shared inbox
//! channel. Accepted connections are identified by their leading `Hello`
//! and their write halves are registered too, so an actor can reply to
//! someone who dialed *it* (how server peers answer a dial-only client).
//!
//! Per pair, exactly one stream is ever used for sending (first
//! registered wins), so the FIFO guarantee of the [`Transport`] contract
//! reduces to TCP's own in-order delivery. A send onto a broken stream
//! triggers one reconnect/backoff cycle for dialed peers before
//! surfacing [`NetError::Unreachable`].

use crate::message::NetMsg;
use crate::transport::{NetError, PeerAddr, Transport};
use crate::wire::{check_header, HEADER_LEN};
use rechord_id::Ident;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Dial attempts before a connect gives up.
const DIAL_ATTEMPTS: u32 = 60;
/// Base backoff between dial attempts (linear: `attempt * base`, capped).
const DIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Backoff cap so a long outage doesn't grow unbounded sleeps.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(500);

type WriteMap = Arc<Mutex<BTreeMap<Ident, TcpStream>>>;

/// Reads frames off `stream` and pushes decoded messages, tagged with
/// `from`, into the shared inbox until EOF or a wire/socket error.
fn reader_loop(from: Ident, mut stream: TcpStream, inbox: mpsc::Sender<(Ident, NetMsg)>) {
    loop {
        let mut header = [0u8; HEADER_LEN];
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or reset: the peer hung up
        }
        let len = match check_header(&header) {
            Ok(len) => len as usize,
            Err(_) => return, // corrupt stream: drop the connection
        };
        let mut payload = vec![0u8; len];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        match NetMsg::decode(&payload) {
            Ok(msg) => {
                if inbox.send((from, msg)).is_err() {
                    return; // transport dropped
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one accepted connection: the first frame must be a `Hello`
/// identifying the dialer; the write half is then registered (unless a
/// stream for that peer already exists) and the reader loop takes over.
fn accept_conn(stream: TcpStream, writes: WriteMap, inbox: mpsc::Sender<(Ident, NetMsg)>) {
    let mut s = stream;
    let mut header = [0u8; HEADER_LEN];
    if s.read_exact(&mut header).is_err() {
        return;
    }
    let Ok(len) = check_header(&header) else { return };
    let mut payload = vec![0u8; len as usize];
    if s.read_exact(&mut payload).is_err() {
        return;
    }
    let Ok(NetMsg::Hello { from }) = NetMsg::decode(&payload) else { return };
    let _ = s.set_nodelay(true); // RPC frames, not bulk: Nagle only adds latency
    if let Ok(clone) = s.try_clone() {
        // First registered stream wins: if we also dialed this peer, the
        // existing entry keeps sends on one stream (FIFO per pair).
        writes.lock().expect("write map lock").entry(from).or_insert(clone);
    }
    reader_loop(from, s, inbox);
}

/// The TCP transport endpoint of one cluster actor.
pub struct TcpTransport {
    me: Ident,
    local_addr: SocketAddr,
    writes: WriteMap,
    dialed: BTreeMap<Ident, SocketAddr>,
    inbox: mpsc::Receiver<(Ident, NetMsg)>,
    inbox_tx: mpsc::Sender<(Ident, NetMsg)>,
}

impl TcpTransport {
    /// Binds `listen` (use port 0 for an OS-assigned port) and starts the
    /// accept thread.
    pub fn bind(me: Ident, listen: SocketAddr) -> Result<Self, NetError> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let writes: WriteMap = Arc::default();
        let (inbox_tx, inbox) = mpsc::channel();
        let (w, tx) = (Arc::clone(&writes), inbox_tx.clone());
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let (w, tx) = (Arc::clone(&w), tx.clone());
                std::thread::spawn(move || accept_conn(stream, w, tx));
            }
        });
        Ok(TcpTransport { me, local_addr, writes, dialed: BTreeMap::new(), inbox, inbox_tx })
    }

    /// The bound listen address (with the OS-assigned port filled in).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// One dial cycle: connect with linear backoff, introduce ourselves,
    /// register the write half, and start a reader for the responses the
    /// peer will send back down this stream.
    fn dial(&mut self, peer: Ident, addr: SocketAddr) -> Result<(), NetError> {
        let mut last_err = NetError::Unreachable(peer);
        for attempt in 1..=DIAL_ATTEMPTS {
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.write_all(&NetMsg::Hello { from: self.me }.to_frame())?;
                    let clone = stream.try_clone()?;
                    let tx = self.inbox_tx.clone();
                    std::thread::spawn(move || reader_loop(peer, stream, tx));
                    // A fresh dial replaces any stale stream: the old one
                    // is the reason we are reconnecting.
                    self.writes.lock().expect("write map lock").insert(peer, clone);
                    self.dialed.insert(peer, addr);
                    return Ok(());
                }
                Err(e) => {
                    last_err = NetError::Io(e.to_string());
                    std::thread::sleep((DIAL_BACKOFF * attempt).min(DIAL_BACKOFF_CAP));
                }
            }
        }
        Err(last_err)
    }

    fn write_frame(&self, to: Ident, frame: &[u8]) -> Result<(), NetError> {
        let mut writes = self.writes.lock().expect("write map lock");
        match writes.get_mut(&to) {
            Some(stream) => stream.write_all(frame).map_err(NetError::from),
            None => Err(NetError::Unreachable(to)),
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> Ident {
        self.me
    }

    fn connect(&mut self, peer: Ident, addr: &PeerAddr) -> Result<(), NetError> {
        let PeerAddr::Socket(addr) = addr else {
            return Err(NetError::Io("TcpTransport requires PeerAddr::Socket".into()));
        };
        // Keep an existing stream (first wins, FIFO per pair) but remember
        // the address so reconnect-on-send knows where to go.
        self.dialed.insert(peer, *addr);
        if self.writes.lock().expect("write map lock").contains_key(&peer) {
            return Ok(());
        }
        self.dial(peer, *addr)
    }

    fn send(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError> {
        let frame = msg.to_frame();
        match self.write_frame(to, &frame) {
            Ok(()) => Ok(()),
            Err(first) => {
                // Reconnect path: only dialed peers have a known address.
                let Some(addr) = self.dialed.get(&to).copied() else { return Err(first) };
                self.writes.lock().expect("write map lock").remove(&to);
                self.dial(to, addr)?;
                self.write_frame(to, &frame)
            }
        }
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<(Ident, NetMsg), NetError> {
        match deadline {
            None => match self.inbox.try_recv() {
                Ok(pair) => Ok(pair),
                Err(mpsc::TryRecvError::Empty) => Err(NetError::Timeout),
                Err(mpsc::TryRecvError::Disconnected) => Err(NetError::Closed),
            },
            Some(d) => match self.inbox.recv_timeout(d) {
                Ok(pair) => Ok(pair),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u64) -> Ident {
        Ident::from_raw(x)
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("loopback addr")
    }

    #[test]
    fn dial_handshake_and_roundtrip() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        a.send(id(2), NetMsg::Ping).unwrap();
        let (from, msg) = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((from, msg), (id(1), NetMsg::Ping));
        // b replies over the accepted connection without ever dialing a.
        b.send(id(1), NetMsg::Pong { serving: true }).unwrap();
        let (from, msg) = a.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((from, msg), (id(2), NetMsg::Pong { serving: true }));
    }

    #[test]
    fn per_pair_order_is_preserved() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        for rpc in 0..100u64 {
            a.send(id(2), NetMsg::GetReq { rpc, key: rpc }).unwrap();
        }
        for rpc in 0..100u64 {
            let (_, msg) = b.recv(Some(Duration::from_secs(5))).unwrap();
            assert_eq!(msg, NetMsg::GetReq { rpc, key: rpc });
        }
    }

    #[test]
    fn send_without_route_is_unreachable() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        assert_eq!(a.send(id(9), NetMsg::Ping), Err(NetError::Unreachable(id(9))));
    }

    #[test]
    fn big_state_frames_survive_the_socket() {
        use rechord_core::state::PeerState;
        use rechord_graph::NodeRef;
        let mut st = PeerState::new();
        for i in 0..512u64 {
            st.levels.get_mut(&0).unwrap().nu.insert(NodeRef::real(id(i * 7 + 3)));
        }
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        let msg = NetMsg::StateSync { round: 1, state: Box::new(st) };
        a.send(id(2), msg.clone()).unwrap();
        let (_, got) = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(got, msg);
    }
}

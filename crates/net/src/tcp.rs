//! The socket backend: [`NetMsg`] frames over `std::net` TCP.
//!
//! Lifecycle: an actor `bind`s a listener (an accept thread runs for the
//! transport's lifetime), then `connect`s to the peers it wants to dial —
//! each dial retries with linear backoff until the attempt budget runs
//! out, sends a [`NetMsg::Hello`] so the acceptor knows who arrived, and
//! spawns a reader thread that decodes frames into one shared inbox
//! channel. Accepted connections are identified by their leading `Hello`
//! and their write halves are registered too, so an actor can reply to
//! someone who dialed *it* (how server peers answer a dial-only client).
//!
//! Per pair, exactly one stream is ever used for sending (first
//! registered wins), so the FIFO guarantee of the [`Transport`] contract
//! reduces to TCP's own in-order delivery. A send onto a broken stream
//! triggers one reconnect/backoff cycle for dialed peers before
//! surfacing [`NetError::Unreachable`].
//!
//! **Send path.** Each peer owns its own locked `ConnWriter`: a cork
//! buffer frames are encoded into *in place* ([`NetMsg::frame_into`], no
//! per-send allocation) plus the stream they flush to. The registry map
//! is only locked long enough to clone the per-peer handle, so a blocked
//! write to one peer never stalls sends to another (the old design held
//! one global mutex across every `write_all`). [`Transport::send`]
//! flushes eagerly; [`Transport::send_corked`] defers so back-to-back
//! frames coalesce into one syscall at the next flush — the cork buffer
//! also force-flushes past `CORK_FLUSH_BYTES` to bound memory.
//!
//! **Receive path.** Each reader thread reuses one grow-only payload
//! buffer across frames (allocation-free after warm-up) and counts every
//! corrupt header or undecodable payload in a shared transport stat
//! ([`TcpTransport::wire_errors`]) before dropping the connection, so a
//! mis-speaking peer is observable instead of just "hung".

use crate::lock::{lock_or_poison, lock_or_recover};
use crate::message::NetMsg;
use crate::transport::{NetError, PeerAddr, Transport};
use crate::wire::{check_header, HEADER_LEN};
use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Dial attempts before a connect gives up.
const DIAL_ATTEMPTS: u32 = 60;
/// Base backoff between dial attempts (linear: `attempt * base`, capped).
const DIAL_BACKOFF: Duration = Duration::from_millis(50);
/// Backoff cap so a long outage doesn't grow unbounded sleeps.
const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(500);
/// A cork buffer past this size force-flushes on the next enqueue, so a
/// caller corking a large batch cannot grow the buffer without bound.
const CORK_FLUSH_BYTES: usize = 256 * 1024;

/// Shared per-endpoint transport counters.
#[derive(Default)]
struct TcpStats {
    /// Frames dropped as undecodable (bad header or payload decode).
    wire_errors: AtomicU64,
}

/// The send half of one peer connection: the stream plus a grow-only cork
/// buffer frames are encoded straight into. Flushing writes the whole
/// buffer with one `write_all` and keeps the capacity.
struct ConnWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter { stream, buf: Vec::new() }
    }

    /// Encodes `msg` onto the cork buffer; force-flushes first if the
    /// buffer already exceeds its size bound.
    fn enqueue(&mut self, msg: &NetMsg) -> std::io::Result<()> {
        if self.buf.len() >= CORK_FLUSH_BYTES {
            self.flush()?;
        }
        msg.frame_into(&mut self.buf);
        Ok(())
    }

    /// Writes every corked byte in one syscall. On failure the buffer is
    /// kept, so a reconnect can replay the unsent frames.
    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.stream.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }
}

/// One peer's locked writer, shared between the owning transport and the
/// accept thread that may register it.
type PeerWriter = Arc<Mutex<ConnWriter>>;

/// Registry of send halves. The outer lock is held only to look up or
/// register a peer (never across a write), so sends to different peers
/// proceed in parallel and a full socket buffer on one connection cannot
/// stall the rest.
type WriteMap = Arc<Mutex<BTreeMap<Ident, PeerWriter>>>;

/// Read-side buffer: a whole pipelined window of frames usually lands in
/// one syscall, so the per-frame header+payload reads hit memory.
const READ_BUF_BYTES: usize = 64 * 1024;

/// Reads frames off `stream` and pushes decoded messages, tagged with
/// `from`, into the shared inbox until EOF or a wire/socket error. The
/// stream is read through a [`BufReader`] (coalesced sends arrive as one
/// syscall) and one payload buffer is reused across frames (grow-only,
/// allocation-free after warm-up); undecodable input bumps
/// `stats.wire_errors` before the connection is dropped.
fn reader_loop(
    from: Ident,
    stream: TcpStream,
    inbox: mpsc::Sender<(Ident, NetMsg)>,
    stats: Arc<TcpStats>,
) {
    let mut stream = std::io::BufReader::with_capacity(READ_BUF_BYTES, stream);
    let mut header = [0u8; HEADER_LEN];
    let mut payload: Vec<u8> = Vec::new();
    loop {
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or reset: the peer hung up
        }
        let len = match check_header(&header) {
            Ok(len) => len as usize,
            Err(_) => {
                // Corrupt stream: count it, then drop the connection.
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        if payload.len() < len {
            payload.resize(len, 0);
        }
        if stream.read_exact(&mut payload[..len]).is_err() {
            return;
        }
        match NetMsg::decode(&payload[..len]) {
            Ok(msg) => {
                if inbox.send((from, msg)).is_err() {
                    return; // transport dropped
                }
            }
            Err(_) => {
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Handles one accepted connection: the first frame must be a `Hello`
/// identifying the dialer; the write half is then registered (unless a
/// stream for that peer already exists) and the reader loop takes over.
fn accept_conn(
    stream: TcpStream,
    writes: WriteMap,
    inbox: mpsc::Sender<(Ident, NetMsg)>,
    stats: Arc<TcpStats>,
) {
    let mut s = stream;
    let mut header = [0u8; HEADER_LEN];
    if s.read_exact(&mut header).is_err() {
        return;
    }
    let Ok(len) = check_header(&header) else {
        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let mut payload = vec![0u8; len as usize];
    if s.read_exact(&mut payload).is_err() {
        return;
    }
    let Ok(NetMsg::Hello { from }) = NetMsg::decode(&payload) else {
        stats.wire_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let _ = s.set_nodelay(true); // RPC frames, not bulk: Nagle only adds latency
    if let Ok(clone) = s.try_clone() {
        // First registered stream wins: if we also dialed this peer, the
        // existing entry keeps sends on one stream (FIFO per pair).
        lock_or_recover(&writes)
            .entry(from)
            .or_insert_with(|| Arc::new(Mutex::new(ConnWriter::new(clone))));
    }
    reader_loop(from, s, inbox, stats);
}

/// The TCP transport endpoint of one cluster actor.
pub struct TcpTransport {
    me: Ident,
    local_addr: SocketAddr,
    writes: WriteMap,
    dialed: BTreeMap<Ident, SocketAddr>,
    /// Peers with (possibly) corked frames since the last flush.
    corked: BTreeSet<Ident>,
    stats: Arc<TcpStats>,
    inbox: mpsc::Receiver<(Ident, NetMsg)>,
    inbox_tx: mpsc::Sender<(Ident, NetMsg)>,
}

impl TcpTransport {
    /// Binds `listen` (use port 0 for an OS-assigned port) and starts the
    /// accept thread.
    pub fn bind(me: Ident, listen: SocketAddr) -> Result<Self, NetError> {
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let writes: WriteMap = Arc::default();
        let stats: Arc<TcpStats> = Arc::default();
        let (inbox_tx, inbox) = mpsc::channel();
        let (w, tx, st) = (Arc::clone(&writes), inbox_tx.clone(), Arc::clone(&stats));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let (w, tx, st) = (Arc::clone(&w), tx.clone(), Arc::clone(&st));
                std::thread::spawn(move || accept_conn(stream, w, tx, st));
            }
        });
        Ok(TcpTransport {
            me,
            local_addr,
            writes,
            dialed: BTreeMap::new(),
            corked: BTreeSet::new(),
            stats,
            inbox,
            inbox_tx,
        })
    }

    /// The bound listen address (with the OS-assigned port filled in).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// One dial cycle: connect with linear backoff, introduce ourselves,
    /// register the write half, and start a reader for the responses the
    /// peer will send back down this stream.
    fn dial(&mut self, peer: Ident, addr: SocketAddr) -> Result<(), NetError> {
        let mut last_err = NetError::Unreachable(peer);
        for attempt in 1..=DIAL_ATTEMPTS {
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    let _ = stream.set_nodelay(true);
                    stream.write_all(&NetMsg::Hello { from: self.me }.to_frame())?;
                    let clone = stream.try_clone()?;
                    let tx = self.inbox_tx.clone();
                    let st = Arc::clone(&self.stats);
                    std::thread::spawn(move || reader_loop(peer, stream, tx, st));
                    // A fresh dial replaces any stale stream: the old one
                    // is the reason we are reconnecting.
                    lock_or_poison(&self.writes, "write map")?
                        .insert(peer, Arc::new(Mutex::new(ConnWriter::new(clone))));
                    self.dialed.insert(peer, addr);
                    return Ok(());
                }
                Err(e) => {
                    last_err = NetError::Io(e.to_string());
                    std::thread::sleep((DIAL_BACKOFF * attempt).min(DIAL_BACKOFF_CAP));
                }
            }
        }
        Err(last_err)
    }

    /// The registered writer for `to`, if any. Holds the registry lock
    /// only for the lookup.
    fn writer_of(&self, to: Ident) -> Option<PeerWriter> {
        lock_or_recover(&self.writes).get(&to).cloned()
    }

    /// Encodes `msg` onto the peer's cork buffer (flushing inline only
    /// past the size bound).
    fn enqueue(&self, to: Ident, msg: &NetMsg) -> Result<(), NetError> {
        match self.writer_of(to) {
            Some(w) => lock_or_poison(&w, "conn writer")?.enqueue(msg).map_err(NetError::from),
            None => Err(NetError::Unreachable(to)),
        }
    }

    /// Flushes the peer's cork buffer. On a socket error, runs one
    /// reconnect cycle (dialed peers only) and replays the unsent bytes
    /// over the fresh stream.
    fn flush_peer(&mut self, to: Ident) -> Result<(), NetError> {
        let Some(w) = self.writer_of(to) else { return Err(NetError::Unreachable(to)) };
        let flushed = lock_or_poison(&w, "conn writer")?.flush();
        match flushed {
            Ok(()) => Ok(()),
            Err(first) => {
                // Reconnect path: only dialed peers have a known address.
                let Some(addr) = self.dialed.get(&to).copied() else {
                    return Err(NetError::Io(first.to_string()));
                };
                // The failed writer kept its unsent frames; carry them over.
                let pending = std::mem::take(&mut lock_or_poison(&w, "conn writer")?.buf);
                lock_or_poison(&self.writes, "write map")?.remove(&to);
                self.dial(to, addr)?;
                let w = self.writer_of(to).ok_or(NetError::Unreachable(to))?;
                let mut fresh = lock_or_poison(&w, "conn writer")?;
                fresh.buf = pending;
                fresh.flush().map_err(NetError::from)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local(&self) -> Ident {
        self.me
    }

    fn connect(&mut self, peer: Ident, addr: &PeerAddr) -> Result<(), NetError> {
        let PeerAddr::Socket(addr) = addr else {
            return Err(NetError::Io("TcpTransport requires PeerAddr::Socket".into()));
        };
        // Keep an existing stream (first wins, FIFO per pair) but remember
        // the address so reconnect-on-send knows where to go.
        self.dialed.insert(peer, *addr);
        if lock_or_poison(&self.writes, "write map")?.contains_key(&peer) {
            return Ok(());
        }
        self.dial(peer, *addr)
    }

    fn send(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError> {
        self.send_corked(to, msg)?;
        self.flush(to)
    }

    fn send_corked(&mut self, to: Ident, msg: NetMsg) -> Result<(), NetError> {
        match self.enqueue(to, &msg) {
            Ok(()) => {
                self.corked.insert(to);
                Ok(())
            }
            Err(first) => {
                // An enqueue only touches the socket when the buffer bound
                // forces an inline flush, so a failure here is a dead
                // stream: run one reconnect cycle, carry the unsent corked
                // bytes over, and retry.
                let Some(addr) = self.dialed.get(&to).copied() else { return Err(first) };
                let pending = match self.writer_of(to) {
                    Some(w) => std::mem::take(&mut lock_or_poison(&w, "conn writer")?.buf),
                    None => Vec::new(),
                };
                lock_or_poison(&self.writes, "write map")?.remove(&to);
                self.dial(to, addr)?;
                let w = self.writer_of(to).ok_or(NetError::Unreachable(to))?;
                lock_or_poison(&w, "conn writer")?.buf = pending;
                self.enqueue(to, &msg)?;
                self.corked.insert(to);
                Ok(())
            }
        }
    }

    fn flush(&mut self, to: Ident) -> Result<(), NetError> {
        self.corked.remove(&to);
        self.flush_peer(to)
    }

    fn flush_all(&mut self) -> Result<(), NetError> {
        while let Some(peer) = self.corked.pop_first() {
            self.flush_peer(peer)?;
        }
        Ok(())
    }

    fn wire_errors(&self) -> u64 {
        self.stats.wire_errors.load(Ordering::Relaxed)
    }

    fn recv(&mut self, deadline: Option<Duration>) -> Result<(Ident, NetMsg), NetError> {
        match deadline {
            None => match self.inbox.try_recv() {
                Ok(pair) => Ok(pair),
                Err(mpsc::TryRecvError::Empty) => Err(NetError::Timeout),
                Err(mpsc::TryRecvError::Disconnected) => Err(NetError::Closed),
            },
            Some(d) => match self.inbox.recv_timeout(d) {
                Ok(pair) => Ok(pair),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(NetError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u64) -> Ident {
        Ident::from_raw(x)
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("loopback addr")
    }

    #[test]
    fn dial_handshake_and_roundtrip() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        a.send(id(2), NetMsg::Ping).unwrap();
        let (from, msg) = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((from, msg), (id(1), NetMsg::Ping));
        // b replies over the accepted connection without ever dialing a.
        b.send(id(1), NetMsg::Pong { serving: true }).unwrap();
        let (from, msg) = a.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!((from, msg), (id(2), NetMsg::Pong { serving: true }));
        assert_eq!(a.wire_errors(), 0);
        assert_eq!(b.wire_errors(), 0);
    }

    #[test]
    fn per_pair_order_is_preserved() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        for rpc in 0..100u64 {
            a.send(id(2), NetMsg::GetReq { rpc, key: rpc }).unwrap();
        }
        for rpc in 0..100u64 {
            let (_, msg) = b.recv(Some(Duration::from_secs(5))).unwrap();
            assert_eq!(msg, NetMsg::GetReq { rpc, key: rpc });
        }
    }

    #[test]
    fn corked_sends_coalesce_and_flush_in_order() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        for rpc in 0..64u64 {
            a.send_corked(id(2), NetMsg::GetReq { rpc, key: rpc }).unwrap();
        }
        a.flush_all().unwrap();
        for rpc in 0..64u64 {
            let (_, msg) = b.recv(Some(Duration::from_secs(5))).unwrap();
            assert_eq!(msg, NetMsg::GetReq { rpc, key: rpc });
        }
        // Interleaving corked and eager sends keeps per-pair FIFO.
        a.send_corked(id(2), NetMsg::Ping).unwrap();
        a.send(id(2), NetMsg::Shutdown).unwrap();
        assert_eq!(b.recv(Some(Duration::from_secs(5))).unwrap().1, NetMsg::Ping);
        assert_eq!(b.recv(Some(Duration::from_secs(5))).unwrap().1, NetMsg::Shutdown);
    }

    #[test]
    fn corrupt_frames_are_counted_not_silent() {
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        // Speak raw garbage at b after a valid handshake: the reader must
        // count a wire error when it drops the connection.
        let mut s = TcpStream::connect(b.local_addr()).unwrap();
        s.write_all(&NetMsg::Hello { from: id(7) }.to_frame()).unwrap();
        s.write_all(&NetMsg::Ping.to_frame()).unwrap();
        assert_eq!(b.recv(Some(Duration::from_secs(5))).unwrap(), (id(7), NetMsg::Ping));
        assert_eq!(b.wire_errors(), 0);
        s.write_all(b"this is not a frame, not even close....").unwrap();
        s.flush().unwrap();
        // The reader drops the connection and bumps the counter.
        let t0 = std::time::Instant::now();
        while b.wire_errors() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(b.wire_errors(), 1);
    }

    #[test]
    fn send_without_route_is_unreachable() {
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        assert_eq!(a.send(id(9), NetMsg::Ping), Err(NetError::Unreachable(id(9))));
    }

    #[test]
    fn big_state_frames_survive_the_socket() {
        use rechord_core::state::PeerState;
        use rechord_graph::NodeRef;
        let mut st = PeerState::new();
        for i in 0..512u64 {
            st.levels.get_mut(&0).unwrap().nu.insert(NodeRef::real(id(i * 7 + 3)));
        }
        let mut a = TcpTransport::bind(id(1), loopback()).unwrap();
        let mut b = TcpTransport::bind(id(2), loopback()).unwrap();
        a.connect(id(2), &PeerAddr::Socket(b.local_addr())).unwrap();
        let msg = NetMsg::StateSync { round: 1, state: Box::new(st) };
        a.send(id(2), msg.clone()).unwrap();
        let (_, got) = b.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(got, msg);
    }
}

//! One Re-Chord peer as a cluster actor: stabilization, gossip, and
//! data-plane serving over any [`Transport`].
//!
//! A [`NodePeer`] lives through three phases:
//!
//! 1. **Stabilize** — run protocol rounds through [`RoundSync`] until the
//!    global fixpoint, reproducing the direct-call engine bit for bit.
//! 2. **Gossip** — broadcast the successor list read out of the converged
//!    state and cross-check every peer's list against the shared roster.
//!    Only when all lists verify does the peer flip to `serving`; a
//!    stabilization that produced a wrong ring would be caught here, so
//!    the gossip is load-bearing, not decorative.
//! 3. **Serve** — answer get/put/lookup RPCs with recursive greedy
//!    routing: each hop is one [`route_step`] against the peer's *local*
//!    routing view ([`RoutingTable::local_view`]), forwarded peer to peer
//!    until the responsible peer replies straight to the client. The hop
//!    and probe accounting mirrors [`rechord_routing::KvStore`] exactly,
//!    which the cluster bench pins (`TCP ≡ in-mem ≡ direct-call oracle`).

use crate::message::{ForwardedRpc, NetMsg, RpcOp};
use crate::sync::{RoundSync, StepOutcome};
use crate::transport::{NetError, Transport};
use rechord_core::protocol::ReChordProtocol;
use rechord_core::state::PeerState;
use rechord_graph::NodeRef;
use rechord_id::{IdSpace, Ident};
use rechord_routing::{route_step, HopDecision, RoutingTable};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Route-step budget per RPC, carried across forwards — the same `2 * 64`
/// bound [`rechord_routing::route`] applies to its internal fold.
const ROUTE_STEP_BUDGET: u32 = 2 * 64;

/// Successor-list length gossiped after stabilization.
const GOSSIP_SUCCESSORS: usize = 3;

/// Static configuration of one node process.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This peer's identifier.
    pub me: Ident,
    /// Every peer in the cluster (must include `me`).
    pub roster: Vec<Ident>,
    /// Initial knowledge: the out-contacts seeded into `N_u(u_0)`,
    /// matching `InitialTopology::contacts_of`.
    pub contacts: Vec<Ident>,
    /// Seed of the [`IdSpace`] hashing application keys onto the ring
    /// (shared by every actor, including the client and the oracle).
    pub space_seed: u64,
    /// Replica-set width for puts (clamped to at least 1).
    pub replication: usize,
    /// Stabilization round cap; exceeding it is a run failure.
    pub max_rounds: u64,
}

/// Final counters of one node, reported over [`NetMsg::Stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeReport {
    /// Protocol rounds executed.
    pub rounds: u64,
    /// Did the node observe the global fixpoint?
    pub converged: bool,
    /// Protocol messages delivered locally (this node's share of the
    /// engine's `total_messages`).
    pub delivered: u64,
    /// Protocol messages addressed outside the roster.
    pub dropped: u64,
    /// Data-plane RPCs this node answered as responsible peer.
    pub served: u64,
    /// Frames the transport dropped as undecodable (corrupt header or
    /// payload); zero on a healthy cluster.
    pub wire_errors: u64,
}

/// What a message told the driver to do next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep running.
    Continue,
    /// An orderly [`NetMsg::Shutdown`] arrived.
    Shutdown,
}

/// One Re-Chord peer bound to a transport endpoint.
pub struct NodePeer<T: Transport> {
    transport: T,
    cfg: NodeConfig,
    sync: RoundSync<ReChordProtocol>,
    space: IdSpace,
    /// Local routing view, built once from the converged state.
    table: Option<RoutingTable>,
    /// Replicated key-value shard: `key → (version, value)`.
    store: BTreeMap<u64, (u64, String)>,
    gossip_sent: bool,
    /// Peers whose gossiped successor list verified against the roster.
    gossip_ok: BTreeSet<Ident>,
    serving: bool,
    served: u64,
}

impl<T: Transport> NodePeer<T> {
    /// A peer over `transport` (already connected to the roster), seeded
    /// with the initial contacts of `cfg`.
    pub fn new(transport: T, cfg: NodeConfig) -> Self {
        let initial = PeerState::with_contacts(cfg.contacts.iter().map(|&c| NodeRef::real(c)));
        let sync = RoundSync::new(ReChordProtocol::full(), cfg.me, cfg.roster.clone(), initial);
        let space = IdSpace::new(cfg.space_seed);
        NodePeer {
            transport,
            cfg,
            sync,
            space,
            table: None,
            store: BTreeMap::new(),
            gossip_sent: false,
            gossip_ok: BTreeSet::new(),
            serving: false,
            served: 0,
        }
    }

    /// This peer's identifier.
    pub fn me(&self) -> Ident {
        self.cfg.me
    }

    /// The converged protocol state (the live state before convergence).
    pub fn state(&self) -> &PeerState {
        self.sync.state()
    }

    /// `Some(rounds)` once the global fixpoint was observed.
    pub fn converged(&self) -> Option<u64> {
        self.sync.converged()
    }

    /// Ready to answer data-plane RPCs?
    pub fn serving(&self) -> bool {
        self.serving
    }

    /// Protocol rounds executed so far.
    pub fn executed(&self) -> u64 {
        self.sync.executed()
    }

    /// Per-round local accounting (see [`crate::sync::NetRoundStats`]).
    pub fn trace(&self) -> &[crate::sync::NetRoundStats] {
        self.sync.trace()
    }

    /// Final counters for reports and [`NetMsg::Stats`].
    pub fn report(&self) -> NodeReport {
        let (delivered, dropped) = self
            .sync
            .trace()
            .iter()
            .fold((0u64, 0u64), |(d, x), s| (d + s.delivered as u64, x + s.dropped as u64));
        NodeReport {
            rounds: self.sync.executed(),
            converged: self.sync.converged().is_some(),
            delivered,
            dropped,
            served: self.served,
            wire_errors: self.transport.wire_errors(),
        }
    }

    /// The other roster peers, ascending.
    fn others(&self) -> Vec<Ident> {
        self.sync.roster().iter().copied().filter(|&p| p != self.cfg.me).collect()
    }

    /// This peer's roster successor (cyclic). `None` for a singleton.
    fn roster_successor_of(&self, peer: Ident) -> Option<Ident> {
        let roster = self.sync.roster();
        if roster.len() < 2 {
            return None;
        }
        let i = roster.binary_search(&peer).ok()?;
        Some(roster[(i + 1) % roster.len()])
    }

    /// Successor list read out of the local protocol state: known real
    /// nodes ordered by clockwise distance. In a correctly stabilized
    /// state, the head is the roster successor — which every receiver
    /// checks.
    fn successor_list(&self) -> Vec<Ident> {
        let me = self.cfg.me;
        let mut reals: Vec<Ident> = self
            .state()
            .levels
            .values()
            .flat_map(|vs| vs.all_targets())
            .filter(|t| t.is_real() && t.owner != me)
            .map(|t| t.owner)
            .collect();
        reals.sort_unstable_by_key(|&p| me.dist_cw(p));
        reals.dedup();
        reals.truncate(GOSSIP_SUCCESSORS);
        reals
    }

    /// The replica set for a ring position, mirroring
    /// `PlacementMap::replica_set`: the cyclic successor of `pos` in the
    /// roster plus the following `replication - 1` peers, clamped.
    fn replica_set(&self, pos: Ident) -> Vec<Ident> {
        let roster = self.sync.roster();
        let n = roster.len();
        if n == 0 {
            return Vec::new();
        }
        let start = match roster.binary_search(&pos) {
            Ok(i) => i,
            Err(i) if i < n => i,
            Err(_) => 0,
        };
        let r = self.cfg.replication.max(1).min(n);
        (0..r).map(|k| roster[(start + k) % n]).collect()
    }

    /// Drives the BSP state machine: announces when a cycle opens, steps
    /// when the snapshot completes, finishes when the batches complete,
    /// and transitions to gossip once converged. Call after every handled
    /// message and on idle.
    pub fn tick(&mut self) -> Result<(), NetError> {
        if self.sync.converged().is_none() {
            if let Some((round, state)) = self.sync.announce() {
                for peer in self.others() {
                    self.transport.send_corked(
                        peer,
                        NetMsg::StateSync { round, state: Box::new(state.clone()) },
                    )?;
                }
            }
            match self.sync.try_step() {
                StepOutcome::Pending => {}
                StepOutcome::Batches(batches) => {
                    let round = self.sync.executed();
                    for (peer, msgs) in batches {
                        self.transport.send_corked(peer, NetMsg::RoundMsgs { round, msgs })?;
                    }
                }
                StepOutcome::Converged { .. } => {}
            }
            self.sync.try_finish();
            if self.sync.converged().is_none() && self.sync.executed() >= self.cfg.max_rounds {
                return Err(NetError::Io(format!(
                    "no fixpoint within {} rounds",
                    self.cfg.max_rounds
                )));
            }
        }
        if self.sync.converged().is_some() && !self.gossip_sent {
            self.table =
                Some(RoutingTable::local_view(self.cfg.me, self.sync.state(), self.sync.roster()));
            let successors = self.successor_list();
            for peer in self.others() {
                self.transport.send_corked(
                    peer,
                    NetMsg::GossipSuccessors { successors: successors.clone() },
                )?;
            }
            self.gossip_sent = true;
            self.update_serving();
        }
        Ok(())
    }

    /// Re-evaluates the serving gate: converged, own successor list agrees
    /// with the roster, and every other peer's gossip verified.
    fn update_serving(&mut self) {
        if self.sync.converged().is_none() {
            return;
        }
        let own_ok = match self.roster_successor_of(self.cfg.me) {
            None => true, // singleton cluster
            Some(succ) => self.successor_list().first() == Some(&succ),
        };
        let all_gossip = self.gossip_ok.len() == self.others().len();
        self.serving = own_ok && all_gossip;
    }

    /// Handles one inbound message. Returns [`Control::Shutdown`] on an
    /// orderly shutdown request.
    pub fn handle(&mut self, from: Ident, msg: NetMsg) -> Result<Control, NetError> {
        match msg {
            NetMsg::Hello { .. } => {} // transport-level; nothing protocol to do
            NetMsg::StateSync { round, state } => {
                self.sync.on_state(from, round, *state).map_err(|e| NetError::Io(e.to_string()))?;
            }
            NetMsg::RoundMsgs { round, msgs } => {
                self.sync.on_msgs(from, round, msgs).map_err(|e| NetError::Io(e.to_string()))?;
            }
            NetMsg::GossipSuccessors { successors } => {
                // Load-bearing check: the gossiped head must be the
                // sender's roster successor, or the overlay ring and the
                // placement ring disagree and serving would corrupt data.
                let expect = self.roster_successor_of(from);
                if expect.is_none() || successors.first() == expect.as_ref() {
                    self.gossip_ok.insert(from);
                } else {
                    self.gossip_ok.remove(&from);
                }
                self.update_serving();
            }
            NetMsg::Ping => {
                self.transport.send_corked(from, NetMsg::Pong { serving: self.serving })?;
            }
            NetMsg::Pong { .. } => {} // peers don't poll each other; ignore
            NetMsg::GetReq { rpc, key } => {
                self.start_rpc(from, rpc, RpcOp::Get, key, String::new(), 0)?;
            }
            NetMsg::PutReq { rpc, key, value, version } => {
                self.start_rpc(from, rpc, RpcOp::Put, key, value, version)?;
            }
            NetMsg::LookupReq { rpc, key } => {
                self.start_rpc(from, rpc, RpcOp::Lookup, key, String::new(), 0)?;
            }
            NetMsg::Forward(fwd) => {
                self.advance_rpc(*fwd)?;
            }
            NetMsg::ReplicaPut { key, version, value, .. } => {
                let newer = self.store.get(&key).is_none_or(|(v, _)| version >= *v);
                if newer {
                    self.store.insert(key, (version, value));
                }
            }
            NetMsg::Reply { .. } => {} // client-side message; ignore
            NetMsg::StatsReq => {
                let r = self.report();
                self.transport.send_corked(
                    from,
                    NetMsg::Stats {
                        rounds: r.rounds,
                        converged: r.converged,
                        delivered: r.delivered,
                        dropped: r.dropped,
                        served: r.served,
                        wire_errors: r.wire_errors,
                    },
                )?;
            }
            NetMsg::Shutdown => return Ok(Control::Shutdown),
            NetMsg::Stats { .. } => {} // client-side message; ignore
        }
        Ok(Control::Continue)
    }

    /// Entry point of an RPC at this peer: wrap it into a routed envelope
    /// with the cursor at our own position (exactly how `route` starts its
    /// fold) and advance it.
    fn start_rpc(
        &mut self,
        client: Ident,
        rpc: u64,
        op: RpcOp,
        key: u64,
        value: String,
        version: u64,
    ) -> Result<(), NetError> {
        let fwd = ForwardedRpc {
            rpc,
            client,
            op,
            key,
            value,
            version,
            cursor: self.cfg.me,
            hops: 0,
            steps: 0,
        };
        self.advance_rpc(fwd)
    }

    /// Runs [`route_step`] against the local view until the request either
    /// arrives here (serve + reply), moves to another peer (forward), gets
    /// stuck, or exhausts the shared step budget — the distributed replay
    /// of `route`'s fold, decision for decision.
    fn advance_rpc(&mut self, mut fwd: ForwardedRpc) -> Result<(), NetError> {
        let Some(table) = self.table.as_ref() else {
            // Not yet stabilized: refuse rather than route on a half-built
            // ring (clients gate on Pong{serving} so this is a protocol
            // violation, answered gracefully).
            return self.reply(fwd, false, None);
        };
        let pos = self.space.key_position(fwd.key);
        loop {
            if fwd.steps >= ROUTE_STEP_BUDGET {
                return self.reply(fwd, false, None);
            }
            match route_step(table, self.cfg.me, fwd.cursor, pos) {
                HopDecision::Arrived => return self.serve(fwd, pos),
                HopDecision::Next { peer, cursor } => {
                    fwd.steps += 1;
                    fwd.cursor = cursor;
                    if peer != self.cfg.me {
                        fwd.hops += 1;
                        return self.transport.send_corked(peer, NetMsg::Forward(Box::new(fwd)));
                    }
                    // else: a free local step through our own virtual nodes
                }
                HopDecision::Stuck => return self.reply(fwd, false, None),
            }
        }
    }

    /// The responsible peer answers: store access plus the probe-hop
    /// accounting of `KvStore::{get, put}`.
    fn serve(&mut self, mut fwd: ForwardedRpc, pos: Ident) -> Result<(), NetError> {
        self.served += 1;
        match fwd.op {
            RpcOp::Lookup => {
                let f = fwd;
                self.reply(f, true, None)
            }
            RpcOp::Put => {
                let newer = self.store.get(&fwd.key).is_none_or(|(v, _)| fwd.version >= *v);
                if newer {
                    self.store.insert(fwd.key, (fwd.version, fwd.value.clone()));
                }
                for replica in self.replica_set(pos).into_iter().skip(1) {
                    self.transport.send_corked(
                        replica,
                        NetMsg::ReplicaPut {
                            pos,
                            key: fwd.key,
                            version: fwd.version,
                            value: fwd.value.clone(),
                        },
                    )?;
                }
                self.reply(fwd, true, None)
            }
            RpcOp::Get => match self.store.get(&fwd.key) {
                // Hit at the primary: zero probe misses, as in the oracle's
                // static-placement lookup.
                Some((_, value)) => {
                    let value = value.clone();
                    self.reply(fwd, true, Some(value))
                }
                // Absent: the oracle charges the whole replica window.
                None => {
                    fwd.hops += self.replica_set(pos).len() as u32;
                    self.reply(fwd, true, None)
                }
            },
        }
    }

    /// Terminal answer, straight to the client that issued the RPC.
    fn reply(
        &mut self,
        fwd: ForwardedRpc,
        ok: bool,
        value: Option<String>,
    ) -> Result<(), NetError> {
        let responsible = self
            .table
            .as_ref()
            .and_then(|t| t.responsible_for(self.space.key_position(fwd.key)))
            .unwrap_or(self.cfg.me);
        self.transport.send_corked(
            fwd.client,
            NetMsg::Reply { rpc: fwd.rpc, ok, hops: fwd.hops, responsible, value },
        )
    }

    /// Non-blocking pump: tick, then drain and handle everything pending,
    /// ticking after each message; corked output is flushed once at the
    /// end of the drain. For deterministic in-process drivers.
    pub fn pump(&mut self) -> Result<Control, NetError> {
        self.tick()?;
        while let Some((from, msg)) = self.transport.try_recv()? {
            if self.handle(from, msg)? == Control::Shutdown {
                self.transport.flush_all()?;
                return Ok(Control::Shutdown);
            }
            self.tick()?;
        }
        self.transport.flush_all()?;
        Ok(Control::Continue)
    }

    /// Blocking main loop for a node process, structured as batch drains:
    /// tick, handle *everything already queued* without blocking (ticking
    /// between messages), flush the corked replies in one write per peer,
    /// and only then wait up to `poll` for the next wakeup. Pipelined
    /// clients land whole windows in the inbox at once, so this turns N
    /// request/reply syscall pairs into one read and one write per batch.
    /// Runs until an orderly shutdown; returns the final counters.
    pub fn run(mut self, poll: Duration) -> Result<NodeReport, NetError> {
        loop {
            self.tick()?;
            // Batch drain: everything pending, no blocking, one flush.
            while let Some((from, msg)) = self.transport.try_recv()? {
                if self.handle(from, msg)? == Control::Shutdown {
                    self.transport.flush_all()?;
                    return Ok(self.report());
                }
                self.tick()?;
            }
            // Liveness rule: never block with corked frames queued.
            self.transport.flush_all()?;
            match self.transport.recv(Some(poll)) {
                Ok((from, msg)) => {
                    if self.handle(from, msg)? == Control::Shutdown {
                        self.transport.flush_all()?;
                        return Ok(self.report());
                    }
                }
                Err(NetError::Timeout) => {} // idle: loop and tick again
                Err(e) => return Err(e),
            }
        }
    }
}

//! Terminal plotting: render experiment series as ASCII charts, so the
//! figure binaries can *show* the paper's figures, not just tabulate them.

/// An xy-series with a label.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, in any order (plotting sorts internally by x).
    pub points: Vec<(f64, f64)>,
    /// Glyph used for this series.
    pub glyph: char,
}

impl Series {
    /// Builds a series from parallel x/y slices.
    pub fn new(label: impl Into<String>, glyph: char, xs: &[f64], ys: &[f64]) -> Self {
        Series {
            label: label.into(),
            glyph,
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
        }
    }
}

/// An ASCII scatter/line chart of one or more series on shared axes.
#[derive(Clone, Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    series: Vec<Series>,
    title: String,
}

impl AsciiChart {
    /// A chart with the given drawing area (columns × rows of glyphs).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        AsciiChart {
            width: width.clamp(16, 200),
            height: height.clamp(6, 60),
            series: Vec::new(),
            title: title.into(),
        }
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart. Returns an empty string if no finite points exist.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &pts {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        if (x_max - x_min).abs() < f64::EPSILON {
            x_max = x_min + 1.0;
        }
        // anchor the y-axis at zero for magnitude series, like the paper's plots
        if y_min > 0.0 {
            y_min = 0.0;
        }
        if (y_max - y_min).abs() < f64::EPSILON {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy.min(self.height - 1);
                let col = cx.min(self.width - 1);
                grid[row][col] = s.glyph;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let y_label_w = 10usize;
        for (r, row) in grid.iter().enumerate() {
            let frac = 1.0 - r as f64 / (self.height - 1) as f64;
            let y_val = y_min + frac * (y_max - y_min);
            let label = if r == 0 || r == self.height - 1 || r == self.height / 2 {
                format!("{y_val:>9.1}")
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&" ".repeat(y_label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{}{:<12.1}{:>width$.1}\n",
            " ".repeat(y_label_w + 1),
            x_min,
            x_max,
            width = self.width.saturating_sub(12)
        ));
        for s in &self.series {
            out.push_str(&format!("{}  '{}' = {}\n", " ".repeat(y_label_w), s.glyph, s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_bounds() {
        let xs = [0.0, 50.0, 100.0];
        let ys = [0.0, 25.0, 100.0];
        let chart = AsciiChart::new("t", 40, 10).series(Series::new("s", '*', &xs, &ys));
        let s = chart.render();
        assert!(s.contains('*'));
        assert!(s.contains("t\n"));
        assert!(s.contains("'*' = s"));
        // ~height+legend lines
        assert!(s.lines().count() >= 12);
    }

    #[test]
    fn empty_series_renders_empty() {
        let chart = AsciiChart::new("e", 40, 10);
        assert!(chart.render().is_empty());
    }

    #[test]
    fn degenerate_single_point() {
        let chart = AsciiChart::new("p", 20, 8).series(Series::new("one", 'o', &[5.0], &[7.0]));
        let s = chart.render();
        assert!(s.contains('o'));
    }

    #[test]
    fn two_series_share_axes() {
        let xs = [1.0, 2.0, 3.0];
        let a = Series::new("a", 'a', &xs, &[1.0, 2.0, 3.0]);
        let b = Series::new("b", 'b', &xs, &[3.0, 2.0, 1.0]);
        let s = AsciiChart::new("ab", 30, 9).series(a).series(b).render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn non_finite_points_ignored() {
        let s = AsciiChart::new("nan", 20, 8)
            .series(Series::new("x", 'x', &[f64::NAN, 1.0], &[1.0, 2.0]))
            .render();
        assert!(s.contains('x'));
    }
}

//! Aligned console tables and CSV emission for the experiment binaries.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table, printed the way the paper reports series.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let rendered: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&rendered)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate().take(cols) {
                widths[k] = widths[k].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (k, cell) in cells.iter().enumerate() {
                if k > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[k]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// The table as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to the experiment outputs.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_csv(path, &self.to_csv())
    }
}

/// Writes text to `path`, creating parent directories.
pub fn write_csv(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_aligned() {
        let mut t = Table::new(&["n", "rounds"]);
        t.row(&["5".into(), "8".into()]);
        t.row(&["105".into(), "67".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("rounds"));
        assert!(lines[3].contains("105"));
        // all rows equal width
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(&["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a,b".into(), "x\"y".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("rechord-analysis-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(&["a"]);
        t.row(&["1".into()]);
        t.write_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! Summary statistics over trial results.

/// Mean/deviation/order statistics of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n-1` denominator; `0` for `n <= 1`).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (midpoint-interpolated for even sizes).
    pub median: f64,
}

impl Stats {
    /// Computes statistics over `xs`. Empty input yields all-zero stats.
    pub fn from_slice(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Stats::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Stats { n, mean, std_dev: var.sqrt(), min: sorted[0], max: sorted[n - 1], median }
    }

    /// Convenience: statistics of an iterator of counts.
    pub fn from_counts(xs: impl IntoIterator<Item = usize>) -> Self {
        let v: Vec<f64> = xs.into_iter().map(|x| x as f64).collect();
        Self::from_slice(&v)
    }

    /// Standard error of the mean.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sample() {
        let s = Stats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // sample std dev of this classic sample is ~2.138
        assert!((s.std_dev - 2.13809).abs() < 1e-4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_and_empty() {
        let s = Stats::from_slice(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(Stats::from_slice(&[]), Stats::default());
    }

    #[test]
    fn from_counts_matches() {
        let a = Stats::from_counts([1usize, 2, 3]);
        let b = Stats::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn sem_shrinks_with_n() {
        let small = Stats::from_slice(&[1.0, 3.0]);
        let big = Stats::from_slice(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]);
        assert!(big.sem() < small.sem());
    }
}

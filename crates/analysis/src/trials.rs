//! Deterministic parallel Monte-Carlo trials.

use std::sync::Mutex;

/// Runs `f(seed)` for every seed, sharded over `threads` OS threads, and
/// returns the results **in seed order** (determinism: the schedule cannot
/// affect the output). Each trial is independent, so this is the
/// embarrassingly parallel outer loop of every experiment (30 graphs per
/// size in the paper's §5).
pub fn parallel_trials<T, F>(seeds: &[u64], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1).min(seeds.len().max(1));
    if threads <= 1 {
        return seeds.iter().map(|&s| f(s)).collect();
    }

    // Work-stealing over an index counter; results are placed by index so
    // the output order is independent of the schedule.
    let next = Mutex::new(0usize);
    let slots: Vec<Mutex<Option<T>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = {
                    let mut guard = next.lock().expect("index lock poisoned");
                    let idx = *guard;
                    if idx >= seeds.len() {
                        break;
                    }
                    *guard += 1;
                    idx
                };
                let result = f(seeds[idx]);
                *slots[idx].lock().expect("slot lock poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("slot lock poisoned").expect("every trial produced a result")
        })
        .collect()
}

/// The seed list `base..base+count` — one seed per trial, reproducible.
pub fn seed_range(base: u64, count: usize) -> Vec<u64> {
    (0..count as u64).map(|k| base.wrapping_add(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_seed_order_regardless_of_threads() {
        let seeds = seed_range(100, 37);
        let serial = parallel_trials(&seeds, 1, |s| s * 3);
        let parallel = parallel_trials(&seeds, 8, |s| s * 3);
        assert_eq!(serial, parallel);
        assert_eq!(serial[0], 300);
        assert_eq!(serial.len(), 37);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let seeds = seed_range(0, 16);
        let out = parallel_trials(&seeds, 4, |s| {
            // deliberately uneven work
            let mut acc = 0u64;
            for i in 0..(s * 1000) {
                acc = acc.wrapping_add(i);
            }
            (s, acc)
        });
        assert_eq!(out.len(), 16);
        assert!(out.iter().enumerate().all(|(i, (s, _))| *s == i as u64));
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_trials::<u64, _>(&[], 4, |s| s).is_empty());
        assert_eq!(parallel_trials(&[9], 4, |s| s + 1), vec![10]);
    }

    #[test]
    fn seed_range_contract() {
        assert_eq!(seed_range(5, 3), vec![5, 6, 7]);
        assert!(seed_range(1, 0).is_empty());
    }
}

//! Fixed-width histograms over integer samples (virtual-time latencies,
//! hop counts), with quantile estimates and an ASCII bar rendering for the
//! experiment binaries.

/// A histogram over `u64` samples with `buckets` fixed-width bins; bucket
/// `i` covers `[i*width, (i+1)*width)` and everything at or beyond the last
/// edge is clamped into the final bucket (reported by
/// [`Histogram::clamped`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Vec<u64>,
    clamped: u64,
    total: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// An empty histogram. `width` is clamped to at least 1, `buckets` to at
    /// least 2.
    pub fn new(width: u64, buckets: usize) -> Self {
        Histogram {
            width: width.max(1),
            counts: vec![0; buckets.max(2)],
            clamped: 0,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let idx = (x / self.width) as usize;
        if idx >= self.counts.len() {
            self.clamped += 1;
            *self.counts.last_mut().expect(">= 2 buckets") += 1;
        } else {
            self.counts[idx] += 1;
        }
        self.total += 1;
        self.sum += x as u128;
        self.max = self.max.max(x);
    }

    /// Records every sample of an iterator.
    pub fn record_all(&mut self, xs: impl IntoIterator<Item = u64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples that fell past the last bucket edge (clamped into it).
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Exact mean of the recorded samples (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum recorded sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile estimated at bucket resolution: the inclusive upper
    /// edge of the first bucket at which the cumulative count reaches
    /// `ceil(q * total)`. The true max is returned for the last bucket (it
    /// is tracked exactly), `0` when empty. `q` is clamped to `[0,1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let need = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= need {
                return if i + 1 == self.counts.len() {
                    self.max
                } else {
                    ((i as u64 + 1) * self.width).saturating_sub(1)
                };
            }
        }
        self.max
    }

    /// Renders non-empty buckets as ASCII bars, `bar_width` columns at full
    /// scale. Empty histograms render to an empty string.
    pub fn render(&self, bar_width: usize) -> String {
        if self.total == 0 {
            return String::new();
        }
        let bar_width = bar_width.clamp(8, 120);
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = i as u64 * self.width;
            let hi = (i as u64 + 1) * self.width - 1;
            let bar = "#".repeat(((c as f64 / peak as f64) * bar_width as f64).ceil() as usize);
            out.push_str(&format!("{lo:>8}..{hi:<8} {c:>7} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_buckets() {
        let mut h = Histogram::new(10, 4);
        h.record_all([0, 5, 9, 10, 25, 39]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_counts(), &[3, 1, 1, 1]);
        assert_eq!(h.clamped(), 0);
        assert_eq!(h.max(), 39);
        assert!((h.mean() - 88.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_overflow_into_last_bucket() {
        let mut h = Histogram::new(10, 3);
        h.record_all([5, 100, 1_000]);
        assert_eq!(h.bucket_counts(), &[1, 0, 2]);
        assert_eq!(h.clamped(), 2);
        assert_eq!(h.max(), 1_000);
    }

    #[test]
    fn quantiles_at_bucket_resolution() {
        let mut h = Histogram::new(10, 10);
        // 90 samples in [0,10), 10 in [50,60)
        for _ in 0..90 {
            h.record(3);
        }
        for _ in 0..10 {
            h.record(55);
        }
        assert_eq!(h.quantile(0.5), 9); // inside the first bucket
        assert_eq!(h.quantile(0.9), 9);
        assert_eq!(h.quantile(0.99), 59);
        assert_eq!(h.quantile(1.0), 59);
        assert_eq!(h.quantile(0.0), 9, "q=0 still needs one sample");
    }

    #[test]
    fn last_bucket_quantile_is_exact_max() {
        let mut h = Histogram::new(10, 2);
        h.record_all([1, 15, 999]);
        assert_eq!(h.quantile(1.0), 999);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.render(40).is_empty());
    }

    #[test]
    fn render_shows_nonempty_buckets() {
        let mut h = Histogram::new(100, 4);
        h.record_all([10, 20, 150]);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 2, "two non-empty buckets");
    }
}

//! Growth-shape fits: the reproduction checks *shapes*, not absolute
//! numbers (DESIGN.md §5) — e.g. Figure 5's connection edges should track
//! `c·n·log²n`, Figure 6's rounds should grow sublinearly, Theorem 4.1's
//! join cost should track `log²n`.

/// Least-squares fit of `y = a·x + b`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Slope `a`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Fits `y = a·x + b` by ordinary least squares. Requires at least two
/// points; degenerate inputs yield a zero fit.
pub fn linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return LinearFit { slope: 0.0, intercept: 0.0, r_squared: 0.0 };
    }
    let nf = n as f64;
    let mx = xs[..n].iter().sum::<f64>() / nf;
    let my = ys[..n].iter().sum::<f64>() / nf;
    let sxy: f64 = xs[..n].iter().zip(&ys[..n]).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs[..n].iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return LinearFit { slope: 0.0, intercept: my, r_squared: 0.0 };
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys[..n].iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs[..n]
        .iter()
        .zip(&ys[..n])
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    LinearFit { slope, intercept, r_squared }
}

/// Fits `y` against a transformed x-axis and reports which transform
/// explains the data best — the shape classifier used by EXPERIMENTS.md.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeReport {
    /// `(label, r²)` per candidate shape, best first.
    pub ranking: Vec<(&'static str, f64)>,
}

/// A labelled x-axis transform tried by [`classify_growth`].
type Transform = (&'static str, fn(f64) -> f64);

/// Candidate growth shapes for `y(n)`: linear, `n log n`, `n log² n`,
/// `log n`, `log² n`, constant-ish (slope ~ 0 on linear).
pub fn classify_growth(ns: &[f64], ys: &[f64]) -> ShapeReport {
    let transforms: [Transform; 5] = [
        ("n", |x| x),
        ("n·log n", |x| x * x.max(2.0).log2()),
        ("n·log²n", |x| {
            let l = x.max(2.0).log2();
            x * l * l
        }),
        ("log n", |x| x.max(2.0).log2()),
        ("log²n", |x| {
            let l = x.max(2.0).log2();
            l * l
        }),
    ];
    let mut ranking: Vec<(&'static str, f64)> = transforms
        .iter()
        .map(|(label, t)| {
            let txs: Vec<f64> = ns.iter().map(|&x| t(x)).collect();
            (*label, linear(&txs, ys).r_squared)
        })
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("r² is finite"));
    ShapeReport { ranking }
}

impl ShapeReport {
    /// The best-fitting shape label.
    pub fn best(&self) -> &'static str {
        self.ranking.first().map(|(l, _)| *l).unwrap_or("?")
    }

    /// r² of the named shape, if evaluated.
    pub fn r2_of(&self, label: &str) -> Option<f64> {
        self.ranking.iter().find(|(l, _)| *l == label).map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = linear(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(linear(&[], &[]).slope, 0.0);
        assert_eq!(linear(&[1.0], &[2.0]).slope, 0.0);
        let f = linear(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 2.0);
    }

    #[test]
    fn nlogn_data_classified_as_nlogn() {
        let ns: Vec<f64> = (1..=20).map(|k| (k * 10) as f64).collect();
        let ys: Vec<f64> = ns.iter().map(|&n| 3.0 * n * n.log2() + 5.0).collect();
        let report = classify_growth(&ns, &ys);
        assert_eq!(report.best(), "n·log n", "ranking: {:?}", report.ranking);
    }

    #[test]
    fn log_squared_data_classified() {
        let ns: Vec<f64> = (1..=30).map(|k| (k * 8) as f64).collect();
        let ys: Vec<f64> = ns
            .iter()
            .map(|&n| {
                let l = n.log2();
                2.0 * l * l + 1.0
            })
            .collect();
        let report = classify_growth(&ns, &ys);
        assert_eq!(report.best(), "log²n", "ranking: {:?}", report.ranking);
    }

    #[test]
    fn r2_lookup() {
        let ns = [8.0, 16.0, 32.0, 64.0];
        let ys = [8.0, 16.0, 32.0, 64.0];
        let report = classify_growth(&ns, &ys);
        assert!(report.r2_of("n").unwrap() > 0.999);
        assert!(report.r2_of("nonexistent").is_none());
    }
}

//! Experiment harness for the Re-Chord reproduction.
//!
//! The paper's §5 methodology: for each network size, run 30 independent
//! random graphs and report the mean of each metric. This crate provides
//! the pieces every experiment binary shares: a deterministic parallel
//! trial runner ([`parallel_trials`]), summary statistics ([`Stats`]),
//! growth-shape fits ([`fit`]) to check the *shape* claims (linear,
//! `n log n`, `n log² n`), and aligned-table / CSV emission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
mod hist;
mod plot;
mod stats;
mod table;
mod trials;

pub use hist::Histogram;
pub use plot::{AsciiChart, Series};
pub use stats::Stats;
pub use table::{write_csv, Table};
pub use trials::{parallel_trials, seed_range};

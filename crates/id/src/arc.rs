//! Half-open/open arcs on the ring, used by the oracle and the generators.

use crate::Ident;

/// A directed (clockwise) arc on the identifier ring, described by its two
/// endpoints. The arc runs clockwise from `from` to `to`; when
/// `from == to` the arc is empty (consistent with [`Ident::in_open_arc`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RingArc {
    /// Clockwise start (excluded from the open arc).
    pub from: Ident,
    /// Clockwise end (excluded from the open arc).
    pub to: Ident,
}

impl RingArc {
    /// Builds the clockwise arc `from -> to`.
    pub fn new(from: Ident, to: Ident) -> Self {
        RingArc { from, to }
    }

    /// Does the *open* arc contain `x` (both endpoints excluded)?
    #[inline]
    pub fn contains_open(&self, x: Ident) -> bool {
        x.in_open_arc(self.from, self.to)
    }

    /// Does the arc contain `x` when the clockwise end is included
    /// (half-open `(from, to]`)? Used where the paper allows a finger to
    /// coincide with the successor.
    #[inline]
    pub fn contains_half_open(&self, x: Ident) -> bool {
        x == self.to && self.from != self.to || self.contains_open(x)
    }

    /// Clockwise length of the arc (zero when the endpoints coincide).
    #[inline]
    pub fn len(&self) -> u64 {
        self.from.dist_cw(self.to)
    }

    /// True iff the arc is empty (`from == to`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.from == self.to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_includes_clockwise_end() {
        let arc = RingArc::new(Ident::from_f64(0.2), Ident::from_f64(0.6));
        assert!(arc.contains_half_open(Ident::from_f64(0.6)));
        assert!(!arc.contains_open(Ident::from_f64(0.6)));
        assert!(!arc.contains_half_open(Ident::from_f64(0.2)));
    }

    #[test]
    fn wrapping_arc_contains() {
        let arc = RingArc::new(Ident::from_f64(0.9), Ident::from_f64(0.1));
        assert!(arc.contains_open(Ident::from_f64(0.95)));
        assert!(arc.contains_open(Ident::from_f64(0.05)));
        assert!(!arc.contains_open(Ident::from_f64(0.5)));
        assert_eq!(arc.len(), Ident::from_f64(0.9).dist_cw(Ident::from_f64(0.1)));
    }

    #[test]
    fn empty_arc() {
        let p = Ident::from_f64(0.4);
        let arc = RingArc::new(p, p);
        assert!(arc.is_empty());
        assert!(!arc.contains_open(Ident::from_f64(0.5)));
        assert!(!arc.contains_half_open(p));
        assert_eq!(arc.len(), 0);
    }
}

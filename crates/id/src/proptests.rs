//! Property-based tests for the identifier ring algebra.

use crate::ident::level_span;
use crate::{hash_address, Ident, RingArc, MAX_LEVEL};
use proptest::prelude::*;

fn idents() -> impl Strategy<Value = Ident> {
    any::<u64>().prop_map(Ident::from_raw)
}

proptest! {
    /// Clockwise and counter-clockwise distances are complementary.
    #[test]
    fn distances_complement(a in idents(), b in idents()) {
        prop_assume!(a != b);
        prop_assert_eq!(a.dist_cw(b).wrapping_add(a.dist_ccw(b)), 0u64);
        prop_assert_eq!(a.dist_cw(b), b.dist_ccw(a));
    }

    /// Ring distance is a metric-like symmetric function bounded by half.
    #[test]
    fn ring_distance_symmetric_and_bounded(a in idents(), b in idents()) {
        prop_assert_eq!(a.dist_ring(b), b.dist_ring(a));
        prop_assert!(a.dist_ring(b) <= 1u64 << 63);
        prop_assert_eq!(a.dist_ring(a), 0u64);
    }

    /// An open arc never contains its endpoints, and exactly one of the two
    /// complementary arcs contains any third distinct point.
    #[test]
    fn arc_trichotomy(a in idents(), b in idents(), x in idents()) {
        prop_assume!(a != b && x != a && x != b);
        prop_assert!(!a.in_open_arc(a, b));
        prop_assert!(!b.in_open_arc(a, b));
        let fwd = x.in_open_arc(a, b);
        let bwd = x.in_open_arc(b, a);
        prop_assert!(fwd ^ bwd, "x must be in exactly one of the arcs");
    }

    /// `virtual_position` is an involution at level 1 and injective across
    /// levels for one owner (all spans differ).
    #[test]
    fn virtual_positions_distinct(u in idents()) {
        let mut seen = std::collections::BTreeSet::new();
        for lvl in 0..=MAX_LEVEL {
            prop_assert!(seen.insert(u.virtual_position(lvl).raw()));
        }
        prop_assert_eq!(u.virtual_position(1).virtual_position(1), u);
    }

    /// The finger level sandwiches the gap: `1/2^m <= gap < 1/2^(m-1)`.
    #[test]
    fn finger_level_sandwich(gap in 1u64..) {
        let m = Ident::finger_level_for_gap(gap);
        prop_assert!((1..=MAX_LEVEL).contains(&m));
        prop_assert!(level_span(m) <= gap);
        if m > 1 {
            prop_assert!(level_span(m - 1) > gap);
        }
    }

    /// The virtual node at the gap's finger level lands inside the half-open
    /// arc to the successor: `u_m ∈ (u, succ]` — the paper's "there is always
    /// a node u_m between u and its closest real neighbor".
    #[test]
    fn deepest_virtual_lands_in_gap(u in idents(), gap in 1u64..) {
        let succ = Ident::from_raw(u.raw().wrapping_add(gap));
        let m = Ident::finger_level_for_gap(gap);
        let um = u.virtual_position(m);
        prop_assert!(RingArc::new(u, succ).contains_half_open(um),
            "u={u:?} gap={gap} m={m} um={um:?} succ={succ:?}");
    }

    /// Hashing is deterministic and seed-sensitive.
    #[test]
    fn hashing_deterministic(addr in any::<u64>(), seed in any::<u64>()) {
        prop_assert_eq!(hash_address(addr, seed), hash_address(addr, seed));
    }

    /// Midpoint of a clockwise arc lies on the closed arc.
    #[test]
    fn midpoint_in_arc(a in idents(), b in idents()) {
        prop_assume!(a != b);
        let mid = a.midpoint_cw(b);
        prop_assert!(RingArc::new(a, b).contains_half_open(mid) || mid == a);
    }
}

//! Exact identifier arithmetic on the `[0,1)` ring used by Re-Chord.
//!
//! The paper (Kniesburges, Koutsopoulos, Scheideler, SPAA'11) places every
//! peer at a real number in `[0,1)` and derives *virtual nodes* at positions
//! `u + 1/2^i (mod 1)`. All protocol guards are interval tests on these
//! positions, so representing them as floating point would make guard
//! outcomes depend on rounding. Instead we use **64-bit fixed point**: an
//! [`Ident`] is the numerator of `x / 2^64`, so
//!
//! * `u + 1/2^i (mod 1)` is `u.wrapping_add(1 << (64 - i))` — exact;
//! * clockwise distance is a wrapping subtraction — exact;
//! * the finger level `m` of the paper (the unique `i` with
//!   `1/2^i <= d < 1/2^(i-1)`) is a leading-zeros count — exact.
//!
//! The paper hashes peer addresses with SHA-1; we substitute a SplitMix64
//! finalizer (uniform, deterministic, dependency-free — cryptographic
//! strength is irrelevant to the overlay topology; see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arc;
mod hashing;
mod ident;

pub use arc::RingArc;
pub use hashing::{hash_address, IdSpace};
pub use ident::{Ident, MAX_LEVEL};

#[cfg(test)]
mod proptests;

//! Peer-address hashing onto the identifier ring.
//!
//! Chord uses SHA-1 as the consistent-hashing function `h : U -> [0,1)`.
//! The overlay only needs `h` to be a fixed pseudo-random uniform map, so we
//! substitute a keyed SplitMix64 finalizer (see DESIGN.md §2): deterministic
//! under a seed (required for reproducible experiments), uniform on `u64`,
//! and free of external dependencies.

use crate::Ident;

/// A seeded identifier space: maps peer addresses to ring positions.
#[derive(Clone, Copy, Debug)]
pub struct IdSpace {
    seed: u64,
}

impl IdSpace {
    /// Creates an identifier space keyed by `seed`. Two spaces with the same
    /// seed assign identical positions; different seeds give independent
    /// pseudo-random placements (the "random hash function" of the paper).
    pub fn new(seed: u64) -> Self {
        IdSpace { seed }
    }

    /// Hashes a peer address to its ring position, `h(addr)`.
    #[inline]
    pub fn ident_of(&self, addr: u64) -> Ident {
        hash_address(addr, self.seed)
    }

    /// Hashes an application key (e.g. a DHT key) to the ring. Identical to
    /// [`IdSpace::ident_of`]; a separate name keeps call sites readable.
    #[inline]
    pub fn key_position(&self, key: u64) -> Ident {
        hash_address(key, self.seed ^ 0x9e37_79b9_7f4a_7c15)
    }
}

/// SplitMix64 finalizer over `addr ^ seed`: the stand-in for SHA-1.
#[inline]
pub fn hash_address(addr: u64, seed: u64) -> Ident {
    let mut z = addr ^ seed;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Ident(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let s = IdSpace::new(42);
        assert_eq!(s.ident_of(7), IdSpace::new(42).ident_of(7));
        assert_ne!(s.ident_of(7), IdSpace::new(43).ident_of(7));
        assert_ne!(s.ident_of(7), s.ident_of(8));
    }

    #[test]
    fn keys_and_addresses_use_independent_streams() {
        let s = IdSpace::new(1);
        assert_ne!(s.ident_of(7), s.key_position(7));
    }

    #[test]
    fn roughly_uniform_buckets() {
        // 4096 addresses into 16 buckets: each bucket should be populated
        // and no bucket should hold more than 3x the expected count.
        let s = IdSpace::new(0xdead_beef);
        let mut buckets = [0usize; 16];
        for a in 0..4096u64 {
            let id = s.ident_of(a);
            buckets[(id.raw() >> 60) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!(b > 0, "empty bucket {i}");
            assert!(b < 3 * 4096 / 16, "overfull bucket {i}: {b}");
        }
    }

    #[test]
    fn no_trivial_collisions() {
        let s = IdSpace::new(9);
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..10_000u64 {
            assert!(seen.insert(s.ident_of(a).raw()), "collision at {a}");
        }
    }
}

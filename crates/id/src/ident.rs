//! The [`Ident`] fixed-point position and its ring arithmetic.

use core::fmt;

/// Deepest virtual-node level representable: `1/2^64` is one ulp of the ring.
pub const MAX_LEVEL: u8 = 64;

/// A position on the identifier ring `[0,1)`, stored as the numerator of
/// `x / 2^64` (64-bit fixed point).
///
/// `Ord`/`PartialOrd` are the paper's **linear** order on `[0,1)` (the
/// protocol sorts nodes into a line and closes the wrap-around with ring
/// edges; see DESIGN.md interpretation A2). Use [`Ident::dist_cw`] and
/// [`Ident::in_open_arc`] for the cyclic notions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ident(pub u64);

impl Ident {
    /// The smallest position, `0.0`.
    pub const ZERO: Ident = Ident(0);
    /// The largest representable position, `1 - 2^-64`.
    pub const MAX: Ident = Ident(u64::MAX);

    /// Builds an identifier from its raw fixed-point numerator.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Ident(raw)
    }

    /// Raw fixed-point numerator (`x * 2^64`).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Converts from a float in `[0,1)`. Intended for tests and display-level
    /// interop; protocol code never goes through floats.
    ///
    /// Values outside `[0,1)` are wrapped into the ring.
    pub fn from_f64(x: f64) -> Self {
        let frac = x.rem_euclid(1.0);
        // 2^64 as f64 is exact; the product may round but stays in range.
        let raw = (frac * 18_446_744_073_709_551_616.0) as u64;
        Ident(raw)
    }

    /// Converts to a float in `[0,1)` (lossy for display/plotting only).
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / 18_446_744_073_709_551_616.0
    }

    /// `self + 1/2^level (mod 1)`: the position of the `level`-th virtual
    /// node of a real node at `self` (paper §2.2, `u_i = u + 1/2^i mod 1`).
    ///
    /// `level` must be in `1..=MAX_LEVEL`; level `0` is the real node itself
    /// and is returned unchanged.
    #[inline]
    pub fn virtual_position(self, level: u8) -> Ident {
        debug_assert!(level <= MAX_LEVEL);
        if level == 0 {
            self
        } else {
            Ident(self.0.wrapping_add(level_span(level)))
        }
    }

    /// Clockwise (increasing-identifier, wrapping) distance from `self` to
    /// `to`. Returns `0` iff the positions coincide; the full circle cannot
    /// be represented (a node is at distance `0`, not `1`, from itself).
    #[inline]
    pub fn dist_cw(self, to: Ident) -> u64 {
        to.0.wrapping_sub(self.0)
    }

    /// Counter-clockwise distance from `self` to `to`.
    #[inline]
    pub fn dist_ccw(self, to: Ident) -> u64 {
        self.0.wrapping_sub(to.0)
    }

    /// Ring distance: the shorter of the two ways around.
    ///
    /// ```
    /// use rechord_id::Ident;
    ///
    /// let a = Ident::from_raw(10);
    /// let b = Ident::from_raw(u64::MAX - 9); // 20 steps counter-clockwise
    /// assert_eq!(a.dist_ring(b), 20);
    /// assert_eq!(a.dist_ring(b), b.dist_ring(a));
    /// assert_eq!(a.dist_ring(a), 0);
    /// ```
    #[inline]
    pub fn dist_ring(self, to: Ident) -> u64 {
        self.dist_cw(to).min(self.dist_ccw(to))
    }

    /// Is `self` strictly inside the clockwise open arc `(a, b)`?
    ///
    /// This is the paper's interval `[u,v] = { w : u < w < v }` with
    /// wrap-around when `u > v` (§2.2: `0.2 ∈ [0.8, 0.3]` but
    /// `0.2 ∉ [0.3, 0.8]`). An arc with `a == b` is empty.
    #[inline]
    pub fn in_open_arc(self, a: Ident, b: Ident) -> bool {
        if a == b {
            return false;
        }
        let span = a.dist_cw(b);
        let off = a.dist_cw(self);
        off > 0 && off < span
    }

    /// The finger level `m` for a clockwise gap of `gap` to the nearest known
    /// real node: the unique `i >= 1` with `1/2^i <= gap < 1/2^(i-1)`
    /// (paper §1.1's finger condition; DESIGN.md interpretation A1).
    ///
    /// `gap == 0` (no other real node known: the "gap" is the full circle,
    /// which wraps to zero) yields `1`, matching Chord's single-node network
    /// where only the antipodal finger is defined.
    #[inline]
    pub fn finger_level_for_gap(gap: u64) -> u8 {
        if gap == 0 {
            return 1;
        }
        // gap in [2^(64-i), 2^(64-i+1))  <=>  i = leading_zeros(gap) + 1.
        (gap.leading_zeros() as u8) + 1
    }

    /// Midpoint of the clockwise arc from `self` to `to` (used by topology
    /// generators; not part of the protocol).
    #[inline]
    pub fn midpoint_cw(self, to: Ident) -> Ident {
        Ident(self.0.wrapping_add(self.dist_cw(to) / 2))
    }
}

/// The fixed-point length of `1/2^level`, for `level` in `1..=64`.
#[inline]
pub(crate) fn level_span(level: u8) -> u64 {
    debug_assert!((1..=MAX_LEVEL).contains(&level));
    // 1/2^64 is one ulp; 1/2^1 is half the ring.
    1u64 << (MAX_LEVEL - level)
}

impl fmt::Debug for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ident({:.6}~{:#018x})", self.to_f64(), self.0)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

impl From<u64> for Ident {
    fn from(raw: u64) -> Self {
        Ident(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_position_matches_paper_formula() {
        let u = Ident::from_f64(0.3);
        // u1 = u + 1/2 mod 1 = 0.8
        assert!((u.virtual_position(1).to_f64() - 0.8).abs() < 1e-12);
        // u2 = u + 1/4 = 0.55
        assert!((u.virtual_position(2).to_f64() - 0.55).abs() < 1e-12);
        // wrap: 0.9 + 1/2 = 0.4
        let w = Ident::from_f64(0.9);
        assert!((w.virtual_position(1).to_f64() - 0.4).abs() < 1e-12);
        // level 0 is the node itself
        assert_eq!(u.virtual_position(0), u);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let a = Ident::from_f64(0.8);
        let b = Ident::from_f64(0.3);
        let half = 1u64 << 63;
        assert_eq!(a.dist_cw(b), a.dist_cw(b)); // deterministic
        assert!(a.dist_cw(b) < half); // 0.8 -> 0.3 clockwise is 0.5 - eps.. actually exactly 0.5
        assert_eq!(a.dist_cw(a), 0);
        assert_eq!(a.dist_cw(b).wrapping_add(b.dist_cw(a)), 0); // sums to full circle
    }

    #[test]
    fn open_arc_matches_paper_example() {
        // Paper §2.2: 0, 0.2 ∈ [0.8, 0.3] but 0.2 ∉ [0.3, 0.8].
        let a = Ident::from_f64(0.8);
        let b = Ident::from_f64(0.3);
        assert!(Ident::from_f64(0.0).in_open_arc(a, b));
        assert!(Ident::from_f64(0.2).in_open_arc(a, b));
        assert!(!Ident::from_f64(0.2).in_open_arc(b, a));
        assert!(Ident::from_f64(0.5).in_open_arc(b, a));
        // endpoints excluded
        assert!(!a.in_open_arc(a, b));
        assert!(!b.in_open_arc(a, b));
        // empty arc
        assert!(!Ident::from_f64(0.1).in_open_arc(a, a));
    }

    #[test]
    fn finger_level_brackets_the_gap() {
        // gap = 1/2 exactly -> m = 1 (1/2^1 <= gap)
        assert_eq!(Ident::finger_level_for_gap(1u64 << 63), 1);
        // gap slightly below 1/2 -> m = 2
        assert_eq!(Ident::finger_level_for_gap((1u64 << 63) - 1), 2);
        // gap = 1/4 -> m = 2
        assert_eq!(Ident::finger_level_for_gap(1u64 << 62), 2);
        // smallest gap -> deepest level
        assert_eq!(Ident::finger_level_for_gap(1), 64);
        // lone node
        assert_eq!(Ident::finger_level_for_gap(0), 1);
    }

    #[test]
    fn finger_level_satisfies_chord_condition() {
        // For every gap, u + 1/2^m <= u + gap (i.e. 2^(64-m) <= gap) and
        // gap < 2^(64-m+1): the paper's §1.1 sandwich.
        for gap in [1u64, 2, 3, 7, 1 << 10, (1 << 40) + 12345, u64::MAX] {
            let m = Ident::finger_level_for_gap(gap);
            let span = level_span(m);
            assert!(span <= gap, "gap={gap} m={m}");
            if m > 1 {
                assert!(level_span(m - 1) > gap, "gap={gap} m={m}");
            }
        }
    }

    #[test]
    fn ring_distance_symmetric() {
        let a = Ident::from_f64(0.1);
        let b = Ident::from_f64(0.7);
        assert_eq!(a.dist_ring(b), b.dist_ring(a));
    }

    #[test]
    fn f64_roundtrip_is_close() {
        for x in [0.0, 0.1, 0.25, 0.5, 0.999999] {
            let id = Ident::from_f64(x);
            assert!((id.to_f64() - x).abs() < 1e-9);
        }
    }
}

//! The sharded placement engine: key→replica assignment on the identifier
//! ring, with **incremental** repair.
//!
//! Re-Chord's value proposition (Kniesburges/Koutsopoulos/Scheideler,
//! SPAA 2011) is locality: the overlay re-stabilizes in `O(log² n)` rounds
//! after a join and `O(log n)` after a leave, because a topology change only
//! perturbs the ring near the changed peer. The data layer must not throw
//! that locality away by rebuilding the entire key→replica placement at
//! every stabilization fixpoint. This crate owns placement for both the DHT
//! ([`rechord_routing`]'s `KvStore`) and the discrete-event workload
//! simulator ([`rechord_workload`]), so the successor-window arithmetic
//! exists exactly once:
//!
//! * [`PlacementMap`] — key→version records **sharded by ring arc** (one
//!   shard per primary peer), plus a per-peer copy index;
//! * [`PlacementMap::replica_set`] — the canonical "responsible peer and its
//!   `replication − 1` cyclic successors" computation;
//! * [`PlacementMap::apply_join`] / [`PlacementMap::apply_leave`] — O(moved
//!   keys) topology deltas: arc split/merge, graceful max-merge handoff to
//!   the successor, crash loss;
//! * [`PlacementMap::begin_repair`] / [`PlacementMap::repair_step`] — the
//!   **paced** repair plan: dirty arcs drain in deterministic ring order,
//!   at most `max_keys` records moved per step, with a resume cursor
//!   between steps, a per-peer capacity cap on surplus repair copies
//!   ([`PlacementMap::set_peer_capacity`]), and automatic invalidation by
//!   churn (the next plan re-begins from the surviving dirty set);
//! * [`PlacementMap::repair_delta`] — the one-shot incremental anti-entropy
//!   pass: it re-replicates only the arcs adjacent to changed peers,
//!   O(moved keys) instead of O(all keys);
//! * [`PlacementMap::rebuild`] — the full recomputation, kept solely as the
//!   property-test oracle (`repair_delta`, or any schedule of bounded
//!   `repair_step` calls, composed over any churn trace must be
//!   bit-identical to `rebuild` on the final snapshot).
//!
//! [`rechord_routing`]: https://docs.rs/rechord_routing
//! [`rechord_workload`]: https://docs.rs/rechord_workload
//!
//! ```
//! use rechord_id::{IdSpace, Ident};
//! use rechord_placement::{Departure, PlacementMap};
//!
//! let space = IdSpace::new(7);
//! let peers: Vec<Ident> = (0..16u64).map(|a| space.ident_of(a)).collect();
//! let mut map: PlacementMap<()> = PlacementMap::from_peers(&peers, 3);
//! for key in 0..1_000u64 {
//!     map.put(space.key_position(key), key, 0, ());
//! }
//!
//! // A join splits one arc and dirties the replication-wide window around
//! // it; repairing touches only those keys — a tiny fraction of the map.
//! map.apply_join(space.ident_of(99));
//! let stats = map.repair_delta();
//! assert!(stats.keys_examined < 1_000 / 2);
//! assert_eq!(stats.arcs_touched, 3);
//!
//! // The incremental result is bit-identical to the full-rebuild oracle.
//! let mut oracle = map.clone();
//! oracle.rebuild();
//! assert_eq!(map, oracle);
//!
//! // Paced repair spreads the same work over bounded steps: a bandwidth
//! // model moves at most `max_keys` records per tick and resumes where it
//! // left off — converging to the very same placement.
//! map.apply_join(space.ident_of(123));
//! let backlog = map.begin_repair();
//! let mut steps = 0;
//! while !map.repair_step(8).done {
//!     steps += 1;
//! }
//! assert!(backlog > 8 && steps > 0, "several bounded steps drained the backlog");
//! assert_eq!(map.repair_backlog_keys(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;

pub use map::{
    arc_of, arc_start, ArcView, Departure, PlacementMap, Probe, Record, RepairStats, RepairStep,
    ShardKey,
};

#[cfg(test)]
mod proptests;

//! Property tests: the incremental repair path composed over an arbitrary
//! churn trace must be **bit-identical** to the full-rebuild oracle on the
//! final snapshot, and every intermediate state must satisfy the structural
//! invariants.

use crate::{arc_of, Departure, PlacementMap, RepairStats};
use proptest::prelude::*;
use rechord_id::IdSpace;

/// One step of a churn/traffic trace, in address space (hashed to idents
/// through an [`IdSpace`] so positions are uniform on the ring).
#[derive(Clone, Debug)]
enum TraceOp {
    /// Join the peer with this address (no-op if already present).
    Join(u64),
    /// Remove the `i mod population`-th current peer (no-op when empty);
    /// `true` = graceful handoff, `false` = crash.
    Leave(u64, bool),
    /// Write this key (version supplied by a monotone counter).
    Put(u64),
    /// Run an incremental repair pass mid-trace.
    Repair,
    /// Run one bounded paced-repair step with this move budget.
    Step(usize),
}

fn trace() -> impl Strategy<Value = Vec<TraceOp>> {
    let op = prop_oneof![
        (0u64..48).prop_map(TraceOp::Join),
        ((0u64..48), any::<bool>()).prop_map(|(i, g)| TraceOp::Leave(i, g)),
        (0u64..256).prop_map(TraceOp::Put),
        Just(TraceOp::Repair),
        (0usize..24).prop_map(TraceOp::Step),
    ];
    proptest::collection::vec(op, 0..40)
}

fn run_trace(
    seed: u64,
    initial_peers: u64,
    replication: usize,
    ops: &[TraceOp],
) -> PlacementMap<u64> {
    let space = IdSpace::new(seed);
    let peers: Vec<_> = (0..initial_peers).map(|a| space.ident_of(a)).collect();
    let mut pm: PlacementMap<u64> = PlacementMap::from_peers(&peers, replication);
    // Seed some data so early leaves have something to move.
    let mut version = 0u64;
    for k in 0..64u64 {
        version += 1;
        pm.put(space.key_position(k), k, version, k);
    }
    for op in ops {
        match *op {
            TraceOp::Join(addr) => {
                pm.apply_join(space.ident_of(addr));
            }
            TraceOp::Leave(i, graceful) => {
                if !pm.peers().is_empty() {
                    let victim = pm.peers()[(i as usize) % pm.peers().len()];
                    let dep = if graceful { Departure::Graceful } else { Departure::Crash };
                    pm.apply_leave(victim, dep);
                }
            }
            TraceOp::Put(key) => {
                version += 1;
                pm.put(space.key_position(key), key, version, key);
            }
            TraceOp::Repair => {
                pm.repair_delta();
            }
            TraceOp::Step(budget) => {
                pm.repair_step(budget);
            }
        }
        pm.check_invariants().expect("invariants hold after every step");
    }
    pm
}

proptest! {
    /// The headline property: `repair_delta` composed over any churn trace,
    /// with repairs interleaved at arbitrary points, reaches the exact state
    /// the full `rebuild()` oracle computes on the final snapshot.
    #[test]
    fn delta_repair_equals_rebuild_oracle(
        seed in 1u64..1_000,
        initial in 0u64..12,
        replication in 1usize..5,
        ops in trace(),
    ) {
        let mut delta = run_trace(seed, initial, replication, &ops);
        let mut oracle = delta.clone();
        let delta_stats = delta.repair_delta();
        let oracle_stats = oracle.rebuild();
        prop_assert_eq!(&delta, &oracle, "delta and oracle placements diverged");
        delta.check_invariants().expect("delta invariants");
        oracle.check_invariants().expect("oracle invariants");
        // Incrementality: the delta pass never examines more than the whole
        // map, never touches more arcs than the oracle, and moves a subset.
        prop_assert!(delta_stats.keys_examined <= delta.key_count());
        prop_assert!(delta_stats.arcs_touched <= oracle_stats.arcs_touched);
        prop_assert!(delta_stats.keys_moved <= delta_stats.keys_examined);
    }

    /// The paced-repair property: draining the same trace's residue through
    /// bounded `repair_step` calls — any budget schedule — converges to the
    /// exact placement the one-shot `repair_delta` (and `rebuild`) computes.
    #[test]
    fn paced_steps_converge_to_the_one_shot_repair(
        seed in 1u64..1_000,
        initial in 1u64..12,
        replication in 1usize..5,
        ops in trace(),
        budgets in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let paced = run_trace(seed, initial, replication, &ops);
        let mut oneshot = paced.clone();
        oneshot.repair_delta();

        let mut paced = paced;
        let backlog = paced.begin_repair();
        let mut moved_total = 0;
        let mut cycle = budgets.iter().cycle();
        loop {
            let step = paced.repair_step(*cycle.next().expect("cycle never ends"));
            moved_total += step.stats.keys_moved;
            let transferred: usize = step.transfers.iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(transferred, step.stats.copies_added);
            paced.check_invariants().expect("invariants hold mid-plan");
            if step.done {
                break;
            }
        }
        prop_assert_eq!(&paced, &oneshot, "paced drain diverged from one-shot repair");
        prop_assert!(moved_total <= backlog, "moved {moved_total} of a {backlog}-key backlog");
        prop_assert!(!paced.repair_pending());

        let mut rebuilt = paced.clone();
        prop_assert!(rebuilt.rebuild().is_noop(), "paced result is a rebuild fixpoint");
    }

    /// The sharded-repair oracle: `repair_delta_scoped` applied one ring
    /// arc at a time — any arc count (including 1 and counts exceeding the
    /// population), any drain order — composes to exactly the
    /// unpartitioned `repair_delta`, placement and stats alike.
    #[test]
    fn scoped_arc_deltas_compose_to_the_unpartitioned_delta(
        seed in 1u64..1_000,
        initial in 0u64..12,
        replication in 1usize..5,
        ops in trace(),
        arcs in 1usize..40,
        order_seed in any::<u64>(),
    ) {
        let mut sharded = run_trace(seed, initial, replication, &ops);
        let mut oracle = sharded.clone();
        let full = oracle.repair_delta();

        // Drain the arcs in a seed-scrambled order: composition must not
        // care which worker finishes first.
        let mut order: Vec<usize> = (0..arcs).collect();
        order.sort_by_key(|&a| (a as u64).wrapping_mul(order_seed | 1).rotate_left(13));
        let mut merged = RepairStats::default();
        for a in order {
            merged.merge(sharded.repair_delta_scoped(|p| arc_of(p.raw(), arcs) == a));
            sharded.check_invariants().expect("invariants hold mid-composition");
        }
        prop_assert_eq!(&sharded, &oracle, "scoped composition diverged from the full delta");
        prop_assert_eq!(merged, full, "scoped stats fold to different totals");
        prop_assert!(!sharded.repair_pending(), "a full partition drains every dirty arc");
    }

    /// Bulk preload is bit-identical to the same rows written through
    /// `put`, for any key set and peer population.
    #[test]
    fn bulk_load_matches_per_key_puts(
        seed in 1u64..1_000,
        peers in 1u64..20,
        replication in 1usize..5,
        keys in proptest::collection::btree_set(0u64..4_096, 0..200),
    ) {
        let space = IdSpace::new(seed);
        let ids: Vec<_> = (0..peers).map(|a| space.ident_of(a)).collect();
        let mut bulk: PlacementMap<u64> = PlacementMap::from_peers(&ids, replication);
        let mut slow: PlacementMap<u64> = PlacementMap::from_peers(&ids, replication);
        for &k in &keys {
            slow.put(space.key_position(k), k, k, k);
        }
        let n = bulk.bulk_load(keys.iter().map(|&k| (space.key_position(k), k, k, k)));
        prop_assert_eq!(n, keys.len());
        bulk.check_invariants().expect("bulk invariants");
        prop_assert_eq!(&bulk, &slow, "bulk_load diverged from puts");
    }

    /// Repair is idempotent and a repaired map is a `rebuild` fixpoint.
    #[test]
    fn repair_is_idempotent(
        seed in 1u64..500,
        initial in 1u64..10,
        ops in trace(),
    ) {
        let mut pm = run_trace(seed, initial, 2, &ops);
        pm.repair_delta();
        let again = pm.repair_delta();
        prop_assert!(again.is_noop(), "second repair must be free: {again:?}");
        prop_assert_eq!(again.arcs_touched, 0);
        let mut oracle = pm.clone();
        prop_assert!(oracle.rebuild().is_noop(), "repaired map is a rebuild fixpoint");
    }

    /// Graceful traces never lose data while at least one peer remains.
    #[test]
    fn graceful_churn_preserves_every_key(
        seed in 1u64..500,
        victims in proptest::collection::vec(0u64..32, 0..8),
    ) {
        let space = IdSpace::new(seed);
        let peers: Vec<_> = (0..10u64).map(|a| space.ident_of(a)).collect();
        let mut pm: PlacementMap<()> = PlacementMap::from_peers(&peers, 2);
        for k in 0..100u64 {
            pm.put(space.key_position(k), k, 0, ());
        }
        for v in victims {
            if pm.peers().len() > 1 {
                let victim = pm.peers()[(v as usize) % pm.peers().len()];
                pm.apply_leave(victim, Departure::Graceful);
                pm.repair_delta();
            }
        }
        prop_assert_eq!(pm.key_count(), 100, "graceful churn must not lose keys");
        for k in 0..100u64 {
            prop_assert!(pm.lookup(space.key_position(k), k).hit.is_some());
        }
    }
}

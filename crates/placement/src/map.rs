//! The [`PlacementMap`] itself: arc-sharded records, topology deltas, and
//! the incremental repair pass.

use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// How a peer left the network — decides what happens to its copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Departure {
    /// A polite shutdown: the leaver drains its copies to its cyclic
    /// successor before disappearing (max-merge — the engine keeps one
    /// authoritative version per key, so the newer version always wins).
    Graceful,
    /// The peer dies taking its copies with it; a key whose last copy was
    /// there is lost forever.
    Crash,
}

/// What one repair pass (incremental or full) did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Ring arcs (shards) whose records were re-examined.
    pub arcs_touched: usize,
    /// Records visited across the touched arcs.
    pub keys_examined: usize,
    /// Records whose holder set actually changed.
    pub keys_moved: usize,
    /// Copies created (re-replication onto a peer that lacked one).
    pub copies_added: usize,
    /// Stale copies dropped (peer no longer in the key's replica set).
    pub copies_dropped: usize,
}

impl RepairStats {
    /// Folds another pass into this one (for run-level totals).
    pub fn merge(&mut self, other: RepairStats) {
        self.arcs_touched += other.arcs_touched;
        self.keys_examined += other.keys_examined;
        self.keys_moved += other.keys_moved;
        self.copies_added += other.copies_added;
        self.copies_dropped += other.copies_dropped;
    }

    /// True iff the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        self.keys_moved == 0
    }
}

/// One stored key: its authoritative version/value and the peers currently
/// holding a copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record<V> {
    /// Version of the authoritative value (callers supply monotone versions
    /// — request ids, write counters — so "newest wins" is a `max`).
    pub version: u64,
    /// The value itself (`()` when only placement is simulated).
    pub value: V,
    /// Peers holding a copy, ascending. Between a topology change and the
    /// next repair this may lag the current replica set.
    holders: Vec<Ident>,
}

impl<V> Record<V> {
    /// Peers currently holding a copy, ascending.
    pub fn holders(&self) -> &[Ident] {
        &self.holders
    }

    /// Does `peer` hold a copy?
    pub fn holds(&self, peer: Ident) -> bool {
        self.holders.binary_search(&peer).is_ok()
    }
}

/// `(ring position, raw key)` — the identity of a record. The position
/// comes first so a shard's `BTreeMap` stores records in ring order and an
/// arc split is a range extraction.
pub type ShardKey = (Ident, u64);
type Shard<V> = BTreeMap<ShardKey, Record<V>>;

/// The arc index (in `0..arcs`) owning raw ident `raw`: the ring is cut
/// into `arcs` contiguous equal-width ranges of the u64 ident space, so a
/// peer's arc — and every key whose primary it is — follows from one
/// multiply-shift. Any ident, including one minted mid-run (a sybil join),
/// maps without a lookup table.
pub fn arc_of(raw: u64, arcs: usize) -> usize {
    debug_assert!(arcs > 0);
    ((raw as u128 * arcs as u128) >> 64) as usize
}

/// The smallest raw ident belonging to arc `a` (so `arc_start(0, n) == 0`
/// and `arc_of(arc_start(a, n), n) == a`) — the cut points that let sorted
/// per-peer columns be split into per-arc slices by `partition_point`.
pub fn arc_start(a: usize, arcs: usize) -> u64 {
    debug_assert!(a < arcs);
    (((a as u128) << 64).div_ceil(arcs as u128)) as u64
}

/// What one bounded [`PlacementMap::repair_step`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairStep {
    /// The step's work, in the same units as a full pass.
    pub stats: RepairStats,
    /// Copies created per receiving peer this step, ascending by peer —
    /// exactly the transfers a bandwidth model should admit through the
    /// receiver's service queue.
    pub transfers: Vec<(Ident, usize)>,
    /// Copies withheld because the receiving peer sat at its capacity cap
    /// (the key stays readable at its primary but under-replicated until
    /// the next churn re-dirties its arc).
    pub rejected_copies: usize,
    /// True when this step drained the plan completely (the map is clean).
    pub done: bool,
}

/// Resume state of an in-progress paced repair (see
/// [`PlacementMap::begin_repair`]). Transient: it never participates in
/// placement equality, and any topology change drops it (the surviving
/// dirty set seeds the next plan).
#[derive(Clone, Debug, PartialEq, Eq)]
struct PlanState {
    /// Dirty primaries in ascending ring order; `idx` is the next to drain.
    worklist: Vec<Ident>,
    idx: usize,
    /// Last examined key of the current arc — the resume point after a
    /// budget-exhausted step.
    cursor: Option<ShardKey>,
    /// Keys left to examine (the backlog gauge; best-effort under puts
    /// landing mid-plan, which are placed clean and need no repair).
    remaining: usize,
}

/// What probing a key's replica set found (see [`PlacementMap::lookup`]).
#[derive(Debug)]
pub struct Probe<'a, V> {
    /// Size of the key's current replica set (`min(replication, peers)`).
    pub replicas: usize,
    /// `(probe index, record)` for the first replica holding a copy —
    /// `None` when no current replica has one (the copy may exist on a
    /// stale holder, invisible until repair re-replicates it).
    pub hit: Option<(usize, &'a Record<V>)>,
}

/// Key→replica placement sharded by ring arc.
///
/// The map owns a peer snapshot (kept current by the caller through
/// [`PlacementMap::apply_join`] / [`PlacementMap::apply_leave`]) and one
/// shard per peer: the records whose primary — cyclic successor of the
/// key's ring position — is that peer, in ring order. A per-peer copy index
/// makes crash loss and graceful handoff O(copies at the peer), and a dirty
/// set of arc markers makes [`PlacementMap::repair_delta`] O(moved keys).
///
/// **Invariant** (what the proptests pin): outside dirty arcs, every
/// record's holder set equals its current replica set; composing
/// `repair_delta` over any churn trace therefore reaches the exact state
/// [`PlacementMap::rebuild`] computes from scratch.
#[derive(Clone, Debug)]
pub struct PlacementMap<V> {
    peers: Vec<Ident>,
    replication: usize,
    shards: BTreeMap<Ident, Shard<V>>,
    /// peer → identities of the records it holds a copy of (no empty sets).
    held: BTreeMap<Ident, BTreeSet<ShardKey>>,
    /// Arc markers possibly needing repair. An entry is the ident of the
    /// peer whose arc changed *at marking time*; it may since have departed
    /// (its arc merged clockwise — resolution follows the successor) or had
    /// its arc split (the new sub-arc was marked by its own join).
    dirty: BTreeSet<Ident>,
    /// The active paced-repair plan, if a [`PlacementMap::begin_repair`] is
    /// mid-drain. Invalidated by any join/leave.
    plan: Option<PlanState>,
    /// Per-peer storage cap enforced on **repair** copies (`0` = unlimited;
    /// puts and graceful handoffs are never rejected — the cap models
    /// background re-replication yielding to live data).
    max_keys_per_peer: usize,
}

/// Placement equality is over the durable state — peers, records, holders,
/// dirty markers — never the transient repair cursor: a paced drain that
/// just finished equals the same map repaired in one shot.
impl<V: PartialEq> PartialEq for PlacementMap<V> {
    fn eq(&self, other: &Self) -> bool {
        self.peers == other.peers
            && self.replication == other.replication
            && self.shards == other.shards
            && self.held == other.held
            && self.dirty == other.dirty
    }
}

impl<V: Eq> Eq for PlacementMap<V> {}

impl<V> PlacementMap<V> {
    /// An empty map with no peers. `replication` is clamped to at least 1.
    pub fn new(replication: usize) -> Self {
        Self::from_peers(&[], replication)
    }

    /// A map over a peer snapshot (sorted and deduplicated internally).
    pub fn from_peers(peers: &[Ident], replication: usize) -> Self {
        let mut peers = peers.to_vec();
        peers.sort_unstable();
        peers.dedup();
        let shards = peers.iter().map(|&p| (p, Shard::new())).collect();
        PlacementMap {
            peers,
            replication: replication.max(1),
            shards,
            held: BTreeMap::new(),
            dirty: BTreeSet::new(),
            plan: None,
            max_keys_per_peer: 0,
        }
    }

    /// Caps how many copies a peer may hold before **repair** stops adding
    /// more there (`0` = unlimited, the default). The cap never rejects the
    /// primary copy — the arc owner's responsibility is not optional — and
    /// never applies to puts or graceful handoffs, so data is refused only
    /// by background re-replication, never by the write path.
    pub fn set_peer_capacity(&mut self, max_keys_per_peer: usize) {
        self.max_keys_per_peer = max_keys_per_peer;
    }

    /// The configured per-peer repair-copy cap (`0` = unlimited).
    pub fn peer_capacity(&self) -> usize {
        self.max_keys_per_peer
    }

    /// The current peer snapshot, ascending.
    pub fn peers(&self) -> &[Ident] {
        &self.peers
    }

    /// Configured replica count (clamped to the population at use sites).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of keys with at least one surviving copy.
    pub fn key_count(&self) -> usize {
        self.shards.values().map(Shard::len).sum()
    }

    /// Total copies across all peers.
    pub fn copy_count(&self) -> usize {
        self.held.values().map(BTreeSet::len).sum()
    }

    /// Arc markers accumulated since the last repair.
    pub fn dirty_arcs(&self) -> usize {
        self.dirty.len()
    }

    /// Every stored key (unordered across shards, ring-ordered within one).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.shards.values().flat_map(|s| s.keys().map(|&(_, k)| k))
    }

    /// Index of the peer owning position `pos` (its cyclic successor).
    fn succ_index(&self, pos: Ident) -> Option<usize> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.peers.binary_search(&pos) {
            Ok(i) => i,
            Err(i) if i < self.peers.len() => i,
            Err(_) => 0,
        })
    }

    /// The peer responsible for ring position `pos` — its cyclic successor
    /// among the current peers (consistent hashing, paper §1.1).
    pub fn primary_for(&self, pos: Ident) -> Option<Ident> {
        self.succ_index(pos).map(|i| self.peers[i])
    }

    /// The responsible peer plus its `replication − 1` cyclic successors
    /// for a ring position, in probe order, clamped to the population.
    ///
    /// This is the **one** replica-set computation in the workspace; the
    /// DHT (`KvStore`) and the workload simulator both delegate here.
    pub fn replica_set(&self, pos: Ident) -> Vec<Ident> {
        let Some(start) = self.succ_index(pos) else {
            return Vec::new();
        };
        let n = self.peers.len();
        (0..self.replication.min(n)).map(|k| self.peers[(start + k) % n]).collect()
    }

    /// Does any peer hold a copy of `key` (hashed to `pos`)?
    pub fn contains(&self, pos: Ident, key: u64) -> bool {
        self.primary_for(pos)
            .and_then(|p| self.shards.get(&p))
            .is_some_and(|s| s.contains_key(&(pos, key)))
    }

    /// Copies currently held by `peer` (the load-accounting primitive).
    pub fn load_of(&self, peer: Ident) -> usize {
        self.held.get(&peer).map_or(0, BTreeSet::len)
    }

    /// `(max load, mean load)` over all peers — consistent hashing's load
    /// balance (`O(log n)` imbalance factor w.h.p.).
    pub fn load_balance(&self) -> (usize, f64) {
        if self.peers.is_empty() {
            return (0, 0.0);
        }
        let total: usize = self.peers.iter().map(|&p| self.load_of(p)).sum();
        let max = self.peers.iter().map(|&p| self.load_of(p)).max().unwrap_or(0);
        (max, total as f64 / self.peers.len() as f64)
    }

    /// Writes `value` under `key` at ring position `pos`: the record's
    /// version/value are replaced iff `version` is at least the stored
    /// version (newest wins; equal versions take the latest write), and a
    /// copy is ensured at every current replica either way. Stale copies
    /// elsewhere are left for the next repair to collect (a put does not
    /// chase them). Returns the replica count the write reached (0 with no
    /// peers — nothing is stored).
    pub fn put(&mut self, pos: Ident, key: u64, version: u64, value: V) -> usize {
        let Some(start) = self.succ_index(pos) else {
            return 0;
        };
        let n = self.peers.len();
        let r = self.replication.min(n);
        let primary = self.peers[start];
        let sk = (pos, key);
        let shard = self.shards.get_mut(&primary).expect("primary shard exists");
        let rec = match shard.entry(sk) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let rec = e.into_mut();
                // Max-merge: a write completing late (stale version) must
                // not regress the authoritative record.
                if version >= rec.version {
                    rec.version = version;
                    rec.value = value;
                }
                rec
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Record { version, value, holders: Vec::new() })
            }
        };
        for k in 0..r {
            let peer = self.peers[(start + k) % n];
            if let Err(i) = rec.holders.binary_search(&peer) {
                rec.holders.insert(i, peer);
                self.held.entry(peer).or_default().insert(sk);
            }
        }
        r
    }

    /// Probes `key`'s current replica set in order, as a get does: the hit
    /// index is the number of extra successor hops the read cost.
    pub fn lookup(&self, pos: Ident, key: u64) -> Probe<'_, V> {
        let Some(start) = self.succ_index(pos) else {
            return Probe { replicas: 0, hit: None };
        };
        let n = self.peers.len();
        let r = self.replication.min(n);
        let rec = self.shards.get(&self.peers[start]).and_then(|s| s.get(&(pos, key)));
        let hit = rec.and_then(|rec| {
            (0..r).find(|&k| rec.holds(self.peers[(start + k) % n])).map(|k| (k, rec))
        });
        Probe { replicas: r, hit }
    }

    /// A peer joins: its arc is split off its successor's shard and the
    /// replication-wide window around it is marked dirty. O(keys in the
    /// split arc). Returns `false` (a no-op) if the peer already exists.
    pub fn apply_join(&mut self, peer: Ident) -> bool {
        let Err(idx) = self.peers.binary_search(&peer) else {
            return false;
        };
        self.plan = None; // churn preempts any paced repair in progress
        self.peers.insert(idx, peer);
        let n = self.peers.len();
        let mut shard = Shard::new();
        if n > 1 {
            let pred = self.peers[(idx + n - 1) % n];
            let succ = self.peers[(idx + 1) % n];
            let src = self.shards.get_mut(&succ).expect("successor shard exists");
            for (sk, rec) in extract_arc(src, pred, peer) {
                shard.insert(sk, rec);
            }
        }
        self.shards.insert(peer, shard);
        self.mark_dirty_around(peer);
        true
    }

    /// A peer departs: its shard merges into its successor's, its copies
    /// hand off (graceful) or die (crash), and the replication-wide window
    /// around it is marked dirty. O(keys in the merged arc + copies at the
    /// peer). Returns `false` (a no-op) if the peer is unknown.
    pub fn apply_leave(&mut self, peer: Ident, departure: Departure) -> bool {
        let Ok(idx) = self.peers.binary_search(&peer) else {
            return false;
        };
        self.plan = None; // churn preempts any paced repair in progress
        self.peers.remove(idx);
        let old_shard = self.shards.remove(&peer).expect("departing shard exists");
        let held_by = self.held.remove(&peer).unwrap_or_default();
        if self.peers.is_empty() {
            // The last peer took every record with it, however it left.
            self.held.clear();
            self.dirty.clear();
            return true;
        }
        let succ = self.peers[idx % self.peers.len()];
        let dst = self.shards.get_mut(&succ).expect("successor shard exists");
        dst.extend(old_shard);
        for sk in held_by {
            let primary = self.primary_for(sk.0).expect("peers nonempty");
            let shard = self.shards.get_mut(&primary).expect("primary shard exists");
            let Some(rec) = shard.get_mut(&sk) else {
                continue;
            };
            if let Ok(i) = rec.holders.binary_search(&peer) {
                rec.holders.remove(i);
            }
            match departure {
                Departure::Graceful => {
                    if let Err(i) = rec.holders.binary_search(&succ) {
                        rec.holders.insert(i, succ);
                        self.held.entry(succ).or_default().insert(sk);
                    }
                }
                Departure::Crash => {
                    if rec.holders.is_empty() {
                        shard.remove(&sk); // last copy died with the peer
                    }
                }
            }
        }
        self.mark_dirty_around(peer);
        true
    }

    /// Marks the arcs whose replica window gains or loses a member when the
    /// population changes at `anchor`: the arc owning `anchor`'s position
    /// plus the `replication − 1` preceding arcs.
    fn mark_dirty_around(&mut self, anchor: Ident) {
        let n = self.peers.len();
        if n == 0 {
            return;
        }
        let i = match self.peers.binary_search(&anchor) {
            Ok(i) => i,
            Err(i) => i % n,
        };
        self.dirty.insert(self.peers[i]);
        for k in 1..=(self.replication - 1).min(n - 1) {
            self.dirty.insert(self.peers[(i + n - k) % n]);
        }
    }

    /// Starts (or restarts) a **paced** repair: the dirty markers are
    /// canonicalized to their owning primaries and queued in ascending ring
    /// order for [`PlacementMap::repair_step`] to drain. Returns the backlog
    /// — keys sitting in dirty arcs that the plan will examine. Beginning
    /// with nothing dirty yields an empty plan (the first step reports
    /// `done`). Any join/leave invalidates the plan; the next
    /// `begin_repair` resumes from the surviving dirty set.
    pub fn begin_repair(&mut self) -> usize {
        let canon: BTreeSet<Ident> =
            self.dirty.iter().filter_map(|&d| self.primary_for(d)).collect();
        self.dirty = canon.clone();
        let worklist: Vec<Ident> = canon.into_iter().collect();
        let remaining = worklist.iter().map(|p| self.shards.get(p).map_or(0, Shard::len)).sum();
        self.plan = Some(PlanState { worklist, idx: 0, cursor: None, remaining });
        remaining
    }

    /// Is there repair work outstanding? An arc leaves the dirty set only
    /// once fully drained, so the dirty set alone answers this — for a
    /// plan mid-drain exactly the pending worklist arcs are still dirty.
    pub fn repair_pending(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Keys still to examine before the map is fully repaired — the
    /// backlog gauge a bandwidth model reports per tick. O(1) with a plan
    /// active, O(dirty arcs) otherwise.
    pub fn repair_backlog_keys(&self) -> usize {
        match &self.plan {
            Some(p) => p.remaining,
            None => {
                let canon: BTreeSet<Ident> =
                    self.dirty.iter().filter_map(|&d| self.primary_for(d)).collect();
                canon.iter().map(|p| self.shards.get(p).map_or(0, Shard::len)).sum()
            }
        }
    }

    /// One bounded slice of the active repair plan: drains dirty arcs in
    /// ring order, moving at most `max_keys` records (examining a record
    /// that already sits on its replica set is free — only actual copy
    /// movement spends budget). A step that exhausts its budget parks a
    /// cursor mid-arc and resumes there next call; an arc leaves the dirty
    /// set only once fully drained, so a plan preempted by churn re-begins
    /// from everything still unrepaired. Auto-begins a plan when none is
    /// active. With `max_keys = usize::MAX` and no capacity cap, one step
    /// is exactly [`PlacementMap::repair_delta`].
    pub fn repair_step(&mut self, max_keys: usize) -> RepairStep {
        if self.plan.is_none() {
            self.begin_repair();
        }
        let mut plan = self.plan.take().expect("plan just ensured");
        let mut step = RepairStep::default();
        let mut transfers: BTreeMap<Ident, usize> = BTreeMap::new();
        while plan.idx < plan.worklist.len() && step.stats.keys_moved < max_keys {
            let primary = plan.worklist[plan.idx];
            let finished = self.step_shard(primary, &mut plan, max_keys, &mut step, &mut transfers);
            if !finished {
                break; // budget ran out mid-arc; cursor marks the spot
            }
            step.stats.arcs_touched += 1;
            self.dirty.remove(&primary);
            plan.idx += 1;
            plan.cursor = None;
        }
        step.done = plan.idx >= plan.worklist.len();
        self.plan = if step.done { None } else { Some(plan) };
        step.transfers = transfers.into_iter().collect();
        step
    }

    /// Drains one arc from the plan cursor, stopping at the move budget.
    /// Returns true iff the arc finished.
    fn step_shard(
        &mut self,
        primary: Ident,
        plan: &mut PlanState,
        max_keys: usize,
        step: &mut RepairStep,
        transfers: &mut BTreeMap<Ident, usize>,
    ) -> bool {
        use std::ops::Bound::{Excluded, Unbounded};
        let Ok(start) = self.peers.binary_search(&primary) else {
            return true; // primary vanished mid-plan: impossible (churn invalidates), skip
        };
        let n = self.peers.len();
        let r = self.replication.min(n);
        let mut target: Vec<Ident> = (0..r).map(|k| self.peers[(start + k) % n]).collect();
        target.sort_unstable();
        let cap = self.max_keys_per_peer;
        // Take the shard out so the holder index can be edited alongside.
        let mut shard = std::mem::take(self.shards.get_mut(&primary).expect("shard per peer"));
        let mut finished = true;
        let range = match plan.cursor {
            Some(c) => shard.range_mut((Excluded(c), Unbounded)),
            None => shard.range_mut(..),
        };
        for (sk, rec) in range {
            if step.stats.keys_moved >= max_keys {
                finished = false;
                break;
            }
            step.stats.keys_examined += 1;
            plan.remaining = plan.remaining.saturating_sub(1);
            plan.cursor = Some(*sk);
            if rec.holders == target {
                continue;
            }
            let mut changed = false;
            rec.holders.retain(|h| {
                if target.binary_search(h).is_ok() {
                    return true;
                }
                changed = true;
                step.stats.copies_dropped += 1;
                if let Some(set) = self.held.get_mut(h) {
                    set.remove(sk);
                    if set.is_empty() {
                        self.held.remove(h);
                    }
                }
                false
            });
            for &t in &target {
                if rec.holders.binary_search(&t).is_err() {
                    // The primary copy is mandatory (it owns the arc); only
                    // surplus replicas yield to the capacity cap.
                    if t != primary && cap != 0 && self.held.get(&t).map_or(0, BTreeSet::len) >= cap
                    {
                        step.rejected_copies += 1;
                        continue;
                    }
                    changed = true;
                    step.stats.copies_added += 1;
                    *transfers.entry(t).or_insert(0) += 1;
                    self.held.entry(t).or_default().insert(*sk);
                    let at = rec.holders.binary_search(&t).unwrap_err();
                    rec.holders.insert(at, t);
                }
            }
            if changed {
                step.stats.keys_moved += 1;
            }
        }
        *self.shards.get_mut(&primary).expect("shard per peer") = shard;
        finished
    }

    /// The incremental anti-entropy pass: re-replicates exactly the arcs
    /// marked dirty since the last repair — every record in a touched arc
    /// ends with its holder set equal to the arc's current replica set
    /// (copies created where missing, stale ones dropped). O(keys in dirty
    /// arcs), not O(all keys); a repair with nothing dirty is free. Ignores
    /// the capacity cap (it is the uncapped, unpaced oracle) and restarts
    /// any active paced plan. Implemented as one unbounded
    /// [`PlacementMap::repair_step`] — the pacing machinery has exactly one
    /// repair implementation, verified against [`PlacementMap::rebuild`].
    pub fn repair_delta(&mut self) -> RepairStats {
        let cap = std::mem::take(&mut self.max_keys_per_peer);
        self.begin_repair();
        let step = self.repair_step(usize::MAX);
        debug_assert!(step.done, "an unbounded step drains the whole plan");
        self.max_keys_per_peer = cap;
        step.stats
    }

    /// Recomputes the **entire** placement from the current snapshot — the
    /// O(all keys) fallback kept solely as the property-test oracle for
    /// [`PlacementMap::repair_delta`] (and as a bench baseline).
    pub fn rebuild(&mut self) -> RepairStats {
        self.plan = None;
        self.dirty.clear();
        let n = self.peers.len();
        let mut stats = RepairStats { arcs_touched: n, ..Default::default() };
        let mut held: BTreeMap<Ident, BTreeSet<ShardKey>> = BTreeMap::new();
        let r = self.replication.min(n);
        for i in 0..n {
            let primary = self.peers[i];
            let mut target: Vec<Ident> = (0..r).map(|k| self.peers[(i + k) % n]).collect();
            target.sort_unstable();
            let shard = self.shards.get_mut(&primary).expect("shard per peer");
            for (sk, rec) in shard.iter_mut() {
                stats.keys_examined += 1;
                if rec.holders != target {
                    stats.keys_moved += 1;
                    stats.copies_added +=
                        target.iter().filter(|t| rec.holders.binary_search(t).is_err()).count();
                    stats.copies_dropped +=
                        rec.holders.iter().filter(|h| target.binary_search(h).is_err()).count();
                    rec.holders.clone_from(&target);
                }
                for &t in &target {
                    held.entry(t).or_default().insert(*sk);
                }
            }
        }
        self.held = held;
        stats
    }

    /// Splits the map into `arcs` disjoint [`ArcView`]s — one per ring arc,
    /// each owning `&mut` access to exactly the shards whose primary falls
    /// in that arc (see [`arc_of`]). Workers on different views share
    /// nothing mutable: cross-arc effects (a replica holder living in a
    /// foreign arc) are buffered per view and merged through
    /// [`PlacementMap::apply_held_adds`] once the borrows end. Views see
    /// the peer snapshot frozen at split time, which is sound because
    /// membership changes are control-plane events between batches.
    pub fn arc_views(&mut self, arcs: usize) -> Vec<ArcView<'_, V>> {
        let Self { peers, replication, shards, .. } = self;
        let mut views: Vec<ArcView<'_, V>> = (0..arcs)
            .map(|_| ArcView {
                peers,
                replication: *replication,
                shards: Vec::new(),
                held_adds: Vec::new(),
            })
            .collect();
        for (&p, shard) in shards.iter_mut() {
            views[arc_of(p.raw(), arcs)].shards.push((p, shard));
        }
        views
    }

    /// Merges the held-index additions buffered by [`ArcView::put`] calls
    /// (returned by [`ArcView::into_held_adds`]) back into the copy index.
    /// Set insertion commutes, so the merge order across views is
    /// irrelevant — the index lands identical to what the same puts would
    /// have produced through the unsharded path.
    pub fn apply_held_adds(&mut self, adds: impl IntoIterator<Item = (Ident, ShardKey)>) {
        for (peer, sk) in adds {
            self.held.entry(peer).or_default().insert(sk);
        }
    }

    /// Stores a batch of *fresh* records in bulk: `entries` yields
    /// `(position, key, version, value)` rows, each placed exactly as
    /// [`PlacementMap::put`] would place it (full current replica set,
    /// copy index updated), but grouped per shard and built via sorted
    /// bulk construction instead of per-key tree inserts — the fast path
    /// for preloading millions of keys. A row whose `(position, key)`
    /// already exists replaces the old record outright (no max-merge), so
    /// this is for load, not for the write path. Returns the rows stored
    /// (0 with no peers).
    pub fn bulk_load(&mut self, entries: impl IntoIterator<Item = (Ident, u64, u64, V)>) -> usize {
        if self.peers.is_empty() {
            return 0;
        }
        let n = self.peers.len();
        let r = self.replication.min(n);
        let mut rows: Vec<(usize, ShardKey, u64, V)> = entries
            .into_iter()
            .map(|(pos, key, version, value)| {
                let start = self.succ_index(pos).expect("peers nonempty");
                (start, (pos, key), version, value)
            })
            .collect();
        rows.sort_by_key(|a| (a.0, a.1));
        let stored = rows.len();
        let mut rows = rows.into_iter().peekable();
        while let Some(&(start, ..)) = rows.peek() {
            let primary = self.peers[start];
            let mut holders: Vec<Ident> = (0..r).map(|k| self.peers[(start + k) % n]).collect();
            holders.sort_unstable();
            let mut group: Vec<(ShardKey, Record<V>)> = Vec::new();
            while let Some(&(s, ..)) = rows.peek() {
                if s != start {
                    break;
                }
                let (_, sk, version, value) = rows.next().expect("peeked");
                group.push((sk, Record { version, value, holders: holders.clone() }));
            }
            for &h in &holders {
                self.held.entry(h).or_default().extend(group.iter().map(|(sk, _)| *sk));
            }
            let shard = self.shards.get_mut(&primary).expect("shard per peer");
            if shard.is_empty() {
                *shard = group.into_iter().collect();
            } else {
                shard.extend(group);
            }
        }
        stored
    }

    /// [`PlacementMap::repair_delta`] restricted to the dirty arcs whose
    /// canonical primary satisfies `keep`; the rest stay dirty for a later
    /// call. Because a drained arc only touches its own shard plus
    /// holder-index rows at disjoint `ShardKey`s, scoped deltas over any
    /// partition of the primaries compose — in any order — to exactly the
    /// unpartitioned [`PlacementMap::repair_delta`] (the satellite
    /// property-test oracle for sharded repair).
    pub fn repair_delta_scoped(&mut self, keep: impl Fn(Ident) -> bool) -> RepairStats {
        let cap = std::mem::take(&mut self.max_keys_per_peer);
        let canon: BTreeSet<Ident> =
            self.dirty.iter().filter_map(|&d| self.primary_for(d)).collect();
        self.dirty = canon.clone();
        let worklist: Vec<Ident> = canon.into_iter().filter(|&p| keep(p)).collect();
        let remaining = worklist.iter().map(|p| self.shards.get(p).map_or(0, Shard::len)).sum();
        self.plan = Some(PlanState { worklist, idx: 0, cursor: None, remaining });
        let step = self.repair_step(usize::MAX);
        debug_assert!(step.done, "an unbounded scoped step drains its whole worklist");
        self.max_keys_per_peer = cap;
        step.stats
    }

    /// Deterministic digest of the durable placement state — peers,
    /// replication, every record's `(position, key, version, holders)`, the
    /// holder index, and the dirty markers. Stored values are excluded
    /// (they need no `Hash` bound), as is the transient repair cursor,
    /// matching [`PartialEq`]. Equal maps digest equally; the parity
    /// suites compare digests across worker counts without cloning maps.
    pub fn digest(&self) -> u64 {
        fn step(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x100_0000_01b3) // FNV-1a, 64-bit prime
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = step(h, self.peers.len() as u64);
        for p in &self.peers {
            h = step(h, p.raw());
        }
        h = step(h, self.replication as u64);
        for (primary, shard) in &self.shards {
            h = step(h, primary.raw());
            for (&(pos, key), rec) in shard {
                h = step(h, pos.raw());
                h = step(h, key);
                h = step(h, rec.version);
                for holder in &rec.holders {
                    h = step(h, holder.raw());
                }
            }
        }
        for (peer, set) in &self.held {
            h = step(h, peer.raw());
            h = step(h, set.len() as u64);
            for &(pos, key) in set {
                h = step(h, step(pos.raw(), key));
            }
        }
        for d in &self.dirty {
            h = step(h, d.raw());
        }
        h
    }

    /// Structural self-check used by the property tests: shard bucketing,
    /// holder/index lockstep, no empty holder sets or index entries.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.peers.windows(2).any(|w| w[0] >= w[1]) {
            return Err("peers not strictly ascending".into());
        }
        let shard_keys: Vec<Ident> = self.shards.keys().copied().collect();
        if shard_keys != self.peers {
            return Err("shard set diverged from peer set".into());
        }
        let mut held_check: BTreeMap<Ident, BTreeSet<ShardKey>> = BTreeMap::new();
        for (&primary, shard) in &self.shards {
            for (&sk, rec) in shard {
                if self.primary_for(sk.0) != Some(primary) {
                    return Err(format!("record {sk:?} bucketed under wrong primary"));
                }
                if rec.holders.is_empty() {
                    return Err(format!("record {sk:?} has no holders"));
                }
                if rec.holders.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!("record {sk:?} holders not sorted"));
                }
                for &h in &rec.holders {
                    if self.peers.binary_search(&h).is_err() {
                        return Err(format!("record {sk:?} held by non-peer {h}"));
                    }
                    held_check.entry(h).or_default().insert(sk);
                }
            }
        }
        if held_check != self.held {
            return Err("holder index diverged from record holders".into());
        }
        if let Some(plan) = &self.plan {
            for p in &plan.worklist[plan.idx.min(plan.worklist.len())..] {
                if self.peers.binary_search(p).is_err() {
                    return Err(format!("plan worklist names non-peer {p}"));
                }
                if !self.dirty.contains(p) {
                    return Err(format!("pending plan arc {p} missing from dirty set"));
                }
            }
        }
        Ok(())
    }
}

/// One ring arc's disjoint mutable window into a [`PlacementMap`]: the
/// shards whose primary lives in the arc, plus a read-only view of the
/// frozen peer snapshot. Produced by [`PlacementMap::arc_views`]; a worker
/// thread owns one view and can serve puts and lookups for keys whose
/// primary is in its arc without any synchronization. Holder-index updates
/// that may target peers in *other* arcs are buffered and merged later via
/// [`PlacementMap::apply_held_adds`] — nothing reads the index mid-batch.
pub struct ArcView<'m, V> {
    peers: &'m [Ident],
    replication: usize,
    /// The arc's `(primary, shard)` pairs, ascending by primary.
    shards: Vec<(Ident, &'m mut Shard<V>)>,
    /// Buffered `held` insertions — applied by the parent map after merge.
    held_adds: Vec<(Ident, ShardKey)>,
}

impl<V> ArcView<'_, V> {
    /// As [`PlacementMap::primary_for`], over the frozen snapshot.
    pub fn primary_for(&self, pos: Ident) -> Option<Ident> {
        self.succ_index(pos).map(|i| self.peers[i])
    }

    /// As [`PlacementMap::replica_set`], over the frozen snapshot.
    pub fn replica_set(&self, pos: Ident) -> Vec<Ident> {
        let Some(start) = self.succ_index(pos) else {
            return Vec::new();
        };
        let n = self.peers.len();
        (0..self.replication.min(n)).map(|k| self.peers[(start + k) % n]).collect()
    }

    /// As [`PlacementMap::put`] — identical record/holder mutations — for a
    /// key whose primary lies in this arc (routing guarantees it; a
    /// misrouted put is a logic bug and panics). Holder-index rows are
    /// buffered, not written.
    pub fn put(&mut self, pos: Ident, key: u64, version: u64, value: V) -> usize {
        let Some(start) = self.succ_index(pos) else {
            return 0;
        };
        let n = self.peers.len();
        let r = self.replication.min(n);
        let primary = self.peers[start];
        let sk = (pos, key);
        let si = self
            .shards
            .binary_search_by_key(&primary, |(p, _)| *p)
            .expect("put routed to the arc owning the key's primary");
        let rec = match self.shards[si].1.entry(sk) {
            std::collections::btree_map::Entry::Occupied(e) => {
                let rec = e.into_mut();
                if version >= rec.version {
                    rec.version = version;
                    rec.value = value;
                }
                rec
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Record { version, value, holders: Vec::new() })
            }
        };
        for k in 0..r {
            let peer = self.peers[(start + k) % n];
            if let Err(i) = rec.holders.binary_search(&peer) {
                rec.holders.insert(i, peer);
                self.held_adds.push((peer, sk));
            }
        }
        r
    }

    /// As [`PlacementMap::lookup`], for a key whose primary lies in this
    /// arc.
    pub fn lookup(&self, pos: Ident, key: u64) -> Probe<'_, V> {
        let Some(start) = self.succ_index(pos) else {
            return Probe { replicas: 0, hit: None };
        };
        let n = self.peers.len();
        let r = self.replication.min(n);
        let primary = self.peers[start];
        let rec = self
            .shards
            .binary_search_by_key(&primary, |(p, _)| *p)
            .ok()
            .and_then(|si| self.shards[si].1.get(&(pos, key)));
        let hit = rec.and_then(|rec| {
            (0..r).find(|&k| rec.holds(self.peers[(start + k) % n])).map(|k| (k, rec))
        });
        Probe { replicas: r, hit }
    }

    /// Consumes the view, yielding the buffered holder-index additions for
    /// [`PlacementMap::apply_held_adds`].
    pub fn into_held_adds(self) -> Vec<(Ident, ShardKey)> {
        self.held_adds
    }

    fn succ_index(&self, pos: Ident) -> Option<usize> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.peers.binary_search(&pos) {
            Ok(i) => i,
            Err(i) if i < self.peers.len() => i,
            Err(_) => 0,
        })
    }
}

/// Removes and returns the records of `src` with position in the cyclic
/// half-open arc `(from, to]`.
fn extract_arc<V>(src: &mut Shard<V>, from: Ident, to: Ident) -> Vec<(ShardKey, Record<V>)> {
    use std::ops::Bound::{Excluded, Included, Unbounded};
    let mut keys: Vec<ShardKey> = Vec::new();
    if from < to {
        keys.extend(
            src.range((Excluded((from, u64::MAX)), Included((to, u64::MAX)))).map(|(k, _)| *k),
        );
    } else {
        // The arc wraps through the top of the ring.
        keys.extend(src.range((Excluded((from, u64::MAX)), Unbounded)).map(|(k, _)| *k));
        keys.extend(src.range(..=(to, u64::MAX)).map(|(k, _)| *k));
    }
    keys.into_iter().map(|k| (k, src.remove(&k).expect("ranged key present"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_id::IdSpace;

    fn idents(n: u64, seed: u64) -> Vec<Ident> {
        let space = IdSpace::new(seed);
        (0..n).map(|a| space.ident_of(a)).collect()
    }

    fn filled(n: u64, keys: u64, r: usize, seed: u64) -> (PlacementMap<u64>, IdSpace) {
        let space = IdSpace::new(seed);
        let mut pm = PlacementMap::from_peers(&idents(n, seed), r);
        for k in 0..keys {
            pm.put(space.key_position(k), k, k, k * 10);
        }
        (pm, space)
    }

    #[test]
    fn put_places_on_replica_window_and_lookup_hits_primary() {
        let (pm, space) = filled(8, 100, 3, 1);
        pm.check_invariants().unwrap();
        assert_eq!(pm.key_count(), 100);
        assert_eq!(pm.copy_count(), 300);
        for k in 0..100u64 {
            let pos = space.key_position(k);
            let probe = pm.lookup(pos, k);
            let (at, rec) = probe.hit.expect("stored key must be found");
            assert_eq!(at, 0, "fresh put always hits the primary");
            assert_eq!(rec.value, k * 10);
            let mut expect = pm.replica_set(pos);
            expect.sort_unstable();
            assert_eq!(rec.holders(), expect);
        }
    }

    #[test]
    fn replica_set_clamps_and_wraps() {
        let (pm, _) = filled(3, 0, 10, 5);
        let rs = pm.replica_set(Ident::from_raw(5));
        assert_eq!(rs.len(), 3, "cannot replicate past the population");
        let mut dedup = rs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), rs.len());
        // A position beyond the largest peer wraps to the smallest.
        let max = *pm.peers().last().unwrap();
        let wrapped = pm.replica_set(Ident::from_raw(max.raw().wrapping_add(1)));
        assert_eq!(wrapped[0], pm.peers()[0]);
    }

    #[test]
    fn empty_map_is_inert() {
        let mut pm: PlacementMap<()> = PlacementMap::new(2);
        assert_eq!(pm.put(Ident::from_raw(1), 1, 0, ()), 0);
        assert!(pm.lookup(Ident::from_raw(1), 1).hit.is_none());
        assert_eq!(pm.replica_set(Ident::from_raw(1)), Vec::<Ident>::new());
        assert!(pm.repair_delta().is_noop());
        assert_eq!(pm.load_balance(), (0, 0.0));
        pm.check_invariants().unwrap();
    }

    #[test]
    fn join_split_keeps_every_record_reachable() {
        let (mut pm, space) = filled(8, 200, 2, 3);
        let joiner = space.ident_of(1_000);
        assert!(pm.apply_join(joiner));
        assert!(!pm.apply_join(joiner), "double join is a no-op");
        pm.check_invariants().unwrap();
        assert_eq!(pm.key_count(), 200, "a join never destroys records");
        // Before repair, reads may pay extra probes but every key that kept
        // a replica in its (shifted) window still answers.
        let stats = pm.repair_delta();
        assert!(stats.keys_examined <= 200);
        pm.check_invariants().unwrap();
        for k in 0..200u64 {
            let pos = space.key_position(k);
            assert_eq!(pm.lookup(pos, k).hit.expect("key survives a join").0, 0);
        }
        let mut oracle = pm.clone();
        assert!(oracle.rebuild().is_noop(), "delta repair already converged");
        assert_eq!(pm, oracle);
    }

    #[test]
    fn crash_loses_only_fully_dead_keys() {
        let space = IdSpace::new(9);
        let peers = idents(6, 9);
        let mut pm: PlacementMap<()> = PlacementMap::from_peers(&peers, 2);
        for k in 0..300u64 {
            pm.put(space.key_position(k), k, 0, ());
        }
        // Crash one peer: keys with their only... replication 2 means every
        // key keeps its other copy; nothing is lost.
        let victim = peers[2];
        assert!(pm.apply_leave(victim, Departure::Crash));
        pm.check_invariants().unwrap();
        assert_eq!(pm.key_count(), 300, "replication 2 survives one crash");
        assert_eq!(pm.load_of(victim), 0);
        pm.repair_delta();
        pm.check_invariants().unwrap();
        assert_eq!(pm.copy_count(), 600, "repair restored full replication");

        // Now crash both current replicas of one key before repairing: the
        // key must be lost, everything else must survive.
        let pos = space.key_position(7);
        let rs = pm.replica_set(pos);
        assert_eq!(rs.len(), 2);
        pm.apply_leave(rs[0], Departure::Crash);
        pm.apply_leave(rs[1], Departure::Crash);
        pm.check_invariants().unwrap();
        assert!(!pm.contains(space.key_position(7), 7), "both copies died");
        assert!(pm.key_count() < 300);
        pm.repair_delta();
        pm.check_invariants().unwrap();
    }

    #[test]
    fn graceful_leave_hands_off_to_the_successor() {
        let space = IdSpace::new(11);
        let peers = idents(5, 11);
        let mut pm: PlacementMap<u64> = PlacementMap::from_peers(&peers, 1);
        for k in 0..200u64 {
            pm.put(space.key_position(k), k, k, k);
        }
        // Replication 1: a crash would lose every key the victim held; a
        // graceful leave loses none.
        let leaver = peers[3];
        let moved = pm.load_of(leaver);
        assert!(moved > 0);
        assert!(pm.apply_leave(leaver, Departure::Graceful));
        pm.check_invariants().unwrap();
        assert_eq!(pm.key_count(), 200, "graceful leave never destroys data");
        let stats = pm.repair_delta();
        assert!(stats.keys_examined < 200, "repair is incremental");
        pm.check_invariants().unwrap();
        for k in 0..200u64 {
            let probe = pm.lookup(space.key_position(k), k);
            assert_eq!(probe.hit.expect("key survives").1.value, k);
        }
    }

    #[test]
    fn last_peer_leaving_takes_everything() {
        let space = IdSpace::new(13);
        let peers = idents(1, 13);
        let mut pm: PlacementMap<()> = PlacementMap::from_peers(&peers, 3);
        for k in 0..10u64 {
            pm.put(space.key_position(k), k, 0, ());
        }
        pm.apply_leave(peers[0], Departure::Graceful);
        pm.check_invariants().unwrap();
        assert_eq!(pm.key_count(), 0);
        assert!(pm.peers().is_empty());
        assert!(pm.repair_delta().is_noop());
    }

    #[test]
    fn repair_stats_account_for_moves() {
        let (mut pm, space) = filled(16, 500, 3, 17);
        let joiner = space.ident_of(777);
        pm.apply_join(joiner);
        let stats = pm.repair_delta();
        assert_eq!(stats.arcs_touched, 3, "join dirties its replication window");
        assert!(stats.keys_moved <= stats.keys_examined);
        assert!(stats.copies_added > 0, "the joiner receives its arcs' copies");
        assert_eq!(pm.dirty_arcs(), 0);
        assert!(pm.repair_delta().is_noop(), "second repair is free");
    }

    #[test]
    fn put_is_newest_wins() {
        let space = IdSpace::new(23);
        let mut pm: PlacementMap<&'static str> = PlacementMap::from_peers(&idents(4, 23), 2);
        pm.put(space.key_position(1), 1, 1, "old");
        pm.put(space.key_position(1), 1, 2, "new");
        let probe = pm.lookup(space.key_position(1), 1);
        let rec = probe.hit.unwrap().1;
        assert_eq!((rec.version, rec.value), (2, "new"));
        assert_eq!(pm.key_count(), 1);
        // A write completing late (stale version) must not regress the
        // record, but an equal-version write takes the latest value.
        pm.put(space.key_position(1), 1, 1, "stale");
        let rec = pm.lookup(space.key_position(1), 1).hit.unwrap().1;
        assert_eq!((rec.version, rec.value), (2, "new"));
        pm.put(space.key_position(1), 1, 2, "rewrite");
        let rec = pm.lookup(space.key_position(1), 1).hit.unwrap().1;
        assert_eq!((rec.version, rec.value), (2, "rewrite"));
        pm.check_invariants().unwrap();
    }

    #[test]
    fn paced_steps_converge_to_the_one_shot_oracle() {
        let (mut pm, space) = filled(12, 400, 3, 31);
        pm.apply_join(space.ident_of(5_000));
        let victim = pm.peers()[4];
        pm.apply_leave(victim, Departure::Crash);

        let mut oracle = pm.clone();
        oracle.repair_delta();

        let backlog = pm.begin_repair();
        assert!(backlog > 0, "churn left a backlog");
        assert_eq!(pm.repair_backlog_keys(), backlog);
        let mut steps = 0;
        let mut moved = 0;
        let mut added = 0;
        let mut last_backlog = backlog;
        loop {
            let step = pm.repair_step(7);
            steps += 1;
            moved += step.stats.keys_moved;
            added += step.stats.copies_added;
            assert!(step.stats.keys_moved <= 7, "budget respected: {:?}", step.stats);
            let per_peer: usize = step.transfers.iter().map(|&(_, c)| c).sum();
            assert_eq!(per_peer, step.stats.copies_added, "transfers account for every copy");
            let now_backlog = pm.repair_backlog_keys();
            assert!(now_backlog <= last_backlog, "backlog gauge is non-increasing");
            last_backlog = now_backlog;
            pm.check_invariants().unwrap();
            if step.done {
                break;
            }
        }
        assert!(steps > 2, "a 7-key budget needs several steps here");
        assert!(moved <= backlog, "cannot move more keys than the backlog held");
        assert!(added > 0);
        assert_eq!(pm.repair_backlog_keys(), 0);
        assert!(!pm.repair_pending());
        assert_eq!(pm, oracle, "paced drain must match the one-shot repair bit for bit");
        assert!(pm.repair_step(usize::MAX).done, "clean map: step is an instant no-op");
    }

    #[test]
    fn zero_budget_step_probes_without_progress() {
        let (mut pm, space) = filled(8, 100, 2, 37);
        pm.apply_join(space.ident_of(9_999));
        let before = pm.clone();
        let step = pm.repair_step(0);
        assert!(!step.done, "dirty arcs remain");
        assert!(step.stats.is_noop());
        assert_eq!(pm, before, "a zero budget moves nothing");
        assert!(pm.repair_pending());
    }

    #[test]
    fn churn_preempts_the_plan_and_the_survivor_set_reseeds_it() {
        let (mut pm, space) = filled(10, 300, 3, 41);
        pm.apply_leave(pm.peers()[2], Departure::Crash);
        pm.begin_repair();
        let step = pm.repair_step(5);
        assert!(!step.done, "plenty of backlog left");
        // New churn mid-plan: the plan is dropped, dirty markers survive.
        pm.apply_join(space.ident_of(4_242));
        pm.check_invariants().unwrap();
        assert!(pm.repair_pending(), "surviving dirty set keeps repair pending");
        let backlog = pm.begin_repair();
        assert!(backlog > 0);
        while !pm.repair_step(11).done {
            pm.check_invariants().unwrap();
        }
        let mut oracle = pm.clone();
        assert!(oracle.rebuild().is_noop(), "paced drain reached the rebuild fixpoint");
        assert_eq!(pm, oracle);
    }

    #[test]
    fn capacity_cap_rejects_surplus_copies_but_never_the_primary() {
        let space = IdSpace::new(47);
        let peers = idents(6, 47);
        let mut pm: PlacementMap<()> = PlacementMap::from_peers(&peers, 3);
        for k in 0..240u64 {
            pm.put(space.key_position(k), k, 0, ());
        }
        // A tight cap: every peer is already far over it, so repair may
        // not add any surplus copies — only mandatory primary ones.
        pm.set_peer_capacity(10);
        assert_eq!(pm.peer_capacity(), 10);
        pm.apply_leave(peers[1], Departure::Crash);
        pm.begin_repair();
        let mut rejected = 0;
        loop {
            let step = pm.repair_step(usize::MAX);
            rejected += step.rejected_copies;
            if step.done {
                break;
            }
        }
        assert!(rejected > 0, "an over-quota network must reject surplus repair copies");
        pm.check_invariants().unwrap();
        // Every surviving key is still served by its primary even though
        // re-replication was refused.
        for k in 0..240u64 {
            let pos = space.key_position(k);
            if pm.contains(pos, k) {
                assert_eq!(pm.lookup(pos, k).hit.expect("primary copy is mandatory").0, 0);
            }
        }
        // With the cap lifted, a full pass restores complete replication —
        // rejection is deferred work, not permanent damage.
        pm.set_peer_capacity(0);
        let healed = pm.rebuild();
        assert!(healed.copies_added > 0, "lifting the cap lets repair finish the job");
        pm.check_invariants().unwrap();
    }

    #[test]
    fn arc_partition_is_contiguous_and_total() {
        for arcs in [1usize, 2, 3, 7, 64] {
            assert_eq!(arc_of(0, arcs), 0);
            assert_eq!(arc_of(u64::MAX, arcs), arcs - 1);
            for a in 0..arcs {
                let s = arc_start(a, arcs);
                assert_eq!(arc_of(s, arcs), a, "arc_start lands in its own arc");
                if s > 0 {
                    assert_eq!(arc_of(s - 1, arcs), a - 1, "cut points are exact");
                }
            }
            // Monotone: raising the raw never lowers the arc.
            let mut last = 0;
            for r in (0..64).map(|i| u64::MAX / 63 * i) {
                let a = arc_of(r, arcs);
                assert!(a >= last);
                last = a;
            }
        }
    }

    #[test]
    fn arc_views_put_and_lookup_match_the_unsharded_map() {
        let space = IdSpace::new(51);
        let peers = idents(16, 51);
        let mut sharded: PlacementMap<u64> = PlacementMap::from_peers(&peers, 3);
        let mut global: PlacementMap<u64> = PlacementMap::from_peers(&peers, 3);
        let keys: Vec<(Ident, u64)> = (0..400u64).map(|k| (space.key_position(k), k)).collect();
        for &(pos, k) in &keys {
            assert_eq!(global.put(pos, k, k, k * 3), 3);
        }
        let arcs = 5;
        {
            let mut views = sharded.arc_views(arcs);
            for &(pos, k) in &keys {
                let primary = global.primary_for(pos).unwrap();
                let v = &mut views[arc_of(primary.raw(), arcs)];
                assert_eq!(v.primary_for(pos), Some(primary));
                assert_eq!(v.replica_set(pos), global.replica_set(pos));
                assert_eq!(v.put(pos, k, k, k * 3), 3);
            }
            // Lookups through the view see the writes immediately.
            for &(pos, k) in &keys {
                let primary = global.primary_for(pos).unwrap();
                let v = &views[arc_of(primary.raw(), arcs)];
                let (at, rec) = v.lookup(pos, k).hit.expect("stored");
                assert_eq!((at, rec.value), (0, k * 3));
            }
            let adds: Vec<_> = views.drain(..).flat_map(ArcView::into_held_adds).collect();
            sharded.apply_held_adds(adds);
        }
        sharded.check_invariants().unwrap();
        assert_eq!(sharded, global, "sharded puts == unsharded puts, bit for bit");
    }

    #[test]
    fn bulk_load_equals_per_key_puts() {
        let space = IdSpace::new(53);
        let peers = idents(12, 53);
        let mut bulk: PlacementMap<u64> = PlacementMap::from_peers(&peers, 3);
        let mut slow: PlacementMap<u64> = PlacementMap::from_peers(&peers, 3);
        let rows: Vec<(Ident, u64, u64, u64)> =
            (0..1_000u64).map(|k| (space.key_position(k), k, k, k + 7)).collect();
        for &(pos, k, v, val) in &rows {
            slow.put(pos, k, v, val);
        }
        assert_eq!(bulk.bulk_load(rows), 1_000);
        bulk.check_invariants().unwrap();
        assert_eq!(bulk, slow, "bulk construction is bit-identical to puts");
        // And an empty map stays inert.
        let mut none: PlacementMap<u64> = PlacementMap::new(2);
        assert_eq!(none.bulk_load(vec![(Ident::from_raw(1), 1, 0, 0)]), 0);
        none.check_invariants().unwrap();
    }

    #[test]
    fn scoped_deltas_compose_to_the_full_delta() {
        let (mut pm, space) = filled(20, 600, 3, 57);
        pm.apply_join(space.ident_of(8_000));
        pm.apply_leave(pm.peers()[5], Departure::Crash);
        pm.apply_leave(pm.peers()[11], Departure::Graceful);

        let mut oracle = pm.clone();
        let full = oracle.repair_delta();

        // Partition the primaries into 4 arcs and repair them one scope at
        // a time, in a scrambled order.
        let arcs = 4;
        let mut merged = RepairStats::default();
        for a in [2usize, 0, 3, 1] {
            merged.merge(pm.repair_delta_scoped(|p| arc_of(p.raw(), arcs) == a));
            pm.check_invariants().unwrap();
        }
        assert_eq!(pm, oracle, "scoped composition == unpartitioned delta");
        assert_eq!(merged, full, "the stats fold to the same totals");
        assert!(!pm.repair_pending());
        // A scope selecting nothing is free and leaves the rest dirty.
        pm.apply_join(space.ident_of(9_001));
        let none = pm.repair_delta_scoped(|_| false);
        assert!(none.is_noop());
        assert!(pm.repair_pending(), "unselected arcs stay dirty");
        pm.repair_delta();
        assert!(!pm.repair_pending());
    }

    #[test]
    fn scale_smoke_single_churn_touches_under_20_percent() {
        // ≥100k keys on 256 peers: one join and one leave must each repair
        // only the arcs adjacent to the changed peer — a few percent of the
        // keys, far under the 20% ceiling (a full rebuild would be 100%).
        let space = IdSpace::new(42);
        let peers = idents(256, 42);
        let mut pm: PlacementMap<()> = PlacementMap::from_peers(&peers, 3);
        let keys: u64 = 100_000;
        for k in 0..keys {
            pm.put(space.key_position(k), k, 0, ());
        }
        assert_eq!(pm.key_count(), keys as usize);

        let joiner = space.ident_of(1_000_000);
        pm.apply_join(joiner);
        let join_stats = pm.repair_delta();
        assert!(
            join_stats.keys_examined * 5 < keys as usize,
            "join repair touched {} of {keys} keys (≥20%)",
            join_stats.keys_examined
        );

        pm.apply_leave(joiner, Departure::Graceful);
        let leave_stats = pm.repair_delta();
        assert!(
            leave_stats.keys_examined * 5 < keys as usize,
            "leave repair touched {} of {keys} keys (≥20%)",
            leave_stats.keys_examined
        );

        // And the incremental path converged to the oracle's answer.
        let mut oracle = pm.clone();
        assert!(oracle.rebuild().is_noop());
        assert_eq!(pm, oracle);
    }
}

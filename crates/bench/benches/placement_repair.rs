//! Full placement rebuild vs incremental `repair_delta`, at 10k / 100k / 1M
//! keys on 256 peers — the speedup that unlocks million-key universes.
//!
//! `rebuild` re-examines every record (the pre-engine behavior of the
//! workload simulator's fixpoint repair); `delta_join_leave` performs a
//! complete churn cycle — one join, incremental repair, the same peer
//! leaving gracefully, incremental repair — touching only the arcs adjacent
//! to the changed peer. The acceptance bar is delta ≥ 10× faster than
//! rebuild at 100k keys; in practice it is orders of magnitude (the gap
//! widens linearly with the key count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rechord_id::IdSpace;
use rechord_placement::{Departure, PlacementMap};

const PEERS: u64 = 256;
const REPLICATION: usize = 3;

fn populated(keys: u64) -> (PlacementMap<()>, IdSpace) {
    let space = IdSpace::new(0xbeef);
    let peers: Vec<_> = (0..PEERS).map(|a| space.ident_of(a)).collect();
    let mut pm = PlacementMap::from_peers(&peers, REPLICATION);
    for k in 0..keys {
        pm.put(space.key_position(k), k, 0, ());
    }
    (pm, space)
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_repair");
    for &keys in &[10_000u64, 100_000, 1_000_000] {
        {
            let (mut pm, _) = populated(keys);
            group.bench_with_input(BenchmarkId::new("rebuild", keys), &keys, |b, _| {
                b.iter(|| pm.rebuild().keys_examined)
            });
        }
        {
            let (mut pm, space) = populated(keys);
            let mut joiner_addr = PEERS;
            group.bench_with_input(BenchmarkId::new("delta_join_leave", keys), &keys, |b, _| {
                b.iter(|| {
                    joiner_addr += 1;
                    let joiner = space.ident_of(joiner_addr);
                    pm.apply_join(joiner);
                    let s1 = pm.repair_delta();
                    pm.apply_leave(joiner, Departure::Graceful);
                    let s2 = pm.repair_delta();
                    s1.keys_examined + s2.keys_examined
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);

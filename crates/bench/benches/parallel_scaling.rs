//! Engine parallelism ablation: wall time of one round as the per-round
//! thread count grows. Results are bit-identical across thread counts (see
//! the determinism property tests); only the wall clock changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rechord_core::network::ReChordNetwork;
use rechord_topology::TopologyKind;

fn bench_parallel(c: &mut Criterion) {
    let n = 384usize;
    let mut group = c.benchmark_group("round_thread_scaling");
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter_with_setup(
                || {
                    let topo = TopologyKind::Random.generate(n, 99);
                    let mut net = ReChordNetwork::from_topology(&topo, threads);
                    // a few rounds so every peer simulates virtual nodes and
                    // the per-round work is representative
                    net.engine_mut().run_rounds(3);
                    net
                },
                |mut net| net.round(),
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trials_thread_scaling");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let seeds = rechord_analysis::seed_range(0, 8);
                rechord_analysis::parallel_trials(&seeds, threads, |seed| {
                    let topo = TopologyKind::Random.generate(12, seed);
                    let mut net = ReChordNetwork::from_topology(&topo, 1);
                    net.run_until_stable(100_000).rounds
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

//! End-to-end convergence cost: wall time to self-stabilize a random weakly
//! connected network of each size (the implementation-level counterpart of
//! Figure 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rechord_core::network::ReChordNetwork;
use rechord_topology::TopologyKind;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_to_stable");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let topo = TopologyKind::Random.generate(n, 0xbe9c);
                    ReChordNetwork::from_topology(&topo, 1)
                },
                |mut net| {
                    let report = net.run_until_stable(200_000);
                    assert!(report.converged);
                    report.rounds
                },
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("convergence_adversarial_n32");
    group.sample_size(10);
    for kind in [TopologyKind::RandomLine, TopologyKind::Clique, TopologyKind::DoubleRingBridge] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, kind| {
            b.iter_with_setup(
                || {
                    let topo = kind.generate(32, 0xbe9c);
                    ReChordNetwork::from_topology(&topo, 1)
                },
                |mut net| {
                    let report = net.run_until_stable(200_000);
                    assert!(report.converged);
                    report.rounds
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);

//! Per-round cost of the protocol: one synchronous round on (a) a chaotic
//! early state and (b) the stable steady state (where the in-flight
//! ring/connection streams dominate), plus the oracle computation used by
//! the stability probes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rechord_core::{network::ReChordNetwork, oracle};
use rechord_topology::{InitialTopology, TopologyKind};

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_round");
    for n in [32usize, 105] {
        // chaotic: right after loading the random initial state
        group.bench_with_input(BenchmarkId::new("chaotic", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let topo = TopologyKind::Random.generate(n, 7);
                    let mut net = ReChordNetwork::from_topology(&topo, 1);
                    net.round(); // one warm-up round so virtuals exist
                    net
                },
                |mut net| net.round(),
            )
        });
        // steady: at the stable fixpoint
        group.bench_with_input(BenchmarkId::new("steady", n), &n, |b, &n| {
            let (net, _) = {
                let topo = TopologyKind::Random.generate(n, 7);
                let mut net = ReChordNetwork::from_topology(&topo, 1);
                let report = net.run_until_stable(200_000);
                (net, report)
            };
            b.iter_with_setup(|| net_clone(&net), |mut net| net.round())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("oracle");
    for n in [105usize, 512] {
        group.bench_with_input(BenchmarkId::new("desired_unmarked", n), &n, |b, &n| {
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
            let ids = InitialTopology::random_ids(n, &mut rng);
            b.iter(|| oracle::desired_unmarked(std::hint::black_box(&ids)))
        });
        group.bench_with_input(BenchmarkId::new("chord_edges", n), &n, |b, &n| {
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
            let ids = InitialTopology::random_ids(n, &mut rng);
            b.iter(|| oracle::chord_edges(std::hint::black_box(&ids)))
        });
    }
    group.finish();
}

/// Rebuilds an equivalent network (Engine isn't Clone; state is).
fn net_clone(net: &ReChordNetwork) -> ReChordNetwork {
    let ids = net.real_ids();
    let topo = InitialTopology::new(ids.clone(), vec![]);
    let mut fresh = ReChordNetwork::from_topology(&topo, 1);
    for id in ids {
        let st = net.engine().state(id).expect("live peer").clone();
        *fresh.engine_mut().state_mut(id).expect("live peer") = st;
    }
    fresh
}

criterion_group!(benches, bench_round);
criterion_main!(benches);

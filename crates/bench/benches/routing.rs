//! Application-layer cost on the stable overlay: greedy lookups and DHT
//! put/get (Fact 2.1's "faithfully emulate any applications on top of
//! Chord").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rechord_core::network::ReChordNetwork;
use rechord_id::{IdSpace, Ident};
use rechord_routing::{route, KvStore, RoutingTable};

fn stable_table(n: usize) -> RoutingTable {
    let (net, report) = ReChordNetwork::bootstrap_stable(n, 0xabcd, 1, 200_000);
    assert!(report.converged);
    RoutingTable::from_network(&net)
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_route");
    for n in [16usize, 64, 105] {
        let table = stable_table(n);
        let src = table.peers()[0];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut k = 0u64;
            b.iter(|| {
                k = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let r = route(&table, src, Ident::from_raw(k));
                assert!(r.success);
                r.hops()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dht");
    let table = stable_table(64);
    let via = table.peers()[0];
    group.bench_function("put", |b| {
        let mut kv = KvStore::new(table.clone(), IdSpace::new(1));
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            kv.put(via, k, "value").expect("routed")
        })
    });
    group.bench_function("get_hit", |b| {
        let mut kv = KvStore::new(table.clone(), IdSpace::new(1));
        for k in 0..256u64 {
            kv.put(via, k, "value").expect("routed");
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 256;
            kv.get(via, k).expect("routed")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);

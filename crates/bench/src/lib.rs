//! Shared scaffolding for the experiment binaries (one binary per figure /
//! theorem of the paper; see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rechord_core::network::ReChordNetwork;
use rechord_sim::FixpointReport;
use rechord_topology::TopologyKind;

/// The paper's §5 sweep: "various numbers of (real) nodes: 5, 15, 25, 35,
/// 45, 65, 85, 105".
pub const PAPER_SIZES: [usize; 8] = [5, 15, 25, 35, 45, 65, 85, 105];

/// The paper's trial count per size ("30 different graphs"). Override with
/// `RECHORD_TRIALS` for quick runs.
pub fn trials_per_size() -> usize {
    std::env::var("RECHORD_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(30)
}

/// Worker threads for trial parallelism. Override with `RECHORD_THREADS`.
pub fn harness_threads() -> usize {
    std::env::var("RECHORD_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// Round budget safety cap for stabilization runs.
pub const MAX_ROUNDS: u64 = 200_000;

/// Builds the paper's random weakly connected initial state and runs it to
/// the stable fixpoint, returning the network and the report. Panics if the
/// budget is exhausted (a convergence bug, not a tuning matter).
pub fn stabilized_random(n: usize, seed: u64) -> (ReChordNetwork, FixpointReport) {
    let topo = TopologyKind::Random.generate(n, seed);
    let mut net = ReChordNetwork::from_topology(&topo, 1);
    let report = net.run_until_stable(MAX_ROUNDS);
    assert!(report.converged, "n={n} seed={seed} did not stabilize in {MAX_ROUNDS} rounds");
    (net, report)
}

/// Where experiment CSVs are written.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("RECHORD_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(PAPER_SIZES, [5, 15, 25, 35, 45, 65, 85, 105]);
    }

    #[test]
    fn stabilized_random_converges() {
        let (net, report) = stabilized_random(6, 1);
        assert!(report.converged);
        assert_eq!(net.len(), 6);
    }
}

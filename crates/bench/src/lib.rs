//! Shared scaffolding for the experiment binaries (one binary per figure /
//! theorem of the paper; see DESIGN.md §5 for the experiment index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rechord_core::network::ReChordNetwork;
use rechord_sim::FixpointReport;
use rechord_topology::TopologyKind;
use rechord_workload::{LatencyModel, TrafficConfig, WorkloadConfig};

/// The paper's §5 sweep: "various numbers of (real) nodes: 5, 15, 25, 35,
/// 45, 65, 85, 105".
pub const PAPER_SIZES: [usize; 8] = [5, 15, 25, 35, 45, 65, 85, 105];

/// The paper's trial count per size ("30 different graphs"). Override with
/// `RECHORD_TRIALS` for quick runs.
pub fn trials_per_size() -> usize {
    std::env::var("RECHORD_TRIALS").ok().and_then(|s| s.parse().ok()).unwrap_or(30)
}

/// Worker threads for trial parallelism. Override with `RECHORD_THREADS`.
pub fn harness_threads() -> usize {
    std::env::var("RECHORD_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// Data-plane worker threads for the workload simulator, from the
/// `--threads N` flag every traffic-driving binary accepts (default 1 —
/// the serial drain). The shard-parity suites prove the count cannot
/// change one byte of output, so this is purely a wall-clock knob.
pub fn cli_threads() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0).unwrap_or(1);
        }
    }
    1
}

/// Round budget safety cap for stabilization runs.
pub const MAX_ROUNDS: u64 = 200_000;

/// Builds the paper's random weakly connected initial state and runs it to
/// the stable fixpoint, returning the network and the report. Panics if the
/// budget is exhausted (a convergence bug, not a tuning matter).
pub fn stabilized_random(n: usize, seed: u64) -> (ReChordNetwork, FixpointReport) {
    let topo = TopologyKind::Random.generate(n, seed);
    let mut net = ReChordNetwork::from_topology(&topo, 1);
    let report = net.run_until_stable(MAX_ROUNDS);
    assert!(report.converged, "n={n} seed={seed} did not stabilize in {MAX_ROUNDS} rounds");
    (net, report)
}

/// The workload scenario baseline every traffic-driving binary starts
/// from (traffic, sweep, adversary — previously each duplicated these
/// knobs). One place owns the physics of the simulated deployment:
/// 250-tick crash detection, 5–15-tick hop latency, replication 2,
/// 2-tick per-peer service time, a 128-hop budget with 2 retries at
/// 40-tick backoff, and a 50-tick round cadence. Binaries override the
/// knobs their experiment varies (horizon, key universe, round tempo,
/// repair bandwidth) and leave the rest alone. The data plane runs on
/// [`cli_threads`] workers — byte-identical output at any count.
pub fn scenario_config(seed: u64, horizon: u64, interarrival: f64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        traffic: TrafficConfig {
            mean_interarrival: interarrival,
            key_universe: 256,
            zipf_exponent: 0.9,
            put_fraction: 0.1,
            hot_key: None,
        },
        traffic_start: 0,
        traffic_end: horizon,
        round_every: 50,
        latency: LatencyModel::Uniform { lo: 5, hi: 15 },
        replication: 2,
        max_retries: 2,
        retry_backoff: 40,
        hop_budget: 128,
        max_rounds: MAX_ROUNDS,
        detection_lag: 250,
        service_time: 2,     // finite per-peer capacity: loaded peers queue
        repair_bandwidth: 0, // instantaneous fixpoint repair unless overridden
        max_keys_per_peer: 0,
        adversary: Default::default(),
        detector: Default::default(),
        workers: cli_threads(), // the binaries' `--threads` axis
        arcs: 0,                // auto: 8 arcs per worker
    }
}

/// Where experiment CSVs are written.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("RECHORD_RESULTS_DIR").unwrap_or_else(|_| "results".into()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(PAPER_SIZES, [5, 15, 25, 35, 45, 65, 85, 105]);
    }

    #[test]
    fn stabilized_random_converges() {
        let (net, report) = stabilized_random(6, 1);
        assert!(report.converged);
        assert_eq!(net.len(), 6);
    }
}

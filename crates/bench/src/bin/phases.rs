//! **§3.1 phase timeline** — the proof divides convergence into five phases
//! (connection, linearization, ring, closest-real, cleanup). This binary
//! measures the first round at which each phase predicate holds, showing
//! how the phases actually overlap in execution.

use rechord_analysis::{parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, trials_per_size, MAX_ROUNDS};
use rechord_core::network::ReChordNetwork;
use rechord_core::phases::run_with_timeline;
use rechord_topology::TopologyKind;

fn main() {
    let trials = trials_per_size().min(15);
    let threads = harness_threads();
    let sizes = [5usize, 15, 35, 65, 105];
    println!("Proof-phase timeline (first round each §3.1 phase predicate holds; {trials} trials/size)\n");

    let mut table = Table::new(&[
        "n",
        "p1_connect",
        "p2_linearize",
        "p3_ring",
        "p4_real_nbrs",
        "p5_cleanup",
        "stable",
    ]);
    for &n in &sizes {
        let seeds = seed_range(0x9a5e + n as u64 * 71, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let topo = TopologyKind::Random.generate(n, seed);
            let mut net = ReChordNetwork::from_topology(&topo, 1);
            let tl = run_with_timeline(&mut net, MAX_ROUNDS);
            let stable = tl.stable_round.expect("must converge");
            let firsts: Vec<u64> = tl
                .first_true
                .iter()
                .map(|f| f.expect("every phase holds at the fixpoint"))
                .collect();
            (firsts, stable)
        });
        let phase_mean =
            |k: usize| Stats::from_counts(results.iter().map(|(f, _)| f[k] as usize)).mean;
        let stable = Stats::from_counts(results.iter().map(|(_, s)| *s as usize));
        table.row(&[
            n.to_string(),
            format!("{:.1}", phase_mean(0)),
            format!("{:.1}", phase_mean(1)),
            format!("{:.1}", phase_mean(2)),
            format!("{:.1}", phase_mean(3)),
            format!("{:.1}", phase_mean(4)),
            format!("{:.1}", stable.mean),
        ]);
    }
    table.print();
    println!("\nthe proof treats the phases sequentially as a worst case; execution overlaps them heavily (all milestones land well before the fixpoint).");

    let path = rechord_bench::results_dir().join("phases.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! **Figure 6** — number of steps to reach the stable state and the
//! "almost stable" state vs. number of real nodes (means over 30 random
//! graphs per size, paper §5).
//!
//! Expected shape (paper): small absolute counts (tens), growing sublinearly
//! ("seem to increase sublinear, or at most linear" — far below the
//! O(n log n) upper bound of Theorem 1.1), with the almost-stable milestone
//! reached well before the stable state.

use rechord_analysis::{fit, parallel_trials, seed_range, AsciiChart, Series, Stats, Table};
use rechord_bench::{harness_threads, trials_per_size, MAX_ROUNDS, PAPER_SIZES};
use rechord_core::network::ReChordNetwork;
use rechord_topology::TopologyKind;

fn main() {
    let trials = trials_per_size();
    let threads = harness_threads();
    println!(
        "Figure 6: rounds to stable / almost-stable ({trials} trials/size, {threads} threads)\n"
    );

    let mut table = Table::new(&["n", "stable", "almost", "stable_sd", "almost_sd", "stable_max"]);
    let mut ns = Vec::new();
    let (mut stable_means, mut almost_means) = (Vec::new(), Vec::new());

    for &n in &PAPER_SIZES {
        let seeds = seed_range(0x6000_0000 + n as u64 * 1000, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let topo = TopologyKind::Random.generate(n, seed);
            let mut net = ReChordNetwork::from_topology(&topo, 1);
            let (report, almost) = net.run_until_stable_tracking_almost(MAX_ROUNDS);
            assert!(report.converged, "n={n} seed={seed}");
            (report.rounds_to_stable(), almost.expect("stable ⇒ almost-stable observed"))
        });
        let stable = Stats::from_counts(results.iter().map(|r| r.0 as usize));
        let almost = Stats::from_counts(results.iter().map(|r| r.1 as usize));
        table.row(&[
            n.to_string(),
            format!("{:.1}", stable.mean),
            format!("{:.1}", almost.mean),
            format!("{:.1}", stable.std_dev),
            format!("{:.1}", almost.std_dev),
            format!("{:.0}", stable.max),
        ]);
        ns.push(n as f64);
        stable_means.push(stable.mean);
        almost_means.push(almost.mean);
    }

    table.print();
    println!();
    for (label, ys) in [("rounds to stable", &stable_means), ("rounds to almost", &almost_means)] {
        let shape = fit::classify_growth(&ns, ys);
        let lin = fit::linear(&ns, ys);
        println!(
            "shape of {label:17}: best fit {:8} (r² = {:.4}); linear slope {:.3}",
            shape.best(),
            shape.ranking[0].1,
            lin.slope
        );
    }
    // the theorem's bound, for contrast
    let bound_ratio: Vec<f64> =
        ns.iter().zip(&stable_means).map(|(n, s)| s / (n * n.log2())).collect();
    println!(
        "\nratio rounds/(n·log n): first {:.3} → last {:.3} (decreasing ⇒ comfortably below the Theorem 1.1 bound)",
        bound_ratio.first().unwrap(),
        bound_ratio.last().unwrap()
    );
    let earlier = ns.iter().zip(stable_means.iter().zip(&almost_means)).all(|(_, (s, a))| a <= s);
    println!("almost-stable precedes stable in every size: {earlier}");

    println!(
        "\n{}",
        AsciiChart::new("Figure 6: rounds to stable / almost-stable vs real nodes", 72, 14)
            .series(Series::new("rounds to stable", '#', &ns, &stable_means))
            .series(Series::new("rounds to almost-stable", '.', &ns, &almost_means))
            .render()
    );

    let path = rechord_bench::results_dir().join("fig6.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Client-side SLOs under churn: the question the convergence theorems are
//! silent about. Four scenarios drive open-loop get/put traffic against the
//! overlay on one discrete-event clock — steady state, a flash crowd on one
//! hot key during a join wave, a churn storm, and partition-heal under load
//! — and report p50/p99 virtual latency, availability, and throughput.
//!
//! `--smoke` runs a tiny deterministic configuration (16–24 peers, ~1k
//! requests per scenario) and *asserts* the headline behavior: full
//! availability at steady state, degradation while churning, and recovery
//! to 100% once the overlay re-stabilizes. ci.sh runs it, so the workload
//! subsystem cannot silently rot.

use rechord_analysis::{AsciiChart, Series, Table};
use rechord_bench::scenario_config;
use rechord_core::network::ReChordNetwork;
use rechord_topology::{TimedChurnPlan, TopologyKind};
use rechord_workload::{OutcomeKind, SimReport, TrafficSim, WorkloadConfig};

struct Knobs {
    n: usize,
    horizon: u64,
    interarrival: f64,
    window: u64,
}

struct ScenarioOut {
    name: &'static str,
    report: SimReport,
    window: u64,
}

impl ScenarioOut {
    /// Availability over requests issued in `[from, to)`.
    fn availability_between(&self, from: u64, to: u64) -> f64 {
        let slice: Vec<_> = self
            .report
            .sink
            .outcomes()
            .iter()
            .filter(|o| (from..to).contains(&o.issued_at))
            .collect();
        if slice.is_empty() {
            return 1.0;
        }
        let ok = slice.iter().filter(|o| o.kind == OutcomeKind::Success).count();
        ok as f64 / slice.len() as f64
    }
}

fn base_config(seed: u64, k: &Knobs) -> WorkloadConfig {
    // The shared deployment baseline lives in rechord_bench::scenario_config;
    // these scenarios keep its defaults (instantaneous repair, honest peers).
    scenario_config(seed, k.horizon, k.interarrival)
}

fn stable_net(n: usize, seed: u64) -> ReChordNetwork {
    let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 200_000);
    assert!(report.converged, "bootstrap must stabilize");
    net
}

/// Sustained load on a stable overlay that nobody touches.
fn steady_state(k: &Knobs) -> ScenarioOut {
    let mut sim =
        TrafficSim::new(base_config(0xa1, k), stable_net(k.n, 0xa1), &TimedChurnPlan::default());
    sim.preload();
    ScenarioOut { name: "steady-state", report: sim.run(), window: k.window }
}

/// A flash crowd concentrates 80% of traffic on one hot key while a join
/// wave rolls through — replication keeps the hot item readable even as
/// responsibility shifts to freshly joined (not yet integrated) peers.
fn flash_crowd(k: &Knobs) -> ScenarioOut {
    let crowd_start = k.horizon / 4;
    let crowd_end = 3 * k.horizon / 4;
    let joins = TimedChurnPlan::join_wave(4, crowd_start, k.horizon / 16, 0xf1);
    let mut sim = TrafficSim::new(base_config(0xf1, k), stable_net(k.n, 0xf1), &joins);
    sim.preload();
    sim.schedule_hot_key(crowd_start, Some((7, 0.8)));
    sim.schedule_hot_key(crowd_end, None);
    ScenarioOut { name: "flash-crowd", report: sim.run(), window: k.window }
}

/// A churn storm: a quarter of the network crashes in one burst, followed
/// by a join wave, while the protocol only gets a round in edgewise (slow
/// round cadence relative to traffic). Availability dips while the overlay
/// is torn and returns to 100% once the six rules have healed it and
/// anti-entropy re-replicated the data.
fn churn_storm(k: &Knobs) -> ScenarioOut {
    let mut cfg = base_config(0xc3, k);
    cfg.replication = 3;
    cfg.round_every = 200; // ops tempo: stabilization takes real time
                           // Two crash bursts with a breather between (long enough to re-stabilize
                           // and re-replicate), then a join wave. A burst is faster than repair, so
                           // data survives a burst iff no 3 cyclically-consecutive peers crash in
                           // it — guaranteed nowhere, true at the smoke scale's pinned seed.
    let start = k.horizon / 4;
    let storm = TimedChurnPlan::crash_wave(k.n / 8, start, 40)
        .merged(TimedChurnPlan::crash_wave(k.n / 8, start + 7 * k.horizon / 24, 40))
        .merged(TimedChurnPlan::join_wave(k.n / 6, start + k.horizon / 3, 200, 0xc3));
    let mut sim = TrafficSim::new(cfg, stable_net(k.n, 0xc3), &storm);
    sim.preload();
    ScenarioOut { name: "churn-storm", report: sim.run(), window: k.window }
}

/// A **million keys** under paced repair: the placement engine's O(moved
/// keys) incremental pass (PR 4) makes the map affordable, and the repair
/// bandwidth budget makes the handoff *visible* — each churn event dirties
/// tens of thousands of keys that drain at a bounded keys-per-tick rate,
/// their copy transfers competing with foreground gets through the same
/// per-peer service queues.
fn million_keys(k: &Knobs) -> ScenarioOut {
    let mut cfg = base_config(0xe5, k);
    cfg.traffic.key_universe = 1_000_000;
    cfg.traffic.zipf_exponent = 0.0; // uniform reads sample staleness anywhere
    cfg.replication = 2;
    cfg.round_every = 10; // fixpoints land between events: repair starts promptly
    cfg.repair_bandwidth = 400; // a ~80k-key handoff drains over ~200 ticks
    let storm = TimedChurnPlan::storm(4, 0.5, k.horizon / 4, k.horizon / 8, 0xe5);
    let mut sim = TrafficSim::new(cfg, stable_net(k.n, 0xe5), &storm);
    sim.preload();
    ScenarioOut { name: "million-keys", report: sim.run(), window: k.window }
}

/// Traffic begins while the overlay is still the adversarial two-rings-and-
/// a-bridge state classic Chord cannot escape: clients see slow, lossy
/// service that converges to fast, fully available service as the six rules
/// stabilize the topology under them.
fn partition_heal(k: &Knobs) -> ScenarioOut {
    let topo = TopologyKind::DoubleRingBridge.generate(k.n, 0xb7);
    let net = ReChordNetwork::from_topology(&topo, 1);
    let mut cfg = base_config(0xb7, k);
    cfg.round_every = 100; // healing takes real time relative to traffic
    let mut sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
    sim.preload();
    ScenarioOut { name: "partition-heal", report: sim.run(), window: k.window }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = if smoke {
        Knobs { n: 24, horizon: 12_000, interarrival: 10.0, window: 2_000 }
    } else {
        Knobs { n: 64, horizon: 60_000, interarrival: 5.0, window: 5_000 }
    };
    println!(
        "Traffic scenarios: {} peers, horizon {} ticks, ~{} requests each{}\n",
        k.n,
        k.horizon,
        (k.horizon as f64 / k.interarrival) as u64,
        if smoke { " [smoke]" } else { "" }
    );

    let scenarios = vec![
        steady_state(&k),
        flash_crowd(&k),
        churn_storm(&k),
        partition_heal(&k),
        million_keys(&k),
    ];

    let mut table = Table::new(&[
        "scenario",
        "reqs",
        "avail",
        "p50",
        "p90",
        "p99",
        "hops",
        "req/ktick",
        "rounds",
        "lost_keys",
        "repairs",
        "keys_moved",
    ]);
    for s in &scenarios {
        let sum = &s.report.summary;
        table.row(&[
            s.name.to_string(),
            sum.total.to_string(),
            format!("{:.4}", sum.availability),
            sum.p50.to_string(),
            sum.p90.to_string(),
            sum.p99.to_string(),
            format!("{:.2}", sum.mean_hops),
            format!("{:.1}", sum.throughput_per_ktick),
            s.report.rounds.to_string(),
            s.report.lost_keys.to_string(),
            sum.repairs.to_string(),
            sum.repair_keys_moved.to_string(),
        ]);
    }
    table.print();

    // Timelines: availability and p99 per window, plus a latency histogram
    // for the steady baseline.
    let mut csv = Table::new(&["scenario", "window_start", "reqs", "ok", "availability", "p99"]);
    for s in &scenarios {
        println!("\n--- {} ---", s.name);
        println!("summary: {}", s.report.summary);
        let windows = s.report.sink.windows(s.window);
        let xs: Vec<f64> = windows.iter().map(|w| w.start as f64).collect();
        let avail: Vec<f64> = windows.iter().map(|w| w.availability() * 100.0).collect();
        let p99: Vec<f64> = windows.iter().map(|w| w.p99 as f64).collect();
        let chart = AsciiChart::new(
            format!("{}: availability % (a) / p99 ticks (9) per window", s.name),
            72,
            12,
        )
        .series(Series::new("availability %", 'a', &xs, &avail))
        .series(Series::new("p99 latency", '9', &xs, &p99));
        print!("{}", chart.render());
        for w in &windows {
            csv.row(&[
                s.name.to_string(),
                w.start.to_string(),
                w.total.to_string(),
                w.success.to_string(),
                format!("{:.4}", w.availability()),
                w.p99.to_string(),
            ]);
        }
    }
    println!("\nsteady-state success-latency histogram (20-tick buckets):");
    print!("{}", scenarios[0].report.sink.latency_histogram(20, 30).render(48));

    let path = rechord_bench::results_dir().join("traffic.csv");
    if let Err(e) = std::fs::create_dir_all(rechord_bench::results_dir()) {
        eprintln!("cannot create results dir: {e}");
    }
    csv.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    // The acceptance gate: these hold deterministically for the pinned
    // seeds, so ci.sh catches any regression in the subsystem.
    let tail_from = k.horizon - k.window;
    let steady = &scenarios[0];
    assert_eq!(steady.report.summary.availability, 1.0, "steady state must be fully available");
    assert!(steady.report.summary.p99 > 0 && steady.report.summary.total > 500);

    let storm = &scenarios[2];
    // The whole churn span (both bursts + join wave) plus stabilization slack.
    let during = storm.availability_between(k.horizon / 4, 3 * k.horizon / 4);
    let after = storm.availability_between(tail_from, k.horizon + 1);
    assert!(during < 1.0, "churn storm must degrade availability (got {during:.4})");
    assert!(storm.report.stable_at_end, "storm run must end re-stabilized");
    // The placement engine's repair metrics: churn dirties arcs, fixpoints
    // repair them, and the incremental pass never scans every arc.
    let storm_sum = &storm.report.summary;
    assert!(storm_sum.repairs > 0, "storm fixpoints must run repairs");
    assert!(storm_sum.repair_keys_moved > 0, "storm churn must move keys");
    let widest = storm.report.sink.repairs().iter().map(|r| r.stats.arcs_touched).max().unwrap();
    assert!(
        widest < storm.report.final_peers,
        "incremental repair touched {widest} arcs of {} peers",
        storm.report.final_peers
    );
    if smoke {
        assert_eq!(after, 1.0, "availability must recover to 100% after re-stabilization");
        assert_eq!(storm.report.lost_keys, 0, "replication 3 survives the smoke storm");
    } else {
        // At full scale a pinned burst does wipe an occasional replica group
        // (3 cyclically-consecutive crashes between two repair passes), so a
        // few keys of the 256 are irrecoverably lost — the honest cost of
        // successor-list replication under a crash burst faster than repair.
        // Bound the damage and require surviving keys to be served again.
        assert!(
            storm.report.lost_keys <= 8,
            "burst damage out of bounds: {} keys lost",
            storm.report.lost_keys
        );
        assert!(after > 0.98, "tail must re-serve surviving keys (got {after:.4})");
    }

    let heal = &scenarios[3];
    let early = heal.availability_between(0, k.window);
    let late = heal.availability_between(tail_from, k.horizon + 1);
    assert!(early < late, "healing must improve availability ({early:.4} -> {late:.4})");
    assert_eq!(late, 1.0, "healed overlay must be fully available");

    let flash = &scenarios[1];
    assert_eq!(
        flash.availability_between(tail_from, k.horizon + 1),
        1.0,
        "flash crowd must end fully available"
    );

    let million = &scenarios[4];
    let msum = &million.report.summary;
    println!("\nmillion-keys repair-backlog peaks per {}-tick window:", million.window);
    for (start, peak) in million.report.sink.backlog_windows(million.window) {
        println!("  t={start:>6}  backlog {peak}");
    }
    assert!(msum.total > 500, "the million-key run still serves traffic");
    assert!(msum.repairs > 0, "churn over a million keys must trigger repairs");
    assert!(
        msum.repair_keys_moved > 10_000,
        "a million-key handoff moves serious data (moved {})",
        msum.repair_keys_moved
    );
    assert!(
        msum.repair_backlog_peak > 10_000,
        "the backlog gauge must see the handoff (peak {})",
        msum.repair_backlog_peak
    );
    assert!(msum.slowest_repair > 0, "a 400-keys/tick budget takes visible virtual time");
    for pass in million.report.sink.repairs() {
        assert!(
            pass.stats.keys_moved <= pass.backlog_at_start,
            "a pass cannot move more keys than its backlog held: {pass:?}"
        );
    }
    assert!(million.report.stable_at_end, "the overlay re-stabilizes under a million keys");
    assert!(
        million.report.lost_keys < 10_000,
        "repair outruns the storm for almost every key ({} lost)",
        million.report.lost_keys
    );
    let million_tail = million.availability_between(tail_from, k.horizon + 1);
    assert!(
        million_tail > 0.99,
        "the million-key tail must serve surviving keys (got {million_tail:.4})"
    );

    println!("\ntraffic: all scenario assertions hold");
}

//! **E10 (motivation)** — classic Chord is not self-stabilizing; Re-Chord
//! is. Both protocols face the canonical loopy state (two interleaved
//! successor cycles, weakly connected by one dormant bridge) and random
//! weakly connected states.

use rechord_analysis::{parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, trials_per_size, MAX_ROUNDS};
use rechord_chord::ChordNetwork;
use rechord_core::network::ReChordNetwork;
use rechord_id::Ident;
use rechord_topology::TopologyKind;

fn main() {
    let trials = trials_per_size().min(10);
    let threads = harness_threads();
    let sizes = [8usize, 16, 32, 64];
    println!("Baseline comparison: classic Chord vs Re-Chord on adversarial states ({trials} trials/size)\n");

    let mut table = Table::new(&[
        "n",
        "chord_rings_after",
        "chord_lookup_ok",
        "rechord_rounds",
        "rechord_one_overlay",
    ]);
    for &n in &sizes {
        let seeds = seed_range(0xba5e + n as u64 * 211, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            // identical identifier sets for both systems
            let topo = TopologyKind::DoubleRingBridge.generate(n, seed);

            // classic Chord from the established loopy pointer state
            let mut chord = ChordNetwork::loopy_double_ring(&topo.ids, 1);
            chord.run_until_stable(MAX_ROUNDS);
            let rings = chord.ring_count();
            let keys: Vec<Ident> = (0..32u64)
                .map(|k| Ident::from_raw(k.wrapping_mul(0x0809_7a5b_3c2d_1e0f)))
                .collect();
            let lookup_ok = chord.lookup_success_rate(&keys);

            // Re-Chord from the equivalent knowledge graph
            let mut rechord = ReChordNetwork::from_topology(&topo, 1);
            let report = rechord.run_until_stable(MAX_ROUNDS);
            assert!(report.converged);
            let audit = rechord.audit();
            let healthy = audit.missing_unmarked.is_empty()
                && audit.projection_strongly_connected
                && audit.weakly_connected;

            (rings, lookup_ok, report.rounds_to_stable() as usize, healthy)
        });
        let rings = Stats::from_counts(results.iter().map(|r| r.0));
        let lookups = Stats::from_slice(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let rounds = Stats::from_counts(results.iter().map(|r| r.2));
        let all_healthy = results.iter().all(|r| r.3);
        table.row(&[
            n.to_string(),
            format!("{:.1}", rings.mean),
            format!("{:.3}", lookups.mean),
            format!("{:.1}", rounds.mean),
            all_healthy.to_string(),
        ]);
    }
    table.print();
    println!("\nclassic Chord quiesces with >1 successor ring and degraded lookups; Re-Chord always merges to one overlay (rechord_one_overlay = audit passed).");

    let path = rechord_bench::results_dir().join("baseline_compare.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! **Ablation** — which of the six rules are load-bearing? Runs the
//! protocol with each of rules 2–6 individually disabled on random weakly
//! connected instances and reports what breaks (DESIGN.md design-choice
//! index; not a paper figure, but the paper's §2.3 motivates every rule).
//!
//! Besides fixpoint convergence and desired-edge completeness, two
//! application-level probes expose subtler damage:
//!
//! * `ring_pair` — did rule 5 close the `[0,1)` wrap-around?
//! * `wrap_lookups` — fraction of lookups that must cross the `0/1`
//!   boundary and still succeed (they need the ring closure).

use rechord_analysis::{parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, trials_per_size};
use rechord_core::ablation::{run_ablated, RuleMask};
use rechord_id::Ident;
use rechord_routing::{route, RoutingTable};

fn main() {
    let trials = trials_per_size().min(10);
    let threads = harness_threads();
    let n = 24usize;
    let budget = 5_000u64;
    println!("Rule ablation at n={n} ({trials} trials, {budget}-round budget)\n");

    let mut table = Table::new(&[
        "rules",
        "converged",
        "rounds_mean",
        "missing_desired",
        "overlay_conn",
        "ring_pair",
        "wrap_lookups",
    ]);
    let mut masks = vec![RuleMask::ALL];
    masks.extend((2u8..=6).map(RuleMask::without));

    for mask in masks {
        let seeds = seed_range(0xab1a + n as u64, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let (out, net) = run_ablated(mask, n, seed, budget);
            // wrap-routing probe: from the last (largest) peer, look up keys
            // just past 0 — greedy progress must cross the boundary.
            let t = RoutingTable::from_network(&net);
            let peers = t.peers().to_vec();
            let (mut wrap_ok, mut wrap_total) = (0usize, 0usize);
            if let (Some(&src), Some(&first)) = (peers.last(), peers.first()) {
                for k in 0..8u64 {
                    // keys in (src, first]: strictly beyond the max peer
                    let key = Ident::from_raw(
                        src.raw().wrapping_add(1 + k % first.raw().wrapping_sub(src.raw()).max(1)),
                    );
                    wrap_total += 1;
                    if route(&t, src, key).success {
                        wrap_ok += 1;
                    }
                }
            }
            (out, wrap_ok, wrap_total)
        });
        let converged = results.iter().filter(|(o, _, _)| o.converged).count();
        let rounds = Stats::from_counts(results.iter().map(|(o, _, _)| o.rounds as usize));
        let missing = Stats::from_counts(results.iter().map(|(o, _, _)| o.missing_desired));
        let connected = results.iter().filter(|(o, _, _)| o.overlay_connected).count();
        let ring = results.iter().filter(|(o, _, _)| o.ring_pair_present).count();
        let wrap_ok: usize = results.iter().map(|(_, ok, _)| ok).sum();
        let wrap_total: usize = results.iter().map(|(_, _, t)| t).sum();
        table.row(&[
            mask.label(),
            format!("{converged}/{trials}"),
            format!("{:.1}", rounds.mean),
            format!("{:.1}", missing.mean),
            format!("{connected}/{trials}"),
            format!("{ring}/{trials}"),
            format!("{:.2}", wrap_ok as f64 / wrap_total.max(1) as f64),
        ]);
    }
    table.print();
    println!("\nrules 3 and 4 are existential (no Re-Chord topology without them); rule 5 is what makes the wrap-around routable; rule 2 accelerates finger placement and rule 6 insures sibling connectivity against level churn (its failure mode needs virtual-island states that random knowledge graphs rarely produce).");

    let path = rechord_bench::results_dir().join("ablation.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! **Theorems 4.1 / 4.2** — re-stabilization cost of isolated churn:
//! a join into a stable network re-integrates in `O(log² n)` rounds; a
//! graceful leave or crash in `O(log n)` rounds.
//!
//! The theorems' criterion is *structural integration* — "every node has
//! stable next and next real neighbors and all virtual nodes are created" —
//! which is exactly the almost-stable milestone (`integ_*` columns). The
//! `fix_*` columns additionally wait for the global fixpoint, i.e. for the
//! in-flight ring/connection streams to settle into their new steady
//! pattern (the paper likewise notes leftover "unnecessary edges ... will
//! be eliminated after at most O(n log n) rounds" beyond integration).

use rechord_analysis::{fit, parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, stabilized_random, trials_per_size, MAX_ROUNDS, PAPER_SIZES};
use rechord_core::network::ReChordNetwork;
use rechord_id::hash_address;

/// Applies `event` to a fresh stable network and measures (integration
/// rounds, fixpoint rounds).
fn churn_cost(n: usize, seed: u64, event: impl FnOnce(&mut ReChordNetwork)) -> (usize, usize) {
    let (mut net, _) = stabilized_random(n, seed);
    event(&mut net);
    let integ = net.run_until_almost_stable(MAX_ROUNDS).expect("must re-integrate") as usize;
    let fix = net.run_until_stable(MAX_ROUNDS);
    assert!(fix.converged);
    (integ, integ + fix.rounds_to_stable() as usize)
}

fn main() {
    let trials = trials_per_size();
    let threads = harness_threads();
    println!("Theorems 4.1/4.2: isolated join / leave / crash ({trials} trials/size)\n");

    let mut table = Table::new(&[
        "n",
        "integ_join",
        "integ_leave",
        "integ_crash",
        "fix_join",
        "fix_leave",
        "fix_crash",
        "log2n",
        "log2n^2",
    ]);
    let mut ns = Vec::new();
    let (mut join_integ, mut leave_integ, mut crash_integ) = (Vec::new(), Vec::new(), Vec::new());

    for &n in &PAPER_SIZES {
        let seeds = seed_range(0x4a00_0000 + n as u64 * 1000, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let join = churn_cost(n, seed, |net| {
                let ids = net.real_ids();
                let contact = ids[(seed as usize) % ids.len()];
                let joiner = hash_address(seed ^ 0xfeed_beef, 0x1234);
                assert!(net.join_via(joiner, contact));
            });
            let leave = churn_cost(n, seed ^ 0x55aa, |net| {
                let ids = net.real_ids();
                assert!(net.graceful_leave(ids[(seed as usize / 7) % ids.len()]));
            });
            let crash = churn_cost(n, seed ^ 0x33cc, |net| {
                let ids = net.real_ids();
                assert!(net.crash(ids[(seed as usize / 3) % ids.len()]));
            });
            (join, leave, crash)
        });
        let ji = Stats::from_counts(results.iter().map(|r| r.0 .0));
        let li = Stats::from_counts(results.iter().map(|r| r.1 .0));
        let ci = Stats::from_counts(results.iter().map(|r| r.2 .0));
        let jf = Stats::from_counts(results.iter().map(|r| r.0 .1));
        let lf = Stats::from_counts(results.iter().map(|r| r.1 .1));
        let cf = Stats::from_counts(results.iter().map(|r| r.2 .1));
        let l2 = (n as f64).log2();
        table.row(&[
            n.to_string(),
            format!("{:.1}", ji.mean),
            format!("{:.1}", li.mean),
            format!("{:.1}", ci.mean),
            format!("{:.1}", jf.mean),
            format!("{:.1}", lf.mean),
            format!("{:.1}", cf.mean),
            format!("{:.2}", l2),
            format!("{:.1}", l2 * l2),
        ]);
        ns.push(n as f64);
        join_integ.push(ji.mean);
        leave_integ.push(li.mean);
        crash_integ.push(ci.mean);
    }

    table.print();
    println!();
    for (label, ys, bound) in [
        ("join  integration", &join_integ, "log²n"),
        ("leave integration", &leave_integ, "log n"),
        ("crash integration", &crash_integ, "log n"),
    ] {
        let shape = fit::classify_growth(&ns, ys);
        println!(
            "shape of {label}: best fit {:8} (r² = {:.4}); theorem bound O({bound}), r²({bound}) = {:.4}",
            shape.best(),
            shape.ranking[0].1,
            shape.r2_of(bound).unwrap_or(0.0)
        );
    }
    println!("\n(n and polylog(n) are weakly separable on an 8-point sweep up to n=105; the load-bearing observation is the absolute scale — integration takes a handful of rounds, far below the cold-start figures of fig6.)");

    let path = rechord_bench::results_dir().join("join_leave.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! **§1.1 / Fact 2.1** — Chord emulation on the stabilized overlay:
//! greedy lookups take `O(log n)` hops, and the stable Re-Chord projection
//! realizes the Chord edge set (wrap-around edges via the ring chain).

use rechord_analysis::{fit, parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, stabilized_random, trials_per_size};
use rechord_core::projection::Projection;
use rechord_id::Ident;
use rechord_routing::{route, RoutingTable};

fn main() {
    let trials = trials_per_size().min(10);
    let threads = harness_threads();
    let sizes = [8usize, 16, 32, 64, 105];
    let lookups_per_net = 64usize;
    println!(
        "Routing on the stable overlay ({trials} trials/size, {lookups_per_net} lookups each)\n"
    );

    let mut table = Table::new(&[
        "n",
        "hops_mean",
        "hops_max",
        "log2(n)",
        "success",
        "chord_cov",
        "wrap_missing",
    ]);
    let mut ns = Vec::new();
    let mut hop_means = Vec::new();
    for &n in &sizes {
        let seeds = seed_range(0x40u64 + n as u64 * 313, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let (net, _) = stabilized_random(n, seed);
            let projection = Projection::from_overlay(&net.snapshot());
            let coverage = rechord_core::projection::chord_coverage(&projection, &net.real_ids());
            let t = RoutingTable::from_network(&net);
            let peers = t.peers().to_vec();
            let mut hops = Vec::new();
            let mut successes = 0usize;
            for k in 0..lookups_per_net as u64 {
                let src = peers[(seed.wrapping_add(k) as usize) % peers.len()];
                let key =
                    Ident::from_raw(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(k << 32));
                let r = route(&t, src, key);
                if r.success {
                    successes += 1;
                }
                hops.push(r.hops());
            }
            (hops, successes, coverage.fraction(), coverage.missing_wrap.len())
        });
        let all_hops: Vec<usize> = results.iter().flat_map(|r| r.0.iter().copied()).collect();
        let hops = Stats::from_counts(all_hops);
        let success: usize = results.iter().map(|r| r.1).sum();
        let total_lookups = trials * lookups_per_net;
        let cov = Stats::from_slice(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let wrap: usize = results.iter().map(|r| r.3).sum();
        table.row(&[
            n.to_string(),
            format!("{:.2}", hops.mean),
            format!("{:.0}", hops.max),
            format!("{:.2}", (n as f64).log2()),
            format!("{:.3}", success as f64 / total_lookups as f64),
            format!("{:.3}", cov.mean),
            format!("{:.1}", wrap as f64 / trials as f64),
        ]);
        ns.push(n as f64);
        hop_means.push(hops.mean);
    }
    table.print();

    let shape = fit::classify_growth(&ns, &hop_means);
    println!(
        "\nhop growth: best fit {} (r² = {:.4}); r²(log n) = {:.4} — §1.1 promises O(log n) w.h.p.",
        shape.best(),
        shape.ranking[0].1,
        shape.r2_of("log n").unwrap_or(0.0)
    );
    println!("chord_cov is the directly realized fraction of Chord edges; the missing ones are all wrap-around edges closed via the ring chain (Fact 2.1 audit).");

    let path = rechord_bench::results_dir().join("routing.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

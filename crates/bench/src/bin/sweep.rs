//! Statistical SLO sweep: seeds × churn intensities, as a grid.
//!
//! `traffic --smoke` asserts SLO recovery for *pinned* seeds; this binary
//! makes the claim statistical. It scans a grid of master seeds × churn
//! intensities (crash-heavy storms of increasing size), runs the full
//! co-simulated workload for every cell, and reports the **availability
//! floor** (worst windowed availability over the run) and p99 latency per
//! cell plus grid-level aggregates — along with the placement engine's
//! incremental repair cost (keys moved, arcs touched) so the O(moved keys)
//! claim is visible across the whole grid.
//!
//! Output: a human table on stdout and machine-readable JSON under
//! `results/sweep.json` (`--smoke` writes `results/sweep_smoke.json`).
//!
//! `--smoke` runs a tiny deterministic grid and *asserts* the headline
//! behavior (every cell re-stabilizes and recovers at the tail); ci.sh runs
//! it, so the statistical harness cannot silently rot.

use rechord_analysis::Table;
use rechord_core::network::ReChordNetwork;
use rechord_topology::TimedChurnPlan;
use rechord_workload::{LatencyModel, TrafficConfig, TrafficSim, WorkloadConfig};
use std::fmt::Write as _;

/// Shared between the runs and the JSON config block, so the record always
/// matches the experiment.
const REPLICATION: usize = 3;
const SERVICE_TIME: u64 = 2;

struct Knobs {
    n: usize,
    horizon: u64,
    interarrival: f64,
    window: u64,
    seeds: Vec<u64>,
    intensities: Vec<usize>,
}

struct Cell {
    seed: u64,
    crashes: usize,
    requests: usize,
    availability: f64,
    /// Worst windowed availability over the run (the "floor").
    floor: f64,
    /// Availability of the final window (did the SLO recover?).
    tail: f64,
    p99: u64,
    lost_keys: usize,
    stable: bool,
    repairs: usize,
    repair_keys_moved: usize,
    repair_arcs_touched: usize,
}

fn run_cell(seed: u64, crashes: usize, k: &Knobs) -> Cell {
    let (net, report) = ReChordNetwork::bootstrap_stable(k.n, seed, 1, 200_000);
    assert!(report.converged, "seed {seed}: bootstrap must stabilize");
    let cfg = WorkloadConfig {
        seed,
        traffic: TrafficConfig {
            mean_interarrival: k.interarrival,
            key_universe: 256,
            zipf_exponent: 0.9,
            put_fraction: 0.1,
            hot_key: None,
        },
        traffic_start: 0,
        traffic_end: k.horizon,
        round_every: 150, // ops tempo: stabilization takes real time
        latency: LatencyModel::Uniform { lo: 5, hi: 15 },
        replication: REPLICATION,
        max_retries: 2,
        retry_backoff: 40,
        hop_budget: 128,
        max_rounds: 200_000,
        detection_lag: 250,
        service_time: SERVICE_TIME,
    };
    // A crash-heavy storm in the middle third of the run; intensity = how
    // many churn events strike.
    let storm = TimedChurnPlan::storm(crashes, 0.35, k.horizon / 4, 150, seed ^ 0x5eed);
    let mut sim = TrafficSim::new(cfg, net, &storm);
    sim.preload();
    let r = sim.run();
    let windows = r.sink.windows(k.window);
    let floor = windows.iter().map(|w| w.availability()).fold(1.0f64, f64::min);
    let tail = windows.last().map_or(1.0, |w| w.availability());
    Cell {
        seed,
        crashes,
        requests: r.summary.total,
        availability: r.summary.availability,
        floor,
        tail,
        p99: r.summary.p99,
        lost_keys: r.lost_keys,
        stable: r.stable_at_end,
        repairs: r.summary.repairs,
        repair_keys_moved: r.summary.repair_keys_moved,
        repair_arcs_touched: r.summary.repair_arcs_touched,
    }
}

fn json_escape_free_number(x: f64) -> String {
    // JSON has no NaN/inf; the sweep never produces them, but be safe.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn write_json(path: &std::path::Path, k: &Knobs, cells: &[Cell]) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"peers\": {}, \"horizon\": {}, \"mean_interarrival\": {}, \"window\": {}, \"replication\": {REPLICATION}, \"service_time\": {SERVICE_TIME}}},",
        k.n, k.horizon, k.interarrival, k.window
    );
    let floor = cells.iter().map(|c| c.floor).fold(1.0f64, f64::min);
    let worst_p99 = cells.iter().map(|c| c.p99).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "  \"aggregate\": {{\"cells\": {}, \"availability_floor\": {}, \"worst_p99\": {worst_p99}}},",
        cells.len(),
        json_escape_free_number(floor)
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"seed\": {}, \"crashes\": {}, \"requests\": {}, \"availability\": {}, \"floor\": {}, \"tail\": {}, \"p99\": {}, \"lost_keys\": {}, \"stable\": {}, \"repairs\": {}, \"repair_keys_moved\": {}, \"repair_arcs_touched\": {}}}",
            c.seed,
            c.crashes,
            c.requests,
            json_escape_free_number(c.availability),
            json_escape_free_number(c.floor),
            json_escape_free_number(c.tail),
            c.p99,
            c.lost_keys,
            c.stable,
            c.repairs,
            c.repair_keys_moved,
            c.repair_arcs_touched
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(path.parent().expect("results dir has a parent or is one"))?;
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = if smoke {
        Knobs {
            n: 20,
            horizon: 10_000,
            interarrival: 10.0,
            window: 2_000,
            seeds: vec![0xa1, 0xb2],
            intensities: vec![3, 6],
        }
    } else {
        Knobs {
            n: 48,
            horizon: 40_000,
            interarrival: 6.0,
            window: 4_000,
            seeds: vec![1, 2, 3, 5, 8, 13],
            intensities: vec![4, 8, 12],
        }
    };
    println!(
        "SLO sweep: {} seeds × {} intensities, {} peers, horizon {}{}\n",
        k.seeds.len(),
        k.intensities.len(),
        k.n,
        k.horizon,
        if smoke { " [smoke]" } else { "" }
    );

    let mut cells = Vec::new();
    for &crashes in &k.intensities {
        for &seed in &k.seeds {
            cells.push(run_cell(seed, crashes, &k));
        }
    }

    let mut table = Table::new(&[
        "seed", "storm", "reqs", "avail", "floor", "tail", "p99", "lost", "stable", "repairs",
        "moved",
    ]);
    for c in &cells {
        table.row(&[
            format!("{:#x}", c.seed),
            c.crashes.to_string(),
            c.requests.to_string(),
            format!("{:.4}", c.availability),
            format!("{:.4}", c.floor),
            format!("{:.4}", c.tail),
            c.p99.to_string(),
            c.lost_keys.to_string(),
            c.stable.to_string(),
            c.repairs.to_string(),
            c.repair_keys_moved.to_string(),
        ]);
    }
    table.print();

    let floor = cells.iter().map(|c| c.floor).fold(1.0f64, f64::min);
    let recovered = cells.iter().filter(|c| c.tail == 1.0).count();
    println!(
        "\ngrid availability floor {:.4}; {recovered}/{} cells end their last window fully available",
        floor,
        cells.len()
    );

    let name = if smoke { "sweep_smoke.json" } else { "sweep.json" };
    let path = rechord_bench::results_dir().join(name);
    write_json(&path, &k, &cells).expect("write sweep json");
    println!("wrote {}", path.display());

    // The statistical gate: across the whole grid — not one pinned seed —
    // the overlay must re-stabilize and serve again. These hold
    // deterministically for the grid above, so ci.sh catches regressions.
    for c in &cells {
        assert!(c.stable, "seed {:#x} × {} crashes did not re-stabilize", c.seed, c.crashes);
        assert!(c.requests > 300, "seed {:#x}: too few requests to judge", c.seed);
        assert!(
            c.tail >= 0.99,
            "seed {:#x} × {} crashes: tail availability {:.4} never recovered",
            c.seed,
            c.crashes,
            c.tail
        );
        assert!(c.repairs > 0, "churned cells must run fixpoint repairs");
    }
    assert!(
        cells.iter().any(|c| c.floor < 1.0),
        "storms this size must dent availability somewhere in the grid"
    );

    println!("\nsweep: all grid assertions hold");
}

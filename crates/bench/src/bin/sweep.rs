//! Statistical SLO sweep: seeds × churn intensities × repair bandwidths,
//! as a grid.
//!
//! `traffic --smoke` asserts SLO recovery for *pinned* seeds; this binary
//! makes the claim statistical. It scans a grid of master seeds × churn
//! intensities (join-heavy storms of increasing size) × anti-entropy
//! repair bandwidths (keys moved per tick; 0 = infinite, the instantaneous
//! pre-paced model), runs the full co-simulated workload for every cell,
//! and reports the **availability floor** (worst windowed availability
//! over the run) and p99 latency per cell plus grid-level aggregates —
//! along with the placement engine's repair cost and timeline (keys moved,
//! arcs touched, backlog peak, ticks, slowest time-to-full-replication) so
//! both the O(moved keys) claim and the bandwidth/availability trade-off
//! are visible across the whole grid.
//!
//! Output: a human table on stdout and machine-readable JSON under
//! `results/sweep.json` (`--smoke` writes `results/sweep_smoke.json`).
//!
//! `--smoke` runs a tiny deterministic grid and *asserts* the headline
//! behavior: every cell re-stabilizes and recovers at the tail, the repair
//! timeline is internally consistent (a pass never moves more keys than
//! its starting backlog), and the availability floor degrades monotonically
//! as the repair bandwidth shrinks. ci.sh runs it, so neither the
//! statistical harness nor the paced-repair model can silently rot.

use rechord_analysis::Table;
use rechord_bench::scenario_config;
use rechord_core::network::ReChordNetwork;
use rechord_topology::TimedChurnPlan;
use rechord_workload::TrafficSim;
use std::fmt::Write as _;

/// Shared between the runs and the JSON config block, so the record always
/// matches the experiment.
const REPLICATION: usize = 2;
const SERVICE_TIME: u64 = 2;
const KEY_UNIVERSE: u64 = 4_096;

struct Knobs {
    n: usize,
    horizon: u64,
    interarrival: f64,
    window: u64,
    seeds: Vec<u64>,
    intensities: Vec<usize>,
    /// Keys repaired per tick; 0 = infinite (instantaneous fixpoint repair).
    bandwidths: Vec<usize>,
}

struct Cell {
    seed: u64,
    storm_events: usize,
    repair_bandwidth: usize,
    requests: usize,
    availability: f64,
    /// Worst windowed availability over the run (the "floor").
    floor: f64,
    /// Availability of the final window (did the SLO recover?).
    tail: f64,
    p99: u64,
    lost_keys: usize,
    stable: bool,
    repairs: usize,
    repair_keys_moved: usize,
    repair_arcs_touched: usize,
    /// Largest repair backlog (keys in dirty arcs) the run ever saw.
    repair_backlog_peak: usize,
    /// Bounded repair ticks, totalled across passes.
    repair_ticks: usize,
    /// Longest time-to-full-replication over completed passes.
    slowest_repair: u64,
    /// Passes churn preempted mid-drain.
    preempted_repairs: usize,
}

fn run_cell(seed: u64, storm_events: usize, bandwidth: usize, k: &Knobs) -> Cell {
    let (net, report) = ReChordNetwork::bootstrap_stable(k.n, seed, 1, 200_000);
    assert!(report.converged, "seed {seed}: bootstrap must stabilize");
    // The shared deployment baseline, with this experiment's overrides:
    // a bigger uniform key universe (staleness anywhere is sampled), fast
    // rounds so fixpoints land between churn strikes, and the swept
    // repair bandwidth.
    let mut cfg = scenario_config(seed, k.horizon, k.interarrival);
    cfg.traffic.key_universe = KEY_UNIVERSE;
    cfg.traffic.zipf_exponent = 0.0;
    cfg.round_every = 10;
    cfg.replication = REPLICATION;
    cfg.service_time = SERVICE_TIME;
    cfg.repair_bandwidth = bandwidth;
    // A join-heavy storm in the middle of the run; intensity = how many
    // churn events strike. Joins are what make repair bandwidth *visible*:
    // every split arc is unreadable at its new primary until the paced
    // drain copies it over, so a starved budget stretches the stale window
    // (crashes, by contrast, leave in-window survivors that keep serving).
    let storm = TimedChurnPlan::storm(storm_events, 0.7, k.horizon / 4, 300, seed ^ 0x5eed);
    let mut sim = TrafficSim::new(cfg, net, &storm);
    sim.preload();
    let r = sim.run();
    let windows = r.sink.windows(k.window);
    let floor = windows.iter().map(|w| w.availability()).fold(1.0f64, f64::min);
    let tail = windows.last().map_or(1.0, |w| w.availability());
    // Timeline consistency, checked on every cell: a pass can never move
    // more keys than its starting backlog held, nor end before it started.
    for pass in r.sink.repairs() {
        assert!(
            pass.stats.keys_moved <= pass.backlog_at_start,
            "seed {seed}: pass moved {} of a {}-key backlog",
            pass.stats.keys_moved,
            pass.backlog_at_start
        );
        assert!(pass.at >= pass.started_at, "seed {seed}: pass ended before it began");
    }
    Cell {
        seed,
        storm_events,
        repair_bandwidth: bandwidth,
        requests: r.summary.total,
        availability: r.summary.availability,
        floor,
        tail,
        p99: r.summary.p99,
        lost_keys: r.lost_keys,
        stable: r.stable_at_end,
        repairs: r.summary.repairs,
        repair_keys_moved: r.summary.repair_keys_moved,
        repair_arcs_touched: r.summary.repair_arcs_touched,
        repair_backlog_peak: r.summary.repair_backlog_peak,
        repair_ticks: r.summary.repair_ticks,
        slowest_repair: r.summary.slowest_repair,
        preempted_repairs: r.sink.repairs().iter().filter(|p| p.preempted).count(),
    }
}

fn json_escape_free_number(x: f64) -> String {
    // JSON has no NaN/inf; the sweep never produces them, but be safe.
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn write_json(path: &std::path::Path, k: &Knobs, cells: &[Cell]) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"peers\": {}, \"horizon\": {}, \"mean_interarrival\": {}, \"window\": {}, \"replication\": {REPLICATION}, \"service_time\": {SERVICE_TIME}}},",
        k.n, k.horizon, k.interarrival, k.window
    );
    let floor = cells.iter().map(|c| c.floor).fold(1.0f64, f64::min);
    let worst_p99 = cells.iter().map(|c| c.p99).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "  \"aggregate\": {{\"cells\": {}, \"availability_floor\": {}, \"worst_p99\": {worst_p99}}},",
        cells.len(),
        json_escape_free_number(floor)
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"seed\": {}, \"storm_events\": {}, \"repair_bandwidth\": {}, \"requests\": {}, \"availability\": {}, \"floor\": {}, \"tail\": {}, \"p99\": {}, \"lost_keys\": {}, \"stable\": {}, \"repairs\": {}, \"repair_keys_moved\": {}, \"repair_arcs_touched\": {}, \"repair_backlog_peak\": {}, \"repair_ticks\": {}, \"slowest_repair\": {}, \"preempted_repairs\": {}}}",
            c.seed,
            c.storm_events,
            c.repair_bandwidth,
            c.requests,
            json_escape_free_number(c.availability),
            json_escape_free_number(c.floor),
            json_escape_free_number(c.tail),
            c.p99,
            c.lost_keys,
            c.stable,
            c.repairs,
            c.repair_keys_moved,
            c.repair_arcs_touched,
            c.repair_backlog_peak,
            c.repair_ticks,
            c.slowest_repair,
            c.preempted_repairs
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(path.parent().expect("results dir has a parent or is one"))?;
    std::fs::write(path, out)
}

fn bw_label(bw: usize) -> String {
    if bw == 0 {
        "inf".to_string()
    } else {
        bw.to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = if smoke {
        Knobs {
            n: 20,
            horizon: 12_000,
            interarrival: 5.0,
            window: 1_000,
            seeds: vec![0xa1, 0xb2, 0xc3, 0x11],
            intensities: vec![8, 12],
            bandwidths: vec![0, 3, 1],
        }
    } else {
        Knobs {
            n: 48,
            horizon: 40_000,
            interarrival: 5.0,
            window: 2_000,
            seeds: vec![1, 2, 3, 5, 8, 13],
            intensities: vec![8, 12, 16],
            bandwidths: vec![0, 8, 3, 1],
        }
    };
    println!(
        "SLO sweep: {} seeds × {} intensities × {} repair bandwidths, {} peers, horizon {}{}\n",
        k.seeds.len(),
        k.intensities.len(),
        k.bandwidths.len(),
        k.n,
        k.horizon,
        if smoke { " [smoke]" } else { "" }
    );

    let mut cells = Vec::new();
    for &bw in &k.bandwidths {
        for &storm_events in &k.intensities {
            for &seed in &k.seeds {
                cells.push(run_cell(seed, storm_events, bw, &k));
            }
        }
    }

    let mut table = Table::new(&[
        "seed", "storm", "bw", "reqs", "avail", "floor", "tail", "p99", "lost", "stable",
        "repairs", "moved", "backlog", "slowest",
    ]);
    for c in &cells {
        table.row(&[
            format!("{:#x}", c.seed),
            c.storm_events.to_string(),
            bw_label(c.repair_bandwidth),
            c.requests.to_string(),
            format!("{:.4}", c.availability),
            format!("{:.4}", c.floor),
            format!("{:.4}", c.tail),
            c.p99.to_string(),
            c.lost_keys.to_string(),
            c.stable.to_string(),
            c.repairs.to_string(),
            c.repair_keys_moved.to_string(),
            c.repair_backlog_peak.to_string(),
            c.slowest_repair.to_string(),
        ]);
    }
    table.print();

    let floor = cells.iter().map(|c| c.floor).fold(1.0f64, f64::min);
    let recovered = cells.iter().filter(|c| c.tail == 1.0).count();
    println!(
        "\ngrid availability floor {:.4}; {recovered}/{} cells end their last window fully available",
        floor,
        cells.len()
    );
    // The headline trade-off: mean availability floor per repair bandwidth.
    println!("\navailability floor by repair bandwidth (keys/tick):");
    let mut floors_by_bw: Vec<(usize, f64)> = Vec::new();
    for &bw in &k.bandwidths {
        let group: Vec<f64> =
            cells.iter().filter(|c| c.repair_bandwidth == bw).map(|c| c.floor).collect();
        let mean = group.iter().sum::<f64>() / group.len() as f64;
        println!("  bw {:>4}: mean floor {:.4}", bw_label(bw), mean);
        floors_by_bw.push((bw, mean));
    }

    let name = if smoke { "sweep_smoke.json" } else { "sweep.json" };
    let path = rechord_bench::results_dir().join(name);
    write_json(&path, &k, &cells).expect("write sweep json");
    println!("wrote {}", path.display());

    // The statistical gate: across the whole grid — not one pinned seed —
    // the overlay must re-stabilize and serve again. These hold
    // deterministically for the grid above, so ci.sh catches regressions.
    for c in &cells {
        assert!(
            c.stable,
            "seed {:#x} × {} events × bw {}: did not re-stabilize",
            c.seed,
            c.storm_events,
            bw_label(c.repair_bandwidth)
        );
        assert!(c.requests > 300, "seed {:#x}: too few requests to judge", c.seed);
        // Starved repair bandwidth legitimately loses keys (a second crash
        // lands before the first one's re-replication reaches them); those
        // keys read stale forever, so the tail gate discounts them — but
        // surviving keys must be served again, and the damage stays small.
        let dead = c.lost_keys as f64 / KEY_UNIVERSE as f64;
        assert!(
            c.lost_keys as u64 <= KEY_UNIVERSE / 40,
            "seed {:#x} × {} events × bw {}: {} lost keys is out of bounds",
            c.seed,
            c.storm_events,
            bw_label(c.repair_bandwidth),
            c.lost_keys
        );
        assert!(
            c.tail >= 0.99 - 2.0 * dead,
            "seed {:#x} × {} events × bw {}: tail availability {:.4} never recovered ({} dead keys)",
            c.seed,
            c.storm_events,
            bw_label(c.repair_bandwidth),
            c.tail,
            c.lost_keys
        );
        assert!(c.repairs > 0, "churned cells must run fixpoint repairs");
        if c.repair_bandwidth > 0 {
            assert!(c.repair_backlog_peak > 0, "paced cells must gauge their backlog");
        }
    }
    assert!(
        cells.iter().any(|c| c.floor < 1.0),
        "storms this size must dent availability somewhere in the grid"
    );

    // The bandwidth/availability trade-off, asserted: shrinking the repair
    // bandwidth can only degrade the mean availability floor (the grid is
    // configured with bandwidths in decreasing order, 0 = infinite first).
    for pair in floors_by_bw.windows(2) {
        let ((wide, wide_floor), (narrow, narrow_floor)) = (pair[0], pair[1]);
        assert!(
            narrow_floor <= wide_floor + 1e-9,
            "shrinking repair bandwidth {} -> {} must not raise the mean floor ({:.4} -> {:.4})",
            bw_label(wide),
            bw_label(narrow),
            wide_floor,
            narrow_floor
        );
    }
    let widest = floors_by_bw.first().expect("grid has bandwidths").1;
    let narrowest = floors_by_bw.last().expect("grid has bandwidths").1;
    assert!(
        narrowest < widest,
        "the starved bandwidth must visibly dent the floor ({widest:.4} -> {narrowest:.4})"
    );
    // Data durability degrades the same way: a starved budget leaves keys
    // under-replicated longer, so a follow-up crash can destroy them.
    let lost_at = |bw: usize| -> usize {
        cells.iter().filter(|c| c.repair_bandwidth == bw).map(|c| c.lost_keys).sum()
    };
    let (wide_bw, narrow_bw) =
        (*k.bandwidths.first().expect("bandwidths"), *k.bandwidths.last().expect("bandwidths"));
    assert!(
        lost_at(narrow_bw) >= lost_at(wide_bw),
        "starving repair bandwidth cannot *save* data ({} -> {} lost keys)",
        lost_at(wide_bw),
        lost_at(narrow_bw)
    );

    // The JSON record carries the repair timeline: spot-check the fields
    // made it to disk (ci greps nothing — this is the machine check).
    let written = std::fs::read_to_string(&path).expect("re-read sweep json");
    for field in [
        "repair_bandwidth",
        "repair_backlog_peak",
        "repair_ticks",
        "slowest_repair",
        "preempted_repairs",
    ] {
        assert!(written.contains(field), "sweep JSON must carry {field}");
    }

    println!("\nsweep: all grid assertions hold");
}

//! The transport subsystem's end-to-end bench: the same seeded get/put
//! workload served three ways — by the direct-call `KvStore` oracle, by an
//! in-memory loopback cluster (one OS thread per node), and by real node
//! *processes* over TCP — with every per-RPC result asserted identical
//! before a single number is reported.
//!
//! The three runs share one `TrafficGen` stream, one key-hashing seed, and
//! one deterministic entry-peer sequence (`mix(seed, rpc) % n`), so the
//! routed hops, responsible peers, and returned values must agree RPC for
//! RPC. The bench *is* the parity test; the timings it then writes
//! (`BENCH_cluster.json` at the root, `results/cluster_smoke.json` under
//! `--smoke`) measure what the wire costs relative to a function call.
//!
//! The TCP leg spawns `node` binaries from this executable's directory —
//! build them first (`cargo build --release -p rechord_net --bin node`, as
//! ci.sh does); the bench fails with a pointed message otherwise.

use rechord_analysis::Table;
use rechord_core::network::ReChordNetwork;
use rechord_id::{IdSpace, Ident};
use rechord_net::{ClusterClient, ClusterConfig, RpcResult, ThreadedCluster, Transport};
use rechord_net::{PeerAddr, TcpTransport};
use rechord_routing::{KvStore, RoutingTable};
use rechord_topology::TopologyKind;
use rechord_workload::{Op, Request, TrafficConfig, TrafficGen};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SEED: u64 = 0xc1;
const NODES: usize = 3;
const REPLICATION: usize = 2;
const MAX_ROUNDS: u64 = 200_000;

/// The put payload is a pure function of the request, so every backend
/// writes (and the oracle expects) the same bytes.
fn put_value(req: &Request) -> String {
    format!("v{}-{}", req.id, req.key)
}

/// The shared request stream: every backend replays exactly these.
fn workload(rpcs: usize) -> Vec<Request> {
    let cfg = TrafficConfig {
        mean_interarrival: 1.0,
        key_universe: 256,
        zipf_exponent: 0.9,
        put_fraction: 0.1,
        hot_key: None,
    };
    let mut gen = TrafficGen::new(cfg, SEED);
    (0..rpcs as u64).map(|k| gen.next_request(k)).collect()
}

/// Timing + latency distribution of one backend's run.
struct BackendStat {
    name: &'static str,
    wall_ms: f64,
    rpcs_per_sec: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn stat_of(name: &'static str, wall: Duration, mut lat_us: Vec<f64>) -> BackendStat {
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    let wall_ms = wall.as_secs_f64() * 1e3;
    BackendStat {
        name,
        wall_ms,
        rpcs_per_sec: lat_us.len() as f64 / wall.as_secs_f64(),
        mean_us: lat_us.iter().sum::<f64>() / lat_us.len() as f64,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// The direct-call oracle: stabilize the same topology in the engine, then
/// replay the stream against `KvStore`, mirroring the client's rpc ids
/// (request index + 1) and entry peers.
fn oracle_run(cfg: &ClusterConfig, requests: &[Request]) -> (Vec<RpcResult>, BackendStat) {
    let mut net = ReChordNetwork::from_topology(&cfg.topology, 1);
    let report = net.run_until_stable(cfg.max_rounds);
    assert!(report.converged, "oracle overlay must stabilize");
    let table = RoutingTable::from_network(&net);
    let space = IdSpace::new(cfg.space_seed);
    let mut kv = KvStore::with_replication(table, space, cfg.replication);

    let roster = cfg.topology.ids.clone();
    let entry = |rpc: u64| {
        roster[(rechord_core::adversary::mix(&[cfg.space_seed, rpc]) as usize) % roster.len()]
    };

    let mut results = Vec::with_capacity(requests.len());
    let mut lat = Vec::with_capacity(requests.len());
    let t0 = Instant::now();
    for req in requests {
        let rpc = req.id + 1; // client rpc ids are 1-based
        let via = entry(rpc);
        let t = Instant::now();
        let r = match req.op {
            Op::Put => {
                let out = kv.put(via, req.key, put_value(req)).expect("roster is non-empty");
                RpcResult {
                    rpc,
                    ok: out.routed,
                    hops: out.hops as u32,
                    responsible: out.responsible,
                    value: None,
                }
            }
            Op::Get => {
                let (value, out) = kv.get(via, req.key).expect("roster is non-empty");
                RpcResult {
                    rpc,
                    ok: out.routed,
                    hops: out.hops as u32,
                    responsible: out.responsible,
                    value: value.map(str::to_string),
                }
            }
        };
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        results.push(r);
    }
    (results, stat_of("oracle", t0.elapsed(), lat))
}

/// Drives the shared stream through a connected, serving client.
fn drive<T: Transport>(
    name: &'static str,
    client: &mut ClusterClient<T>,
    requests: &[Request],
) -> (Vec<RpcResult>, BackendStat) {
    let mut results = Vec::with_capacity(requests.len());
    let mut lat = Vec::with_capacity(requests.len());
    let t0 = Instant::now();
    for req in requests {
        let t = Instant::now();
        let r = match req.op {
            Op::Put => client.put(req.key, put_value(req)),
            Op::Get => client.get(req.key),
        }
        .unwrap_or_else(|e| panic!("{name}: rpc {} ({:?}) failed: {e}", req.id + 1, req.op));
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        results.push(r);
    }
    (results, stat_of(name, t0.elapsed(), lat))
}

/// In-memory loopback cluster: one thread per node on one fabric.
fn inmem_run(cfg: &ClusterConfig, requests: &[Request]) -> (Vec<RpcResult>, BackendStat) {
    let cluster = ThreadedCluster::launch(cfg);
    let client_id = Ident::from_raw(u64::MAX); // ids are random draws; no collision here
    let transport = cluster.client_endpoint(client_id);
    let mut client = ClusterClient::new(
        transport,
        cluster.roster().to_vec(),
        cfg.space_seed,
        Duration::from_secs(30),
    );
    assert!(
        client.wait_serving(Duration::from_secs(120)).expect("ping poll"),
        "in-mem cluster must reach serving"
    );
    let out = drive("inmem", &mut client, requests);
    client.shutdown_all().expect("shutdown");
    let reports = cluster.join().expect("node threads");
    assert!(reports.iter().all(|r| r.converged), "every in-mem node must converge");
    out
}

/// Reserves `n` distinct loopback ports by binding and immediately
/// releasing port-0 listeners. The window between release and the child's
/// bind is the standard (benign on an otherwise-idle loopback) race.
fn free_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("local addr")).collect()
}

/// Kills every child on drop, so a panicked assertion cannot leak node
/// processes past the bench.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Real processes over TCP: spawn one `node` binary per peer, connect a
/// TCP client, replay the stream, shut the processes down cleanly.
fn tcp_run(cfg: &ClusterConfig, requests: &[Request]) -> (Vec<RpcResult>, BackendStat) {
    let node_bin = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .join(format!("node{}", std::env::consts::EXE_SUFFIX));
    assert!(
        node_bin.exists(),
        "node binary missing at {} — run `cargo build --release -p rechord_net --bin node` first",
        node_bin.display()
    );

    let addrs = free_ports(cfg.topology.ids.len());
    let roster_arg = cfg
        .topology
        .ids
        .iter()
        .zip(&addrs)
        .map(|(id, addr)| format!("{}@{addr}", id.raw()))
        .collect::<Vec<_>>()
        .join(",");

    let mut children = Reaper(Vec::new());
    for (i, &id) in cfg.topology.ids.iter().enumerate() {
        let contacts = cfg
            .topology
            .contacts_of(id)
            .iter()
            .map(|c| c.raw().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let child = Command::new(&node_bin)
            .args(["--ident", &id.raw().to_string()])
            .args(["--listen", &addrs[i].to_string()])
            .args(["--roster", &roster_arg])
            .args(["--contacts", &contacts])
            .args(["--seed", &cfg.space_seed.to_string()])
            .args(["--replication", &cfg.replication.to_string()])
            .args(["--max-rounds", &cfg.max_rounds.to_string()])
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn node process");
        children.0.push(child);
    }

    let client_id = Ident::from_raw(u64::MAX);
    let mut transport =
        TcpTransport::bind(client_id, "127.0.0.1:0".parse().unwrap()).expect("bind client");
    for (id, addr) in cfg.topology.ids.iter().zip(&addrs) {
        transport.connect(*id, &PeerAddr::Socket(*addr)).expect("dial node");
    }
    let mut client = ClusterClient::new(
        transport,
        cfg.topology.ids.clone(),
        cfg.space_seed,
        Duration::from_secs(30),
    );
    assert!(
        client.wait_serving(Duration::from_secs(120)).expect("ping poll"),
        "TCP cluster must reach serving"
    );
    let out = drive("tcp", &mut client, requests);
    client.shutdown_all().expect("shutdown");
    for child in &mut children.0 {
        let status = child.wait().expect("wait node");
        assert!(status.success(), "node process exited nonzero: {status}");
    }
    children.0.clear();
    out
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "null".into()
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &std::path::Path,
    mode: &str,
    nodes: usize,
    rpcs: usize,
    puts: usize,
    availability: f64,
    mean_hops: f64,
    stats: &[BackendStat],
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"nodes\": {nodes},\n"));
    out.push_str(&format!("  \"rpcs\": {rpcs},\n"));
    out.push_str(&format!("  \"puts\": {puts},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"availability\": {availability:.4},\n"));
    out.push_str(&format!("  \"mean_hops\": {mean_hops:.3},\n"));
    out.push_str(
        "  \"parity\": \"per-RPC (ok, hops, responsible, value) identical across the \
         direct-call oracle, the in-memory cluster, and the TCP process cluster\",\n",
    );
    out.push_str("  \"backends\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {}, \"rpcs_per_sec\": {}, \
             \"latency_mean_us\": {}, \"latency_p50_us\": {}, \"latency_p99_us\": {}}}{}\n",
            s.name,
            json_number(s.wall_ms),
            json_number(s.rpcs_per_sec),
            json_number(s.mean_us),
            json_number(s.p50_us),
            json_number(s.p99_us),
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rpcs = if smoke { 10_000 } else { 30_000 };
    println!(
        "cluster bench: {NODES} nodes, {rpcs} RPCs, seed {SEED:#x}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let cfg = ClusterConfig {
        topology: TopologyKind::Random.generate(NODES, SEED),
        space_seed: SEED,
        replication: REPLICATION,
        max_rounds: MAX_ROUNDS,
    };
    let requests = workload(rpcs);
    let puts = requests.iter().filter(|r| r.op == Op::Put).count();

    let (oracle, oracle_stat) = oracle_run(&cfg, &requests);
    println!("  oracle: {:.0} rpc/s", oracle_stat.rpcs_per_sec);
    let (inmem, inmem_stat) = inmem_run(&cfg, &requests);
    println!("  inmem:  {:.0} rpc/s", inmem_stat.rpcs_per_sec);
    let (tcp, tcp_stat) = tcp_run(&cfg, &requests);
    println!("  tcp:    {:.0} rpc/s", tcp_stat.rpcs_per_sec);

    // The claim of the subsystem, checked result-by-result: the wire
    // changes the cost of an RPC, never its answer.
    for (i, (o, m)) in oracle.iter().zip(&inmem).enumerate() {
        assert_eq!(o, m, "in-mem diverged from the oracle at rpc {}", i + 1);
    }
    for (i, (m, t)) in inmem.iter().zip(&tcp).enumerate() {
        assert_eq!(m, t, "TCP diverged from in-mem at rpc {}", i + 1);
    }
    let served_ok = oracle.iter().filter(|r| r.ok).count();
    let availability = served_ok as f64 / oracle.len() as f64;
    assert_eq!(availability, 1.0, "a stable cluster must serve every RPC");
    let mean_hops = oracle.iter().map(|r| r.hops as f64).sum::<f64>() / oracle.len() as f64;

    let stats = [oracle_stat, inmem_stat, tcp_stat];
    let mut table = Table::new(&["backend", "wall_ms", "rpc/s", "mean_us", "p50_us", "p99_us"]);
    for s in &stats {
        table.row(&[
            s.name.to_string(),
            format!("{:.0}", s.wall_ms),
            format!("{:.0}", s.rpcs_per_sec),
            format!("{:.1}", s.mean_us),
            format!("{:.1}", s.p50_us),
            format!("{:.1}", s.p99_us),
        ]);
    }
    table.print();

    let path = if smoke {
        rechord_bench::results_dir().join("cluster_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_cluster.json")
    };
    write_json(
        &path,
        if smoke { "smoke" } else { "full" },
        NODES,
        rpcs,
        puts,
        availability,
        mean_hops,
        &stats,
    );
    println!("cluster: {rpcs} RPCs byte-identical across oracle, in-mem, and TCP");
}

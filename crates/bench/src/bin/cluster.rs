//! The transport subsystem's end-to-end bench: the same seeded get/put
//! workload served three ways — by the direct-call `KvStore` oracle, by an
//! in-memory loopback cluster (one OS thread per node), and by real node
//! *processes* over TCP — with every per-RPC result asserted identical
//! before a single number is reported.
//!
//! Each backend runs three settings: strictly serial (`window=1`, one
//! client — the legacy closed loop, byte-identical on the wire to the
//! pre-pipelining client), windowed (`--window N` requests in flight from
//! one client, corked writes coalescing whole windows into single
//! syscalls), and windowed multi-client (`--clients C` concurrent clients,
//! each owning the keys `key % C == c` so the shards never conflict and
//! per-shard results stay interleaving-independent).
//!
//! All runs share one `TrafficGen` stream and one key-hashing seed; entry
//! peers are drawn per client as `mix(entry_seed, rpc) % n` with
//! client-local 1-based rpc ids, and the oracle replays each shard with
//! the same draw — so routed hops, responsible peers, and returned values
//! must agree RPC for RPC *at every setting*. The bench *is* the parity
//! test; the timings it then writes (`BENCH_cluster.json` at the root,
//! `results/cluster_smoke.json` under `--smoke`) measure what the wire
//! costs relative to a function call, and what pipelining buys back.
//!
//! The TCP legs spawn `node` binaries from this executable's directory —
//! build them first (`cargo build --release -p rechord_net --bin node`, as
//! ci.sh does); the bench fails with a pointed message otherwise.

use rechord_analysis::Table;
use rechord_core::adversary::mix;
use rechord_core::network::ReChordNetwork;
use rechord_id::{IdSpace, Ident};
use rechord_net::{ClusterClient, ClusterConfig, NetMsg, RpcResult, ThreadedCluster, Transport};
use rechord_net::{PeerAddr, TcpTransport};
use rechord_routing::{KvStore, RoutingTable};
use rechord_topology::TopologyKind;
use rechord_workload::{Op, Request, TrafficConfig, TrafficGen};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const SEED: u64 = 0xc1;
const NODES: usize = 3;
const REPLICATION: usize = 2;
const MAX_ROUNDS: u64 = 200_000;
const DEFAULT_WINDOW: usize = 64;
const DEFAULT_CLIENTS: usize = 4;

/// The put payload is a pure function of the request, so every backend
/// writes (and the oracle expects) the same bytes.
fn put_value(req: &Request) -> String {
    format!("v{}-{}", req.id, req.key)
}

/// The shared request stream: every backend replays exactly these.
fn workload(rpcs: usize) -> Vec<Request> {
    let cfg = TrafficConfig {
        mean_interarrival: 1.0,
        key_universe: 256,
        zipf_exponent: 0.9,
        put_fraction: 0.1,
        hot_key: None,
    };
    let mut gen = TrafficGen::new(cfg, SEED);
    (0..rpcs as u64).map(|k| gen.next_request(k)).collect()
}

/// Entry-peer seed of one client. A single client keeps the legacy seed
/// (so the serial row replays the committed byte stream exactly); a fleet
/// gets distinct deterministic seeds, mirrored by the oracle replay.
fn client_entry_seed(client: usize, clients: usize) -> u64 {
    if clients == 1 {
        SEED
    } else {
        mix(&[SEED, 0x5eed, client as u64])
    }
}

/// Identifier of worker client `c`. Roster ids are random draws well away
/// from the top of the space; `u64::MAX` itself is the control client.
fn client_ident(c: usize) -> Ident {
    Ident::from_raw(u64::MAX - 1 - c as u64)
}

/// Splits the stream into per-client shards by `key % clients`, so clients
/// own disjoint key sets and every interleaving of their pipelines yields
/// the serial per-shard answers.
fn shard(requests: &[Request], clients: usize) -> Vec<Vec<Request>> {
    let mut shards = vec![Vec::new(); clients];
    for &req in requests {
        shards[(req.key % clients as u64) as usize].push(req);
    }
    shards
}

/// Timing + latency distribution of one backend setting.
struct BackendStat {
    name: &'static str,
    window: usize,
    clients: usize,
    wall_ms: f64,
    rpcs_per_sec: f64,
    mean_us: f64,
    p50_us: f64,
    p99_us: f64,
}

fn stat_of(
    name: &'static str,
    window: usize,
    clients: usize,
    wall: Duration,
    mut lat_us: Vec<f64>,
) -> BackendStat {
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p) as usize];
    BackendStat {
        name,
        window,
        clients,
        wall_ms: wall.as_secs_f64() * 1e3,
        rpcs_per_sec: lat_us.len() as f64 / wall.as_secs_f64(),
        mean_us: lat_us.iter().sum::<f64>() / lat_us.len() as f64,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// The direct-call oracle: the same topology stabilized in the engine,
/// replayed shard by shard against a fresh `KvStore` with the clients'
/// rpc-id and entry-peer draws. Disjoint shard keys make the sequential
/// replay equal to every interleaving the live clusters can produce.
struct Oracle {
    net: ReChordNetwork,
    space_seed: u64,
    replication: usize,
    roster: Vec<Ident>,
}

impl Oracle {
    fn new(cfg: &ClusterConfig) -> Self {
        let mut net = ReChordNetwork::from_topology(&cfg.topology, 1);
        let report = net.run_until_stable(cfg.max_rounds);
        assert!(report.converged, "oracle overlay must stabilize");
        Oracle {
            net,
            space_seed: cfg.space_seed,
            replication: cfg.replication,
            roster: cfg.topology.ids.clone(),
        }
    }

    /// Replays `shards` through one fresh store; also returns the per-RPC
    /// serve latencies (µs) across all shards, for the oracle's own row.
    fn replay(&self, shards: &[Vec<Request>]) -> (Vec<Vec<RpcResult>>, Vec<f64>) {
        let table = RoutingTable::from_network(&self.net);
        let space = IdSpace::new(self.space_seed);
        let mut kv = KvStore::with_replication(table, space, self.replication);
        let mut lat = Vec::with_capacity(shards.iter().map(Vec::len).sum());
        let all = shards
            .iter()
            .enumerate()
            .map(|(c, shard)| {
                let seed = client_entry_seed(c, shards.len());
                shard
                    .iter()
                    .enumerate()
                    .map(|(i, req)| {
                        let rpc = i as u64 + 1; // client rpc ids are 1-based
                        let via = self.roster[(mix(&[seed, rpc]) as usize) % self.roster.len()];
                        let t = Instant::now();
                        let r = match req.op {
                            Op::Put => {
                                let out = kv
                                    .put(via, req.key, put_value(req))
                                    .expect("roster is non-empty");
                                RpcResult {
                                    rpc,
                                    ok: out.routed,
                                    hops: out.hops as u32,
                                    responsible: out.responsible,
                                    value: None,
                                }
                            }
                            Op::Get => {
                                let (value, out) =
                                    kv.get(via, req.key).expect("roster is non-empty");
                                RpcResult {
                                    rpc,
                                    ok: out.routed,
                                    hops: out.hops as u32,
                                    responsible: out.responsible,
                                    value: value.map(str::to_string),
                                }
                            }
                        };
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                        r
                    })
                    .collect()
            })
            .collect();
        (all, lat)
    }
}

/// Replays one shard through a serving client, pipelined up to the
/// client's window, and returns the results in issue order.
fn drive_pipelined<T: Transport>(
    client: &mut ClusterClient<T>,
    shard: &[Request],
) -> Result<Vec<RpcResult>, rechord_net::NetError> {
    let mut results = Vec::with_capacity(shard.len());
    for req in shard {
        let done = match req.op {
            Op::Put => client.submit_put(req.key, put_value(req))?,
            Op::Get => client.submit_get(req.key)?,
        };
        results.extend(done);
    }
    results.extend(client.drain()?);
    Ok(results)
}

/// One worker client on its own thread: wait for serving, rendezvous at
/// the barrier, replay the shard, hand back results plus latencies.
fn spawn_client<T: Transport + Send + 'static>(
    name: &'static str,
    transport: T,
    roster: Vec<Ident>,
    seed: u64,
    window: usize,
    shard: Vec<Request>,
    barrier: Arc<Barrier>,
) -> std::thread::JoinHandle<(Vec<RpcResult>, Vec<f64>)> {
    std::thread::spawn(move || {
        let mut client = ClusterClient::new(transport, roster, seed, Duration::from_secs(30))
            .with_window(window);
        assert!(
            client.wait_serving(Duration::from_secs(120)).expect("ping poll"),
            "{name} cluster must reach serving"
        );
        barrier.wait();
        let results = drive_pipelined(&mut client, &shard)
            .unwrap_or_else(|e| panic!("{name}: pipelined replay failed: {e}"));
        (results, client.take_latencies_us())
    })
}

/// In-memory loopback cluster: one thread per node plus one per client,
/// all on one fabric. Returns per-shard results and the run's stat.
fn inmem_run(
    cfg: &ClusterConfig,
    shards: &[Vec<Request>],
    window: usize,
) -> (Vec<Vec<RpcResult>>, BackendStat) {
    let cluster = ThreadedCluster::launch(cfg);
    let barrier = Arc::new(Barrier::new(shards.len() + 1));
    let workers: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(c, shard)| {
            spawn_client(
                "inmem",
                cluster.client_endpoint(client_ident(c)),
                cluster.roster().to_vec(),
                client_entry_seed(c, shards.len()),
                window,
                shard.clone(),
                barrier.clone(),
            )
        })
        .collect();
    let t0 = Instant::now();
    barrier.wait();
    let mut results = Vec::with_capacity(workers.len());
    let mut lat = Vec::new();
    for w in workers {
        let (r, l) = w.join().expect("client thread");
        results.push(r);
        lat.extend(l);
    }
    let wall = t0.elapsed();

    let mut control = ClusterClient::new(
        cluster.client_endpoint(Ident::from_raw(u64::MAX)),
        cluster.roster().to_vec(),
        SEED,
        Duration::from_secs(30),
    );
    control.shutdown_all().expect("shutdown");
    let reports = cluster.join().expect("node threads");
    assert!(reports.iter().all(|r| r.converged), "every in-mem node must converge");
    assert!(
        reports.iter().all(|r| r.wire_errors == 0),
        "a healthy cluster must decode every frame"
    );
    (results, stat_of("inmem", window, shards.len(), wall, lat))
}

/// Reserves `n` distinct loopback ports by binding and immediately
/// releasing port-0 listeners. The window between release and the child's
/// bind is the standard (benign on an otherwise-idle loopback) race.
fn free_ports(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port")).collect();
    listeners.iter().map(|l| l.local_addr().expect("local addr")).collect()
}

/// Kills every child on drop, so a panicked assertion cannot leak node
/// processes past the bench.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Dials every node from a fresh client socket.
fn tcp_client_transport(id: Ident, roster: &[Ident], addrs: &[SocketAddr]) -> TcpTransport {
    let mut transport =
        TcpTransport::bind(id, "127.0.0.1:0".parse().unwrap()).expect("bind client");
    for (peer, addr) in roster.iter().zip(addrs) {
        transport.connect(*peer, &PeerAddr::Socket(*addr)).expect("dial node");
    }
    transport
}

/// Real processes over TCP: spawn one `node` binary per peer, connect one
/// client socket per shard, replay, then audit wire-error counters and
/// shut the processes down cleanly.
fn tcp_run(
    cfg: &ClusterConfig,
    shards: &[Vec<Request>],
    window: usize,
) -> (Vec<Vec<RpcResult>>, BackendStat) {
    let node_bin = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .join(format!("node{}", std::env::consts::EXE_SUFFIX));
    assert!(
        node_bin.exists(),
        "node binary missing at {} — run `cargo build --release -p rechord_net --bin node` first",
        node_bin.display()
    );

    let addrs = free_ports(cfg.topology.ids.len());
    let roster_arg = cfg
        .topology
        .ids
        .iter()
        .zip(&addrs)
        .map(|(id, addr)| format!("{}@{addr}", id.raw()))
        .collect::<Vec<_>>()
        .join(",");

    let mut children = Reaper(Vec::new());
    for (i, &id) in cfg.topology.ids.iter().enumerate() {
        let contacts = cfg
            .topology
            .contacts_of(id)
            .iter()
            .map(|c| c.raw().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let child = Command::new(&node_bin)
            .args(["--ident", &id.raw().to_string()])
            .args(["--listen", &addrs[i].to_string()])
            .args(["--roster", &roster_arg])
            .args(["--contacts", &contacts])
            .args(["--seed", &cfg.space_seed.to_string()])
            .args(["--replication", &cfg.replication.to_string()])
            .args(["--max-rounds", &cfg.max_rounds.to_string()])
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn node process");
        children.0.push(child);
    }

    let roster = cfg.topology.ids.clone();
    let barrier = Arc::new(Barrier::new(shards.len() + 1));
    let workers: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(c, shard)| {
            spawn_client(
                "tcp",
                tcp_client_transport(client_ident(c), &roster, &addrs),
                roster.clone(),
                client_entry_seed(c, shards.len()),
                window,
                shard.clone(),
                barrier.clone(),
            )
        })
        .collect();
    let t0 = Instant::now();
    barrier.wait();
    let mut results = Vec::with_capacity(workers.len());
    let mut lat = Vec::new();
    for w in workers {
        let (r, l) = w.join().expect("client thread");
        results.push(r);
        lat.extend(l);
    }
    let wall = t0.elapsed();

    let mut control = ClusterClient::new(
        tcp_client_transport(Ident::from_raw(u64::MAX), &roster, &addrs),
        roster.clone(),
        SEED,
        Duration::from_secs(30),
    );
    for &peer in &roster {
        match control.stats_of(peer).expect("node stats") {
            NetMsg::Stats { wire_errors, converged, .. } => {
                assert!(converged, "node {peer} must report convergence");
                assert_eq!(wire_errors, 0, "node {peer} dropped frames as undecodable");
            }
            other => panic!("unexpected stats reply: {other:?}"),
        }
    }
    control.shutdown_all().expect("shutdown");
    for child in &mut children.0 {
        let status = child.wait().expect("wait node");
        assert!(status.success(), "node process exited nonzero: {status}");
    }
    children.0.clear();
    (results, stat_of("tcp", window, shards.len(), wall, lat))
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "null".into()
    }
}

struct RunSummary {
    mode: &'static str,
    rpcs: usize,
    puts: usize,
    window: usize,
    clients: usize,
    availability: f64,
    mean_hops: f64,
}

fn write_json(path: &std::path::Path, run: &RunSummary, stats: &[BackendStat]) {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", run.mode));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    out.push_str(&format!("  \"rpcs\": {},\n", run.rpcs));
    out.push_str(&format!("  \"puts\": {},\n", run.puts));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"window\": {},\n", run.window));
    out.push_str(&format!("  \"clients\": {},\n", run.clients));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"availability\": {:.4},\n", run.availability));
    out.push_str(&format!("  \"mean_hops\": {:.3},\n", run.mean_hops));
    out.push_str(
        "  \"parity\": \"per-RPC (ok, hops, responsible, value) identical across the \
         direct-call oracle, the in-memory cluster, and the TCP process cluster, at \
         every window and client-count setting\",\n",
    );
    out.push_str("  \"backends\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"window\": {}, \"clients\": {}, \"wall_ms\": {}, \
             \"rpcs_per_sec\": {}, \"latency_mean_us\": {}, \"latency_p50_us\": {}, \
             \"latency_p99_us\": {}}}{}\n",
            s.name,
            s.window,
            s.clients,
            json_number(s.wall_ms),
            json_number(s.rpcs_per_sec),
            json_number(s.mean_us),
            json_number(s.p50_us),
            json_number(s.p99_us),
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {}", path.display());
}

fn usage() -> ! {
    eprintln!("usage: cluster [--smoke] [--window <n>=64] [--clients <n>=4]");
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut window = DEFAULT_WINDOW;
    let mut clients = DEFAULT_CLIENTS;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--window" => {
                window = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--clients" => {
                clients = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    if window == 0 || clients == 0 {
        usage();
    }
    let rpcs = if smoke { 10_000 } else { 30_000 };
    println!(
        "cluster bench: {NODES} nodes, {rpcs} RPCs, seed {SEED:#x}, \
         window {window}, clients {clients}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let cfg = ClusterConfig {
        topology: TopologyKind::Random.generate(NODES, SEED),
        space_seed: SEED,
        replication: REPLICATION,
        max_rounds: MAX_ROUNDS,
    };
    let requests = workload(rpcs);
    let puts = requests.iter().filter(|r| r.op == Op::Put).count();
    let single = vec![requests.clone()];
    let sharded = shard(&requests, clients);

    // Oracle: one timed single-stream replay (the reported row) plus an
    // untimed sharded replay for the multi-client parity reference.
    let oracle = Oracle::new(&cfg);
    let t0 = Instant::now();
    let (oracle_single, oracle_lat) = oracle.replay(&single);
    let oracle_stat = stat_of("oracle", 1, 1, t0.elapsed(), oracle_lat);
    let (oracle_sharded, _) = oracle.replay(&sharded);
    println!("  oracle:            {:>8.0} rpc/s", oracle_stat.rpcs_per_sec);

    let mut stats = vec![oracle_stat];
    let check = |name: &str, got: &[Vec<RpcResult>], want: &[Vec<RpcResult>]| {
        assert_eq!(got.len(), want.len(), "{name}: shard count mismatch");
        for (c, (g, w)) in got.iter().zip(want).enumerate() {
            assert_eq!(g.len(), w.len(), "{name}: shard {c} length mismatch");
            for (i, (gr, wr)) in g.iter().zip(w).enumerate() {
                assert_eq!(gr, wr, "{name}: client {c} diverged at its rpc {}", i + 1);
            }
        }
    };

    // In-mem and TCP, three settings each; every row checked against the
    // oracle replay with the matching sharding. The serial row doubles as
    // the regression anchor: window=1 must behave exactly like the old
    // one-in-flight client.
    type RunFn = fn(&ClusterConfig, &[Vec<Request>], usize) -> (Vec<Vec<RpcResult>>, BackendStat);
    for (backend, run) in [("inmem", inmem_run as RunFn), ("tcp", tcp_run as RunFn)] {
        let (serial, serial_stat) = run(&cfg, &single, 1);
        check(&format!("{backend} serial"), &serial, &oracle_single);
        println!("  {backend} w=1 c=1:   {:>8.0} rpc/s", serial_stat.rpcs_per_sec);
        stats.push(serial_stat);

        let (windowed, windowed_stat) = run(&cfg, &single, window);
        check(&format!("{backend} windowed"), &windowed, &oracle_single);
        check(&format!("{backend} windowed vs serial"), &windowed, &serial);
        println!("  {backend} w={window} c=1:  {:>8.0} rpc/s", windowed_stat.rpcs_per_sec);
        stats.push(windowed_stat);

        let (fleet, fleet_stat) = run(&cfg, &sharded, window);
        check(&format!("{backend} fleet"), &fleet, &oracle_sharded);
        println!("  {backend} w={window} c={clients}:  {:>8.0} rpc/s", fleet_stat.rpcs_per_sec);
        stats.push(fleet_stat);
    }

    let served_ok = oracle_single[0].iter().filter(|r| r.ok).count();
    let availability = served_ok as f64 / oracle_single[0].len() as f64;
    assert_eq!(availability, 1.0, "a stable cluster must serve every RPC");
    let mean_hops =
        oracle_single[0].iter().map(|r| r.hops as f64).sum::<f64>() / oracle_single[0].len() as f64;

    let mut table = Table::new(&[
        "backend", "window", "clients", "wall_ms", "rpc/s", "mean_us", "p50_us", "p99_us",
    ]);
    for s in &stats {
        table.row(&[
            s.name.to_string(),
            s.window.to_string(),
            s.clients.to_string(),
            format!("{:.0}", s.wall_ms),
            format!("{:.0}", s.rpcs_per_sec),
            format!("{:.1}", s.mean_us),
            format!("{:.1}", s.p50_us),
            format!("{:.1}", s.p99_us),
        ]);
    }
    table.print();

    let path = if smoke {
        rechord_bench::results_dir().join("cluster_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_cluster.json")
    };
    let run = RunSummary {
        mode: if smoke { "smoke" } else { "full" },
        rpcs,
        puts,
        window,
        clients,
        availability,
        mean_hops,
    };
    write_json(&path, &run, &stats);
    println!(
        "cluster: {rpcs} RPCs byte-identical across oracle, in-mem, and TCP \
         at windows 1 and {window}, clients 1 and {clients}"
    );
}

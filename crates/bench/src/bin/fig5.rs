//! **Figure 5** — edges and nodes at the stable state vs. number of real
//! nodes: the "normal edges", "connection edges" and "virtual nodes" series,
//! means over 30 random weakly connected graphs per size (paper §5).
//!
//! Expected shape (paper): virtual nodes grow slightly super-linearly
//! (Θ(n log n)); normal edges a bit faster than linear; connection edges
//! fastest (≈ c·n·log²n), overtaking normal edges as n grows.

use rechord_analysis::{fit, parallel_trials, seed_range, AsciiChart, Series, Stats, Table};
use rechord_bench::{harness_threads, stabilized_random, trials_per_size, PAPER_SIZES};

fn main() {
    let trials = trials_per_size();
    let threads = harness_threads();
    println!("Figure 5: stable-state edges and nodes ({trials} trials/size, {threads} threads)\n");

    let mut table = Table::new(&[
        "n",
        "normal_edges",
        "conn_edges",
        "virtual_nodes",
        "normal_sd",
        "conn_sd",
        "virt_sd",
    ]);
    let mut ns = Vec::new();
    let (mut normal_means, mut conn_means, mut virt_means) = (Vec::new(), Vec::new(), Vec::new());

    for &n in &PAPER_SIZES {
        let seeds = seed_range(0x5000_0000 + n as u64 * 1000, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let (net, _) = stabilized_random(n, seed);
            let m = net.metrics();
            (m.normal_edges(), m.connection_edges(), m.virtual_nodes)
        });
        let normal = Stats::from_counts(results.iter().map(|r| r.0));
        let conn = Stats::from_counts(results.iter().map(|r| r.1));
        let virt = Stats::from_counts(results.iter().map(|r| r.2));
        table.row(&[
            n.to_string(),
            format!("{:.1}", normal.mean),
            format!("{:.1}", conn.mean),
            format!("{:.1}", virt.mean),
            format!("{:.1}", normal.std_dev),
            format!("{:.1}", conn.std_dev),
            format!("{:.1}", virt.std_dev),
        ]);
        ns.push(n as f64);
        normal_means.push(normal.mean);
        conn_means.push(conn.mean);
        virt_means.push(virt.mean);
    }

    table.print();
    println!();
    for (label, ys) in [
        ("normal edges", &normal_means),
        ("connection edges", &conn_means),
        ("virtual nodes", &virt_means),
    ] {
        let shape = fit::classify_growth(&ns, ys);
        println!(
            "shape of {label:17}: best fit {:8} (r² = {:.4}); n·log²n r² = {:.4}",
            shape.best(),
            shape.ranking[0].1,
            shape.r2_of("n·log²n").unwrap_or(0.0)
        );
    }
    let crossover = ns
        .iter()
        .zip(normal_means.iter().zip(&conn_means))
        .find(|(_, (nm, cm))| cm > nm)
        .map(|(n, _)| *n);
    match crossover {
        Some(n) => println!("\nconnection edges overtake normal edges at n ≈ {n} (paper: 'increase faster ... as the number of real nodes gets higher')"),
        None => println!("\nno crossover observed in this sweep"),
    }

    println!(
        "\n{}",
        AsciiChart::new("Figure 5: edges and nodes vs real nodes", 72, 18)
            .series(Series::new("normal edges", '#', &ns, &normal_means))
            .series(Series::new("connection edges", '.', &ns, &conn_means))
            .series(Series::new("virtual nodes", 'v', &ns, &virt_means))
            .render()
    );

    let path = rechord_bench::results_dir().join("fig5.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

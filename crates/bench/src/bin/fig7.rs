//! **Figure 7** — total number of edges vs. total number of nodes in the
//! final (stable) graph: one scatter point per run, up to ≈1000 total nodes
//! (paper §5).
//!
//! Expected shape (paper): the total edge count grows at a rate comparable
//! to the total node count (near-linear scatter with a log-factor drift
//! from the connection edges).

use rechord_analysis::{fit, parallel_trials, seed_range, AsciiChart, Series, Table};
use rechord_bench::{harness_threads, stabilized_random, trials_per_size, PAPER_SIZES};

fn main() {
    let trials = trials_per_size().min(10); // scatter needs fewer repeats
    let threads = harness_threads();
    println!("Figure 7: total edges vs total nodes in the final graph ({trials} trials/size)\n");

    let mut table = Table::new(&["n_real", "total_nodes", "total_edges"]);
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for &n in &PAPER_SIZES {
        let seeds = seed_range(0x7000_0000 + n as u64 * 1000, trials);
        let points = parallel_trials(&seeds, threads, |seed| {
            let (net, _) = stabilized_random(n, seed);
            let m = net.metrics();
            (m.total_nodes(), m.total_edges())
        });
        for (nodes, edges) in points {
            table.row(&[n.to_string(), nodes.to_string(), edges.to_string()]);
            xs.push(nodes as f64);
            ys.push(edges as f64);
        }
    }

    table.print();
    let lin = fit::linear(&xs, &ys);
    println!(
        "\nedges ≈ {:.2} × nodes + {:.1}   (r² = {:.4}; paper: edges grow at a rate comparable to nodes)",
        lin.slope, lin.intercept, lin.r_squared
    );
    println!(
        "max total nodes observed: {:.0} (paper's axis reaches ~1000)",
        xs.iter().copied().fold(0.0f64, f64::max)
    );

    println!(
        "\n{}",
        AsciiChart::new("Figure 7: total edges vs total nodes (scatter)", 72, 16)
            .series(Series::new("one run", '*', &xs, &ys))
            .render()
    );

    let path = rechord_bench::results_dir().join("fig7.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! **Lemma 3.1** — the number of virtual nodes between two consecutive real
//! nodes is `O(log n)` w.h.p., and the total node count is `Θ(n log n)`.

use rechord_analysis::{fit, parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, stabilized_random, trials_per_size, PAPER_SIZES};

fn main() {
    let trials = trials_per_size();
    let threads = harness_threads();
    println!("Lemma 3.1: virtual nodes per real gap and total node count ({trials} trials/size)\n");

    let mut table = Table::new(&["n", "max_per_gap", "mean_per_gap", "total_nodes", "log2(n)"]);
    let mut ns = Vec::new();
    let (mut max_gaps, mut totals) = (Vec::new(), Vec::new());
    for &n in &PAPER_SIZES {
        let seeds = seed_range(0x1e31 + n as u64 * 131, trials);
        let results = parallel_trials(&seeds, threads, |seed| {
            let (net, _) = stabilized_random(n, seed);
            let m = net.metrics();
            (m.max_virtuals_per_gap, m.mean_virtuals_per_gap, m.total_nodes())
        });
        let max_gap = Stats::from_counts(results.iter().map(|r| r.0));
        let mean_gap = Stats::from_slice(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let total = Stats::from_counts(results.iter().map(|r| r.2));
        table.row(&[
            n.to_string(),
            format!("{:.1}", max_gap.mean),
            format!("{:.2}", mean_gap.mean),
            format!("{:.1}", total.mean),
            format!("{:.2}", (n as f64).log2()),
        ]);
        ns.push(n as f64);
        max_gaps.push(max_gap.mean);
        totals.push(total.mean);
    }
    table.print();

    let gap_shape = fit::classify_growth(&ns, &max_gaps);
    let total_shape = fit::classify_growth(&ns, &totals);
    println!(
        "\nmax virtuals per gap: best fit {} (r² = {:.4}) — lemma says O(log n), r²(log n) = {:.4}",
        gap_shape.best(),
        gap_shape.ranking[0].1,
        gap_shape.r2_of("log n").unwrap_or(0.0)
    );
    println!(
        "total nodes:          best fit {} (r² = {:.4}) — lemma says Θ(n log n), r²(n·log n) = {:.4}",
        total_shape.best(),
        total_shape.ranking[0].1,
        total_shape.r2_of("n·log n").unwrap_or(0.0)
    );

    let path = rechord_bench::results_dir().join("lemma31.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

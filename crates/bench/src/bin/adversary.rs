//! The edge of the self-stabilization envelope: how much byzantine mass
//! can the six rules carry before convergence — and the service built on
//! it — give way?
//!
//! Two scans share one crime catalog (`rechord_core::adversary`):
//!
//! * **core scan** — protocol-layer crimes (lying about successors,
//!   suppressing individual rules) over byzantine-fraction × crime × seed:
//!   rounds to *honest-stability* (the honest subset quiet for
//!   `HONEST_QUIET_ROUNDS` in a row — with persistent liars the global
//!   fixpoint may never exist) or the divergence cutoff, plus whether the
//!   honest ring ordering survived;
//! * **workload scan** — request-path crimes (dropped/misrouted forwards,
//!   poisoned reads, sybil waves, stalled heartbeats) under open-loop
//!   traffic: availability floor, corrupted-read rate, and the failure
//!   detector's suspicion count.
//!
//! `--smoke` runs a small grid and *asserts* the headline contract: a
//! fraction-0 adversary config is byte-identical to the honest simulator
//! (same request trace), availability degrades monotonically as the
//! corrupted fraction grows, and nothing panics even at fraction 1/2.
//! ci.sh runs it.

use rechord_bench::scenario_config;
use rechord_core::adversary::{run_adversarial, AdversaryOutcome};
use rechord_core::network::ReChordNetwork;
use rechord_core::{Crime, CrimeSet};
use rechord_topology::TimedChurnPlan;
use rechord_workload::{AdversaryConfig, DetectorConfig, SimReport, TrafficSim};
use std::fmt::Write as _;

/// Byzantine fractions scanned, smallest to largest. 0 is the control: it
/// must reproduce the honest runs exactly.
const FRACTIONS: [f64; 4] = [0.0, 0.125, 0.25, 0.5];

/// The protocol-layer (core scan) crime sets.
fn core_crimes() -> Vec<(&'static str, CrimeSet)> {
    vec![
        ("lie-successor", CrimeSet::single(Crime::LieAboutSuccessor)),
        ("suppress-own-rules", (2..=6).map(Crime::ViolateRule).collect()),
        ("suppress-linearize", CrimeSet::single(Crime::ViolateRule(4))),
        ("lie+suppress", CrimeSet::single(Crime::LieAboutSuccessor).with(Crime::ViolateRule(5))),
    ]
}

/// The request-path (workload scan) crime sets.
fn workload_crimes() -> Vec<(&'static str, CrimeSet)> {
    vec![
        ("drop-forward", CrimeSet::single(Crime::DropForward)),
        ("misroute", CrimeSet::single(Crime::MisrouteForward)),
        ("poison-reads", CrimeSet::single(Crime::StaleReadPoison)),
        ("stall-heartbeats", CrimeSet::single(Crime::StallHeartbeats)),
        ("sybil+poison", CrimeSet::single(Crime::SybilJoinWave).with(Crime::StaleReadPoison)),
        (
            "everything",
            CrimeSet::single(Crime::DropForward)
                .with(Crime::MisrouteForward)
                .with(Crime::StaleReadPoison)
                .with(Crime::StallHeartbeats)
                .with(Crime::SybilJoinWave)
                .with(Crime::LieAboutSuccessor),
        ),
    ]
}

struct Knobs {
    n: usize,
    seeds: Vec<u64>,
    /// Core-scan round budget: honest-stability not reached by then counts
    /// as divergence.
    cutoff: u64,
    horizon: u64,
    interarrival: f64,
}

struct CoreCell {
    crime: &'static str,
    seed: u64,
    out: AdversaryOutcome,
}

struct LoadCell {
    crime: &'static str,
    fraction: f64,
    seed: u64,
    requests: usize,
    availability: f64,
    corrupted_rate: f64,
    lost: usize,
    suspicions: usize,
    stable: bool,
    p99: u64,
}

fn run_load_cell(
    crime: &'static str,
    crimes: CrimeSet,
    fraction: f64,
    seed: u64,
    k: &Knobs,
) -> LoadCell {
    let r = run_load(crimes, fraction, seed, k);
    let total = r.summary.total.max(1);
    LoadCell {
        crime,
        fraction,
        seed,
        requests: r.summary.total,
        availability: r.summary.availability,
        corrupted_rate: r.summary.corrupted as f64 / total as f64,
        lost: r.summary.lost,
        suspicions: r.suspicions,
        stable: r.stable_at_end,
        p99: r.summary.p99,
    }
}

fn run_load(crimes: CrimeSet, fraction: f64, seed: u64, k: &Knobs) -> SimReport {
    let (net, report) = ReChordNetwork::bootstrap_stable(k.n, seed, 1, 200_000);
    assert!(report.converged, "seed {seed}: bootstrap must stabilize");
    let mut cfg = scenario_config(seed, k.horizon, k.interarrival);
    cfg.adversary = AdversaryConfig {
        fraction,
        crimes,
        sybil_wave: if crimes.contains(Crime::SybilJoinWave) { 2 } else { 0 },
        sybil_at: k.horizon / 4,
        ..Default::default()
    };
    if crimes.contains(Crime::StallHeartbeats) {
        // Give the stalled-heartbeat attack a detector worth attacking.
        cfg.detector = DetectorConfig { suspect_for: 400, ..Default::default() };
    }
    let mut sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
    sim.preload();
    sim.run()
}

/// The honest-control trace: the full per-request log of a run with the
/// all-default adversary/detector knobs.
fn honest_trace(seed: u64, k: &Knobs) -> String {
    let (net, report) = ReChordNetwork::bootstrap_stable(k.n, seed, 1, 200_000);
    assert!(report.converged);
    let cfg = scenario_config(seed, k.horizon, k.interarrival);
    let mut sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
    sim.preload();
    sim.run().sink.trace()
}

/// For one crime, the smallest scanned fraction at which any seed trips
/// `failed` (`None` = clean everywhere we looked). Used for both envelope
/// edges: honest-stability lost (divergence) and honest ring ordering
/// corrupted.
fn boundary(
    cells: &[CoreCell],
    crime: &str,
    failed: impl Fn(&AdversaryOutcome) -> bool,
) -> Option<f64> {
    FRACTIONS.iter().copied().find(|&f| {
        cells
            .iter()
            .any(|c| c.crime == crime && (c.out.fraction - f).abs() < 1e-9 && failed(&c.out))
    })
}

fn write_json(
    path: &std::path::Path,
    k: &Knobs,
    core: &[CoreCell],
    load: &[LoadCell],
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    let _ = writeln!(
        out,
        "  \"config\": {{\"peers\": {}, \"seeds\": {}, \"cutoff\": {}, \"horizon\": {}, \"fractions\": [0.0, 0.125, 0.25, 0.5]}},",
        k.n,
        k.seeds.len(),
        k.cutoff,
        k.horizon
    );
    out.push_str("  \"core\": [\n");
    for (i, c) in core.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"crime\": \"{}\", \"seed\": {}, \"fraction\": {}, \"byzantine\": {}, \"converged\": {}, \"rounds\": {}, \"honest_ring_ok\": {}}}",
            c.crime, c.seed, c.out.fraction, c.out.byzantine, c.out.converged, c.out.rounds,
            c.out.honest_ring_ok
        );
        out.push_str(if i + 1 < core.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"workload\": [\n");
    for (i, c) in load.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"crime\": \"{}\", \"seed\": {}, \"fraction\": {}, \"requests\": {}, \"availability\": {:.6}, \"corrupted_rate\": {:.6}, \"lost\": {}, \"suspicions\": {}, \"stable\": {}, \"p99\": {}}}",
            c.crime,
            c.seed,
            c.fraction,
            c.requests,
            c.availability,
            c.corrupted_rate,
            c.lost,
            c.suspicions,
            c.stable,
            c.p99
        );
        out.push_str(if i + 1 < load.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::create_dir_all(path.parent().expect("results dir has a parent or is one"))?;
    std::fs::write(path, out)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = if smoke {
        Knobs { n: 16, seeds: vec![1, 2], cutoff: 20_000, horizon: 6_000, interarrival: 10.0 }
    } else {
        Knobs { n: 48, seeds: vec![1, 2, 3], cutoff: 100_000, horizon: 20_000, interarrival: 5.0 }
    };
    println!(
        "Adversary scan: {} peers, seeds {:?}, fractions {:?}{}\n",
        k.n,
        k.seeds,
        FRACTIONS,
        if smoke { " [smoke]" } else { "" }
    );

    // ---- core scan: convergence under protocol-layer crimes -------------
    let mut core = Vec::new();
    println!("core scan (rounds to honest-stability; '-' = diverged at cutoff {}):", k.cutoff);
    println!(
        "{:<20} {:>8} {:>6} {:>4} {:>10} {:>6}",
        "crime", "fraction", "seed", "byz", "rounds", "ring"
    );
    for (name, crimes) in core_crimes() {
        for &fraction in &FRACTIONS {
            for &seed in &k.seeds {
                let (out, _) = run_adversarial(k.n, seed, fraction, crimes, k.cutoff);
                println!(
                    "{:<20} {:>8} {:>6} {:>4} {:>10} {:>6}",
                    name,
                    fraction,
                    seed,
                    out.byzantine,
                    if out.converged { out.rounds.to_string() } else { "-".into() },
                    if out.honest_ring_ok { "ok" } else { "BROKEN" }
                );
                core.push(CoreCell { crime: name, seed, out });
            }
        }
    }
    println!("\nenvelope edges per crime (first scanned fraction that failed):");
    for (name, _) in core_crimes() {
        let diverge = match boundary(&core, name, |o| !o.converged) {
            Some(f) => format!("diverges at {f}"),
            None => "honest-stable at every fraction".into(),
        };
        let ring = match boundary(&core, name, |o| !o.honest_ring_ok) {
            Some(f) => format!("honest ring breaks at {f}"),
            None => "honest ring survives every fraction".into(),
        };
        println!("  {name:<20} {diverge}; {ring}");
    }

    // ---- workload scan: service quality under request-path crimes -------
    let mut load = Vec::new();
    println!("\nworkload scan (open-loop traffic, no organic churn):");
    println!(
        "{:<18} {:>8} {:>6} {:>6} {:>7} {:>9} {:>6} {:>9} {:>7}",
        "crime", "fraction", "seed", "reqs", "avail", "corrupt", "lost", "suspects", "p99"
    );
    for (name, crimes) in workload_crimes() {
        for &fraction in &FRACTIONS {
            for &seed in &k.seeds {
                let cell = run_load_cell(name, crimes, fraction, seed, &k);
                println!(
                    "{:<18} {:>8} {:>6} {:>6} {:>7.4} {:>9.4} {:>6} {:>9} {:>7}",
                    cell.crime,
                    cell.fraction,
                    cell.seed,
                    cell.requests,
                    cell.availability,
                    cell.corrupted_rate,
                    cell.lost,
                    cell.suspicions,
                    cell.p99
                );
                load.push(cell);
            }
        }
    }

    let path = rechord_bench::results_dir().join("adversary.json");
    write_json(&path, &k, &core, &load).expect("write adversary.json");
    println!("\nwrote {}", path.display());

    // ---- assertions: the headline contract -------------------------------
    // (1) Fraction 0 is the honest simulator, bit for bit: declaring a
    // crime catalog with nobody to commit it must not move a single event.
    for &seed in &k.seeds {
        let honest = honest_trace(seed, &k);
        for (name, crimes) in workload_crimes() {
            // Note stall-heartbeats arms the detector (suspect_for > 0),
            // but with zero attackers and no false-suspicion cadence it
            // never raises a suspicion — parity must still hold.
            let r = run_load(crimes, 0.0, seed, &k);
            assert_eq!(
                r.sink.trace(),
                honest,
                "seed {seed}, crime {name}: fraction 0 must be trace-identical to honest"
            );
        }
    }
    println!("fraction-0 parity: all workload crime configs reproduce the honest trace");

    for c in core.iter().filter(|c| c.out.fraction == 0.0) {
        assert!(c.out.converged && c.out.honest_ring_ok, "fraction-0 core run must converge");
    }

    // (2) Monotone degradation: averaged over seeds, availability must not
    // improve as the corrupted fraction grows, and the largest fraction
    // must hurt measurably for the crimes that attack the request path
    // directly.
    for (name, _) in workload_crimes() {
        let mean_avail: Vec<f64> = FRACTIONS
            .iter()
            .map(|&f| {
                let cells: Vec<&LoadCell> = load
                    .iter()
                    .filter(|c| c.crime == name && (c.fraction - f).abs() < 1e-9)
                    .collect();
                cells.iter().map(|c| c.availability).sum::<f64>() / cells.len() as f64
            })
            .collect();
        for w in mean_avail.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{name}: availability must degrade monotonically in the corrupted fraction \
                 (got {mean_avail:?})"
            );
        }
        if name == "drop-forward" || name == "everything" {
            assert!(
                mean_avail[3] < mean_avail[0],
                "{name}: half the network corrupted must hurt (got {mean_avail:?})"
            );
        }
    }
    println!("monotone degradation: mean availability never improves with corruption");

    // (3) Poisoned reads surface as corruption, scaling with the fraction.
    let poison_rate = |f: f64| {
        load.iter()
            .filter(|c| c.crime == "poison-reads" && (c.fraction - f).abs() < 1e-9)
            .map(|c| c.corrupted_rate)
            .sum::<f64>()
    };
    assert_eq!(poison_rate(0.0), 0.0, "no corruption without attackers");
    assert!(poison_rate(0.5) > 0.0, "poisoning half the peers must corrupt some reads");

    // (4) Nothing panicked at fraction 1/2 (reaching this line is the
    // assertion), and every half-corrupted run still completed its scan.
    assert!(
        load.iter().filter(|c| (c.fraction - 0.5).abs() < 1e-9).all(|c| c.requests > 0),
        "fraction-1/2 runs must still process traffic"
    );
    println!("fraction-1/2 runs complete without panic");

    println!("\nadversary: all scan assertions hold");
}

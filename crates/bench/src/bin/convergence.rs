//! **Theorem 1.1** — self-stabilization from *any* weakly connected state in
//! `O(n log n)` rounds: convergence sweep across adversarial topology
//! families, with the observed/bound ratio.

use rechord_analysis::{parallel_trials, seed_range, Stats, Table};
use rechord_bench::{harness_threads, trials_per_size, MAX_ROUNDS};
use rechord_core::network::ReChordNetwork;
use rechord_topology::TopologyKind;

fn main() {
    let trials = trials_per_size().min(15);
    let threads = harness_threads();
    let sizes = [8usize, 16, 32, 64];
    println!(
        "Theorem 1.1: convergence from adversarial weakly connected states ({trials} trials)\n"
    );

    let mut table =
        Table::new(&["topology", "n", "rounds_mean", "rounds_max", "per_nlogn", "clean"]);
    for kind in TopologyKind::ALL {
        for &n in &sizes {
            let seeds = seed_range(0xc0 + n as u64 * 977, trials);
            let results = parallel_trials(&seeds, threads, |seed| {
                let topo = kind.generate(n, seed);
                let mut net = ReChordNetwork::from_topology(&topo, 1);
                let report = net.run_until_stable(MAX_ROUNDS);
                assert!(report.converged, "{} n={n} seed={seed}", kind.name());
                let audit = net.audit();
                (
                    report.rounds_to_stable() as usize,
                    audit.missing_unmarked.is_empty()
                        && audit.chord.missing_linear.is_empty()
                        && audit.weakly_connected,
                )
            });
            let rounds = Stats::from_counts(results.iter().map(|r| r.0));
            let clean = results.iter().all(|r| r.1);
            let bound = n as f64 * (n as f64).log2();
            table.row(&[
                kind.name().to_string(),
                n.to_string(),
                format!("{:.1}", rounds.mean),
                format!("{:.0}", rounds.max),
                format!("{:.3}", rounds.mean / bound),
                clean.to_string(),
            ]);
        }
    }
    table.print();
    println!("\nper_nlogn is the mean rounds divided by n·log2(n): bounded and shrinking ⇒ within the theorem's envelope.");

    let path = rechord_bench::results_dir().join("convergence.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

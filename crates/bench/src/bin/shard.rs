//! The sharded data plane's bench trajectory: single-thread vs N-thread
//! throughput on two scale scenarios, with byte-parity asserted across
//! every worker count before a single number is reported.
//!
//! * **1m-keys** — the traffic bench's million-key paced-repair scenario
//!   (64 peers, storm churn, bounded repair bandwidth) measured at each
//!   worker count;
//! * **10m-keys-10k-peers** — the ROADMAP scale target: ten million keys
//!   over a ten-thousand-peer [`TopologyKind::FingerRing`] overlay (greedy-
//!   routable in O(log n) hops with no stabilization rounds up front),
//!   pure foreground traffic.
//!
//! Every scenario runs the full worker grid and asserts the trace, metric
//! summary, event count, and final placement digest are identical at every
//! count — the bench *is* a parity test — then writes the trajectory JSON:
//! `BENCH_shard.json` at the workspace root (the committed PR-over-PR
//! trajectory), or `results/shard_smoke.json` under `--smoke` (ci.sh runs
//! that leg; the committed file stays canonical).
//!
//! Numbers are honest for the machine they ran on: `host_cores` is
//! recorded next to every run, and on a single-core container the N-thread
//! rows measure determinism overhead (barrier hand-off, channel mesh), not
//! speedup — the trajectory exists so multi-core hosts can see the curve.

use rechord_analysis::Table;
use rechord_bench::scenario_config;
use rechord_core::network::ReChordNetwork;
use rechord_topology::{TimedChurnPlan, TopologyKind};
use rechord_workload::{SimReport, TrafficSim, WorkloadConfig};
use std::time::Instant;

struct RunStat {
    workers: usize,
    arcs: usize,
    wall_ms: f64,
    events_per_sec: f64,
}

struct ScenarioStat {
    name: &'static str,
    peers: usize,
    keys: u64,
    horizon: u64,
    requests: usize,
    events: u64,
    availability: f64,
    digest: u64,
    runs: Vec<RunStat>,
}

/// One measured run: build the network, preload, time `run()` only.
fn measure(cfg: WorkloadConfig, net: ReChordNetwork, plan: &TimedChurnPlan) -> (SimReport, f64) {
    let mut sim = TrafficSim::new(cfg, net, plan);
    sim.preload();
    let t = Instant::now();
    let report = sim.run();
    (report, t.elapsed().as_secs_f64() * 1e3)
}

/// Runs a scenario at every worker count in `grid`, asserting byte-parity
/// between all runs before reporting any timing.
fn scenario(
    name: &'static str,
    grid: &[usize],
    peers: usize,
    keys: u64,
    horizon: u64,
    build: impl Fn(usize) -> (WorkloadConfig, ReChordNetwork, TimedChurnPlan),
) -> ScenarioStat {
    let mut runs = Vec::new();
    let mut baseline: Option<(String, String, u64, u64, u64)> = None;
    let mut head: Option<SimReport> = None;
    for &workers in grid {
        let (cfg, net, plan) = build(workers);
        let arcs = if cfg.arcs > 0 { cfg.arcs } else { workers.max(1) * 8 };
        let (report, wall_ms) = measure(cfg, net, &plan);
        let fp = (
            report.sink.trace(),
            report.summary.to_string(),
            report.rounds,
            report.events,
            report.placement_digest,
        );
        match &baseline {
            None => baseline = Some(fp),
            Some(b) => assert_eq!(
                *b, fp,
                "{name}: workers={workers} diverged from the serial run — \
                 the sharded data plane broke determinism"
            ),
        }
        runs.push(RunStat {
            workers,
            arcs,
            wall_ms,
            events_per_sec: report.events as f64 / (wall_ms / 1e3),
        });
        println!(
            "  {name}: workers={workers} arcs={arcs} wall={wall_ms:.0}ms \
             events={} ({:.0} ev/s)",
            report.events,
            report.events as f64 / (wall_ms / 1e3)
        );
        head.get_or_insert(report);
    }
    let head = head.expect("grid is non-empty");
    ScenarioStat {
        name,
        peers,
        keys,
        horizon,
        requests: head.summary.total,
        events: head.events,
        availability: head.summary.availability,
        digest: head.placement_digest,
        runs,
    }
}

/// The traffic bench's million-key paced-repair scenario (storm churn,
/// bounded repair bandwidth) on a stabilized 64-peer overlay.
fn million_keys(horizon: u64, workers: usize) -> (WorkloadConfig, ReChordNetwork, TimedChurnPlan) {
    let mut cfg = scenario_config(0xe5, horizon, 5.0);
    cfg.traffic.key_universe = 1_000_000;
    cfg.traffic.zipf_exponent = 0.0;
    cfg.replication = 2;
    cfg.round_every = 10;
    cfg.repair_bandwidth = 400;
    cfg.workers = workers;
    cfg.arcs = 0;
    let (net, report) = ReChordNetwork::bootstrap_stable(64, 0xe5, 1, 200_000);
    assert!(report.converged);
    let storm = TimedChurnPlan::storm(4, 0.5, horizon / 4, horizon / 8, 0xe5);
    (cfg, net, storm)
}

/// The scale target: 10M keys over a 10k-peer finger-ring overlay. No
/// churn — pure foreground routing + service throughput — and no protocol
/// rounds inside the horizon (one audit round runs after traffic drains).
fn ten_million_keys(
    horizon: u64,
    workers: usize,
) -> (WorkloadConfig, ReChordNetwork, TimedChurnPlan) {
    let mut cfg = scenario_config(0x10_000, horizon, 1.0);
    cfg.traffic.key_universe = 10_000_000;
    cfg.traffic.zipf_exponent = 0.0;
    cfg.replication = 2;
    cfg.round_every = 100_000_000;
    cfg.max_rounds = 1;
    cfg.workers = workers;
    cfg.arcs = 0;
    let topo = TopologyKind::FingerRing.generate(10_000, 0x10_000);
    let net = ReChordNetwork::from_topology(&topo, 1);
    (cfg, net, TimedChurnPlan::default())
}

fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.1}")
    } else {
        "null".into()
    }
}

fn write_json(path: &std::path::Path, mode: &str, cores: usize, scenarios: &[ScenarioStat]) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"shard\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"note\": \"parity asserted before timing: every run of a scenario produced \
         byte-identical traces, summaries, event counts, and placement digests; on a \
         single-core host the multi-worker rows measure barrier/hand-off overhead, not \
         speedup\",\n",
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("      \"peers\": {},\n", s.peers));
        out.push_str(&format!("      \"keys\": {},\n", s.keys));
        out.push_str(&format!("      \"horizon\": {},\n", s.horizon));
        out.push_str(&format!("      \"requests\": {},\n", s.requests));
        out.push_str(&format!("      \"events\": {},\n", s.events));
        out.push_str(&format!("      \"availability\": {:.4},\n", s.availability));
        out.push_str(&format!("      \"placement_digest\": \"{:#018x}\",\n", s.digest));
        out.push_str("      \"parity\": \"byte-identical across all worker counts\",\n");
        out.push_str("      \"runs\": [\n");
        let serial = s.runs[0].wall_ms;
        for (j, r) in s.runs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"workers\": {}, \"arcs\": {}, \"wall_ms\": {}, \
                 \"events_per_sec\": {}, \"speedup_vs_serial\": {:.2}}}{}\n",
                r.workers,
                r.arcs,
                json_number(r.wall_ms),
                json_number(r.events_per_sec),
                serial / r.wall_ms,
                if j + 1 < s.runs.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if i + 1 < scenarios.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {}", path.display());
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (grid, m_horizon, t_horizon): (&[usize], u64, u64) =
        if smoke { (&[1, 4], 12_000, 8_000) } else { (&[1, 2, 4, 8], 20_000, 20_000) };
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "shard bench: worker grid {grid:?} on {cores} core(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    println!("1m-keys (64 peers, storm churn, paced repair):");
    let m = scenario("1m-keys", grid, 64, 1_000_000, m_horizon, |w| million_keys(m_horizon, w));
    println!("10m-keys-10k-peers (finger-ring overlay, pure traffic):");
    let t = scenario("10m-keys-10k-peers", grid, 10_000, 10_000_000, t_horizon, |w| {
        ten_million_keys(t_horizon, w)
    });

    // The scale scenario must actually serve its traffic: the finger ring
    // routes every request to its exact responsible peer.
    assert_eq!(t.availability, 1.0, "10m scenario must be fully available");
    assert!(m.availability > 0.9, "1m storm scenario availability floor (got {})", m.availability);
    assert!(t.events > 100_000, "the scale scenario exercises a real event volume");

    let scenarios = [m, t];
    let mut table =
        Table::new(&["scenario", "peers", "keys", "workers", "arcs", "wall_ms", "events/s"]);
    for s in &scenarios {
        for r in &s.runs {
            table.row(&[
                s.name.to_string(),
                s.peers.to_string(),
                s.keys.to_string(),
                r.workers.to_string(),
                r.arcs.to_string(),
                format!("{:.0}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
            ]);
        }
    }
    table.print();

    let path = if smoke {
        rechord_bench::results_dir().join("shard_smoke.json")
    } else {
        std::path::PathBuf::from("BENCH_shard.json")
    };
    write_json(&path, if smoke { "smoke" } else { "full" }, cores, &scenarios);
    println!("shard: parity held across the worker grid");
}

//! A consistent-hashing key-value store on the Re-Chord overlay — the kind
//! of application Chord was built for (§1 of the Chord paper), running
//! unchanged on Re-Chord per Fact 2.1.
//!
//! Routing (who answers) lives here; placement (who *stores*) is delegated
//! to the shared [`PlacementMap`] engine, so the replica-set arithmetic is
//! the same one the workload simulator uses and repair after churn is
//! incremental — O(moved keys), not O(all keys).

use crate::greedy::{route, RoutingTable};
use rechord_id::{IdSpace, Ident};
use rechord_placement::{Departure, PlacementMap, RepairStats};
use std::collections::BTreeSet;

/// What a `get`/`put` experienced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Peer that stores (or would store) the key.
    pub responsible: Ident,
    /// Overlay hops the request took from the querying peer.
    pub hops: usize,
    /// Did routing reach the responsible peer?
    pub routed: bool,
}

/// A DHT view over a *stable* overlay snapshot: keys are hashed onto the
/// ring and stored at their cyclic-successor peer (optionally replicated to
/// the following peers, as Chord's successor-list replication does);
/// requests are routed greedily from a querying peer. The store models the
/// application layer, so it lives outside the protocol state; after churn
/// the overlay re-stabilizes and the application [`KvStore::rebuild`]s its
/// routing view, keeping surviving peers' data.
#[derive(Debug)]
pub struct KvStore {
    table: RoutingTable,
    space: IdSpace,
    placement: PlacementMap<String>,
    /// Monotone write counter: the version stream the engine orders
    /// last-write-wins by.
    writes: u64,
}

impl KvStore {
    /// Creates an empty store over a routing table. `space` maps raw keys
    /// onto the identifier ring.
    pub fn new(table: RoutingTable, space: IdSpace) -> Self {
        Self::with_replication(table, space, 1)
    }

    /// Like [`KvStore::new`] with each key stored at the responsible peer
    /// and its `replication - 1` cyclic successors (Chord's successor-list
    /// replication; `replication` is clamped to at least 1).
    pub fn with_replication(table: RoutingTable, space: IdSpace, replication: usize) -> Self {
        let placement = PlacementMap::from_peers(table.peers(), replication);
        KvStore { table, space, placement, writes: 0 }
    }

    /// The responsible peer plus its replication successors for a ring
    /// position, deduplicated (small networks may have fewer peers than
    /// replicas). Delegates to the one engine implementation shared with
    /// the workload simulator.
    pub fn replica_peers(&self, pos: Ident) -> Vec<Ident> {
        self.placement.replica_set(pos)
    }

    /// Swaps in a freshly stabilized routing view: peers that vanished are
    /// treated as crashes (their copies die with them), new peers join, and
    /// an incremental repair re-replicates exactly the keys whose replica
    /// sets changed — O(moved keys), not O(all keys). Returns what the
    /// repair did.
    pub fn rebuild(&mut self, table: RoutingTable) -> RepairStats {
        let fresh: BTreeSet<Ident> = table.peers().iter().copied().collect();
        let old: Vec<Ident> = self.placement.peers().to_vec();
        for peer in old.iter().filter(|p| !fresh.contains(p)) {
            self.placement.apply_leave(*peer, Departure::Crash);
        }
        let old: BTreeSet<Ident> = old.into_iter().collect();
        for &peer in table.peers().iter().filter(|p| !old.contains(p)) {
            self.placement.apply_join(peer);
        }
        self.table = table;
        self.placement.repair_delta()
    }

    /// The routing table in use.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The placement engine underneath (replica sets, loads, repair state).
    pub fn placement(&self) -> &PlacementMap<String> {
        &self.placement
    }

    /// Stores `value` under `key`, issued from peer `via`. Returns the
    /// outcome; the value is stored (at the responsible peer and its
    /// replicas) only when routing succeeded.
    pub fn put(&mut self, via: Ident, key: u64, value: impl Into<String>) -> Option<LookupOutcome> {
        let pos = self.space.key_position(key);
        let responsible = self.table.responsible_for(pos)?;
        let r = route(&self.table, via, pos);
        let outcome = LookupOutcome { responsible, hops: r.hops(), routed: r.success };
        if r.success {
            self.writes += 1;
            self.placement.put(pos, key, self.writes, value.into());
        }
        Some(outcome)
    }

    /// Fetches the value under `key`, issued from peer `via`. On a miss at
    /// the responsible peer (e.g. after churn remapped the key), the
    /// replicas are consulted — each costing one extra hop.
    pub fn get(&self, via: Ident, key: u64) -> Option<(Option<&str>, LookupOutcome)> {
        let pos = self.space.key_position(key);
        let responsible = self.table.responsible_for(pos)?;
        let r = route(&self.table, via, pos);
        let mut outcome = LookupOutcome { responsible, hops: r.hops(), routed: r.success };
        if !r.success {
            return Some((None, outcome));
        }
        let probe = self.placement.lookup(pos, key);
        match probe.hit {
            Some((misses, rec)) => {
                outcome.hops += misses; // successor probes before the hit
                Some((Some(rec.value.as_str()), outcome))
            }
            None => {
                outcome.hops += probe.replicas; // probed the whole window
                Some((None, outcome))
            }
        }
    }

    /// Number of keys stored at `peer`.
    pub fn load_of(&self, peer: Ident) -> usize {
        self.placement.load_of(peer)
    }

    /// `(max load, mean load)` over all peers — consistent hashing's load
    /// balance (`O(log n)` imbalance factor w.h.p.).
    pub fn load_balance(&self) -> (usize, f64) {
        self.placement.load_balance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::RoutingTable;
    use rechord_core::network::ReChordNetwork;

    fn store(n: usize, seed: u64) -> KvStore {
        let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 20_000);
        assert!(report.converged);
        let table = RoutingTable::from_network(&net);
        KvStore::new(table, IdSpace::new(seed))
    }

    #[test]
    fn put_then_get_roundtrips() {
        let mut kv = store(12, 5);
        let via = kv.table().peers()[0];
        let other = kv.table().peers()[7];
        for key in 0..50u64 {
            let out = kv.put(via, key, format!("value-{key}")).unwrap();
            assert!(out.routed, "put of {key} must route");
        }
        for key in 0..50u64 {
            let (val, out) = kv.get(other, key).unwrap();
            assert!(out.routed);
            assert_eq!(val, Some(format!("value-{key}").as_str()));
        }
    }

    #[test]
    fn missing_key_returns_none_but_routes() {
        let kv = store(6, 9);
        let via = kv.table().peers()[1];
        let (val, out) = kv.get(via, 999).unwrap();
        assert!(out.routed);
        assert_eq!(val, None);
    }

    #[test]
    fn same_key_same_responsible_peer_from_any_source() {
        let mut kv = store(10, 13);
        let peers = kv.table().peers().to_vec();
        let out1 = kv.put(peers[0], 7, "x").unwrap();
        let out2 = kv.put(peers[5], 7, "y").unwrap();
        assert_eq!(out1.responsible, out2.responsible);
        let (val, _) = kv.get(peers[9], 7).unwrap();
        assert_eq!(val, Some("y"), "last write wins at the same peer");
    }

    #[test]
    fn replication_stores_at_successor_peers() {
        let mut kv = {
            let base = store(10, 23);
            KvStore::with_replication(base.table().clone(), IdSpace::new(23), 3)
        };
        let via = kv.table().peers()[0];
        kv.put(via, 11, "replicated").unwrap();
        let pos = IdSpace::new(23).key_position(11);
        let replicas = kv.replica_peers(pos);
        assert_eq!(replicas.len(), 3);
        for peer in &replicas {
            assert_eq!(kv.load_of(*peer), 1, "replica {peer} must hold the key");
        }
    }

    #[test]
    fn rebuild_drops_dead_peers_and_replicas_answer() {
        let base = store(10, 29);
        let space = IdSpace::new(29);
        let mut kv = KvStore::with_replication(base.table().clone(), space, 3);
        let via = kv.table().peers()[0];
        for key in 0..40u64 {
            assert!(kv.put(via, key, format!("v{key}")).unwrap().routed);
        }
        // Simulate the primary of key 7 dying: rebuild with a table lacking it.
        let pos = space.key_position(7);
        let primary = kv.replica_peers(pos)[0];
        let survivors: Vec<Ident> =
            kv.table().peers().iter().copied().filter(|&p| p != primary).collect();
        // Build a fully-connected routing table over the survivors (the
        // overlay re-stabilizes; here the graph detail is irrelevant).
        let mut g = rechord_graph::OverlayGraph::new();
        for &a in &survivors {
            for &b in &survivors {
                if a != b {
                    g.add_edge(rechord_graph::Edge::unmarked(
                        rechord_graph::NodeRef::real(a),
                        rechord_graph::NodeRef::real(b),
                    ));
                }
            }
        }
        let fresh = RoutingTable::from_overlay(&g);
        kv.rebuild(fresh);
        let reader = kv.table().peers()[0];
        let (value, out) = kv.get(reader, 7).unwrap();
        assert!(out.routed);
        assert_eq!(value, Some("v7"), "a replica must still hold key 7");
    }

    #[test]
    fn replication_survives_minority_crash_churn() {
        // End-to-end survivability: acknowledge writes at replication 2,
        // crash-churn a non-adjacent minority of peers, let the overlay
        // re-stabilize, rebuild the application view — and every
        // acknowledged key must still be readable (the crashed primaries'
        // keys through their successor replicas, including the keys that
        // wrap past the largest peer onto the smallest).
        let (mut net, report) = ReChordNetwork::bootstrap_stable(12, 37, 1, 50_000);
        assert!(report.converged);
        let space = IdSpace::new(37);
        let mut kv = KvStore::with_replication(RoutingTable::from_network(&net), space, 2);
        let via = kv.table().peers()[0];
        let mut acked = Vec::new();
        for key in 0..150u64 {
            let out = kv.put(via, key, format!("v{key}")).unwrap();
            assert!(out.routed, "stable overlay must route put {key}");
            acked.push(key);
        }
        // Every fourth peer crashes: 3 of 12, no two ring-adjacent, so each
        // key keeps at least one of its two replicas.
        let peers = kv.table().peers().to_vec();
        let victims: Vec<Ident> = peers.iter().copied().step_by(4).collect();
        assert_eq!(victims.len(), 3);
        for v in &victims {
            assert!(net.crash(*v));
        }
        let report = net.run_until_stable(50_000);
        assert!(report.converged, "survivors must re-stabilize");
        kv.rebuild(RoutingTable::from_network(&net));
        assert_eq!(kv.table().peers().len(), 9);
        let reader = kv.table().peers()[1];
        for key in acked {
            let (val, out) = kv.get(reader, key).unwrap();
            assert!(out.routed, "key {key} must route after rebuild");
            assert_eq!(
                val,
                Some(format!("v{key}").as_str()),
                "acknowledged key {key} lost in the crash churn"
            );
        }
    }

    #[test]
    fn replication_clamps_to_population() {
        let base = store(3, 31);
        let kv = KvStore::with_replication(base.table().clone(), IdSpace::new(31), 10);
        let replicas = kv.replica_peers(Ident::from_raw(5));
        assert_eq!(replicas.len(), 3, "cannot replicate past the population");
        let mut dedup = replicas.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), replicas.len());
    }

    #[test]
    fn load_is_spread_across_peers() {
        let mut kv = store(16, 17);
        let via = kv.table().peers()[0];
        for key in 0..400u64 {
            kv.put(via, key, "v").unwrap();
        }
        let (max, mean) = kv.load_balance();
        assert!(mean > 0.0);
        // consistent hashing: no peer should hold everything
        assert!(max < 400, "one peer holds every key");
        // and at least a handful of peers hold something
        let loaded = kv.table().peers().iter().filter(|p| kv.load_of(**p) > 0).count();
        assert!(loaded >= 4, "only {loaded} peers loaded");
    }
}

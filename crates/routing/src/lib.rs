//! Routing and storage on the stabilized Re-Chord overlay.
//!
//! Fact 2.1 of the paper: the stable Re-Chord network contains Chord as a
//! subgraph, "so it can faithfully emulate any applications on top of
//! Chord". This crate is that application layer:
//!
//! * [`route`] — greedy Chord routing over the projected peer overlay
//!   (§1.1's binary-search path: always hop to the neighbor that gets
//!   closest to the key without overshooting), `O(log n)` hops w.h.p.;
//! * [`route_step`] — the same algorithm one hop at a time, for
//!   discrete-event workloads that re-read the live overlay between hops;
//! * [`KvStore`] — consistent-hashing key-value storage where the key's
//!   cyclic successor peer is responsible, with puts/gets resolved by
//!   routing and placement delegated to the shared
//!   [`rechord_placement::PlacementMap`] engine (incremental repair after
//!   churn).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dht;
mod greedy;

pub use dht::{KvStore, LookupOutcome};
pub use greedy::{route, route_step, HopDecision, RouteResult, RoutingTable};

#[cfg(test)]
mod proptests;

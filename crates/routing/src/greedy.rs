//! Greedy Chord routing on the stabilized overlay.
//!
//! The paper's lookup path (§1.1) is a binary search along finger edges —
//! in Re-Chord, along the *node-level* graph: each peer controls its real
//! node **and** its virtual nodes, so one routing step may use any outgoing
//! unmarked or ring edge of any of its simulated nodes. The wrap-around is
//! closed only at node level (the phase-3 ring-edge chain), so routing must
//! operate there: a peer-level projection loses the chain through the final
//! arc and strands lookups just short of a wrapping key.
//!
//! The cursor advances monotonically clockwise toward the key and never
//! overshoots; when the current peer knows no node strictly inside
//! `(cursor, key]`, the key's position has been bracketed and the
//! responsible peer is the closest *real* node at-or-after the key among
//! the peer's knowledge (its `rr`-edge by construction in a stable state).

use rechord_graph::{EdgeKind, NodeRef, OverlayGraph};
use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// A frozen routing view: every peer's node-level knowledge (all unmarked
/// and ring out-edges of all its simulated nodes, plus its own nodes).
#[derive(Clone, Debug, Default)]
pub struct RoutingTable {
    peers: Vec<Ident>,
    knowledge: BTreeMap<Ident, BTreeSet<NodeRef>>,
}

impl RoutingTable {
    /// Builds the table from an overlay snapshot (usually a stable one).
    pub fn from_overlay(g: &OverlayGraph) -> Self {
        let mut peers: BTreeSet<Ident> = BTreeSet::new();
        let mut knowledge: BTreeMap<Ident, BTreeSet<NodeRef>> = BTreeMap::new();
        for n in g.nodes() {
            peers.insert(n.owner);
            // a peer always knows its own simulated nodes
            knowledge.entry(n.owner).or_default().insert(*n);
        }
        for e in g.edges() {
            if e.kind == EdgeKind::Connection {
                continue; // "connection edges ... do not participate in the routing"
            }
            knowledge.entry(e.from.owner).or_default().insert(e.to);
        }
        RoutingTable { peers: peers.into_iter().collect(), knowledge }
    }

    /// Builds the table directly from a network handle.
    pub fn from_network(net: &rechord_core::network::ReChordNetwork) -> Self {
        Self::from_overlay(&net.snapshot())
    }

    /// All peers, ascending.
    pub fn peers(&self) -> &[Ident] {
        &self.peers
    }

    /// The peer responsible for `key`: its cyclic successor among the real
    /// peers (consistent hashing, paper §1.1).
    pub fn responsible_for(&self, key: Ident) -> Option<Ident> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.peers.binary_search(&key) {
            Ok(i) => self.peers[i],
            Err(i) if i < self.peers.len() => self.peers[i],
            Err(_) => self.peers[0],
        })
    }

    /// The node-level knowledge of one peer.
    pub fn knowledge_of(&self, peer: Ident) -> Option<&BTreeSet<NodeRef>> {
        self.knowledge.get(&peer)
    }

    /// Mean/max size of per-peer knowledge (routing-table size analogue of
    /// Chord's O(log n) state per node).
    pub fn knowledge_summary(&self) -> (f64, usize) {
        if self.peers.is_empty() {
            return (0.0, 0);
        }
        let sizes: Vec<usize> = self.peers.iter().map(|p| self.knowledge[p].len()).collect();
        let max = sizes.iter().copied().max().unwrap_or(0);
        (sizes.iter().sum::<usize>() as f64 / sizes.len() as f64, max)
    }
}

/// The outcome of one greedy route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteResult {
    /// Did the route reach the responsible peer?
    pub success: bool,
    /// Peers visited, source first; the last entry is where routing ended.
    /// Consecutive entries are distinct (hops within one peer's own virtual
    /// nodes are free — the peer simulates them locally).
    pub path: Vec<Ident>,
}

impl RouteResult {
    /// Overlay (peer-to-peer) hops taken.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Routes from peer `from` toward the peer responsible for `key` (see
/// module docs for the algorithm).
pub fn route(table: &RoutingTable, from: Ident, key: Ident) -> RouteResult {
    let Some(responsible) = table.responsible_for(key) else {
        return RouteResult { success: false, path: vec![from] };
    };
    let mut path = vec![from];
    let mut peer = from;
    let mut cursor: Ident = from; // position reached so far, closing on key

    // Hop budget: the cursor position is strictly monotone, and with finger
    // structure each hop at least halves the remaining arc; 2·64 bounds the
    // stable case, the rest guards broken topologies.
    for _ in 0..(2 * 64) {
        if peer == responsible {
            return RouteResult { success: true, path };
        }
        let Some(known) = table.knowledge_of(peer) else {
            return RouteResult { success: false, path };
        };
        let remaining = cursor.dist_cw(key); // > 0: cursor == key only if done

        // Best strictly-progressing node: maximal clockwise advance from
        // the cursor without passing the key.
        let next = known
            .iter()
            .filter(|t| {
                let adv = cursor.dist_cw(t.pos());
                adv > 0 && adv <= remaining
            })
            .max_by_key(|t| cursor.dist_cw(t.pos()))
            .copied();

        match next {
            Some(t) => {
                cursor = t.pos();
                if t.owner != peer {
                    peer = t.owner;
                    path.push(peer);
                }
                if t.is_real() && t.owner == responsible {
                    return RouteResult { success: true, path };
                }
            }
            None => {
                // key bracketed: the responsible peer is the first real
                // node at-or-after the key in this peer's knowledge.
                let landing = known
                    .iter()
                    .filter(|t| t.is_real())
                    .min_by_key(|t| key.dist_cw(t.pos()))
                    .copied();
                match landing {
                    Some(t) if t.owner == responsible => {
                        if t.owner != peer {
                            path.push(t.owner);
                        }
                        return RouteResult { success: true, path };
                    }
                    Some(t) if t.owner != peer => {
                        // imperfect knowledge (non-stable state): delegate
                        // to the best real candidate without moving the
                        // cursor; the hop budget bounds fruitless bouncing.
                        peer = t.owner;
                        path.push(peer);
                    }
                    _ => return RouteResult { success: false, path },
                }
            }
        }
    }
    RouteResult { success: false, path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_core::network::ReChordNetwork;

    fn stable_table(n: usize, seed: u64) -> RoutingTable {
        let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 20_000);
        assert!(report.converged);
        RoutingTable::from_network(&net)
    }

    #[test]
    fn responsible_peer_is_cyclic_successor() {
        let t = stable_table(8, 42);
        let peers = t.peers().to_vec();
        let key = Ident::from_raw(peers[2].raw().wrapping_sub(1));
        assert_eq!(t.responsible_for(key), Some(peers[2]));
        let key = Ident::from_raw(peers.last().unwrap().raw().wrapping_add(1));
        assert_eq!(t.responsible_for(key), Some(peers[0]), "wraps to the first peer");
    }

    #[test]
    fn all_pairs_route_on_stable_overlay() {
        let t = stable_table(16, 7);
        let peers = t.peers().to_vec();
        for &src in &peers {
            for &dst in &peers {
                let r = route(&t, src, dst);
                assert!(r.success, "route {src} → {dst} failed (path {:?})", r.path);
                assert_eq!(*r.path.last().unwrap(), dst);
            }
        }
    }

    #[test]
    fn wrap_gap_keys_route_through_the_ring_chain() {
        // Keys strictly beyond the largest peer: the responsible peer is the
        // smallest one, reachable only across the 0/1 boundary.
        for seed in [5074u64, 1, 2, 3] {
            let t = stable_table(16, seed);
            let peers = t.peers().to_vec();
            let max = *peers.last().unwrap();
            // a key strictly beyond the largest peer: responsible = peers[0]
            let key = Ident::from_raw(max.raw() + (u64::MAX - max.raw()) / 2 + 1);
            assert!(key > max);
            for &src in &peers {
                let r = route(&t, src, key);
                assert!(r.success, "seed {seed}: {src} → {key} path {:?}", r.path);
                assert_eq!(*r.path.last().unwrap(), peers[0]);
            }
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let t = stable_table(48, 11);
        let peers = t.peers().to_vec();
        let mut max_hops = 0usize;
        for &src in &peers {
            for k in 0..8u64 {
                let key = Ident::from_raw(k.wrapping_mul(0x2222_2222_2222_2222) ^ 0x5a5a);
                let r = route(&t, src, key);
                assert!(r.success, "{src} → {key}: {:?}", r.path);
                max_hops = max_hops.max(r.hops());
            }
        }
        assert!(max_hops <= 24, "max hops {max_hops} is not logarithmic-ish");
    }

    #[test]
    fn route_to_self_is_zero_hops() {
        let t = stable_table(5, 3);
        let p = t.peers()[2];
        let r = route(&t, p, p);
        assert!(r.success);
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn empty_table_fails_gracefully() {
        let t = RoutingTable::default();
        let r = route(&t, Ident::from_raw(1), Ident::from_raw(2));
        assert!(!r.success);
    }

    #[test]
    fn knowledge_summary_is_logarithmic_per_peer() {
        let t = stable_table(64, 9);
        let (mean, max) = t.knowledge_summary();
        // each simulated node contributes O(1) edges; O(log n) nodes/peer
        assert!(mean >= 4.0);
        assert!(max <= 30 * 7, "per-peer knowledge {max} should be O(log n)-ish");
    }
}

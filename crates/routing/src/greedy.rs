//! Greedy Chord routing on the stabilized overlay.
//!
//! The paper's lookup path (§1.1) is a binary search along finger edges —
//! in Re-Chord, along the *node-level* graph: each peer controls its real
//! node **and** its virtual nodes, so one routing step may use any outgoing
//! unmarked or ring edge of any of its simulated nodes. The wrap-around is
//! closed only at node level (the phase-3 ring-edge chain), so routing must
//! operate there: a peer-level projection loses the chain through the final
//! arc and strands lookups just short of a wrapping key.
//!
//! The cursor advances monotonically clockwise toward the key and never
//! overshoots; when the current peer knows no node strictly inside
//! `(cursor, key]`, the key's position has been bracketed and the
//! responsible peer is the closest *real* node at-or-after the key among
//! the peer's knowledge (its `rr`-edge by construction in a stable state).

use rechord_core::state::PeerState;
use rechord_graph::{EdgeKind, NodeRef, OverlayGraph};
use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// A routing view: every peer's node-level knowledge (all unmarked and ring
/// out-edges of all its simulated nodes, plus its own nodes). Built from an
/// overlay snapshot in one shot, or kept current against a live network with
/// the incremental [`RoutingTable::refresh_peer`] /
/// [`RoutingTable::refresh_dirty`] family (no graph materialization).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingTable {
    peers: Vec<Ident>,
    knowledge: BTreeMap<Ident, BTreeSet<NodeRef>>,
}

impl RoutingTable {
    /// Builds the table from an overlay snapshot (usually a stable one).
    pub fn from_overlay(g: &OverlayGraph) -> Self {
        let mut peers: BTreeSet<Ident> = BTreeSet::new();
        let mut knowledge: BTreeMap<Ident, BTreeSet<NodeRef>> = BTreeMap::new();
        for n in g.nodes() {
            peers.insert(n.owner);
            // a peer always knows its own simulated nodes
            knowledge.entry(n.owner).or_default().insert(*n);
        }
        for e in g.edges() {
            if e.kind == EdgeKind::Connection {
                continue; // "connection edges ... do not participate in the routing"
            }
            knowledge.entry(e.from.owner).or_default().insert(e.to);
        }
        RoutingTable { peers: peers.into_iter().collect(), knowledge }
    }

    /// Builds the table directly from a network handle.
    pub fn from_network(net: &rechord_core::network::ReChordNetwork) -> Self {
        Self::from_overlay(&net.snapshot())
    }

    /// All peers, ascending.
    pub fn peers(&self) -> &[Ident] {
        &self.peers
    }

    /// The peer responsible for `key`: its cyclic successor among the real
    /// peers (consistent hashing, paper §1.1).
    pub fn responsible_for(&self, key: Ident) -> Option<Ident> {
        if self.peers.is_empty() {
            return None;
        }
        Some(match self.peers.binary_search(&key) {
            Ok(i) => self.peers[i],
            Err(i) if i < self.peers.len() => self.peers[i],
            Err(_) => self.peers[0],
        })
    }

    /// The node-level knowledge of one peer.
    pub fn knowledge_of(&self, peer: Ident) -> Option<&BTreeSet<NodeRef>> {
        self.knowledge.get(&peer)
    }

    /// The routing view of a *single* peer in a real deployment: the full
    /// peer roster (every node knows who is in the cluster, so
    /// [`RoutingTable::responsible_for`] agrees everywhere) but only this
    /// peer's own knowledge. [`route_step`] evaluated at `peer` needs
    /// nothing more, so a distributed recursive lookup — each node deciding
    /// one hop from its local view and forwarding — replays [`route`] over
    /// the global table decision for decision.
    pub fn local_view(peer: Ident, st: &PeerState, roster: &[Ident]) -> Self {
        let mut peers = roster.to_vec();
        peers.sort_unstable();
        peers.dedup();
        let mut knowledge = BTreeMap::new();
        knowledge.insert(peer, Self::knowledge_from_state(peer, st));
        RoutingTable { peers, knowledge }
    }

    /// One peer's routing knowledge computed straight from its live protocol
    /// state: its own simulated nodes plus the targets of its unmarked and
    /// ring out-edges (connection edges do not participate in routing).
    fn knowledge_from_state(peer: Ident, st: &PeerState) -> BTreeSet<NodeRef> {
        let mut k = BTreeSet::new();
        for (&lvl, vs) in &st.levels {
            k.insert(PeerState::node_ref(peer, lvl));
            for kind in [EdgeKind::Unmarked, EdgeKind::Ring] {
                k.extend(vs.of(kind).iter().copied());
            }
        }
        k
    }

    /// Recomputes one peer's knowledge from the live network, inserting the
    /// peer if it is new and dropping it if it no longer exists. Returns
    /// `true` iff the peer is (still) present. `O(log n + k log k)` for a
    /// peer with `k` out-edges — the incremental alternative to rebuilding
    /// the whole table via [`RoutingTable::from_network`].
    pub fn refresh_peer(
        &mut self,
        net: &rechord_core::network::ReChordNetwork,
        peer: Ident,
    ) -> bool {
        match net.engine().state(peer) {
            Some(st) => {
                if let Err(pos) = self.peers.binary_search(&peer) {
                    self.peers.insert(pos, peer);
                }
                self.knowledge.insert(peer, Self::knowledge_from_state(peer, st));
                true
            }
            None => {
                self.remove_peer(peer);
                false
            }
        }
    }

    /// Drops a peer (and its knowledge) from the table, e.g. after a crash.
    /// Returns `true` iff it was present. References *to* the dead peer held
    /// by others decay through their own refreshes, mirroring how the
    /// protocol itself purges them.
    pub fn remove_peer(&mut self, peer: Ident) -> bool {
        let existed = match self.peers.binary_search(&peer) {
            Ok(pos) => {
                self.peers.remove(pos);
                true
            }
            Err(_) => false,
        };
        self.knowledge.remove(&peer);
        existed
    }

    /// Refreshes exactly the peers in `dirty` (as reported by
    /// `ReChordNetwork::round_dirty`) — the steady-state cost of keeping a
    /// table current drops to zero when a round changes nothing.
    pub fn refresh_dirty(&mut self, net: &rechord_core::network::ReChordNetwork, dirty: &[Ident]) {
        for &peer in dirty {
            self.refresh_peer(net, peer);
        }
    }

    /// Rebuilds the whole view from the live per-peer states without
    /// materializing an [`OverlayGraph`]. Equivalent to
    /// [`RoutingTable::from_network`] on any state whose edges only point at
    /// live, simulated nodes (always true once stabilized).
    pub fn refresh_from_network(&mut self, net: &rechord_core::network::ReChordNetwork) {
        self.peers = net.engine().ids().to_vec();
        self.knowledge =
            net.engine().iter().map(|(id, st)| (id, Self::knowledge_from_state(id, st))).collect();
    }

    /// Mean/max size of per-peer knowledge (routing-table size analogue of
    /// Chord's O(log n) state per node).
    pub fn knowledge_summary(&self) -> (f64, usize) {
        if self.peers.is_empty() {
            return (0.0, 0);
        }
        let sizes: Vec<usize> = self.peers.iter().map(|p| self.knowledge[p].len()).collect();
        let max = sizes.iter().copied().max().unwrap_or(0);
        (sizes.iter().sum::<usize>() as f64 / sizes.len() as f64, max)
    }
}

/// The outcome of one greedy route.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteResult {
    /// Did the route reach the responsible peer?
    pub success: bool,
    /// Peers visited, source first; the last entry is where routing ended.
    /// Consecutive entries are distinct (hops within one peer's own virtual
    /// nodes are free — the peer simulates them locally).
    pub path: Vec<Ident>,
}

impl RouteResult {
    /// Overlay (peer-to-peer) hops taken.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// What one greedy routing step decided (see [`route_step`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopDecision {
    /// The current peer is the responsible peer: the lookup is done.
    Arrived,
    /// Move to `peer` with the cursor advanced to `cursor`. `peer` may equal
    /// the current peer (a free local step through its own virtual nodes) or
    /// differ (one network hop).
    Next {
        /// Peer holding the chosen node.
        peer: Ident,
        /// New cursor position (unchanged for knowledge-gap delegation).
        cursor: Ident,
    },
    /// No progress is possible from here — imperfect knowledge, typically a
    /// state still stabilizing. The caller may retry from elsewhere.
    Stuck,
}

/// One step of the greedy route: the decision the peer `peer` makes for a
/// request whose monotone cursor has reached `cursor`, bound for `key`.
///
/// [`route`] folds this over a frozen table; a discrete-event workload
/// re-evaluates it hop by hop against the *live* table, so requests issued
/// mid-stabilization see knowledge exactly as it evolves.
pub fn route_step(table: &RoutingTable, peer: Ident, cursor: Ident, key: Ident) -> HopDecision {
    let Some(responsible) = table.responsible_for(key) else {
        return HopDecision::Stuck;
    };
    if peer == responsible {
        return HopDecision::Arrived;
    }
    let Some(known) = table.knowledge_of(peer) else {
        return HopDecision::Stuck;
    };
    let remaining = cursor.dist_cw(key); // > 0: cursor == key only if done

    // Best strictly-progressing node: maximal clockwise advance from the
    // cursor without passing the key.
    let next = known
        .iter()
        .filter(|t| {
            let adv = cursor.dist_cw(t.pos());
            adv > 0 && adv <= remaining
        })
        .max_by_key(|t| cursor.dist_cw(t.pos()))
        .copied();

    match next {
        Some(t) => HopDecision::Next { peer: t.owner, cursor: t.pos() },
        None => {
            // Key bracketed: the responsible peer is the first real node
            // at-or-after the key in this peer's knowledge. If that node is
            // someone else's, delegate without moving the cursor (imperfect
            // knowledge bounces are capped by the caller's hop budget).
            let landing =
                known.iter().filter(|t| t.is_real()).min_by_key(|t| key.dist_cw(t.pos())).copied();
            match landing {
                Some(t) if t.owner != peer => HopDecision::Next { peer: t.owner, cursor },
                _ => HopDecision::Stuck,
            }
        }
    }
}

/// Routes from peer `from` toward the peer responsible for `key` (see
/// module docs for the algorithm).
pub fn route(table: &RoutingTable, from: Ident, key: Ident) -> RouteResult {
    let mut path = vec![from];
    let mut peer = from;
    let mut cursor: Ident = from; // position reached so far, closing on key

    // Step budget: the cursor position is strictly monotone, and with finger
    // structure each hop at least halves the remaining arc; 2·64 bounds the
    // stable case, the rest guards broken topologies.
    for _ in 0..(2 * 64) {
        match route_step(table, peer, cursor, key) {
            HopDecision::Arrived => return RouteResult { success: true, path },
            HopDecision::Next { peer: p, cursor: c } => {
                cursor = c;
                if p != peer {
                    peer = p;
                    path.push(p);
                }
            }
            HopDecision::Stuck => return RouteResult { success: false, path },
        }
    }
    RouteResult { success: false, path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_core::network::ReChordNetwork;

    fn stable_table(n: usize, seed: u64) -> RoutingTable {
        let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 20_000);
        assert!(report.converged);
        RoutingTable::from_network(&net)
    }

    #[test]
    fn responsible_peer_is_cyclic_successor() {
        let t = stable_table(8, 42);
        let peers = t.peers().to_vec();
        let key = Ident::from_raw(peers[2].raw().wrapping_sub(1));
        assert_eq!(t.responsible_for(key), Some(peers[2]));
        let key = Ident::from_raw(peers.last().unwrap().raw().wrapping_add(1));
        assert_eq!(t.responsible_for(key), Some(peers[0]), "wraps to the first peer");
    }

    #[test]
    fn all_pairs_route_on_stable_overlay() {
        let t = stable_table(16, 7);
        let peers = t.peers().to_vec();
        for &src in &peers {
            for &dst in &peers {
                let r = route(&t, src, dst);
                assert!(r.success, "route {src} → {dst} failed (path {:?})", r.path);
                assert_eq!(*r.path.last().unwrap(), dst);
            }
        }
    }

    #[test]
    fn wrap_gap_keys_route_through_the_ring_chain() {
        // Keys strictly beyond the largest peer: the responsible peer is the
        // smallest one, reachable only across the 0/1 boundary.
        for seed in [5074u64, 1, 2, 3] {
            let t = stable_table(16, seed);
            let peers = t.peers().to_vec();
            let max = *peers.last().unwrap();
            // a key strictly beyond the largest peer: responsible = peers[0]
            let key = Ident::from_raw(max.raw() + (u64::MAX - max.raw()) / 2 + 1);
            assert!(key > max);
            for &src in &peers {
                let r = route(&t, src, key);
                assert!(r.success, "seed {seed}: {src} → {key} path {:?}", r.path);
                assert_eq!(*r.path.last().unwrap(), peers[0]);
            }
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let t = stable_table(48, 11);
        let peers = t.peers().to_vec();
        let mut max_hops = 0usize;
        for &src in &peers {
            for k in 0..8u64 {
                let key = Ident::from_raw(k.wrapping_mul(0x2222_2222_2222_2222) ^ 0x5a5a);
                let r = route(&t, src, key);
                assert!(r.success, "{src} → {key}: {:?}", r.path);
                max_hops = max_hops.max(r.hops());
            }
        }
        assert!(max_hops <= 24, "max hops {max_hops} is not logarithmic-ish");
    }

    #[test]
    fn route_to_self_is_zero_hops() {
        let t = stable_table(5, 3);
        let p = t.peers()[2];
        let r = route(&t, p, p);
        assert!(r.success);
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn empty_table_fails_gracefully() {
        let t = RoutingTable::default();
        let r = route(&t, Ident::from_raw(1), Ident::from_raw(2));
        assert!(!r.success);
    }

    #[test]
    fn refresh_from_network_matches_snapshot_table_on_stable_overlay() {
        for seed in [1u64, 7, 19] {
            let (net, report) = ReChordNetwork::bootstrap_stable(14, seed, 1, 20_000);
            assert!(report.converged);
            let full = RoutingTable::from_network(&net);
            let mut incremental = RoutingTable::default();
            incremental.refresh_from_network(&net);
            assert_eq!(full, incremental, "seed {seed}: incremental view diverged");
        }
    }

    #[test]
    fn refresh_dirty_tracks_a_stabilizing_network() {
        // Start from scratch, refresh only dirty peers each round; at the
        // fixpoint the table must equal the one-shot snapshot build.
        let topo = rechord_topology::TopologyKind::Random.generate(12, 5);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let mut table = RoutingTable::default();
        table.refresh_from_network(&net);
        for _ in 0..20_000 {
            let (out, dirty) = net.round_dirty();
            table.refresh_dirty(&net, &dirty);
            if !out.changed {
                break;
            }
        }
        assert_eq!(table, RoutingTable::from_network(&net));
    }

    #[test]
    fn refresh_peer_handles_joins_and_removals() {
        let (mut net, _) = ReChordNetwork::bootstrap_stable(8, 3, 1, 20_000);
        let mut table = RoutingTable::from_network(&net);
        let contact = table.peers()[0];
        let joiner = Ident::from_raw(0xdead_beef_1234_5678);
        assert!(net.join_via(joiner, contact));
        assert!(table.refresh_peer(&net, joiner));
        assert!(table.peers().contains(&joiner));
        // The joiner knows its contact straight away.
        assert!(table.knowledge_of(joiner).unwrap().iter().any(|t| t.owner == contact));
        // Crash it again: refresh drops it.
        assert!(net.crash(joiner));
        assert!(!table.refresh_peer(&net, joiner));
        assert!(!table.peers().contains(&joiner));
        assert!(table.knowledge_of(joiner).is_none());
        assert!(!table.remove_peer(joiner), "already gone");
    }

    #[test]
    fn route_step_agrees_with_route() {
        let t = stable_table(20, 13);
        let peers = t.peers().to_vec();
        for &src in peers.iter().take(6) {
            for k in 0..6u64 {
                let key = Ident::from_raw(k.wrapping_mul(0x3333_9999_aaaa_0001) ^ 0x77);
                let full = route(&t, src, key);
                // Fold route_step by hand.
                let (mut peer, mut cursor) = (src, src);
                let mut path = vec![src];
                let mut arrived = false;
                for _ in 0..128 {
                    match route_step(&t, peer, cursor, key) {
                        HopDecision::Arrived => {
                            arrived = true;
                            break;
                        }
                        HopDecision::Next { peer: p, cursor: c } => {
                            cursor = c;
                            if p != peer {
                                peer = p;
                                path.push(p);
                            }
                        }
                        HopDecision::Stuck => break,
                    }
                }
                assert_eq!(arrived, full.success);
                assert_eq!(path, full.path);
            }
        }
    }

    #[test]
    fn route_step_on_empty_table_is_stuck() {
        let t = RoutingTable::default();
        let p = Ident::from_raw(1);
        assert_eq!(route_step(&t, p, p, Ident::from_raw(9)), HopDecision::Stuck);
    }

    #[test]
    fn knowledge_summary_is_logarithmic_per_peer() {
        let t = stable_table(64, 9);
        let (mean, max) = t.knowledge_summary();
        // each simulated node contributes O(1) edges; O(log n) nodes/peer
        assert!(mean >= 4.0);
        assert!(max <= 30 * 7, "per-peer knowledge {max} should be O(log n)-ish");
    }
}

//! Property tests: routing on stable overlays always succeeds and stays
//! within logarithmic-ish hop counts.

use crate::{route, RoutingTable};
use proptest::prelude::*;
use rechord_core::network::ReChordNetwork;
use rechord_id::Ident;

fn stable_table(n: usize, seed: u64) -> RoutingTable {
    let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 20_000);
    assert!(report.converged, "bootstrap n={n} seed={seed}");
    RoutingTable::from_network(&net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every key routes successfully from every source on a stable overlay,
    /// and the destination is the key's cyclic successor.
    #[test]
    fn routing_total_on_stable_overlays(n in 2usize..14, seed in any::<u64>(),
                                        key in any::<u64>(), src_idx in any::<prop::sample::Index>()) {
        let t = stable_table(n, seed);
        let peers = t.peers().to_vec();
        let src = peers[src_idx.index(peers.len())];
        let key = Ident::from_raw(key);
        let r = route(&t, src, key);
        prop_assert!(r.success, "route failed: path {:?}", r.path);
        prop_assert_eq!(*r.path.last().unwrap(), t.responsible_for(key).unwrap());
        // never visits a peer twice (greedy progress is monotone)
        let mut seen = r.path.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), r.path.len(), "path revisits a peer");
    }

    /// Hop counts stay within a generous logarithmic envelope.
    #[test]
    fn hops_bounded(n in 4usize..14, seed in any::<u64>(), key in any::<u64>()) {
        let t = stable_table(n, seed);
        let src = t.peers()[0];
        let r = route(&t, src, Ident::from_raw(key));
        prop_assert!(r.success);
        let bound = 4 * (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize + 4;
        prop_assert!(r.hops() <= bound, "hops {} > bound {bound} at n={n}", r.hops());
    }
}

//! The shared scoped worker pool: one closure invocation per worker
//! context, fanned out over `std::thread::scope` and joined in context
//! order.
//!
//! Both parallel layers of the workspace run on this primitive — the
//! synchronous protocol engine shards its per-node round step across it
//! ([`crate::Engine`]), and the workload's sharded data plane runs one
//! per-arc-range worker per context — so "how many OS threads do we spawn
//! and how do we join them deterministically" exists exactly once.

/// Runs `f(worker_index, context)` once per context, each on its own
/// scoped thread, and returns the results in context order — the output is
/// a pure function of the inputs, independent of OS scheduling. With a
/// single context the closure runs inline on the calling thread: the
/// serial path spawns nothing, so `contexts.len() == 1` is also the
/// zero-overhead fallback for machines without spare cores.
pub fn run_workers<C, R, F>(contexts: Vec<C>, f: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(usize, C) -> R + Sync,
{
    if contexts.len() <= 1 {
        return contexts.into_iter().enumerate().map(|(w, c)| f(w, c)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            contexts.into_iter().enumerate().map(|(w, c)| scope.spawn(move || f(w, c))).collect();
        handles.into_iter().map(|h| h.join().expect("simulation worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_join_in_context_order() {
        for n in [0usize, 1, 2, 7, 16] {
            let contexts: Vec<usize> = (0..n).collect();
            let out = run_workers(contexts, |w, c| {
                assert_eq!(w, c, "index matches context position");
                c * 10
            });
            assert_eq!(out, (0..n).map(|c| c * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn contexts_move_into_their_workers() {
        let contexts: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let sums = run_workers(contexts, |_, v| v.into_iter().sum::<u64>());
        assert_eq!(sums, vec![3, 3, 15]);
    }
}

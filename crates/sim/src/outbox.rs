//! Collection of delayed assignments emitted during a round.

use rechord_id::Ident;

/// The per-node buffer of delayed (`<-`) assignments produced in a round.
///
/// Every message is addressed to the *peer* (real node identifier) that
/// simulates the target; routing to the right virtual sibling is the
/// receiving protocol's business.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(Ident, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues `msg` for delivery to the peer `to` at the end of the round.
    #[inline]
    pub fn send(&mut self, to: Ident, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True iff nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Consumes the outbox, yielding the queued `(target, message)` pairs.
    /// Used by the engine at the round boundary and by rule-level tests.
    pub fn into_inner(self) -> Vec<(Ident, M)> {
        self.msgs
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_drain() {
        let mut o: Outbox<u32> = Outbox::new();
        assert!(o.is_empty());
        o.send(Ident::from_raw(5), 1);
        o.send(Ident::from_raw(5), 2);
        o.send(Ident::from_raw(9), 3);
        assert_eq!(o.len(), 3);
        let inner = o.into_inner();
        assert_eq!(
            inner,
            vec![(Ident::from_raw(5), 1), (Ident::from_raw(5), 2), (Ident::from_raw(9), 3)]
        );
    }
}

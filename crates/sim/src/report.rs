//! Run reports and per-round traces.

/// Result of driving an engine toward a fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixpointReport {
    /// Rounds executed (including the final unchanged round when converged).
    pub rounds: u64,
    /// Did the run reach a fixpoint within the round budget?
    pub converged: bool,
    /// Total messages generated over the run (delivered + dropped).
    pub total_messages: usize,
}

impl FixpointReport {
    /// Rounds of actual change: the paper counts "steps needed to reach the
    /// stable state", which excludes the final confirming round.
    pub fn rounds_to_stable(&self) -> u64 {
        self.rounds.saturating_sub(1)
    }
}

/// Statistics for one executed round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: u64,
    /// Messages delivered at the round boundary.
    pub delivered: usize,
    /// Messages dropped (target peer gone).
    pub dropped: usize,
    /// Did the global state change?
    pub changed: bool,
    /// Result of the caller's probe (e.g. "almost-stable reached").
    pub marked: bool,
}

/// Per-round history of a traced run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// One entry per executed round, in order.
    pub rounds: Vec<RoundStats>,
}

impl Trace {
    /// First round (1-based) whose probe returned `true`, if any. With the
    /// almost-stable probe this is Figure 6's "rounds to almost stable".
    pub fn first_marked_round(&self) -> Option<u64> {
        self.rounds.iter().find(|r| r.marked).map(|r| r.round)
    }

    /// Total messages over the trace.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.delivered + r.dropped).sum()
    }

    /// Peak per-round message volume.
    pub fn peak_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.delivered + r.dropped).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: u64, delivered: usize, marked: bool) -> RoundStats {
        RoundStats { round, delivered, dropped: 0, changed: true, marked }
    }

    #[test]
    fn first_marked_round_found() {
        let t = Trace { rounds: vec![stats(1, 5, false), stats(2, 3, true), stats(3, 1, true)] };
        assert_eq!(t.first_marked_round(), Some(2));
        assert_eq!(t.total_messages(), 9);
        assert_eq!(t.peak_messages(), 5);
    }

    #[test]
    fn unmarked_trace_has_no_marked_round() {
        let t = Trace { rounds: vec![stats(1, 0, false)] };
        assert_eq!(t.first_marked_round(), None);
    }

    #[test]
    fn rounds_to_stable_excludes_confirming_round() {
        let r = FixpointReport { rounds: 12, converged: true, total_messages: 100 };
        assert_eq!(r.rounds_to_stable(), 11);
        let zero = FixpointReport { rounds: 0, converged: false, total_messages: 0 };
        assert_eq!(zero.rounds_to_stable(), 0);
    }
}

//! The deterministic synchronous round engine.

use crate::report::{FixpointReport, RoundStats, Trace};
use crate::{Outbox, SyncProtocol};
use rechord_id::Ident;

/// Read-only access to the previous round's global state (the snapshot
/// against which all nodes compute; see crate docs).
pub struct RoundView<'a, S> {
    ids: &'a [Ident],
    states: &'a [S],
}

impl<'a, S> RoundView<'a, S> {
    /// Builds a view over externally supplied `(ids, states)` columns.
    /// `ids` must be sorted ascending and aligned with `states`. Intended
    /// for unit-testing protocol rules in isolation and for custom drivers;
    /// the engine constructs its own views internally.
    pub fn new(ids: &'a [Ident], states: &'a [S]) -> Self {
        debug_assert_eq!(ids.len(), states.len());
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        RoundView { ids, states }
    }

    /// The previous-round state of the peer `id`, if it exists.
    #[inline]
    pub fn get(&self, id: Ident) -> Option<&'a S> {
        self.ids.binary_search(&id).ok().map(|i| &self.states[i])
    }

    /// All peers in ascending identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (Ident, &'a S)> + '_ {
        self.ids.iter().copied().zip(self.states.iter())
    }

    /// Number of peers in the snapshot.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// What happened in one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Did the global state change relative to the round start? A `false`
    /// here is exactly the paper's stability criterion ("no more state
    /// changes are taking place").
    pub changed: bool,
    /// Messages delivered at the round boundary.
    pub delivered: usize,
    /// Messages addressed to peers that no longer exist (dropped — models a
    /// crashed receiver).
    pub dropped: usize,
}

/// A population of peers evolving under a [`SyncProtocol`].
///
/// Peers are kept sorted by identifier; all iteration and message delivery
/// orders are deterministic, and rounds are pure functions of the global
/// state, so runs are reproducible bit-for-bit for any `threads` setting.
pub struct Engine<P: SyncProtocol> {
    protocol: P,
    ids: Vec<Ident>,
    states: Vec<P::State>,
    round: u64,
    threads: usize,
}

impl<P: SyncProtocol> Engine<P> {
    /// Creates an empty engine. `threads = 1` evaluates rounds serially;
    /// larger values shard the per-node step across scoped threads.
    pub fn new(protocol: P, threads: usize) -> Self {
        Engine { protocol, ids: Vec::new(), states: Vec::new(), round: 0, threads: threads.max(1) }
    }

    /// Engine with one thread per available CPU core.
    pub fn new_parallel(protocol: P) -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(protocol, n)
    }

    /// Changes the thread count (results are unaffected; only wall time).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The protocol instance.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol instance — for drivers that
    /// reconfigure protocol-level knobs (rule masks, adversary policies)
    /// between rounds. Changes apply from the next round.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// Adds a peer. Returns `false` (and leaves the engine unchanged) if the
    /// identifier is already present.
    pub fn insert_node(&mut self, id: Ident, state: P::State) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                self.states.insert(pos, state);
                true
            }
        }
    }

    /// Removes a peer (a crash or leave), returning its final state.
    pub fn remove_node(&mut self, id: Ident) -> Option<P::State> {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                Some(self.states.remove(pos))
            }
            Err(_) => None,
        }
    }

    /// Is the peer present?
    pub fn contains(&self, id: Ident) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Read a peer's current state.
    pub fn state(&self, id: Ident) -> Option<&P::State> {
        self.ids.binary_search(&id).ok().map(|i| &self.states[i])
    }

    /// Mutate a peer's current state (used by churn drivers to seed edges).
    pub fn state_mut(&mut self, id: Ident) -> Option<&mut P::State> {
        match self.ids.binary_search(&id) {
            Ok(i) => Some(&mut self.states[i]),
            Err(_) => None,
        }
    }

    /// All peers with their states, ascending by identifier.
    pub fn iter(&self) -> impl Iterator<Item = (Ident, &P::State)> + '_ {
        self.ids.iter().copied().zip(self.states.iter())
    }

    /// Peer identifiers, ascending.
    pub fn ids(&self) -> &[Ident] {
        &self.ids
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no peers exist.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Rounds executed so far.
    pub fn round_number(&self) -> u64 {
        self.round
    }

    /// Executes one synchronous round: snapshot, parallel per-node step,
    /// deterministic message merge, delivery.
    pub fn round(&mut self) -> RoundOutcome {
        self.round_with_schedule(|_| true)
    }

    /// Executes one round in which only the peers selected by `active`
    /// fire their actions (all peers still receive messages).
    ///
    /// This models *partial synchrony / asynchrony*: the paper's rules are
    /// formulated for the fully synchronous model but notes that "a parallel
    /// application will not violate the correctness" — and self-stabilizing
    /// rules must tolerate peers that are slow to act. A fixpoint detected
    /// under a partial schedule is only meaningful if the schedule is fair;
    /// use full rounds (or [`Engine::run_until_fixpoint`]) to confirm
    /// stability.
    pub fn round_with_schedule(&mut self, active: impl Fn(Ident) -> bool) -> RoundOutcome {
        let (prev, delivered, dropped) = self.round_core(&active);
        // Short-circuits at the first differing peer — the hot path for
        // fixpoint loops that never look at *which* peers changed.
        RoundOutcome { changed: prev != self.states, delivered, dropped }
    }

    /// Like [`Engine::round_with_schedule`], additionally reporting exactly
    /// which peers' states changed this round (ascending by identifier).
    ///
    /// This is the co-simulation hook: a workload driver interleaving its
    /// own events with protocol rounds uses the dirty set to refresh derived
    /// views (e.g. a routing table) incrementally — at a true fixpoint the
    /// set is empty and the refresh is free.
    pub fn round_dirty_with_schedule(
        &mut self,
        active: impl Fn(Ident) -> bool,
    ) -> (RoundOutcome, Vec<Ident>) {
        let (prev, delivered, dropped) = self.round_core(&active);
        // The id column is fixed within a round, so prev and states align.
        let dirty: Vec<Ident> = self
            .ids
            .iter()
            .zip(prev.iter().zip(self.states.iter()))
            .filter(|(_, (a, b))| a != b)
            .map(|(&id, _)| id)
            .collect();
        (RoundOutcome { changed: !dirty.is_empty(), delivered, dropped }, dirty)
    }

    /// The shared round body: step, merge, deliver. Returns the pre-round
    /// states (for change detection) plus delivery counts.
    fn round_core(&mut self, active: &impl Fn(Ident) -> bool) -> (Vec<P::State>, usize, usize) {
        let prev = self.states.clone();
        let mut msgs = self.step_all(&prev, active);

        // Canonical delivery order: by (target, message). Ties carry equal
        // messages, so unstable sorting cannot perturb outcomes; this makes
        // delivery independent of which thread produced a message.
        msgs.sort_unstable();

        let mut delivered = 0usize;
        let mut dropped = 0usize;
        for (to, msg) in &msgs {
            match self.ids.binary_search(to) {
                Ok(i) => {
                    self.protocol.deliver(*to, &mut self.states[i], msg);
                    delivered += 1;
                }
                Err(_) => dropped += 1,
            }
        }

        self.round += 1;
        (prev, delivered, dropped)
    }

    /// Runs up to `max_rounds` rounds, stopping at the first fixpoint
    /// (a round after which the global state is unchanged).
    pub fn run_until_fixpoint(&mut self, max_rounds: u64) -> FixpointReport {
        let mut total_messages = 0usize;
        for r in 0..max_rounds {
            let out = self.round();
            total_messages += out.delivered + out.dropped;
            if !out.changed {
                return FixpointReport { rounds: r + 1, converged: true, total_messages };
            }
        }
        FixpointReport { rounds: max_rounds, converged: false, total_messages }
    }

    /// Like [`Engine::run_until_fixpoint`], but invokes `probe` on the engine
    /// after every round and records per-round statistics. `probe` returning
    /// `true` marks the round in the trace (e.g. "almost-stable reached").
    pub fn run_traced(
        &mut self,
        max_rounds: u64,
        mut probe: impl FnMut(&Self) -> bool,
    ) -> (FixpointReport, Trace) {
        let mut trace = Trace::default();
        let mut total_messages = 0usize;
        for r in 0..max_rounds {
            let out = self.round();
            total_messages += out.delivered + out.dropped;
            let marked = probe(self);
            trace.rounds.push(RoundStats {
                round: self.round,
                delivered: out.delivered,
                dropped: out.dropped,
                changed: out.changed,
                marked,
            });
            if !out.changed {
                return (FixpointReport { rounds: r + 1, converged: true, total_messages }, trace);
            }
        }
        (FixpointReport { rounds: max_rounds, converged: false, total_messages }, trace)
    }

    /// Runs exactly `k` rounds (no fixpoint check), returning the outcome of
    /// the last one.
    pub fn run_rounds(&mut self, k: u64) -> Option<RoundOutcome> {
        let mut last = None;
        for _ in 0..k {
            last = Some(self.round());
        }
        last
    }

    /// Evaluates the scheduled nodes' steps against `prev`, serially or
    /// sharded.
    fn step_all(
        &mut self,
        prev: &[P::State],
        active: &(impl Fn(Ident) -> bool + ?Sized),
    ) -> Vec<(Ident, P::Msg)> {
        let view = RoundView { ids: &self.ids, states: prev };
        let n = self.ids.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads <= 1 {
            let mut out = Outbox::new();
            for (id, st) in self.ids.iter().zip(self.states.iter_mut()) {
                if active(*id) {
                    self.protocol.step(*id, st, &view, &mut out);
                }
            }
            return out.into_inner();
        }

        let chunk = n.div_ceil(threads);
        let protocol = &self.protocol;
        let ids = &self.ids;
        let active_flags: Vec<bool> = ids.iter().map(|&id| active(id)).collect();
        let contexts: Vec<_> = ids
            .chunks(chunk)
            .zip(self.states.chunks_mut(chunk))
            .zip(active_flags.chunks(chunk))
            .collect();
        let buffers = crate::pool::run_workers(contexts, |_, ((id_chunk, st_chunk), fl_chunk)| {
            let view = RoundView { ids, states: prev };
            let mut out = Outbox::new();
            for ((id, st), &fire) in id_chunk.iter().zip(st_chunk.iter_mut()).zip(fl_chunk) {
                if fire {
                    protocol.step(*id, st, &view, &mut out);
                }
            }
            out.into_inner()
        });
        buffers.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy gossip protocol: every node's state is a set of known values;
    /// each round it gossips its minimum to its successor (next larger id,
    /// wrapping). Converges when everyone knows the global minimum.
    struct MinGossip;

    impl SyncProtocol for MinGossip {
        type State = Vec<u64>;
        type Msg = u64;

        fn step(
            &self,
            me: Ident,
            state: &mut Vec<u64>,
            view: &RoundView<'_, Vec<u64>>,
            out: &mut Outbox<u64>,
        ) {
            state.sort_unstable();
            state.dedup();
            // successor = smallest id > me, else global smallest
            let succ = view
                .iter()
                .map(|(id, _)| id)
                .find(|&id| id > me)
                .or_else(|| view.iter().map(|(id, _)| id).next());
            if let (Some(succ), Some(&min)) = (succ, state.first()) {
                if succ != me {
                    out.send(succ, min);
                }
            }
        }

        fn deliver(&self, _me: Ident, state: &mut Vec<u64>, msg: &u64) {
            if !state.contains(msg) {
                state.push(*msg);
                state.sort_unstable();
            }
        }
    }

    fn engine_with(n: u64, threads: usize) -> Engine<MinGossip> {
        let mut e = Engine::new(MinGossip, threads);
        for i in 0..n {
            e.insert_node(Ident::from_raw(i * 1000 + 17), vec![i + 100]);
        }
        e
    }

    #[test]
    fn gossip_reaches_fixpoint() {
        let mut e = engine_with(16, 1);
        let report = e.run_until_fixpoint(1000);
        assert!(report.converged, "gossip must stabilize");
        // Everyone ends up knowing the global minimum, 100.
        for (_, st) in e.iter() {
            assert!(st.contains(&100));
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut serial = engine_with(37, 1);
        let mut parallel = engine_with(37, 8);
        for _ in 0..25 {
            serial.round();
            parallel.round();
            let a: Vec<_> = serial.iter().map(|(i, s)| (i, s.clone())).collect();
            let b: Vec<_> = parallel.iter().map(|(i, s)| (i, s.clone())).collect();
            assert_eq!(a, b, "thread count must not affect results");
        }
    }

    #[test]
    fn insert_and_remove_nodes() {
        let mut e = engine_with(3, 1);
        let id = Ident::from_raw(999_999);
        assert!(e.insert_node(id, vec![1]));
        assert!(!e.insert_node(id, vec![2]), "duplicate rejected");
        assert_eq!(e.len(), 4);
        assert_eq!(e.remove_node(id), Some(vec![1]));
        assert_eq!(e.remove_node(id), None);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn ids_stay_sorted() {
        let mut e = Engine::new(MinGossip, 1);
        for raw in [50u64, 10, 90, 30] {
            e.insert_node(Ident::from_raw(raw), vec![raw]);
        }
        let ids: Vec<u64> = e.ids().iter().map(|i| i.raw()).collect();
        assert_eq!(ids, vec![10, 30, 50, 90]);
    }

    #[test]
    fn messages_to_missing_peers_are_dropped() {
        let mut e = engine_with(2, 1);
        // Remove the successor of the first node mid-run; its gossip drops.
        let victim = *e.ids().last().unwrap();
        e.remove_node(victim);
        let out = e.round();
        assert_eq!(out.dropped, 0); // removal happened before the round: no stale target
                                    // Now orchestrate a genuine drop: a one-node engine gossips to itself only.
        let mut single = engine_with(1, 1);
        let out = single.round();
        assert_eq!(out.delivered + out.dropped, 0, "no self-send");
    }

    #[test]
    fn traced_run_records_rounds() {
        let mut e = engine_with(8, 2);
        let (report, trace) = e.run_traced(1000, |_| true);
        assert!(report.converged);
        assert_eq!(trace.rounds.len() as u64, report.rounds);
        assert!(trace.rounds.iter().all(|r| r.marked));
        assert!(!trace.rounds.last().unwrap().changed);
    }

    #[test]
    fn empty_engine_is_a_fixpoint() {
        let mut e: Engine<MinGossip> = Engine::new(MinGossip, 4);
        let report = e.run_until_fixpoint(10);
        assert!(report.converged);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn dirty_set_matches_state_diffs() {
        let mut tracked = engine_with(17, 2);
        let mut control = engine_with(17, 1);
        loop {
            let before: Vec<_> = control.iter().map(|(i, s)| (i, s.clone())).collect();
            let (out, dirty) = tracked.round_dirty_with_schedule(|_| true);
            control.round();
            let after: Vec<_> = control.iter().map(|(i, s)| (i, s.clone())).collect();
            let expected: Vec<Ident> = before
                .iter()
                .zip(after.iter())
                .filter(|(a, b)| a.1 != b.1)
                .map(|(a, _)| a.0)
                .collect();
            assert_eq!(dirty, expected);
            assert_eq!(out.changed, !dirty.is_empty());
            assert!(dirty.windows(2).all(|w| w[0] < w[1]), "dirty ids ascend");
            if !out.changed {
                break;
            }
        }
        // At the fixpoint the dirty set stays empty.
        let (out, dirty) = tracked.round_dirty_with_schedule(|_| true);
        assert!(!out.changed && dirty.is_empty());
    }

    #[test]
    fn partial_schedule_fires_only_selected_nodes() {
        let mut e = engine_with(6, 1);
        let ids = e.ids().to_vec();
        let only = ids[2];
        let out = e.round_with_schedule(|id| id == only);
        // exactly one node gossiped: at most one message
        assert!(out.delivered <= 1, "only the scheduled node may send");
        // an empty schedule is a no-op round
        let before: Vec<_> = e.iter().map(|(i, s)| (i, s.clone())).collect();
        let out = e.round_with_schedule(|_| false);
        assert_eq!(out.delivered + out.dropped, 0);
        assert!(!out.changed);
        let after: Vec<_> = e.iter().map(|(i, s)| (i, s.clone())).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn partial_schedule_parallel_matches_serial() {
        let mut a = engine_with(23, 1);
        let mut b = engine_with(23, 8);
        let pick = |id: Ident| !id.raw().is_multiple_of(3);
        for _ in 0..15 {
            a.round_with_schedule(pick);
            b.round_with_schedule(pick);
            let sa: Vec<_> = a.iter().map(|(i, s)| (i, s.clone())).collect();
            let sb: Vec<_> = b.iter().map(|(i, s)| (i, s.clone())).collect();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn fair_alternating_schedule_still_converges() {
        let mut e = engine_with(12, 2);
        // odd/even alternation is fair: everyone fires every other round
        let ids = e.ids().to_vec();
        let mut stable_streak = 0;
        for round in 0..10_000u64 {
            let parity = round % 2;
            let out = e.round_with_schedule(|id| {
                (ids.binary_search(&id).expect("live") as u64) % 2 == parity
            });
            if out.changed {
                stable_streak = 0;
            } else {
                stable_streak += 1;
                if stable_streak >= 3 {
                    break;
                }
            }
        }
        for (_, st) in e.iter() {
            assert!(st.contains(&100), "everyone learns the global minimum");
        }
    }
}

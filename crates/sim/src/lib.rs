//! The synchronous message-passing execution model of the Re-Chord paper
//! (§2.1), as a reusable engine.
//!
//! The model: time proceeds in rounds; in round `i` every node inspects only
//! its own state (plus, per Gall et al., the variables of its neighbors from
//! the **previous** round), performs immediate assignments on its own state,
//! and issues *delayed assignments* (`A <- B`) that take effect "right before
//! the next round". All messages generated in round `i` are delivered
//! simultaneously at its end, which makes the global state at each round
//! boundary well defined and the whole computation a deterministic function
//! `s_{i+1} = F(s_i)`.
//!
//! That structure is embarrassingly parallel inside a round: the engine
//! snapshots all node states, evaluates every node's step against the
//! snapshot on a scoped thread pool (each node mutates only its own state),
//! then merges the emitted messages **deterministically** (stable sort by
//! target and message order) and applies them. Results are bit-identical for
//! any thread count — asserted by property tests.
//!
//! A *legal / stable* state (the paper's self-stabilization target) is a
//! fixpoint of `F`; [`Engine::run_until_fixpoint`] detects it by comparing
//! consecutive global states.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod outbox;
pub mod pool;
mod report;

pub use engine::{Engine, RoundOutcome, RoundView};
pub use outbox::Outbox;
pub use report::{FixpointReport, RoundStats, Trace};

use rechord_id::Ident;

/// A protocol executable on the synchronous engine.
///
/// `step` is the body of one round for one node: it may mutate the node's own
/// state freely (the paper's immediate `:=` assignments, which for Re-Chord
/// only ever touch the executing peer's own virtual siblings) and may read
/// any other node's **previous-round** state through the [`RoundView`]. All
/// cross-node effects must go through the [`Outbox`] (the delayed `<-`
/// assignments).
///
/// `deliver` applies one received message at the round boundary.
pub trait SyncProtocol: Sync {
    /// Per-node state. `Clone` is used for the round snapshot; `PartialEq`
    /// detects the fixpoint.
    type State: Clone + PartialEq + Send + Sync;
    /// A delayed assignment. `Ord` fixes the deterministic delivery order.
    type Msg: Clone + Ord + Send;

    /// One round of local computation for the node at `me`.
    fn step(
        &self,
        me: Ident,
        state: &mut Self::State,
        view: &RoundView<'_, Self::State>,
        out: &mut Outbox<Self::Msg>,
    );

    /// Applies one message to the target node's state (end of round).
    fn deliver(&self, me: Ident, state: &mut Self::State, msg: &Self::Msg);
}

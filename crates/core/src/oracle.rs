//! The oracle: what the stable Re-Chord topology *must* look like, computed
//! directly (non-distributedly) from the set of real identifiers.
//!
//! Used to (a) decide "almost stable" (Figure 6's early milestone: all
//! desired edges exist), (b) audit the reached fixpoint, and (c) state the
//! Chord edge set for the Fact 2.1 subgraph check.

use rechord_graph::{Edge, NodeRef, OverlayGraph};
use rechord_id::Ident;
use std::collections::BTreeMap;

/// The stable-state virtual level count `m` of each peer: the finger level
/// of its cyclic gap to the next real node (paper §2.2; DESIGN.md A1).
/// A single peer has `m = 1`.
pub fn stable_levels(real_ids: &[Ident]) -> BTreeMap<Ident, u8> {
    let mut sorted: Vec<Ident> = real_ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    let mut out = BTreeMap::new();
    for (k, &u) in sorted.iter().enumerate() {
        let m = if n == 1 {
            1
        } else {
            let succ = sorted[(k + 1) % n];
            Ident::finger_level_for_gap(u.dist_cw(succ))
        };
        out.insert(u, m);
    }
    out
}

/// Every node (real and virtual) of the stable network, ascending by ring
/// position.
pub fn stable_nodes(real_ids: &[Ident]) -> Vec<NodeRef> {
    let levels = stable_levels(real_ids);
    let mut nodes: Vec<NodeRef> = Vec::new();
    for (&u, &m) in &levels {
        for lvl in 0..=m {
            nodes.push(NodeRef { owner: u, level: lvl });
        }
    }
    nodes.sort_unstable();
    nodes
}

/// The **desired unmarked edges** of the stable state: every node points at
/// its closest left and right node and its closest left and right *real*
/// node, in the linear order on `[0,1)` (paper §2.2's stable-state
/// description). Extremal nodes lack the respective side.
pub fn desired_unmarked(real_ids: &[Ident]) -> OverlayGraph {
    let nodes = stable_nodes(real_ids);
    let mut g = OverlayGraph::new();
    for n in &nodes {
        g.add_node(*n);
    }
    for (k, &x) in nodes.iter().enumerate() {
        if k > 0 {
            g.add_edge(Edge::unmarked(x, nodes[k - 1]));
        }
        if k + 1 < nodes.len() {
            g.add_edge(Edge::unmarked(x, nodes[k + 1]));
        }
        if let Some(rl) = nodes[..k].iter().rev().find(|r| r.is_real()) {
            g.add_edge(Edge::unmarked(x, *rl));
        }
        if let Some(rr) = nodes[k + 1..].iter().find(|r| r.is_real()) {
            g.add_edge(Edge::unmarked(x, *rr));
        }
    }
    g
}

/// The persistent stable ring edges: the global minimum holds a marked edge
/// to the global maximum and vice versa (rule 5's fixpoint; the in-transit
/// re-creation stream is *extra*, not desired).
pub fn desired_ring_pair(real_ids: &[Ident]) -> Option<(Edge, Edge)> {
    let nodes = stable_nodes(real_ids);
    let (first, last) = (nodes.first()?, nodes.last()?);
    if first == last {
        return None;
    }
    Some((Edge::ring(*first, *last), Edge::ring(*last, *first)))
}

/// The role a Chord edge plays (§1.1 of the paper: "Chord has two kinds of
/// edges, successor-predecessor edges that form the Chord ring, as well as
/// fingers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChordEdgeKind {
    /// Clockwise ring edge to the cyclic successor.
    Successor,
    /// Counter-clockwise ring edge to the cyclic predecessor.
    Predecessor,
    /// Finger `p_i(v)` for the given level.
    Finger(u8),
}

/// One directed edge of the Chord graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChordEdge {
    /// Source peer.
    pub from: Ident,
    /// Target peer.
    pub to: Ident,
    /// Role of the edge.
    pub kind: ChordEdgeKind,
}

impl ChordEdge {
    /// Does the edge cross the `0/1` boundary in its natural direction?
    /// Successor and finger edges run clockwise (crossing iff `to < from`);
    /// predecessor edges run counter-clockwise (crossing iff `to > from`).
    pub fn crosses_wrap(&self) -> bool {
        match self.kind {
            ChordEdgeKind::Predecessor => self.to > self.from,
            _ => self.to < self.from,
        }
    }
}

/// The classic Chord edge set over the real identifiers (paper §1.1):
/// successor and predecessor edges forming the Chord ring, plus the fingers
/// `p_i(v) = argmin{ w : h(w) >= h(v) + 1/2^i (mod 1) }` for `i = 1..=m(v)`
/// (cyclic; a finger that resolves to `v` itself is skipped).
pub fn chord_edges(real_ids: &[Ident]) -> Vec<ChordEdge> {
    let mut sorted: Vec<Ident> = real_ids.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    if n < 2 {
        return Vec::new();
    }
    let levels = stable_levels(&sorted);
    let mut edges = Vec::new();
    for (k, &u) in sorted.iter().enumerate() {
        let succ = sorted[(k + 1) % n];
        let pred = sorted[(k + n - 1) % n];
        edges.push(ChordEdge { from: u, to: succ, kind: ChordEdgeKind::Successor });
        edges.push(ChordEdge { from: u, to: pred, kind: ChordEdgeKind::Predecessor });
        for i in 1..=levels[&u] {
            let target = u.virtual_position(i);
            let finger = cyclic_successor(&sorted, target);
            if finger != u {
                edges.push(ChordEdge { from: u, to: finger, kind: ChordEdgeKind::Finger(i) });
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// The first identifier at or clockwise-after `point` (cyclic successor).
pub fn cyclic_successor(sorted_ids: &[Ident], point: Ident) -> Ident {
    debug_assert!(!sorted_ids.is_empty());
    match sorted_ids.binary_search(&point) {
        Ok(i) => sorted_ids[i],
        Err(i) if i < sorted_ids.len() => sorted_ids[i],
        Err(_) => sorted_ids[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[f64]) -> Vec<Ident> {
        xs.iter().map(|&x| Ident::from_f64(x)).collect()
    }

    #[test]
    fn levels_match_finger_condition() {
        // peers at 0.0 and 0.5: both gaps exactly 1/2 → m = 1 for both.
        let l = stable_levels(&ids(&[0.0, 0.5]));
        assert_eq!(l[&Ident::from_f64(0.0)], 1);
        assert_eq!(l[&Ident::from_f64(0.5)], 1);
        // peers at 0.0 and 0.3: gap(0.0→0.3)=0.3 → m=2; gap(0.3→0.0)=0.7 → m=1.
        let l = stable_levels(&ids(&[0.0, 0.3]));
        assert_eq!(l[&Ident::from_f64(0.0)], 2);
        assert_eq!(l[&Ident::from_f64(0.3)], 1);
        // singleton
        let l = stable_levels(&ids(&[0.4]));
        assert_eq!(l[&Ident::from_f64(0.4)], 1);
    }

    #[test]
    fn stable_nodes_sorted_and_complete() {
        let nodes = stable_nodes(&ids(&[0.0, 0.3]));
        // 0.0 contributes levels 0,1,2 → positions 0.0, 0.5, 0.25
        // 0.3 contributes levels 0,1  → positions 0.3, 0.8
        assert_eq!(nodes.len(), 5);
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(nodes.iter().filter(|n| n.is_real()).count(), 2);
    }

    #[test]
    fn desired_unmarked_has_four_edge_classes_per_inner_node() {
        let g = desired_unmarked(&ids(&[0.0, 0.3, 0.6]));
        // every non-extremal node has pred+succ; every node left of a real
        // has an rr, etc. Spot-check an inner real node: 0.3.
        let x = NodeRef::real(Ident::from_f64(0.3));
        let adj = g.adjacency(&x).expect("node present");
        assert!(adj.unmarked.len() >= 2);
        // the extremes have no outer side
        let nodes = stable_nodes(&ids(&[0.0, 0.3, 0.6]));
        let first = nodes.first().unwrap();
        let adj_first = g.adjacency(first).unwrap();
        assert!(adj_first.unmarked.iter().all(|t| t > first), "nothing to the left");
    }

    #[test]
    fn ring_pair_connects_extremes() {
        let (lo, hi) = desired_ring_pair(&ids(&[0.1, 0.4, 0.9])).unwrap();
        assert!(lo.from < lo.to);
        assert_eq!(lo.from, hi.to);
        assert_eq!(lo.to, hi.from);
        assert!(desired_ring_pair(&[]).is_none());
    }

    #[test]
    fn chord_edges_contain_ring_and_fingers() {
        let v = ids(&[0.0, 0.3, 0.6]);
        let e = chord_edges(&v);
        let has = |from: Ident, to: Ident| e.iter().any(|ce| ce.from == from && ce.to == to);
        let (a, b, c) = (v[0], v[1], v[2]);
        // ring (succ + pred both directions)
        assert!(has(a, b) && has(b, c) && has(c, a));
        assert!(has(b, a) && has(c, b) && has(a, c));
        // finger of 0.0 at level 1: first real >= 0.5 → 0.6
        assert!(e
            .iter()
            .any(|ce| ce.from == a && ce.to == c && ce.kind == ChordEdgeKind::Finger(1)));
        // wrap classification: succ edge of the max (c → a) crosses; the
        // pred edge of the min (a → c) crosses counter-clockwise.
        assert!(e
            .iter()
            .find(|ce| ce.from == c && ce.to == a && ce.kind == ChordEdgeKind::Successor)
            .unwrap()
            .crosses_wrap());
        assert!(e
            .iter()
            .find(|ce| ce.from == a && ce.to == c && ce.kind == ChordEdgeKind::Predecessor)
            .unwrap()
            .crosses_wrap());
        assert!(!e
            .iter()
            .find(|ce| ce.from == a && ce.to == b && ce.kind == ChordEdgeKind::Successor)
            .unwrap()
            .crosses_wrap());
    }

    #[test]
    fn cyclic_successor_wraps() {
        let v = ids(&[0.2, 0.5, 0.8]);
        assert_eq!(cyclic_successor(&v, Ident::from_f64(0.6)), Ident::from_f64(0.8));
        assert_eq!(cyclic_successor(&v, Ident::from_f64(0.9)), Ident::from_f64(0.2));
        assert_eq!(cyclic_successor(&v, Ident::from_f64(0.5)), Ident::from_f64(0.5));
    }

    #[test]
    fn single_peer_has_no_chord_edges() {
        assert!(chord_edges(&ids(&[0.5])).is_empty());
    }
}

//! The delayed assignment (`A <- B`) message.
//!
//! Every cross-node command of the rules has the shape
//! `N_k(at) <- N_k(at) ∪ {edge}` for one of the three edge classes `k` —
//! insert an outgoing edge at some node. That single message shape is the
//! whole wire protocol; deletions are always local (a node only ever removes
//! its *own* outgoing edges).

use crate::PeerState;
use rechord_graph::{EdgeKind, NodeRef};

/// "Insert the outgoing `kind` edge `(at, edge)` into `at`'s neighborhood
/// at the start of the next round."
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Msg {
    /// The node whose neighborhood gains the edge. Routed to `at.owner`.
    pub at: NodeRef,
    /// Edge class.
    pub kind: EdgeKind,
    /// The edge target.
    pub edge: NodeRef,
}

impl Msg {
    /// Applies the insert to the receiving peer's state.
    ///
    /// If the addressed level no longer exists (rule 1 deleted it while the
    /// message was in flight), the insert lands on the peer's deepest level
    /// `u_m` — the same hand-over target rule 1 uses for a deleted node's
    /// neighborhood. Self-edges are discarded.
    pub fn apply(&self, me: rechord_id::Ident, state: &mut PeerState) {
        debug_assert_eq!(self.at.owner, me, "engine must route by owner");
        let level = if state.levels.contains_key(&self.at.level) {
            self.at.level
        } else {
            state.deepest_level()
        };
        let receiver = PeerState::node_ref(me, level);
        if self.edge == receiver {
            return; // never store a self-loop
        }
        if let Some(vs) = state.level_mut(level) {
            vs.of_mut(self.kind).insert(self.edge);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_id::Ident;

    #[test]
    fn insert_lands_on_addressed_level() {
        let me = Ident::from_f64(0.3);
        let mut st = PeerState::new();
        st.levels.insert(2, Default::default());
        let target = NodeRef::real(Ident::from_f64(0.9));
        Msg { at: PeerState::node_ref(me, 2), kind: EdgeKind::Unmarked, edge: target }
            .apply(me, &mut st);
        assert!(st.level(2).unwrap().nu.contains(&target));
        assert!(st.level(0).unwrap().nu.is_empty());
    }

    #[test]
    fn stale_level_reroutes_to_deepest() {
        let me = Ident::from_f64(0.3);
        let mut st = PeerState::new();
        st.levels.insert(4, Default::default());
        let target = NodeRef::real(Ident::from_f64(0.9));
        // level 9 was deleted; 4 is the deepest alive
        Msg { at: PeerState::node_ref(me, 9), kind: EdgeKind::Ring, edge: target }
            .apply(me, &mut st);
        assert!(st.level(4).unwrap().nr.contains(&target));
    }

    #[test]
    fn self_edge_discarded() {
        let me = Ident::from_f64(0.3);
        let mut st = PeerState::new();
        let self_ref = PeerState::node_ref(me, 0);
        Msg { at: self_ref, kind: EdgeKind::Unmarked, edge: self_ref }.apply(me, &mut st);
        assert!(st.level(0).unwrap().nu.is_empty());
    }

    #[test]
    fn message_ordering_is_total() {
        let a = Msg {
            at: NodeRef::real(Ident::from_raw(1)),
            kind: EdgeKind::Unmarked,
            edge: NodeRef::real(Ident::from_raw(2)),
        };
        let b = Msg {
            at: NodeRef::real(Ident::from_raw(1)),
            kind: EdgeKind::Ring,
            edge: NodeRef::real(Ident::from_raw(2)),
        };
        assert!(a < b || b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}

//! Observation of the proof's convergence phases (paper §3.1).
//!
//! The correctness proof splits self-stabilization into five phases, each
//! with its own completion predicate. They are *proof* phases — the real
//! execution interleaves them — but each predicate is monotone once the
//! previous ones hold, so observing the first round where each becomes true
//! gives an empirical phase timeline (the `phases` experiment binary):
//!
//! 1. **Connection** (Lemma 3.2): all nodes weakly connected by unmarked
//!    edges alone.
//! 2. **Linearization** (Lemma 3.6): consecutive nodes (in sorted order)
//!    are mutually connected by unmarked edges — the sorted list exists.
//! 3. **Ring** (Lemma 3.9): the extremal ring-edge pair closes the cycle.
//! 4. **Closest real neighbor** (Lemma 3.10): every node's `rl`/`rr` edges
//!    match the oracle.
//! 5. **Finish** (Lemma 3.11): no unnecessary (extra unmarked) edges
//!    remain.

use crate::oracle;
use rechord_graph::{connectivity, Edge, EdgeKind, NodeRef, OverlayGraph};
use rechord_id::Ident;

/// Which phase predicates currently hold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStatus {
    /// Phase 1: weak connectivity through unmarked edges only.
    pub connected_unmarked: bool,
    /// Phase 2: consecutive sorted nodes mutually linked by unmarked edges.
    pub linearized: bool,
    /// Phase 3: the extremal ring-edge pair exists.
    pub ring_closed: bool,
    /// Phase 4: all closest-real-neighbor edges of the oracle exist.
    pub real_neighbors: bool,
    /// Phase 5: no unmarked edges beyond the oracle's desired set.
    pub cleanup_done: bool,
}

impl PhaseStatus {
    /// Number of completed phases, counting prefix-wise (phase `k` counts
    /// only if phases `1..k` also hold, matching the proof's ordering).
    pub fn completed_prefix(&self) -> usize {
        let flags = [
            self.connected_unmarked,
            self.linearized,
            self.ring_closed,
            self.real_neighbors,
            self.cleanup_done,
        ];
        flags.iter().take_while(|&&f| f).count()
    }

    /// All five predicates hold.
    pub fn all(&self) -> bool {
        self.completed_prefix() == 5
    }
}

/// Evaluates all five phase predicates on a snapshot.
pub fn observe(snapshot: &OverlayGraph, real_ids: &[Ident]) -> PhaseStatus {
    let oracle_nodes = oracle::stable_nodes(real_ids);
    let desired = oracle::desired_unmarked(real_ids);

    // Phase 1: connectivity over unmarked edges only.
    let unmarked_only: OverlayGraph = {
        let mut g: OverlayGraph =
            snapshot.edges().filter(|e| e.kind == EdgeKind::Unmarked).collect();
        for n in snapshot.nodes() {
            g.add_node(*n);
        }
        g
    };
    let connected_unmarked = connectivity::weakly_connected(&unmarked_only);

    // Phase 2: Lemma 3.6's endpoint — consecutive (oracle) nodes mutually
    // connected by unmarked edges. Only meaningful once the oracle's node
    // set is simulated; missing nodes fail the predicate.
    let linearized = oracle_nodes.windows(2).all(|w| {
        let (a, b) = (w[0], w[1]);
        snapshot.has_edge(&Edge::unmarked(a, b)) && snapshot.has_edge(&Edge::unmarked(b, a))
    });

    // Phase 3: the persistent extremal ring pair.
    let ring_closed = oracle::desired_ring_pair(real_ids)
        .map(|(x, y)| snapshot.has_edge(&x) && snapshot.has_edge(&y))
        .unwrap_or(true);

    // Phase 4: every desired closest-real edge exists. The rl/rr edges are
    // exactly the desired edges whose target is real and which are not the
    // pred/succ edge; checking the full desired set's real-target edges is
    // equivalent and avoids reaching into peer state.
    let real_neighbors = desired.edges().filter(|e| e.to.is_real()).all(|e| snapshot.has_edge(&e));

    // Phase 5: no unnecessary unmarked edges.
    let cleanup_done =
        snapshot.edges().filter(|e| e.kind == EdgeKind::Unmarked).all(|e| desired.has_edge(&e));

    PhaseStatus { connected_unmarked, linearized, ring_closed, real_neighbors, cleanup_done }
}

/// The first round (1-based) at which each phase predicate held, observed
/// over a run. `None` means the phase was never observed within the budget.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimeline {
    /// First round each of the five predicates held.
    pub first_true: [Option<u64>; 5],
    /// Round at which the run reached the fixpoint, if it did.
    pub stable_round: Option<u64>,
}

impl PhaseTimeline {
    /// Records the status after `round`.
    pub fn record(&mut self, round: u64, status: PhaseStatus) {
        let flags = [
            status.connected_unmarked,
            status.linearized,
            status.ring_closed,
            status.real_neighbors,
            status.cleanup_done,
        ];
        for (slot, flag) in self.first_true.iter_mut().zip(flags) {
            if slot.is_none() && flag {
                *slot = Some(round);
            }
        }
    }
}

/// Runs a network to its fixpoint while recording the phase timeline.
pub fn run_with_timeline(
    net: &mut crate::network::ReChordNetwork,
    max_rounds: u64,
) -> PhaseTimeline {
    let ids = net.real_ids();
    let mut timeline = PhaseTimeline::default();
    for round in 1..=max_rounds {
        let out = net.round();
        timeline.record(round, observe(&net.snapshot(), &ids));
        if !out.changed {
            timeline.stable_round = Some(round);
            break;
        }
    }
    timeline
}

/// A node-ref helper used by tests.
pub fn real_ref(id: Ident) -> NodeRef {
    NodeRef::real(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReChordNetwork;
    use rechord_topology::TopologyKind;

    #[test]
    fn oracle_state_satisfies_all_phases() {
        let topo = TopologyKind::Random.generate(10, 3);
        let mut snapshot = oracle::desired_unmarked(&topo.ids);
        if let Some((a, b)) = oracle::desired_ring_pair(&topo.ids) {
            snapshot.add_edge(a);
            snapshot.add_edge(b);
        }
        let status = observe(&snapshot, &topo.ids);
        assert!(status.all(), "{status:?}");
        assert_eq!(status.completed_prefix(), 5);
    }

    #[test]
    fn initial_random_state_fails_later_phases() {
        let topo = TopologyKind::Random.generate(10, 3);
        let net = ReChordNetwork::from_topology(&topo, 1);
        let status = observe(&net.snapshot(), &topo.ids);
        assert!(!status.linearized);
        assert!(!status.real_neighbors);
    }

    #[test]
    fn timeline_is_monotone_and_complete_on_convergence() {
        let topo = TopologyKind::Random.generate(12, 9);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let tl = run_with_timeline(&mut net, 50_000);
        let stable = tl.stable_round.expect("must converge");
        for (k, ft) in tl.first_true.iter().enumerate() {
            let r = ft.unwrap_or_else(|| panic!("phase {} never held", k + 1));
            assert!(r <= stable, "phase {} after stabilization", k + 1);
        }
        // prefix ordering: each phase's first-true is not before phase 1's
        assert!(
            tl.first_true[0].unwrap() <= tl.first_true[1].unwrap().max(tl.first_true[0].unwrap())
        );
    }

    #[test]
    fn completed_prefix_requires_earlier_phases() {
        let s = PhaseStatus {
            connected_unmarked: false,
            linearized: true,
            ring_closed: true,
            real_neighbors: true,
            cleanup_done: true,
        };
        assert_eq!(s.completed_prefix(), 0, "phase 1 gates everything");
    }
}

//! Per-peer protocol state: the neighborhoods of every simulated node.

use rechord_graph::{EdgeKind, NodeRef};
use rechord_id::{Ident, MAX_LEVEL};
use std::collections::{BTreeMap, BTreeSet};

/// State of one (real or virtual) node: its outgoing neighborhoods and the
/// closest-real-neighbor registers of rule 3.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VirtualState {
    /// Unmarked out-neighbors `N_u(u_i)`.
    pub nu: BTreeSet<NodeRef>,
    /// Ring out-neighbors `N_r(u_i)`.
    pub nr: BTreeSet<NodeRef>,
    /// Connection out-neighbors `N_c(u_i)`.
    pub nc: BTreeSet<NodeRef>,
    /// `rl(u_i)`: closest known real node left of `u_i` (rule 3).
    pub rl: Option<NodeRef>,
    /// `rr(u_i)`: closest known real node right of `u_i` (rule 3).
    pub rr: Option<NodeRef>,
}

impl VirtualState {
    /// The neighborhood set of one edge class.
    pub fn of(&self, kind: EdgeKind) -> &BTreeSet<NodeRef> {
        match kind {
            EdgeKind::Unmarked => &self.nu,
            EdgeKind::Ring => &self.nr,
            EdgeKind::Connection => &self.nc,
        }
    }

    /// Mutable neighborhood set of one edge class.
    pub fn of_mut(&mut self, kind: EdgeKind) -> &mut BTreeSet<NodeRef> {
        match kind {
            EdgeKind::Unmarked => &mut self.nu,
            EdgeKind::Ring => &mut self.nr,
            EdgeKind::Connection => &mut self.nc,
        }
    }

    /// All outgoing targets across the three classes.
    pub fn all_targets(&self) -> impl Iterator<Item = &NodeRef> {
        self.nu.iter().chain(self.nr.iter()).chain(self.nc.iter())
    }
}

/// Protocol state of one peer: one [`VirtualState`] per simulated level.
///
/// Level `0` is the real node `u_0 = u` and always exists; levels `1..=m`
/// are the virtual nodes currently alive (rule 1 adjusts the set each
/// round). The engine's fixpoint check compares `PeerState`s structurally,
/// so every container here is ordered/deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerState {
    /// Per-level node state, keyed by virtual level (`0` = real node).
    pub levels: BTreeMap<u8, VirtualState>,
}

impl Default for PeerState {
    fn default() -> Self {
        Self::new()
    }
}

impl PeerState {
    /// A fresh peer that knows nobody (level 0 only, empty neighborhoods).
    pub fn new() -> Self {
        let mut levels = BTreeMap::new();
        levels.insert(0u8, VirtualState::default());
        PeerState { levels }
    }

    /// A fresh peer whose real node initially knows `contacts` — how an
    /// initial topology or a joining peer (§4.1: "it is connected to an
    /// arbitrary real node of the network") is seeded.
    pub fn with_contacts(contacts: impl IntoIterator<Item = NodeRef>) -> Self {
        let mut st = Self::new();
        st.levels.get_mut(&0).expect("level 0").nu.extend(contacts);
        st
    }

    /// The [`NodeRef`] of this peer's node at `level`.
    #[inline]
    pub fn node_ref(owner: Ident, level: u8) -> NodeRef {
        NodeRef { owner, level }
    }

    /// `S(u)`: the sibling node references currently simulated, ascending by
    /// ring position (note: *not* by level — levels wrap around the ring).
    pub fn siblings(&self, owner: Ident) -> Vec<NodeRef> {
        let mut refs: Vec<NodeRef> =
            self.levels.keys().map(|&lvl| Self::node_ref(owner, lvl)).collect();
        refs.sort_unstable();
        refs
    }

    /// `N(u) = S(u) ∪ ⋃_j N_u(u_j)`: the peer's known neighborhood through
    /// unmarked edges (paper §2.2). Identical for every sibling, so it is
    /// computed once per peer per round.
    pub fn known(&self, owner: Ident) -> BTreeSet<NodeRef> {
        let mut known: BTreeSet<NodeRef> =
            self.levels.keys().map(|&lvl| Self::node_ref(owner, lvl)).collect();
        for vs in self.levels.values() {
            known.extend(vs.nu.iter().copied());
        }
        known
    }

    /// The clockwise gap from `owner` to the nearest known real node other
    /// than itself, over **all** outgoing edges (`N_u ∪ N_r ∪ N_c` of every
    /// level). `None` when no other real node is known.
    pub fn closest_real_gap(&self, owner: Ident) -> Option<u64> {
        let mut best: Option<u64> = None;
        for vs in self.levels.values() {
            for t in vs.all_targets() {
                if t.is_real() && t.owner != owner {
                    let d = owner.dist_cw(t.pos());
                    best = Some(best.map_or(d, |b| b.min(d)));
                }
            }
        }
        best
    }

    /// The paper's `m`: the level of the virtual node with the smallest
    /// distance to `u` such that no known real node lies strictly inside
    /// `(u, u + 1/2^m)` — equivalently the Chord finger condition
    /// `1/2^m <= gap < 1/2^(m-1)` (DESIGN.md A1). A peer that knows no other
    /// real node has `m = 1`.
    pub fn compute_m(&self, owner: Ident) -> u8 {
        match self.closest_real_gap(owner) {
            Some(gap) => Ident::finger_level_for_gap(gap),
            None => 1,
        }
    }

    /// Removes degenerate references an adversarial initial state may
    /// contain: self-edges (a node listed in its own neighborhood) and
    /// out-of-range levels. Run at the top of every step (self-stabilization
    /// must tolerate arbitrary initial garbage).
    pub fn sanitize(&mut self, owner: Ident) {
        for (&lvl, vs) in self.levels.iter_mut() {
            let me = Self::node_ref(owner, lvl);
            for kind in EdgeKind::ALL {
                let set = vs.of_mut(kind);
                set.remove(&me);
                set.retain(|r| r.level <= MAX_LEVEL);
            }
            if vs.rl == Some(me) {
                vs.rl = None;
            }
            if vs.rr == Some(me) {
                vs.rr = None;
            }
        }
    }

    /// The state of the node at `level`, if simulated.
    pub fn level(&self, level: u8) -> Option<&VirtualState> {
        self.levels.get(&level)
    }

    /// Mutable state of the node at `level`, if simulated.
    pub fn level_mut(&mut self, level: u8) -> Option<&mut VirtualState> {
        self.levels.get_mut(&level)
    }

    /// The deepest currently simulated level (`u_m`; `0` for a bare peer).
    pub fn deepest_level(&self) -> u8 {
        self.levels.keys().next_back().copied().unwrap_or(0)
    }

    /// Drops every reference to the peer `dead` from all neighborhoods —
    /// models §4.2's crash semantics where "the node, as well as its
    /// connections, fail".
    pub fn purge_peer(&mut self, dead: Ident) {
        for vs in self.levels.values_mut() {
            vs.nu.retain(|r| r.owner != dead);
            vs.nr.retain(|r| r.owner != dead);
            vs.nc.retain(|r| r.owner != dead);
            if vs.rl.is_some_and(|r| r.owner == dead) {
                vs.rl = None;
            }
            if vs.rr.is_some_and(|r| r.owner == dead) {
                vs.rr = None;
            }
        }
    }

    /// Total number of stored edges (all levels, all classes).
    pub fn edge_count(&self) -> usize {
        self.levels.values().map(|v| v.nu.len() + v.nr.len() + v.nc.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(x: f64) -> Ident {
        Ident::from_f64(x)
    }

    #[test]
    fn new_peer_has_level_zero_only() {
        let st = PeerState::new();
        assert_eq!(st.levels.len(), 1);
        assert!(st.level(0).is_some());
        assert_eq!(st.deepest_level(), 0);
        assert_eq!(st.edge_count(), 0);
    }

    #[test]
    fn compute_m_matches_finger_condition() {
        let u = ident(0.2);
        let mut st = PeerState::new();
        // Knows a real node 0.3 clockwise away (gap ~ 0.1):
        // 1/2^4 = 0.0625 <= 0.1 < 0.125 = 1/2^3  =>  m = 4.
        st.levels.get_mut(&0).unwrap().nu.insert(NodeRef::real(ident(0.3)));
        assert_eq!(st.compute_m(u), 4);
        // A closer real node deepens m.
        st.levels.get_mut(&0).unwrap().nu.insert(NodeRef::real(ident(0.2 + 0.01)));
        assert_eq!(st.compute_m(u), Ident::finger_level_for_gap(u.dist_cw(ident(0.21))));
        // Lone peer: m = 1.
        assert_eq!(PeerState::new().compute_m(u), 1);
    }

    #[test]
    fn gap_considers_all_edge_classes_and_wraps() {
        let u = ident(0.9);
        let mut st = PeerState::new();
        st.levels.get_mut(&0).unwrap().nr.insert(NodeRef::real(ident(0.1)));
        // clockwise 0.9 -> 0.1 wraps: gap 0.2
        let gap = st.closest_real_gap(u).unwrap();
        assert_eq!(gap, u.dist_cw(ident(0.1)));
        // virtual targets are ignored
        let mut st2 = PeerState::new();
        st2.levels.get_mut(&0).unwrap().nu.insert(NodeRef::virtual_node(ident(0.95), 2));
        assert_eq!(st2.closest_real_gap(u), None);
    }

    #[test]
    fn known_unions_all_levels_and_siblings() {
        let u = ident(0.1);
        let mut st = PeerState::new();
        st.levels.insert(3, VirtualState::default());
        let a = NodeRef::real(ident(0.5));
        let b = NodeRef::real(ident(0.7));
        st.levels.get_mut(&0).unwrap().nu.insert(a);
        st.levels.get_mut(&3).unwrap().nu.insert(b);
        let known = st.known(u);
        assert!(known.contains(&a) && known.contains(&b));
        assert!(known.contains(&PeerState::node_ref(u, 0)));
        assert!(known.contains(&PeerState::node_ref(u, 3)));
        assert_eq!(known.len(), 4);
    }

    #[test]
    fn siblings_sorted_by_position_not_level() {
        // owner at 0.6: u1 = 0.1 (wraps), u2 = 0.85; position order is
        // u1 < u0 < u2 even though levels are 0 < 1 < 2.
        let u = ident(0.6);
        let mut st = PeerState::new();
        st.levels.insert(1, VirtualState::default());
        st.levels.insert(2, VirtualState::default());
        let sib = st.siblings(u);
        assert_eq!(sib.len(), 3);
        assert!(sib[0].pos() <= sib[1].pos() && sib[1].pos() <= sib[2].pos());
        assert_eq!(sib[0].level, 1);
        assert_eq!(sib[1].level, 0);
        assert_eq!(sib[2].level, 2);
    }

    #[test]
    fn sanitize_removes_self_references() {
        let u = ident(0.4);
        let mut st = PeerState::new();
        let me = PeerState::node_ref(u, 0);
        st.levels.get_mut(&0).unwrap().nu.insert(me);
        st.levels.get_mut(&0).unwrap().rl = Some(me);
        st.sanitize(u);
        assert!(st.level(0).unwrap().nu.is_empty());
        assert_eq!(st.level(0).unwrap().rl, None);
    }

    #[test]
    fn purge_peer_clears_all_traces() {
        let u = ident(0.4);
        let dead = ident(0.8);
        let mut st = PeerState::with_contacts([NodeRef::real(dead), NodeRef::real(ident(0.5))]);
        st.levels.get_mut(&0).unwrap().nc.insert(NodeRef::virtual_node(dead, 2));
        st.levels.get_mut(&0).unwrap().rr = Some(NodeRef::real(dead));
        st.purge_peer(dead);
        let vs = st.level(0).unwrap();
        assert_eq!(vs.nu.len(), 1);
        assert!(vs.nc.is_empty());
        assert_eq!(vs.rr, None);
        let _ = u;
    }
}

//! The Re-Chord network projection (paper §2.2):
//!
//! `E_ReChord = { (u, v) ∈ V_r² : ∃i, (u_i, v) ∈ E_u ∪ E_r }`
//!
//! — the overlay actually visible to applications: an edge between real
//! peers `u` and `v` whenever any node simulated by `u` holds an unmarked or
//! ring edge to `v`'s real node. Connection edges never participate
//! ("they do not participate in the routing").

use rechord_graph::{EdgeKind, OverlayGraph};
use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// The projected peer-level overlay: adjacency over real identifiers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Projection {
    adj: BTreeMap<Ident, BTreeSet<Ident>>,
}

impl Projection {
    /// Projects an overlay snapshot onto its real peers.
    pub fn from_overlay(g: &OverlayGraph) -> Self {
        let mut adj: BTreeMap<Ident, BTreeSet<Ident>> = BTreeMap::new();
        for n in g.nodes() {
            adj.entry(n.owner).or_default();
        }
        for e in g.edges() {
            if e.kind == EdgeKind::Connection || !e.to.is_real() {
                continue;
            }
            if e.from.owner == e.to.owner {
                continue; // (u, u) is not an overlay edge
            }
            adj.entry(e.from.owner).or_default().insert(e.to.owner);
        }
        Self { adj }
    }

    /// Out-neighbors of peer `u`.
    pub fn neighbors(&self, u: Ident) -> Option<&BTreeSet<Ident>> {
        self.adj.get(&u)
    }

    /// Does the directed projected edge `(u, v)` exist?
    pub fn has_edge(&self, u: Ident, v: Ident) -> bool {
        self.adj.get(&u).is_some_and(|s| s.contains(&v))
    }

    /// All peers.
    pub fn peers(&self) -> impl Iterator<Item = Ident> + '_ {
        self.adj.keys().copied()
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed projected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum()
    }

    /// Largest out-degree (paper: each real node contributes at most 4
    /// unmarked out-edges per simulated node, so projected degree is
    /// `O(log n)` w.h.p.).
    pub fn max_out_degree(&self) -> usize {
        self.adj.values().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Is the projected overlay strongly connected? (Every peer can route to
    /// every other peer.) Checked with a forward and a reverse reachability
    /// pass from an arbitrary root.
    pub fn strongly_connected(&self) -> bool {
        let n = self.adj.len();
        if n <= 1 {
            return true;
        }
        let root = *self.adj.keys().next().expect("nonempty");
        let fwd = self.reach(root, false);
        if fwd.len() != n {
            return false;
        }
        self.reach(root, true).len() == n
    }

    fn reach(&self, root: Ident, reversed: bool) -> BTreeSet<Ident> {
        let mut rev: BTreeMap<Ident, BTreeSet<Ident>> = BTreeMap::new();
        if reversed {
            for (&u, outs) in &self.adj {
                for &v in outs {
                    rev.entry(v).or_default().insert(u);
                }
            }
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        seen.insert(root);
        while let Some(u) = stack.pop() {
            let empty = BTreeSet::new();
            let outs: &BTreeSet<Ident> = if reversed {
                rev.get(&u).unwrap_or(&empty)
            } else {
                self.adj.get(&u).unwrap_or(&empty)
            };
            for &v in outs {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }
}

/// How much of the Chord edge set the projection realizes (Fact 2.1 audit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChordCoverage {
    /// Total Chord edges (ring + fingers over the real id set).
    pub total: usize,
    /// Chord edges present in the projection.
    pub present: usize,
    /// Missing Chord edges that do *not* cross the `[0,1)` wrap-around
    /// (the theory guarantees these; must be empty in a stable state).
    pub missing_linear: Vec<(Ident, Ident)>,
    /// Missing Chord edges whose realizing virtual node sits in the final
    /// segment of the ring (wrap-around fingers/successors). The paper's
    /// emulation closes these through the ring-edge chain; see DESIGN.md.
    pub missing_wrap: Vec<(Ident, Ident)>,
}

impl ChordCoverage {
    /// Fraction of Chord edges directly present.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.present as f64 / self.total as f64
        }
    }
}

/// Audits Fact 2.1 against a projection: which Chord edges are realized?
///
/// A missing edge is classified as *wrap* when it crosses the `0/1`
/// boundary in its natural direction (see
/// [`crate::oracle::ChordEdge::crosses_wrap`]) — those are the edges the
/// paper's emulation closes through the ring-edge chain rather than through
/// a direct unmarked edge (DESIGN.md).
pub fn chord_coverage(projection: &Projection, real_ids: &[Ident]) -> ChordCoverage {
    let chord = crate::oracle::chord_edges(real_ids);
    let mut cov = ChordCoverage {
        total: chord.len(),
        present: 0,
        missing_linear: Vec::new(),
        missing_wrap: Vec::new(),
    };
    for e in chord {
        if projection.has_edge(e.from, e.to) {
            cov.present += 1;
        } else if e.crosses_wrap() {
            cov.missing_wrap.push((e.from, e.to));
        } else {
            cov.missing_linear.push((e.from, e.to));
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_graph::{Edge, NodeRef};

    fn r(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    fn v(x: f64, lvl: u8) -> NodeRef {
        NodeRef::virtual_node(Ident::from_f64(x), lvl)
    }

    #[test]
    fn virtual_source_projects_to_owner() {
        let g: OverlayGraph = [Edge::unmarked(v(0.1, 2), r(0.7))].into_iter().collect();
        let p = Projection::from_overlay(&g);
        assert!(p.has_edge(Ident::from_f64(0.1), Ident::from_f64(0.7)));
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    fn virtual_targets_and_connection_edges_excluded() {
        let g: OverlayGraph = [Edge::unmarked(r(0.1), v(0.7, 1)), Edge::connection(r(0.1), r(0.7))]
            .into_iter()
            .collect();
        let p = Projection::from_overlay(&g);
        assert_eq!(p.edge_count(), 0, "neither edge projects");
    }

    #[test]
    fn ring_edges_project() {
        let g: OverlayGraph = [Edge::ring(v(0.9, 1), r(0.05))].into_iter().collect();
        let p = Projection::from_overlay(&g);
        assert!(p.has_edge(Ident::from_f64(0.9), Ident::from_f64(0.05)));
    }

    #[test]
    fn own_peer_edges_collapse() {
        let g: OverlayGraph = [Edge::unmarked(v(0.2, 1), r(0.2))].into_iter().collect();
        let p = Projection::from_overlay(&g);
        assert_eq!(p.edge_count(), 0, "(u,u) is not an overlay edge");
    }

    #[test]
    fn strong_connectivity_detection() {
        let cycle: OverlayGraph = [
            Edge::unmarked(r(0.1), r(0.5)),
            Edge::unmarked(r(0.5), r(0.9)),
            Edge::unmarked(r(0.9), r(0.1)),
        ]
        .into_iter()
        .collect();
        assert!(Projection::from_overlay(&cycle).strongly_connected());
        let path: OverlayGraph =
            [Edge::unmarked(r(0.1), r(0.5)), Edge::unmarked(r(0.5), r(0.9))].into_iter().collect();
        assert!(!Projection::from_overlay(&path).strongly_connected());
    }

    #[test]
    fn coverage_classifies_missing_edges() {
        let ids = vec![Ident::from_f64(0.1), Ident::from_f64(0.6)];
        // Projection with only the forward (0.1 → 0.6) edge.
        let g: OverlayGraph = [Edge::unmarked(r(0.1), r(0.6))].into_iter().collect();
        let p = Projection::from_overlay(&g);
        let cov = chord_coverage(&p, &ids);
        assert!(cov.present >= 1);
        assert_eq!(cov.present + cov.missing_wrap.len() + cov.missing_linear.len(), cov.total);
    }
}

//! Stability criteria and the stable-state audit.
//!
//! * **Stable** (the paper's legal state): the global protocol state is a
//!   fixpoint — detected by the engine as "round changed nothing".
//! * **Almost stable** (Figure 6's earlier milestone): "all the desired
//!   edges of the Re-Chord network exist, but also some extra edges exist"
//!   — checked against the oracle's desired unmarked edge set.

use crate::oracle;
use crate::projection::{chord_coverage, ChordCoverage, Projection};
use rechord_graph::{connectivity, Edge, EdgeKind, OverlayGraph};
use rechord_id::Ident;

/// Is the snapshot *almost stable*: does it contain every desired unmarked
/// edge of the oracle topology for `real_ids`?
pub fn is_almost_stable(snapshot: &OverlayGraph, real_ids: &[Ident]) -> bool {
    oracle::desired_unmarked(real_ids).edges_subset_of(snapshot)
}

/// Full audit of a (purportedly stable) snapshot against the oracle.
#[derive(Clone, Debug)]
pub struct StableStateAudit {
    /// Desired unmarked edges that are missing (must be empty when stable).
    pub missing_unmarked: Vec<Edge>,
    /// Unmarked edges beyond the desired set (the paper's fixpoint carries
    /// none — extras live only in `E_r`/`E_c` streams).
    pub extra_unmarked: Vec<Edge>,
    /// Are both persistent extremal ring edges present?
    pub ring_pair_present: bool,
    /// Is the whole node graph weakly connected?
    pub weakly_connected: bool,
    /// Is the projected peer overlay strongly connected (every peer can
    /// route to every peer)?
    pub projection_strongly_connected: bool,
    /// Fact 2.1 audit: Chord edge coverage in the projection.
    pub chord: ChordCoverage,
    /// Does the set of simulated virtual nodes match the oracle's?
    pub virtual_set_matches: bool,
}

impl StableStateAudit {
    /// The reproduction's acceptance predicate for a stable state: all
    /// desired structure present, no spurious unmarked edges, connectivity
    /// intact, and every non-wrap Chord edge realized (wrap edges are closed
    /// through the ring-edge chain; see DESIGN.md).
    pub fn is_clean(&self) -> bool {
        self.missing_unmarked.is_empty()
            && self.extra_unmarked.is_empty()
            && self.ring_pair_present
            && self.weakly_connected
            && self.projection_strongly_connected
            && self.chord.missing_linear.is_empty()
            && self.virtual_set_matches
    }
}

/// Audits `snapshot` (typically a reached fixpoint) against the oracle
/// topology for `real_ids`.
pub fn audit(snapshot: &OverlayGraph, real_ids: &[Ident]) -> StableStateAudit {
    let desired = oracle::desired_unmarked(real_ids);
    let missing_unmarked: Vec<Edge> = desired.edges().filter(|e| !snapshot.has_edge(e)).collect();
    let extra_unmarked: Vec<Edge> =
        snapshot.edges().filter(|e| e.kind == EdgeKind::Unmarked && !desired.has_edge(e)).collect();

    let ring_pair_present = oracle::desired_ring_pair(real_ids)
        .map(|(a, b)| snapshot.has_edge(&a) && snapshot.has_edge(&b))
        .unwrap_or(true);

    let projection = Projection::from_overlay(snapshot);
    let chord = chord_coverage(&projection, real_ids);

    let oracle_nodes = oracle::stable_nodes(real_ids);
    let virtual_set_matches = {
        let snapshot_virtuals: Vec<_> =
            snapshot.nodes().filter(|n| n.is_virtual()).copied().collect();
        let oracle_virtuals: Vec<_> =
            oracle_nodes.iter().filter(|n| n.is_virtual()).copied().collect();
        // The snapshot may contain *referenced* phantom nodes (targets of
        // in-flight edges); require the oracle set to be simulated, i.e.
        // a subset match in the forward direction.
        oracle_virtuals.iter().all(|v| snapshot.contains_node(v))
            && snapshot_virtuals.len() >= oracle_virtuals.len()
    };

    StableStateAudit {
        missing_unmarked,
        extra_unmarked,
        ring_pair_present,
        weakly_connected: connectivity::weakly_connected(snapshot),
        projection_strongly_connected: projection.strongly_connected(),
        chord,
        virtual_set_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_graph::NodeRef;

    fn ids(xs: &[f64]) -> Vec<Ident> {
        xs.iter().map(|&x| Ident::from_f64(x)).collect()
    }

    #[test]
    fn oracle_topology_is_almost_stable_for_itself() {
        let ids = ids(&[0.1, 0.4, 0.8]);
        let snapshot = oracle::desired_unmarked(&ids);
        assert!(is_almost_stable(&snapshot, &ids));
    }

    #[test]
    fn missing_edge_breaks_almost_stability() {
        let ids = ids(&[0.1, 0.4, 0.8]);
        let mut snapshot = oracle::desired_unmarked(&ids);
        let victim = snapshot.edges().next().unwrap();
        snapshot.remove_edge(&victim);
        assert!(!is_almost_stable(&snapshot, &ids));
    }

    #[test]
    fn extra_edges_do_not_break_almost_stability() {
        let ids = ids(&[0.1, 0.4, 0.8]);
        let mut snapshot = oracle::desired_unmarked(&ids);
        snapshot.add_edge(Edge::unmarked(
            NodeRef::real(Ident::from_f64(0.1)),
            NodeRef::real(Ident::from_f64(0.8)),
        ));
        assert!(is_almost_stable(&snapshot, &ids), "supersets still qualify");
    }

    #[test]
    fn audit_flags_extras_and_missing() {
        let ids = ids(&[0.1, 0.4, 0.8]);
        let mut snapshot = oracle::desired_unmarked(&ids);
        let extra = Edge::unmarked(
            NodeRef::real(Ident::from_f64(0.1)),
            NodeRef::real(Ident::from_f64(0.8)),
        );
        snapshot.add_edge(extra);
        let report = audit(&snapshot, &ids);
        assert_eq!(report.extra_unmarked, vec![extra]);
        assert!(report.missing_unmarked.is_empty());
        assert!(!report.ring_pair_present, "oracle-unmarked lacks ring edges");
        assert!(!report.is_clean());
    }

    #[test]
    fn audit_accepts_fully_desired_state() {
        let ids = ids(&[0.1, 0.6]);
        let mut snapshot = oracle::desired_unmarked(&ids);
        if let Some((a, b)) = oracle::desired_ring_pair(&ids) {
            snapshot.add_edge(a);
            snapshot.add_edge(b);
        }
        let report = audit(&snapshot, &ids);
        assert!(report.missing_unmarked.is_empty());
        assert!(report.extra_unmarked.is_empty());
        assert!(report.ring_pair_present);
        assert!(report.weakly_connected);
        assert!(report.virtual_set_matches);
    }
}

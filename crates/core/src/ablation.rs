//! Rule ablation: which of the six rules are load-bearing?
//!
//! The paper motivates each rule informally (§2.3) and uses all of them in
//! the convergence proof. The ablation harness switches individual rules
//! off and measures what breaks — the experiment behind the design-choice
//! discussion in DESIGN.md and the `ablation` binary:
//!
//! * without **linearization** (rule 4) the sorted order never forms;
//! * without **ring edges** (rule 5) the wrap-around never closes and the
//!   extremal nodes never learn each other;
//! * without **connection edges** (rule 6) the virtual-node graph can fall
//!   apart into per-peer islands after rule 1 rebuilds levels;
//! * without **closest-real** (rule 3) `m` can never grow beyond the
//!   initial knowledge and the finger structure is wrong;
//! * without **overlap** (rule 2) edges park at the wrong sibling and the
//!   Chord-finger realization breaks.
//!
//! Rule 1 (virtual nodes) cannot be ablated: without it there is no node
//! set to maintain.

use crate::state::PeerState;

/// Which rules run. Rule 1 is always on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleMask {
    /// Rule 2 — overlapping neighborhood.
    pub overlap: bool,
    /// Rule 3 — closest real neighbor.
    pub closest_real: bool,
    /// Rule 4 — linearization.
    pub linearize: bool,
    /// Rule 5 — ring edges.
    pub ring: bool,
    /// Rule 6 — connection edges.
    pub connection: bool,
}

impl Default for RuleMask {
    fn default() -> Self {
        Self::ALL
    }
}

impl RuleMask {
    /// The full protocol.
    pub const ALL: RuleMask = RuleMask {
        overlap: true,
        closest_real: true,
        linearize: true,
        ring: true,
        connection: true,
    };

    /// The full protocol minus one named rule (2–6).
    pub fn without(rule: u8) -> RuleMask {
        let mut m = RuleMask::ALL;
        match rule {
            2 => m.overlap = false,
            3 => m.closest_real = false,
            4 => m.linearize = false,
            5 => m.ring = false,
            6 => m.connection = false,
            _ => panic!("only rules 2..=6 can be ablated"),
        }
        m
    }

    /// Human-readable label of the ablated rule set.
    pub fn label(&self) -> String {
        if *self == RuleMask::ALL {
            return "full".to_string();
        }
        let mut off = Vec::new();
        if !self.overlap {
            off.push("overlap(2)");
        }
        if !self.closest_real {
            off.push("closest-real(3)");
        }
        if !self.linearize {
            off.push("linearize(4)");
        }
        if !self.ring {
            off.push("ring(5)");
        }
        if !self.connection {
            off.push("connection(6)");
        }
        format!("-{}", off.join(",-"))
    }
}

/// Outcome of one ablated run (see the `ablation` binary).
#[derive(Clone, Debug)]
pub struct AblationOutcome {
    /// The rule set used.
    pub mask: RuleMask,
    /// Did the run reach a fixpoint within budget?
    pub converged: bool,
    /// Rounds executed.
    pub rounds: u64,
    /// Desired unmarked edges missing at the end.
    pub missing_desired: usize,
    /// Was the final projection strongly connected (routable overlay)?
    pub overlay_connected: bool,
    /// Did the extremal ring-edge pair close the wrap-around? (Rule 5's
    /// deliverable; without it, lookups that cross the 0/1 boundary cannot
    /// make greedy progress.)
    pub ring_pair_present: bool,
}

/// Runs the ablated protocol on a random weakly connected instance,
/// returning the outcome and the final network (for deeper probes, e.g.
/// wrap-routing checks in the `ablation` binary).
pub fn run_ablated(
    mask: RuleMask,
    n: usize,
    seed: u64,
    max_rounds: u64,
) -> (AblationOutcome, crate::network::ReChordNetwork) {
    use crate::network::ReChordNetwork;
    let topo = rechord_topology::TopologyKind::Random.generate(n, seed);
    let mut net = ReChordNetwork::from_topology_with_mask(&topo, 1, mask);
    let report = net.run_until_stable(max_rounds);
    let audit = net.audit();
    let outcome = AblationOutcome {
        mask,
        converged: report.converged,
        rounds: report.rounds,
        missing_desired: audit.missing_unmarked.len(),
        overlay_connected: audit.projection_strongly_connected,
        ring_pair_present: audit.ring_pair_present,
    };
    (outcome, net)
}

/// Reusable default-state helper for tests.
pub fn fresh_peer() -> PeerState {
    PeerState::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(RuleMask::ALL.label(), "full");
        assert_eq!(RuleMask::without(4).label(), "-linearize(4)");
        let mut m = RuleMask::ALL;
        m.ring = false;
        m.connection = false;
        assert_eq!(m.label(), "-ring(5),-connection(6)");
    }

    #[test]
    #[should_panic(expected = "only rules 2..=6")]
    fn rule_one_cannot_be_ablated() {
        let _ = RuleMask::without(1);
    }

    #[test]
    fn full_mask_converges_cleanly() {
        let (out, _) = run_ablated(RuleMask::ALL, 10, 3, 50_000);
        assert!(out.converged);
        assert_eq!(out.missing_desired, 0);
        assert!(out.overlay_connected);
        assert!(out.ring_pair_present);
    }

    #[test]
    fn ablating_linearization_breaks_the_topology() {
        let (out, _) = run_ablated(RuleMask::without(4), 10, 3, 2_000);
        assert!(
            !out.converged || out.missing_desired > 0,
            "without linearization the Re-Chord topology must not emerge: {out:?}"
        );
    }

    #[test]
    fn ablating_closest_real_breaks_the_topology() {
        let (out, _) = run_ablated(RuleMask::without(3), 10, 3, 2_000);
        assert!(!out.converged || out.missing_desired > 0, "{out:?}");
    }

    #[test]
    fn ablating_ring_rule_leaves_wrap_open() {
        let (out, _) = run_ablated(RuleMask::without(5), 10, 3, 50_000);
        assert!(out.converged, "converges to a sorted *list*...");
        assert!(!out.ring_pair_present, "...but the wrap-around never closes");
    }
}

//! **Re-Chord**: a self-stabilizing Chord overlay network.
//!
//! This crate implements the primary contribution of Kniesburges,
//! Koutsopoulos & Scheideler (SPAA 2011): a distributed protocol of six
//! purely local rules that recovers the Re-Chord topology — a locally
//! checkable extension of Chord — from **any weakly connected initial
//! state**, in `O(n log n)` synchronous rounds w.h.p., and re-stabilizes
//! after an isolated join in `O(log² n)` / leave in `O(log n)` rounds.
//!
//! # Model recap (paper §2)
//!
//! Every peer `u` has an immutable identifier in `[0,1)` and simulates
//! virtual nodes `u_i = u + 1/2^i (mod 1)` for `i = 1..=m`, where `u_m` is
//! the first virtual node that falls inside the gap to `u`'s closest known
//! clockwise real neighbor. Nodes carry three classes of outgoing edges —
//! unmarked (`E_u`), ring (`E_r`), connection (`E_c`) — and run, every
//! round, the six rules of §2.3:
//!
//! 1. **Virtual nodes** — create levels `1..=m`, delete deeper ones, handing
//!    their neighborhoods to `u_m`.
//! 2. **Overlapping neighborhood** — move an unmarked neighbor `w` of `u_i`
//!    to the sibling `u_j` lying between `w` and `u_i`.
//! 3. **Closest real neighbor** — find the nearest real node on each side
//!    within the peer's knowledge, connect to it, and tell the neighbors
//!    that might care.
//! 4. **Linearization** — keep only the closest neighbor per side, delegate
//!    the rest pairwise toward their position (forwarding), and mirror
//!    backward edges from the closest neighbors.
//! 5. **Ring edges** — nodes missing a left/right neighbor are wired to the
//!    extremal candidates by special marked edges, which are greedily
//!    forwarded until the global min and max hold each other.
//! 6. **Connection edges** — contiguous virtual siblings launch connection
//!    edges that hop toward each other so the virtual graph can never fall
//!    apart into per-peer islands.
//!
//! The stable state contains Chord as a subgraph (Fact 2.1), so Chord
//! applications (routing, DHT storage — see `rechord-routing`) run on top
//! unchanged.
//!
//! # Crate layout
//!
//! * [`state`] — per-peer protocol state (`N_u`, `N_r`, `N_c`, `rl`, `rr`
//!   per virtual level) and the knowledge/`m` computations;
//! * [`msg`] — the delayed-assignment message (`A <- B` of the paper);
//! * [`rules`] — one module per rule, in paper order;
//! * [`protocol`] — the [`ReChordProtocol`] glue implementing
//!   `rechord_sim::SyncProtocol`;
//! * [`network`] — [`ReChordNetwork`], the user-facing handle: build from an
//!   initial topology, run to stability, join/leave/crash peers, snapshot;
//! * [`oracle`] — the *target* stable topology computed directly from the
//!   identifier set (what the protocol must converge to), plus the Chord
//!   edge set for Fact 2.1;
//! * [`stability`] — stable / almost-stable checks and the stable-state
//!   audit report;
//! * [`projection`] — `E_ReChord = {(u,v) ∈ V_r² : ∃i (u_i,v) ∈ E_u ∪ E_r}`;
//! * [`metrics`] — the quantities plotted in the paper's Figures 5–7;
//! * [`churn`] — join / graceful-leave / crash drivers (§4);
//! * [`adversary`] — Byzantine fault injection: the crime catalog, per-peer
//!   behavior policies, and the honest-subset convergence harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adversary;
pub mod churn;
pub mod metrics;
pub mod msg;
pub mod network;
pub mod oracle;
pub mod phases;
pub mod projection;
pub mod protocol;
pub mod rules;
pub mod stability;
pub mod state;

pub use adversary::{AdversaryMap, Behavior, Crime, CrimeSet};
pub use metrics::NetworkMetrics;
pub use msg::Msg;
pub use network::ReChordNetwork;
pub use protocol::ReChordProtocol;
pub use state::{PeerState, VirtualState};

#[cfg(test)]
mod proptests;

//! Joins, graceful leaves, and crash failures (paper §4).

use crate::network::ReChordNetwork;
use crate::state::PeerState;
use rechord_graph::NodeRef;
use rechord_id::Ident;
use rechord_sim::FixpointReport;
use rechord_topology::{ChurnEvent, ChurnPlan};

/// Outcome of one churn event followed by re-stabilization.
#[derive(Clone, Copy, Debug)]
pub struct ChurnOutcome {
    /// The peer that joined or left.
    pub peer: Ident,
    /// Re-stabilization report.
    pub report: FixpointReport,
}

impl ReChordNetwork {
    /// A new peer `joiner` enters by learning about one existing peer
    /// `contact` (paper §4.1: "a peer connects to one peer in the network",
    /// i.e. it is connected to an arbitrary real node). Returns `false` if
    /// the identifier is already taken or the contact does not exist.
    pub fn join_via(&mut self, joiner: Ident, contact: Ident) -> bool {
        if !self.engine().contains(contact) || self.engine().contains(joiner) {
            return false;
        }
        self.engine_mut().insert_node(joiner, PeerState::with_contacts([NodeRef::real(contact)]))
    }

    /// A peer leaves gracefully (§4.2): before disappearing it introduces
    /// its neighbors to one another (consecutive unmarked neighbors of each
    /// of its nodes are cross-linked), then it and every reference to it
    /// vanish.
    pub fn graceful_leave(&mut self, leaver: Ident) -> bool {
        let Some(state) = self.engine_mut().remove_node(leaver) else {
            return false;
        };
        // Introductions: for each simulated node, its sorted unmarked
        // neighbors are spliced pairwise (pred learns succ and vice versa).
        let mut introductions: Vec<(NodeRef, NodeRef)> = Vec::new();
        for vs in state.levels.values() {
            let targets: Vec<NodeRef> =
                vs.nu.iter().copied().filter(|t| t.owner != leaver).collect();
            for pair in targets.windows(2) {
                introductions.push((pair[0], pair[1]));
                introductions.push((pair[1], pair[0]));
            }
        }
        for (at, edge) in introductions {
            if at.owner == edge.owner {
                continue;
            }
            if let Some(st) = self.engine_mut().state_mut(at.owner) {
                let lvl =
                    if st.levels.contains_key(&at.level) { at.level } else { st.deepest_level() };
                if let Some(vs) = st.level_mut(lvl) {
                    vs.nu.insert(edge);
                }
            }
        }
        self.purge_references(leaver);
        true
    }

    /// A peer crashes (§4.2): "the node, as well as its connections, fail"
    /// — it vanishes without goodbye and every edge touching it disappears.
    pub fn crash(&mut self, victim: Ident) -> bool {
        if self.engine_mut().remove_node(victim).is_none() {
            return false;
        }
        self.purge_references(victim);
        true
    }

    /// Applies one churn event; peers affected are chosen deterministically
    /// from `selector` (an index into the current peer list).
    pub fn apply_event(
        &mut self,
        event: &ChurnEvent,
        selector: u64,
        id_seed: u64,
    ) -> Option<Ident> {
        let ids = self.real_ids();
        if ids.is_empty() {
            return None;
        }
        // Reduce in u64 before narrowing so the chosen index is identical
        // on 32-bit hosts (plain `selector as usize` would drop high bits).
        let pick = |ids: &[Ident]| ids[(selector % ids.len() as u64) as usize];
        match event {
            ChurnEvent::Join { address } => {
                let joiner = rechord_id::hash_address(*address, id_seed);
                let contact = pick(&ids);
                self.join_via(joiner, contact).then_some(joiner)
            }
            ChurnEvent::GracefulLeave => {
                if ids.len() <= 1 {
                    return None;
                }
                let leaver = pick(&ids);
                self.graceful_leave(leaver).then_some(leaver)
            }
            ChurnEvent::Crash => {
                if ids.len() <= 1 {
                    return None;
                }
                let victim = pick(&ids);
                self.crash(victim).then_some(victim)
            }
        }
    }

    /// Runs a whole churn plan, re-stabilizing after every event. Returns
    /// one outcome per successfully applied event.
    pub fn run_churn_plan(
        &mut self,
        plan: &ChurnPlan,
        id_seed: u64,
        max_rounds_per_event: u64,
    ) -> Vec<ChurnOutcome> {
        let mut outcomes = Vec::with_capacity(plan.events.len());
        for (k, event) in plan.events.iter().enumerate() {
            // deterministic but varying selector
            let selector = (k as u64).wrapping_mul(0x9e37) ^ id_seed;
            if let Some(peer) = self.apply_event(event, selector, id_seed.wrapping_add(k as u64)) {
                let report = self.run_until_stable(max_rounds_per_event);
                outcomes.push(ChurnOutcome { peer, report });
            }
        }
        outcomes
    }

    fn purge_references(&mut self, dead: Ident) {
        let survivors = self.real_ids();
        for id in survivors {
            if let Some(st) = self.engine_mut().state_mut(id) {
                st.purge_peer(dead);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_topology::TopologyKind;

    fn stable_net(n: usize, seed: u64) -> ReChordNetwork {
        let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 10_000);
        assert!(report.converged, "bootstrap must stabilize");
        net
    }

    #[test]
    fn join_restabilizes() {
        let mut net = stable_net(8, 21);
        let contact = net.real_ids()[3];
        let joiner = Ident::from_raw(0x1234_5678_9abc_def0);
        assert!(net.join_via(joiner, contact));
        let report = net.run_until_stable(10_000);
        assert!(report.converged, "join must re-stabilize");
        assert!(net.real_ids().contains(&joiner));
        let audit = net.audit();
        assert!(audit.missing_unmarked.is_empty(), "{:?}", audit.missing_unmarked);
    }

    #[test]
    fn duplicate_or_dangling_join_rejected() {
        let mut net = stable_net(4, 22);
        let ids = net.real_ids();
        assert!(!net.join_via(ids[0], ids[1]), "existing id");
        assert!(!net.join_via(Ident::from_raw(42), Ident::from_raw(43)), "unknown contact");
    }

    #[test]
    fn crash_restabilizes_and_purges() {
        let mut net = stable_net(8, 23);
        let victim = net.real_ids()[2];
        assert!(net.crash(victim));
        // no surviving state may reference the victim
        for id in net.real_ids() {
            let st = net.engine().state(id).unwrap();
            for vs in st.levels.values() {
                assert!(vs.all_targets().all(|t| t.owner != victim));
            }
        }
        let report = net.run_until_stable(10_000);
        assert!(report.converged, "crash must re-stabilize");
        assert!(!net.real_ids().contains(&victim));
        assert!(net.audit().missing_unmarked.is_empty());
    }

    #[test]
    fn graceful_leave_keeps_survivors_connected() {
        let mut net = stable_net(8, 24);
        let leaver = net.real_ids()[4];
        assert!(net.graceful_leave(leaver));
        let report = net.run_until_stable(10_000);
        assert!(report.converged);
        let audit = net.audit();
        assert!(audit.weakly_connected);
        assert!(audit.missing_unmarked.is_empty());
    }

    #[test]
    fn churn_plan_runs_all_events() {
        let mut net = stable_net(10, 25);
        let plan = rechord_topology::ChurnPlan::mixed(6, 0.5, 77);
        let outcomes = net.run_churn_plan(&plan, 99, 10_000);
        assert!(!outcomes.is_empty());
        for o in &outcomes {
            assert!(o.report.converged, "every event must re-stabilize");
        }
        // final state is still sound
        assert!(net.audit().missing_unmarked.is_empty());
        let _ = TopologyKind::Random; // silence unused import in some cfgs
    }
}

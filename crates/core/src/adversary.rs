//! Byzantine fault injection: a typed crime catalog and per-peer behavior
//! policies, probing the edge of the self-stabilization envelope.
//!
//! The paper's Theorem 1.1 assumes every peer *executes the rules*: crashed
//! peers simply vanish (their connections fail, §4.2) and the six rules
//! repair the ring from any weakly connected state. This module asks the
//! question the paper leaves open — what happens when peers stay alive but
//! **lie**? Each peer gets a [`Behavior`]: honest, byzantine with a
//! [`CrimeSet`], or flaky (probabilistically sitting out rounds / dropping
//! forwards). Policies are assigned deterministically from a seed, so every
//! adversarial run is bit-reproducible.
//!
//! Crimes split into two layers:
//!
//! * **protocol crimes** (consulted by [`crate::protocol::ReChordProtocol`]
//!   each round): [`Crime::ViolateRule`] suppresses one of the six §2.3
//!   rules on the liar's own state, and [`Crime::LieAboutSuccessor`]
//!   rewrites every outgoing edge payload to claim the liar itself is the
//!   neighbor being introduced;
//! * **data-path crimes** (consulted by the workload simulator per hop):
//!   [`Crime::MisrouteForward`], [`Crime::DropForward`],
//!   [`Crime::SybilJoinWave`], [`Crime::StaleReadPoison`] and
//!   [`Crime::StallHeartbeats`].
//!
//! All adversarial randomness flows through the pure [`mix`] hash — never
//! through a stateful RNG — so enabling an adversary cannot shift the draw
//! stream of an otherwise-identical honest run (fraction 0 stays
//! bit-identical to a run with no adversary installed at all).

use crate::network::ReChordNetwork;
use rechord_graph::NodeRef;
use rechord_id::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// One offense from the catalog. `ViolateRule(r)` carries the rule number
/// (1–6, paper §2.3); rule 1 can only be suppressed on the liar's *own*
/// levels (there is no global ablation of rule 1 — see [`crate::ablation`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crime {
    /// Suppress rule `r` (1..=6) on this peer's own state.
    ViolateRule(u8),
    /// Rewrite every outgoing edge payload to `real(self)`: the liar claims
    /// itself as the neighbor in every introduction it forwards.
    LieAboutSuccessor,
    /// Forward requests to the *worst* known next hop instead of the
    /// greedy-best one (progress is still made only by accident).
    MisrouteForward,
    /// Silently drop requests instead of forwarding them (the client pays a
    /// timeout and retries from a fresh entry point).
    DropForward,
    /// Inject a wave of sybil identities into the overlay, all controlled
    /// by this peer (and inheriting its crime set).
    SybilJoinWave,
    /// Serve deleted/stale copies during repair: reads answered by this
    /// replica surface as `Corrupted`.
    StaleReadPoison,
    /// Stall heartbeats so the failure detector falsely suspects this
    /// peer's live clockwise neighbor.
    StallHeartbeats,
}

impl Crime {
    /// Bit position inside a [`CrimeSet`].
    const fn bit(self) -> u16 {
        match self {
            Crime::ViolateRule(r) => {
                assert!(r >= 1 && r <= 6, "rules are numbered 1..=6");
                1 << (r - 1)
            }
            Crime::LieAboutSuccessor => 1 << 6,
            Crime::MisrouteForward => 1 << 7,
            Crime::DropForward => 1 << 8,
            Crime::SybilJoinWave => 1 << 9,
            Crime::StaleReadPoison => 1 << 10,
            Crime::StallHeartbeats => 1 << 11,
        }
    }

    /// Compact label for reports.
    pub fn label(self) -> String {
        match self {
            Crime::ViolateRule(r) => format!("violate-rule-{r}"),
            Crime::LieAboutSuccessor => "lie-successor".into(),
            Crime::MisrouteForward => "misroute".into(),
            Crime::DropForward => "drop-forward".into(),
            Crime::SybilJoinWave => "sybil-wave".into(),
            Crime::StaleReadPoison => "stale-poison".into(),
            Crime::StallHeartbeats => "stall-heartbeats".into(),
        }
    }

    /// Every catalogued crime, in bit order.
    pub const ALL: [Crime; 12] = [
        Crime::ViolateRule(1),
        Crime::ViolateRule(2),
        Crime::ViolateRule(3),
        Crime::ViolateRule(4),
        Crime::ViolateRule(5),
        Crime::ViolateRule(6),
        Crime::LieAboutSuccessor,
        Crime::MisrouteForward,
        Crime::DropForward,
        Crime::SybilJoinWave,
        Crime::StaleReadPoison,
        Crime::StallHeartbeats,
    ];
}

/// A set of crimes, packed into a bitmask (`Copy`, order-independent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrimeSet(u16);

impl CrimeSet {
    /// No crimes: indistinguishable from honesty.
    pub const EMPTY: CrimeSet = CrimeSet(0);

    /// A singleton set.
    pub const fn single(crime: Crime) -> CrimeSet {
        CrimeSet(crime.bit())
    }

    /// This set plus `crime`.
    pub const fn with(self, crime: Crime) -> CrimeSet {
        CrimeSet(self.0 | crime.bit())
    }

    /// Does the set contain `crime`?
    pub const fn contains(self, crime: Crime) -> bool {
        self.0 & crime.bit() != 0
    }

    /// True iff no crime is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Human-readable `+`-joined labels (`"honest"` when empty).
    pub fn label(self) -> String {
        if self.is_empty() {
            return "honest".into();
        }
        let labels: Vec<String> =
            Crime::ALL.iter().filter(|c| self.contains(**c)).map(|c| c.label()).collect();
        labels.join("+")
    }
}

impl FromIterator<Crime> for CrimeSet {
    fn from_iter<T: IntoIterator<Item = Crime>>(iter: T) -> Self {
        iter.into_iter().fold(CrimeSet::EMPTY, CrimeSet::with)
    }
}

/// How one peer behaves, fixed for the lifetime of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Behavior {
    /// Executes the protocol and forwards requests faithfully.
    Honest,
    /// Commits every crime in the set, every opportunity it gets.
    Byzantine(CrimeSet),
    /// Honest intent, unreliable execution: with the given probability it
    /// sits out a protocol round / drops a forward (crash-recovery faults,
    /// not malice).
    Flaky(f64),
}

/// Seeded, deterministic assignment of a [`Behavior`] to every peer.
///
/// Installed once (behind an `Arc`) into both the protocol and the workload
/// simulator; lookups on peers without an entry return [`Behavior::Honest`],
/// so an empty map is exactly the legacy honest network.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdversaryMap {
    seed: u64,
    policies: BTreeMap<Ident, Behavior>,
}

impl AdversaryMap {
    /// An all-honest map rooted at `seed` (the seed still matters: it feeds
    /// every [`mix`]-derived coin the crimes flip).
    pub fn new(seed: u64) -> Self {
        AdversaryMap { seed, policies: BTreeMap::new() }
    }

    /// The adversarial seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pins `peer`'s behavior (used by [`AdversaryMap::assign`] and tests;
    /// setting [`Behavior::Honest`] removes the entry).
    pub fn set(&mut self, peer: Ident, behavior: Behavior) {
        if behavior == Behavior::Honest {
            self.policies.remove(&peer);
        } else {
            self.policies.insert(peer, behavior);
        }
    }

    /// The behavior of `peer` (honest unless pinned otherwise).
    pub fn behavior_of(&self, peer: Ident) -> Behavior {
        self.policies.get(&peer).copied().unwrap_or(Behavior::Honest)
    }

    /// The crime set of `peer` (empty unless byzantine).
    pub fn crimes_of(&self, peer: Ident) -> CrimeSet {
        match self.behavior_of(peer) {
            Behavior::Byzantine(crimes) => crimes,
            _ => CrimeSet::EMPTY,
        }
    }

    /// Does `peer` commit `crime`?
    pub fn commits(&self, peer: Ident, crime: Crime) -> bool {
        self.crimes_of(peer).contains(crime)
    }

    /// All byzantine peers, ascending.
    pub fn byzantine_peers(&self) -> Vec<Ident> {
        self.policies
            .iter()
            .filter(|(_, b)| matches!(b, Behavior::Byzantine(_)))
            .map(|(&id, _)| id)
            .collect()
    }

    /// All flaky peers with their drop probability, ascending.
    pub fn flaky_peers(&self) -> Vec<(Ident, f64)> {
        self.policies
            .iter()
            .filter_map(|(&id, b)| match b {
                Behavior::Flaky(p) => Some((id, *p)),
                _ => None,
            })
            .collect()
    }

    /// True iff every peer is honest.
    pub fn is_all_honest(&self) -> bool {
        self.policies.is_empty()
    }

    /// Is any peer flaky?
    pub fn has_flaky(&self) -> bool {
        self.policies.values().any(|b| matches!(b, Behavior::Flaky(_)))
    }

    /// Does any peer commit `crime`?
    pub fn any_commits(&self, crime: Crime) -> bool {
        self.policies.values().any(|b| matches!(b, Behavior::Byzantine(c) if c.contains(crime)))
    }

    /// Deterministically corrupts `⌊fraction·n⌋` peers with `crimes` and
    /// marks a further `⌊flaky_fraction·n⌋` as flaky with drop probability
    /// `flaky_drop`. Selection ranks peers by `mix(seed, id)` — a fixed
    /// seed pins *which* peers turn byzantine, independent of call order,
    /// and growing the fraction only ever *adds* liars (monotone-degradation
    /// scans compare like with like).
    pub fn assign(
        peers: &[Ident],
        fraction: f64,
        crimes: CrimeSet,
        flaky_fraction: f64,
        flaky_drop: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        assert!((0.0..=1.0).contains(&flaky_fraction), "flaky_fraction must be in [0,1]");
        let mut ranked: Vec<Ident> = peers.to_vec();
        ranked.sort_by_key(|&id| (mix(&[seed, id.raw()]), id));
        let n_byz = (fraction * peers.len() as f64).floor() as usize;
        let n_flaky = (flaky_fraction * peers.len() as f64).floor() as usize;
        let mut map = AdversaryMap::new(seed);
        if !crimes.is_empty() {
            for &id in ranked.iter().take(n_byz) {
                map.set(id, Behavior::Byzantine(crimes));
            }
        }
        for &id in ranked.iter().skip(n_byz).take(n_flaky) {
            map.set(id, Behavior::Flaky(flaky_drop));
        }
        map
    }
}

/// Pure splitmix-style hash over a part list — the *only* source of
/// adversarial randomness. Stateless, so adversarial decisions never
/// consume draws from (and therefore never perturb) the simulation RNGs.
pub fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        h ^= p;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

/// A deterministic Bernoulli coin: true with probability `p`, derived
/// purely from `parts` via [`mix`].
pub fn chance(parts: &[u64], p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    ((mix(parts) >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// How many consecutive rounds the honest subset must be quiet before a run
/// counts as *honest-stable*. With persistent liars the global state may
/// never reach a fixpoint (the liar re-emits every round), so the paper's
/// criterion is projected onto the honest peers: none of them changed for
/// this many rounds in a row.
pub const HONEST_QUIET_ROUNDS: u64 = 3;

/// Outcome of one adversarial convergence run (see the `adversary` binary).
#[derive(Clone, Debug)]
pub struct AdversaryOutcome {
    /// Fraction of peers corrupted.
    pub fraction: f64,
    /// The crime set given to every byzantine peer.
    pub crimes: CrimeSet,
    /// How many peers actually turned byzantine.
    pub byzantine: usize,
    /// Did the honest subset quiesce within budget?
    pub converged: bool,
    /// Rounds executed (to honest-stability, or the cutoff).
    pub rounds: u64,
    /// At the end, did every honest peer's level-0 `rl`/`rr` registers agree
    /// with the true sorted order of *all* live peers? (Byzantine peers are
    /// legitimate ring members — they hold positions; they just lie.)
    pub honest_ring_ok: bool,
}

/// Checks each honest peer's level-0 closest-real-neighbor registers
/// against the oracle: the immediate neighbors in the ascending order of
/// all live peers (`None` at the extremes — rule 3 is linear; rule 5
/// closes the wrap with ring edges, not registers).
pub fn honest_ring_ok(net: &ReChordNetwork, byzantine: &BTreeSet<Ident>) -> bool {
    let ids = net.real_ids();
    for (i, &u) in ids.iter().enumerate() {
        if byzantine.contains(&u) {
            continue;
        }
        let Some(level0) = net.engine().state(u).and_then(|st| st.level(0)) else {
            return false;
        };
        let want_rl = if i == 0 { None } else { Some(NodeRef::real(ids[i - 1])) };
        let want_rr = if i + 1 == ids.len() { None } else { Some(NodeRef::real(ids[i + 1])) };
        if level0.rl != want_rl || level0.rr != want_rr {
            return false;
        }
    }
    true
}

/// Runs the full protocol on a random weakly connected instance with
/// `⌊fraction·n⌋` byzantine peers committing `crimes`, until the honest
/// subset is quiet for [`HONEST_QUIET_ROUNDS`] consecutive rounds or
/// `max_rounds` elapse. The core-layer counterpart of
/// [`crate::ablation::run_ablated`].
pub fn run_adversarial(
    n: usize,
    seed: u64,
    fraction: f64,
    crimes: CrimeSet,
    max_rounds: u64,
) -> (AdversaryOutcome, ReChordNetwork) {
    let topo = rechord_topology::TopologyKind::Random.generate(n, seed);
    let mut net = ReChordNetwork::from_topology(&topo, 1);
    let map = AdversaryMap::assign(&net.real_ids(), fraction, crimes, 0.0, 0.0, seed);
    let byzantine: BTreeSet<Ident> = map.byzantine_peers().into_iter().collect();
    net.set_adversary(std::sync::Arc::new(map));

    let mut rounds = 0u64;
    let mut quiet = 0u64;
    let mut converged = false;
    while rounds < max_rounds {
        let (_, dirty) = net.round_dirty();
        rounds += 1;
        if dirty.iter().all(|id| byzantine.contains(id)) {
            quiet += 1;
            if quiet >= HONEST_QUIET_ROUNDS {
                converged = true;
                break;
            }
        } else {
            quiet = 0;
        }
    }

    let outcome = AdversaryOutcome {
        fraction,
        crimes,
        byzantine: byzantine.len(),
        converged,
        rounds,
        honest_ring_ok: honest_ring_ok(&net, &byzantine),
    };
    (outcome, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crime_set_roundtrips() {
        let set = CrimeSet::single(Crime::LieAboutSuccessor).with(Crime::ViolateRule(4));
        assert!(set.contains(Crime::LieAboutSuccessor));
        assert!(set.contains(Crime::ViolateRule(4)));
        assert!(!set.contains(Crime::ViolateRule(5)));
        assert!(!set.contains(Crime::DropForward));
        assert_eq!(set.label(), "violate-rule-4+lie-successor");
        assert_eq!(CrimeSet::EMPTY.label(), "honest");
    }

    #[test]
    fn crime_bits_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Crime::ALL {
            assert!(seen.insert(c.bit()), "{c:?} collides");
        }
    }

    #[test]
    fn assign_is_deterministic_and_monotone_in_fraction() {
        let peers: Vec<Ident> = (0..40).map(|k| Ident::from_raw(k * 7919 + 13)).collect();
        let crimes = CrimeSet::single(Crime::DropForward);
        let a = AdversaryMap::assign(&peers, 0.25, crimes, 0.0, 0.0, 99);
        let b = AdversaryMap::assign(&peers, 0.25, crimes, 0.0, 0.0, 99);
        assert_eq!(a, b, "same inputs, same map");
        assert_eq!(a.byzantine_peers().len(), 10);
        // Growing the fraction only adds liars, never swaps them out.
        let wider = AdversaryMap::assign(&peers, 0.5, crimes, 0.0, 0.0, 99);
        let small: BTreeSet<Ident> = a.byzantine_peers().into_iter().collect();
        let large: BTreeSet<Ident> = wider.byzantine_peers().into_iter().collect();
        assert!(small.is_subset(&large));
        // A different seed picks a different set (with overwhelming odds).
        let other = AdversaryMap::assign(&peers, 0.25, crimes, 0.0, 0.0, 100);
        assert_ne!(a.byzantine_peers(), other.byzantine_peers());
    }

    #[test]
    fn empty_crime_set_assigns_nobody() {
        let peers: Vec<Ident> = (0..10).map(|k| Ident::from_raw(k + 1)).collect();
        let map = AdversaryMap::assign(&peers, 0.5, CrimeSet::EMPTY, 0.0, 0.0, 1);
        assert!(map.is_all_honest());
    }

    #[test]
    fn flaky_assignment_is_disjoint_from_byzantine() {
        let peers: Vec<Ident> = (0..20).map(|k| Ident::from_raw(k * 31 + 5)).collect();
        let crimes = CrimeSet::single(Crime::MisrouteForward);
        let map = AdversaryMap::assign(&peers, 0.25, crimes, 0.25, 0.5, 7);
        let byz: BTreeSet<Ident> = map.byzantine_peers().into_iter().collect();
        let flaky: BTreeSet<Ident> = map.flaky_peers().into_iter().map(|(id, _)| id).collect();
        assert_eq!(byz.len(), 5);
        assert_eq!(flaky.len(), 5);
        assert!(byz.is_disjoint(&flaky));
    }

    #[test]
    fn mix_is_pure_and_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[0, 0]));
    }

    #[test]
    fn chance_respects_edges() {
        assert!(!chance(&[1, 2], 0.0));
        assert!(chance(&[1, 2], 1.0));
        let hits = (0..4000u64).filter(|&k| chance(&[42, k], 0.25)).count();
        assert!((800..1200).contains(&hits), "{hits}/4000 at p=0.25");
    }

    #[test]
    fn fraction_zero_matches_plain_stabilization() {
        // Installing an empty adversary map must not perturb convergence.
        let (out, net) = run_adversarial(12, 3, 0.0, CrimeSet::single(Crime::DropForward), 50_000);
        assert!(out.converged);
        assert_eq!(out.byzantine, 0);
        assert!(out.honest_ring_ok);
        let (plain, _) =
            crate::ablation::run_ablated(crate::ablation::RuleMask::ALL, 12, 3, 50_000);
        assert!(plain.converged);
        assert_eq!(net.audit().missing_unmarked.len(), 0);
    }

    #[test]
    fn suppressing_own_rules_leaves_honest_ring_intact() {
        // One peer that silently stops maintaining its own structure: the
        // honest majority still linearizes around it.
        let crimes: CrimeSet = (2..=6).map(Crime::ViolateRule).collect();
        let (out, _) = run_adversarial(12, 5, 0.1, crimes, 50_000);
        assert_eq!(out.byzantine, 1);
        assert!(out.converged, "honest subset must quiesce: {out:?}");
        assert!(out.honest_ring_ok, "honest rl/rr must match the oracle");
    }
}

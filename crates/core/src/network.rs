//! [`ReChordNetwork`]: the user-facing handle on a running Re-Chord overlay.

use crate::metrics::{measure, NetworkMetrics};
use crate::protocol::ReChordProtocol;
use crate::stability::{audit, is_almost_stable, StableStateAudit};
use crate::state::PeerState;
use rechord_graph::{Edge, EdgeKind, NodeRef, OverlayGraph};
use rechord_id::Ident;
use rechord_sim::{Engine, FixpointReport, RoundOutcome};
use rechord_topology::InitialTopology;

/// A Re-Chord overlay network under simulation.
///
/// Wraps the synchronous engine with Re-Chord-specific operations: building
/// from an initial topology, driving to stability, probing the almost-stable
/// milestone, snapshots/metrics, and (via [`crate::churn`]) joins and leaves.
pub struct ReChordNetwork {
    engine: Engine<ReChordProtocol>,
}

impl ReChordNetwork {
    /// Builds a network whose peers initially know exactly the edges of
    /// `topology` (loaded into `N_u(u_0)`).
    ///
    /// ```
    /// use rechord_core::network::ReChordNetwork;
    /// use rechord_topology::TopologyKind;
    ///
    /// let topo = TopologyKind::SortedLine.generate(8, 7);
    /// let mut net = ReChordNetwork::from_topology(&topo, 1);
    /// assert_eq!(net.len(), 8);
    ///
    /// let report = net.run_until_stable(10_000);
    /// assert!(report.converged);
    /// assert!(net.audit().missing_unmarked.is_empty());
    /// ```
    pub fn from_topology(topology: &InitialTopology, threads: usize) -> Self {
        Self::from_topology_with_mask(topology, threads, crate::ablation::RuleMask::ALL)
    }

    /// Like [`ReChordNetwork::from_topology`] with an ablated rule set
    /// (see [`crate::ablation`]).
    pub fn from_topology_with_mask(
        topology: &InitialTopology,
        threads: usize,
        mask: crate::ablation::RuleMask,
    ) -> Self {
        let mut engine = Engine::new(ReChordProtocol::with_mask(mask), threads);
        for &id in &topology.ids {
            engine.insert_node(id, PeerState::new());
        }
        for &(a, b) in &topology.edges {
            let (from, to) = (topology.ids[a], topology.ids[b]);
            if let Some(st) = engine.state_mut(from) {
                st.level_mut(0).expect("level 0").nu.insert(NodeRef::real(to));
            }
        }
        ReChordNetwork { engine }
    }

    /// Builds a network from **raw peer states** — the strongest reading of
    /// self-stabilization: the initial state need not be a clean knowledge
    /// graph; any garbage a transient fault could leave behind (wrong
    /// levels, stale registers, arbitrary edge sets of every class) is
    /// legal input, as long as the peers are weakly connected.
    pub fn from_raw_states(
        states: impl IntoIterator<Item = (Ident, PeerState)>,
        threads: usize,
    ) -> Self {
        let mut engine = Engine::new(ReChordProtocol::full(), threads);
        for (id, st) in states {
            engine.insert_node(id, st);
        }
        ReChordNetwork { engine }
    }

    /// Convenience: generates the paper's random weakly connected initial
    /// state with `n` peers and runs it to stability.
    pub fn bootstrap_stable(
        n: usize,
        seed: u64,
        threads: usize,
        max_rounds: u64,
    ) -> (Self, FixpointReport) {
        let topo = rechord_topology::TopologyKind::Random.generate(n, seed);
        let mut net = Self::from_topology(&topo, threads);
        let report = net.run_until_stable(max_rounds);
        (net, report)
    }

    /// Live peer identifiers, ascending.
    pub fn real_ids(&self) -> Vec<Ident> {
        self.engine.ids().to_vec()
    }

    /// Number of live peers.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True iff the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Executes one synchronous round.
    pub fn round(&mut self) -> RoundOutcome {
        self.engine.round()
    }

    /// Executes one round and reports which peers' states changed — the
    /// co-simulation hook for drivers that keep derived views (routing
    /// tables, workload state) current between rounds without re-reading
    /// the whole network.
    pub fn round_dirty(&mut self) -> (RoundOutcome, Vec<Ident>) {
        self.engine.round_dirty_with_schedule(|_| true)
    }

    /// Runs until the global state is a fixpoint (the paper's stable state)
    /// or `max_rounds` elapse.
    pub fn run_until_stable(&mut self, max_rounds: u64) -> FixpointReport {
        self.engine.run_until_fixpoint(max_rounds)
    }

    /// Runs to the fixpoint while probing for the almost-stable milestone.
    /// Returns the fixpoint report and the first round (1-based, if any) at
    /// which all desired edges existed — the two series of Figure 6.
    pub fn run_until_stable_tracking_almost(
        &mut self,
        max_rounds: u64,
    ) -> (FixpointReport, Option<u64>) {
        let mut almost_round: Option<u64> = None;
        let ids_hint = self.real_ids();
        let mut round = 0u64;
        let mut total_messages = 0usize;
        loop {
            if round >= max_rounds {
                return (
                    FixpointReport { rounds: max_rounds, converged: false, total_messages },
                    almost_round,
                );
            }
            let out = self.engine.round();
            round += 1;
            total_messages += out.delivered + out.dropped;
            if almost_round.is_none() && is_almost_stable(&self.snapshot(), &ids_hint) {
                almost_round = Some(round);
            }
            if !out.changed {
                return (
                    FixpointReport { rounds: round, converged: true, total_messages },
                    almost_round,
                );
            }
        }
    }

    /// Is the current state almost stable (all desired edges exist)?
    pub fn is_almost_stable(&self) -> bool {
        is_almost_stable(&self.snapshot(), &self.real_ids())
    }

    /// Runs until the almost-stable milestone — every desired edge exists —
    /// and returns the number of rounds taken (0 when already there), or
    /// `None` on budget exhaustion. This is the structural-integration
    /// criterion of Theorems 4.1/4.2 ("every node has stable next and next
    /// real neighbors and all virtual nodes are created"); the full
    /// fixpoint additionally waits for the in-flight edge streams to settle.
    pub fn run_until_almost_stable(&mut self, max_rounds: u64) -> Option<u64> {
        if self.is_almost_stable() {
            return Some(0);
        }
        for round in 1..=max_rounds {
            self.engine.round();
            if self.is_almost_stable() {
                return Some(round);
            }
        }
        None
    }

    /// Flattens the current global state into an [`OverlayGraph`].
    pub fn snapshot(&self) -> OverlayGraph {
        snapshot_states(self.engine.iter())
    }

    /// Positions of all *simulated* virtual nodes.
    pub fn virtual_positions(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        for (id, st) in self.engine.iter() {
            for &lvl in st.levels.keys() {
                if lvl > 0 {
                    out.push(id.virtual_position(lvl));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Measures the current state (Figure 5/7 series, Lemma 3.1 gaps).
    pub fn metrics(&self) -> NetworkMetrics {
        measure(&self.snapshot(), &self.real_ids(), &self.virtual_positions())
    }

    /// Audits the current state against the oracle topology.
    pub fn audit(&self) -> StableStateAudit {
        audit(&self.snapshot(), &self.real_ids())
    }

    /// Installs per-peer behavior policies ([`crate::adversary`]); crimes
    /// apply from the next round. An all-honest map is byte-for-byte
    /// equivalent to no map at all.
    pub fn set_adversary(&mut self, map: std::sync::Arc<crate::adversary::AdversaryMap>) {
        self.engine.protocol_mut().adversary = Some(map);
    }

    /// Read access to the underlying engine.
    pub fn engine(&self) -> &Engine<ReChordProtocol> {
        &self.engine
    }

    /// Mutable access to the underlying engine (used by the churn driver).
    pub fn engine_mut(&mut self) -> &mut Engine<ReChordProtocol> {
        &mut self.engine
    }
}

/// Materializes the overlay graph of an arbitrary collection of peer
/// states — the body of [`ReChordNetwork::snapshot`], exposed so drivers
/// that hold states outside an engine (e.g. the transport layer collecting
/// them from real processes) produce byte-identical snapshots.
pub fn snapshot_states<'a>(
    states: impl IntoIterator<Item = (Ident, &'a PeerState)>,
) -> OverlayGraph {
    let mut g = OverlayGraph::new();
    for (id, st) in states {
        for (&lvl, vs) in &st.levels {
            let from = PeerState::node_ref(id, lvl);
            g.add_node(from);
            for kind in EdgeKind::ALL {
                for &to in vs.of(kind) {
                    g.add_edge(Edge { from, to, kind });
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_topology::TopologyKind;

    #[test]
    fn from_topology_seeds_level_zero_knowledge() {
        let topo = TopologyKind::SortedLine.generate(4, 1);
        let net = ReChordNetwork::from_topology(&topo, 1);
        assert_eq!(net.len(), 4);
        // the first peer knows the second
        let first = topo.ids[0];
        let second = topo.ids[1];
        let st = net.engine().state(first).unwrap();
        assert!(st.level(0).unwrap().nu.contains(&NodeRef::real(second)));
    }

    #[test]
    fn snapshot_roundtrips_state() {
        let topo = TopologyKind::Star.generate(5, 2);
        let net = ReChordNetwork::from_topology(&topo, 1);
        let g = net.snapshot();
        assert_eq!(g.real_count(), 5);
        assert_eq!(g.edge_counts().total(), topo.edges.len());
    }

    #[test]
    fn small_network_stabilizes_and_audits_clean() {
        let topo = TopologyKind::Random.generate(8, 7);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(5_000);
        assert!(report.converged, "8-peer random graph must stabilize");
        let audit = net.audit();
        assert!(
            audit.missing_unmarked.is_empty(),
            "missing desired edges: {:?}",
            audit.missing_unmarked
        );
        assert!(audit.weakly_connected);
    }

    #[test]
    fn almost_stable_no_later_than_stable() {
        let topo = TopologyKind::Random.generate(6, 3);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let (report, almost) = net.run_until_stable_tracking_almost(5_000);
        assert!(report.converged);
        let almost = almost.expect("stable implies almost-stable was seen");
        assert!(almost <= report.rounds);
    }

    #[test]
    fn metrics_reflect_stable_structure() {
        let topo = TopologyKind::Random.generate(10, 11);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        net.run_until_stable(5_000);
        let m = net.metrics();
        assert_eq!(m.real_nodes, 10);
        assert!(m.virtual_nodes >= 10, "every peer simulates at least u_1");
        assert!(m.total_edges() > 0);
    }
}

//! Rule 1 — *Virtual Nodes*: keep exactly the levels `1..=m` alive.
//!
//! > Create all virtual nodes `u_i`, `i <= m` (if not existing). Delete all
//! > virtual nodes `u_j`, `j > m` (if existing) as they are needless. In
//! > case a virtual node `u_i` is deleted, the virtual node `u_m` is
//! > informed about `u_i`'s neighborhood:
//! > `N_u(u_m) := N_u(u_m) ∪ N_u(u_i) ∪ N_r(u_i) ∪ N_c(u_i)`.

use super::RuleCtx;
use crate::state::VirtualState;

/// Applies rule 1 with the freshly computed `m` (see
/// [`crate::state::PeerState::compute_m`]).
pub fn apply(ctx: &mut RuleCtx<'_, '_>, m: u8) {
    // create-virtualnodes(u): u_i ∉ S(u) ∧ i <= m  →  S(u) := S(u) ∪ {u_i}
    for i in 1..=m {
        ctx.state.levels.entry(i).or_default();
    }

    // delete-virtualnodes(u): u_i ∈ S(u) ∧ i > m  →  hand over, then drop.
    let doomed: Vec<u8> = ctx.state.levels.keys().copied().filter(|&l| l > m).collect();
    if doomed.is_empty() {
        return;
    }
    let mut inherited = VirtualState::default();
    for lvl in &doomed {
        if let Some(vs) = ctx.state.levels.remove(lvl) {
            inherited.nu.extend(vs.nu);
            inherited.nu.extend(vs.nr);
            inherited.nu.extend(vs.nc);
        }
    }
    let um_ref = ctx.node(m);
    let um = ctx.state.levels.get_mut(&m).expect("u_m exists after creation");
    for t in inherited.nu {
        if t != um_ref {
            um.nu.insert(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::NodeRef;
    use rechord_id::Ident;

    #[test]
    fn creates_levels_up_to_m() {
        let me = Ident::from_f64(0.2);
        let mut st = PeerState::new();
        let msgs = run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 4));
        assert!(msgs.is_empty(), "rule 1 is purely local");
        assert_eq!(st.levels.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deletes_deeper_levels_and_hands_over() {
        let me = Ident::from_f64(0.2);
        let mut st = PeerState::new();
        for l in [1u8, 2, 3, 4, 5, 6] {
            st.levels.entry(l).or_default();
        }
        let a = NodeRef::real(Ident::from_f64(0.5));
        let b = NodeRef::real(Ident::from_f64(0.6));
        let c = NodeRef::real(Ident::from_f64(0.7));
        st.level_mut(5).unwrap().nu.insert(a);
        st.level_mut(6).unwrap().nr.insert(b);
        st.level_mut(6).unwrap().nc.insert(c);
        run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 4));
        assert_eq!(st.deepest_level(), 4);
        let um = st.level(4).unwrap();
        // all classes of the deleted nodes land in N_u(u_m)
        assert!(um.nu.contains(&a) && um.nu.contains(&b) && um.nu.contains(&c));
        assert!(um.nr.is_empty() && um.nc.is_empty());
    }

    #[test]
    fn handover_drops_self_reference() {
        let me = Ident::from_f64(0.2);
        let mut st = PeerState::new();
        st.levels.entry(4).or_default();
        st.levels.entry(7).or_default();
        // deleted node held an edge to u_4 itself
        let um_ref = PeerState::node_ref(me, 4);
        st.level_mut(7).unwrap().nu.insert(um_ref);
        run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 4));
        assert!(st.level(4).unwrap().nu.is_empty());
    }

    #[test]
    fn idempotent_when_levels_match() {
        let me = Ident::from_f64(0.9);
        let mut st = PeerState::new();
        run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 3));
        let snapshot = st.clone();
        run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 3));
        assert_eq!(st, snapshot);
    }

    #[test]
    fn level_zero_survives_any_m() {
        let me = Ident::from_f64(0.4);
        let mut st = PeerState::new();
        st.levels.entry(9).or_default();
        run_rule(me, &mut st, &[], |ctx| super::apply(ctx, 1));
        assert!(st.level(0).is_some());
        assert_eq!(st.deepest_level(), 1);
    }
}

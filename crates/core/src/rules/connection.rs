//! Rule 6 — *Connection Edges*: keep contiguous virtual siblings connected.
//!
//! Rule 1 can delete or recreate virtual nodes, so the graph over virtual
//! nodes is not automatically weakly connected even when the peers are. Each
//! pair of contiguous siblings therefore launches a *connection edge* every
//! round, which hops greedily rightward (toward its target) through the
//! launching peer's knowledge; a holder that is itself the last known node
//! below the target dissolves the edge into a backward unmarked edge:
//!
//! * `connect-virtual-nodes(u)`: `u_i, u_j ∈ S(u) ∧ u_j = min{u_l > u_i}`
//!   → `N_c(u_i) := N_c(u_i) ∪ {u_j}`
//! * `forward-cedges-1(u_i)`: `v ∈ N_c(u_i) ∧
//!   w = max{x ∈ N_u(u_i) ∪ S(u_i) : x < v} ∧ w ≠ u_i`
//!   → `N_c(w) <- N_c(w) ∪ {v}; N_c(u_i) := N_c(u_i) \ {v}`
//! * `forward-cedges-2(u_i)`: `... ∧ w = u_i`
//!   → `N_u(v) <- N_u(v) ∪ {u_i}; N_c(u_i) := N_c(u_i) \ {v}`
//!
//! The steady state is a constant in-flight stream of connection edges along
//! each sibling gap — `Θ(log n)` per virtual node in expectation (paper
//! §2.2), which is what Figure 5 counts as "connection edges".

use super::{max_below, RuleCtx};
use rechord_graph::{EdgeKind, NodeRef};
use std::collections::BTreeSet;

/// Applies rule 6: sibling linking, then forwarding, per level.
pub fn apply(ctx: &mut RuleCtx<'_, '_>) {
    // connect-virtual-nodes: contiguous siblings by ring position.
    let siblings = ctx.state.siblings(ctx.me);
    for pair in siblings.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(vs) = ctx.state.level_mut(a.level) {
            vs.nc.insert(b);
        }
    }

    // forward-cedges-{1,2}
    for lvl in ctx.levels() {
        let ui = ctx.node(lvl);
        let held: Vec<NodeRef> =
            ctx.state.level(lvl).map(|vs| vs.nc.iter().copied().collect()).unwrap_or_default();
        if held.is_empty() {
            continue;
        }
        // N_u(u_i) ∪ S(u_i): this level's unmarked neighbors plus siblings.
        let mut pool: BTreeSet<NodeRef> = siblings.iter().copied().collect();
        if let Some(vs) = ctx.state.level(lvl) {
            pool.extend(vs.nu.iter().copied());
        }
        for v in held {
            if v == ui {
                if let Some(vs) = ctx.state.level_mut(lvl) {
                    vs.nc.remove(&v);
                }
                continue;
            }
            match max_below(&pool, v) {
                Some(w) if w != ui => {
                    // hop the edge to the known node closest below v
                    ctx.send_insert(w, EdgeKind::Connection, v);
                    if let Some(vs) = ctx.state.level_mut(lvl) {
                        vs.nc.remove(&v);
                    }
                }
                Some(_) => {
                    // u_i is the last known node below v: backward unmarked
                    // edge from v to u_i closes the gap.
                    ctx.send_insert(v, EdgeKind::Unmarked, ui);
                    if let Some(vs) = ctx.state.level_mut(lvl) {
                        vs.nc.remove(&v);
                    }
                }
                None => {
                    // v lies below everything we know (possible only in
                    // corrupted initial states): same dissolution keeps the
                    // pair weakly connected.
                    ctx.send_insert(v, EdgeKind::Unmarked, ui);
                    if let Some(vs) = ctx.state.level_mut(lvl) {
                        vs.nc.remove(&v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::msg::Msg;
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::{EdgeKind, NodeRef};
    use rechord_id::Ident;

    fn real(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    #[test]
    fn contiguous_siblings_get_linked_each_round() {
        // owner 0.6: siblings by position u_1(0.1) < u_0(0.6) < u_2(0.85).
        let me = Ident::from_f64(0.6);
        let mut st = PeerState::new();
        st.levels.entry(1).or_default();
        st.levels.entry(2).or_default();
        run_rule(me, &mut st, &[], super::apply);
        // (u_1 → u_0) and (u_0 → u_2) are created; with empty knowledge the
        // forwarding immediately dissolves them into backward unmarked sends,
        // removing them from nc again — so check the messages instead.
        let mut st2 = PeerState::new();
        st2.levels.entry(1).or_default();
        st2.levels.entry(2).or_default();
        let msgs = run_rule(me, &mut st2, &[], super::apply);
        let backward: Vec<(NodeRef, NodeRef)> =
            msgs.iter().filter(|m| m.kind == EdgeKind::Unmarked).map(|m| (m.at, m.edge)).collect();
        let u0 = PeerState::node_ref(me, 0);
        let u1 = PeerState::node_ref(me, 1);
        let u2 = PeerState::node_ref(me, 2);
        assert!(backward.contains(&(u0, u1)), "u_0 told to point back at u_1");
        assert!(backward.contains(&(u2, u0)), "u_2 told to point back at u_0");
    }

    #[test]
    fn forwarding_hops_to_max_known_below_target() {
        // u_0 (0.1) holds a connection edge to v = 0.9 and knows w = 0.5:
        // the edge hops to w.
        let me = Ident::from_f64(0.1);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nc.insert(real(0.9));
        st.level_mut(0).unwrap().nu.insert(real(0.5));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let hops: Vec<(NodeRef, NodeRef)> = msgs
            .iter()
            .filter(|m| m.kind == EdgeKind::Connection)
            .map(|m| (m.at, m.edge))
            .collect();
        assert!(hops.contains(&(real(0.5), real(0.9))));
        assert!(st.level(0).unwrap().nc.iter().all(|&t| t != real(0.9)), "edge moved on");
    }

    #[test]
    fn last_node_below_target_dissolves_to_backward_edge() {
        // u_0 (0.5) holds a connection edge to v = 0.9 and knows only nodes
        // ≤ itself: u_0 is the max below v → v is told to point back.
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nc.insert(real(0.9));
        st.level_mut(0).unwrap().nu.insert(real(0.2));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let m: Vec<&Msg> = msgs.iter().filter(|m| m.kind == EdgeKind::Unmarked).collect();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].at, real(0.9));
        assert_eq!(m[0].edge, NodeRef::real(me));
        assert!(st.level(0).unwrap().nc.is_empty());
    }

    #[test]
    fn forwarding_pool_is_level_local_plus_siblings() {
        // Knowledge of *other* levels must not be used by forwarding:
        // u_0 (0.1) holds c-edge to 0.9; u_1 (0.6) knows 0.7, but the pool
        // for u_0 is N_u(u_0) ∪ S = {0.6 sibling}; max below 0.9 is u_1.
        let me = Ident::from_f64(0.1);
        let mut st = PeerState::new();
        st.levels.entry(1).or_default(); // u_1 at 0.6
        st.level_mut(1).unwrap().nu.insert(real(0.7));
        st.level_mut(0).unwrap().nc.insert(real(0.9));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let hops: Vec<(NodeRef, NodeRef)> = msgs
            .iter()
            .filter(|m| m.kind == EdgeKind::Connection)
            .map(|m| (m.at, m.edge))
            .collect();
        let u1 = PeerState::node_ref(me, 1);
        assert!(hops.contains(&(u1, real(0.9))), "hop to sibling, not to u_1's neighbor");
    }

    #[test]
    fn self_targeted_connection_edge_removed() {
        let me = Ident::from_f64(0.4);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nc.insert(NodeRef::real(me));
        run_rule(me, &mut st, &[], super::apply);
        assert!(st.level(0).unwrap().nc.is_empty());
    }

    #[test]
    fn single_level_peer_creates_no_connection_edges() {
        let me = Ident::from_f64(0.4);
        let mut st = PeerState::new();
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(msgs.is_empty());
        assert!(st.level(0).unwrap().nc.is_empty());
    }
}

//! The six self-stabilization rules of paper §2.3, one module each, applied
//! in paper order by [`crate::protocol::ReChordProtocol`].
//!
//! Shared conventions (paper §2.3 "Note that these rules are…"):
//!
//! * Immediate assignments (`:=`) only ever touch the executing peer's own
//!   sibling states and are visible to later rules in the same round;
//!   a locally deleted edge is *not* considered again this round.
//! * Delayed assignments (`<-`) become [`Msg`] inserts applied at the round
//!   boundary.
//! * Guards may read a neighbor's variables; those reads go against the
//!   previous round's snapshot (DESIGN.md A3).

use crate::msg::Msg;
use crate::state::PeerState;
use rechord_graph::{EdgeKind, NodeRef};
use rechord_id::Ident;
use rechord_sim::{Outbox, RoundView};
use std::collections::BTreeSet;

pub mod closest_real;
pub mod connection;
pub mod linearize;
pub mod overlap;
pub mod ring;
pub mod virtual_nodes;

/// Everything a rule can touch while executing for one peer.
pub struct RuleCtx<'a, 'v> {
    /// The executing peer's identifier (`u = u_0`).
    pub me: Ident,
    /// The peer's own state — immediate assignments go here.
    pub state: &'a mut PeerState,
    /// Previous-round snapshot of all peers — neighbor-variable guards read
    /// from here.
    pub view: &'a RoundView<'v, PeerState>,
    /// Delayed assignments.
    pub out: &'a mut Outbox<Msg>,
}

impl<'a, 'v> RuleCtx<'a, 'v> {
    /// Emits the delayed assignment `N_kind(at) <- N_kind(at) ∪ {edge}`.
    /// Self-edges are dropped at the source.
    pub fn send_insert(&mut self, at: NodeRef, kind: EdgeKind, edge: NodeRef) {
        if at == edge {
            return;
        }
        self.out.send(at.owner, Msg { at, kind, edge });
    }

    /// The executing peer's node reference at `level`.
    pub fn node(&self, level: u8) -> NodeRef {
        PeerState::node_ref(self.me, level)
    }

    /// Levels currently simulated, ascending by level number.
    pub fn levels(&self) -> Vec<u8> {
        self.state.levels.keys().copied().collect()
    }

    /// `rl(y)` as observable by this peer: own siblings read the current
    /// in-round state; foreign nodes read the snapshot. `None` means
    /// "unknown", which guards treat as `-∞` (the information is sent).
    pub fn observed_rl(&self, y: NodeRef) -> Option<NodeRef> {
        if y.owner == self.me {
            self.state.level(y.level).and_then(|vs| vs.rl)
        } else {
            self.view.get(y.owner).and_then(|st| st.level(y.level)).and_then(|vs| vs.rl)
        }
    }

    /// `rr(y)` as observable by this peer (see [`RuleCtx::observed_rl`]).
    pub fn observed_rr(&self, y: NodeRef) -> Option<NodeRef> {
        if y.owner == self.me {
            self.state.level(y.level).and_then(|vs| vs.rr)
        } else {
            self.view.get(y.owner).and_then(|st| st.level(y.level)).and_then(|vs| vs.rr)
        }
    }
}

/// Largest element of `set` strictly below `x` (paper's `max{w : w < x}`).
pub fn max_below(set: &BTreeSet<NodeRef>, x: NodeRef) -> Option<NodeRef> {
    set.range(..x).next_back().copied()
}

/// Smallest element of `set` strictly above `x` (paper's `min{w : w > x}`).
pub fn min_above(set: &BTreeSet<NodeRef>, x: NodeRef) -> Option<NodeRef> {
    use std::ops::Bound;
    set.range((Bound::Excluded(x), Bound::Unbounded)).next().copied()
}

/// Largest **real** element strictly below `x`.
pub fn max_real_below(set: &BTreeSet<NodeRef>, x: NodeRef) -> Option<NodeRef> {
    set.range(..x).rev().find(|r| r.is_real()).copied()
}

/// Smallest **real** element strictly above `x`.
pub fn min_real_above(set: &BTreeSet<NodeRef>, x: NodeRef) -> Option<NodeRef> {
    use std::ops::Bound;
    set.range((Bound::Excluded(x), Bound::Unbounded)).find(|r| r.is_real()).copied()
}

/// Test scaffolding shared by the per-rule unit tests: builds a [`RuleCtx`]
/// over an explicit neighbor snapshot and captures the emitted messages.
#[cfg(test)]
pub(crate) mod testkit {
    use super::*;

    /// Runs `f` in a [`RuleCtx`] for peer `me` with state `state`, against a
    /// snapshot holding `neighbors` (sorted internally). Returns the emitted
    /// messages in deterministic order.
    pub fn run_rule(
        me: Ident,
        state: &mut PeerState,
        neighbors: &[(Ident, PeerState)],
        f: impl FnOnce(&mut RuleCtx<'_, '_>),
    ) -> Vec<Msg> {
        let mut sorted: Vec<(Ident, PeerState)> = neighbors.to_vec();
        sorted.sort_by_key(|(id, _)| *id);
        let ids: Vec<Ident> = sorted.iter().map(|(id, _)| *id).collect();
        let states: Vec<PeerState> = sorted.iter().map(|(_, st)| st.clone()).collect();
        let view = RoundView::new(&ids, &states);
        let mut out = Outbox::new();
        {
            let mut ctx = RuleCtx { me, state, view: &view, out: &mut out };
            f(&mut ctx);
        }
        let mut msgs: Vec<Msg> = out.into_inner().into_iter().map(|(_, m)| m).collect();
        msgs.sort_unstable();
        msgs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(raw: u64) -> NodeRef {
        NodeRef::real(Ident::from_raw(raw))
    }

    fn v(raw: u64, lvl: u8) -> NodeRef {
        NodeRef::virtual_node(Ident::from_raw(raw), lvl)
    }

    #[test]
    fn range_helpers() {
        let set: BTreeSet<NodeRef> = [r(10), v(20, 4), r(30)].into_iter().collect();
        // v(20,4) sits at 20 + 2^60, i.e. position way above 30
        assert_eq!(max_below(&set, r(30)), Some(r(10)));
        assert_eq!(min_above(&set, r(10)), Some(r(30)));
        assert_eq!(max_real_below(&set, v(20, 4)), Some(r(30)));
        assert_eq!(min_real_above(&set, r(30)), None);
        assert_eq!(min_real_above(&set, r(5)), Some(r(10)));
        assert_eq!(max_below(&set, r(10)), None);
    }

    #[test]
    fn real_filters_skip_virtuals() {
        let set: BTreeSet<NodeRef> = [v(1, 1), r(100), v(2, 1)].into_iter().collect();
        // virtuals at ~half the ring; r(100) is the only real
        assert_eq!(max_real_below(&set, v(1, 1)), Some(r(100)));
        assert_eq!(min_real_above(&set, r(100)), None);
    }
}

//! Rule 3 — *Closest Real Neighbor*: every node locates and links the
//! nearest real node on each side, and spreads the news.
//!
//! > For each `u_i` find the closest left and right real neighbor. Inform
//! > all neighbors in the interval between the closest real neighbors about
//! > the found closest real neighbors. We define
//! > `rl(u_i) = max{w ∈ N(u_i) : w ∈ V_r ∧ w < u_i}` and
//! > `rr(u_i) = min{w ∈ N(u_i) : w ∈ V_r ∧ w > u_i}`.
//! >
//! > `left-realneighbor(u_i)`:
//! >   `v = max{w ∈ N(u_i) : w ∈ V_r ∧ w < u_i}; y ∈ N_u(u_i);
//! >    y > u_i ∨ v < y < u_i; v > rl(y)`
//! >   → `N_u(u_i) := N_u(u_i) ∪ {v}; N_u(y) <- N_u(y) ∪ {v}; rl(u_i) := v`
//! >
//! > (`right-realneighbor` symmetric.)
//!
//! `N(u_i)` is the peer-wide knowledge (identical for all siblings), so `v`
//! is computed once per peer per side-per-level. The `v > rl(y)` guard reads
//! the neighbor's register from the previous-round snapshot (DESIGN.md A3);
//! an unknown `rl(y)` counts as `-∞` (the message is sent — inserts are
//! idempotent). When no real node is known on a side, the register is
//! cleared: a stale `rl`/`rr` must not survive arbitrary initial states.

use super::{max_real_below, min_real_above, RuleCtx};
use rechord_graph::{EdgeKind, NodeRef};

/// Applies rule 3 to every level.
pub fn apply(ctx: &mut RuleCtx<'_, '_>) {
    let known = ctx.state.known(ctx.me);
    for lvl in ctx.levels() {
        let ui = ctx.node(lvl);
        let vl = max_real_below(&known, ui);
        let vr = min_real_above(&known, ui);

        // left-realneighbor(u_i)
        if let Some(v) = vl {
            let informs = neighbors_to_inform(ctx, lvl, ui, v, Side::Left);
            if let Some(vs) = ctx.state.level_mut(lvl) {
                vs.nu.insert(v);
                vs.rl = Some(v);
            }
            for y in informs {
                ctx.send_insert(y, EdgeKind::Unmarked, v);
            }
        } else if let Some(vs) = ctx.state.level_mut(lvl) {
            vs.rl = None;
        }

        // right-realneighbor(u_i)
        if let Some(v) = vr {
            let informs = neighbors_to_inform(ctx, lvl, ui, v, Side::Right);
            if let Some(vs) = ctx.state.level_mut(lvl) {
                vs.nu.insert(v);
                vs.rr = Some(v);
            }
            for y in informs {
                ctx.send_insert(y, EdgeKind::Unmarked, v);
            }
        } else if let Some(vs) = ctx.state.level_mut(lvl) {
            vs.rr = None;
        }
    }
}

enum Side {
    Left,
    Right,
}

/// The `y ∈ N_u(u_i)` satisfying the informing guard for the found real
/// neighbor `v`.
fn neighbors_to_inform(
    ctx: &RuleCtx<'_, '_>,
    lvl: u8,
    ui: NodeRef,
    v: NodeRef,
    side: Side,
) -> Vec<NodeRef> {
    let Some(vs) = ctx.state.level(lvl) else { return Vec::new() };
    vs.nu
        .iter()
        .copied()
        .filter(|&y| y != v)
        .filter(|&y| match side {
            // y > u_i ∨ v < y < u_i, and v improves on y's register
            Side::Left => {
                (y > ui || (v < y && y < ui)) && ctx.observed_rl(y).is_none_or(|rly| v > rly)
            }
            // y < u_i ∨ v > y > u_i
            Side::Right => {
                (y < ui || (v > y && y > ui)) && ctx.observed_rr(y).is_none_or(|rry| v < rry)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::msg::Msg;
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::{EdgeKind, NodeRef};
    use rechord_id::Ident;

    fn real(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    #[test]
    fn finds_and_links_closest_reals() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        // knowledge: reals at 0.2, 0.4 (left), 0.7 (right), virtual 0.45
        for n in [real(0.2), real(0.4), real(0.7)] {
            st.level_mut(0).unwrap().nu.insert(n);
        }
        st.level_mut(0).unwrap().nu.insert(NodeRef::virtual_node(Ident::from_f64(0.2), 2));
        run_rule(me, &mut st, &[], super::apply);
        let vs = st.level(0).unwrap();
        assert_eq!(vs.rl, Some(real(0.4)), "closest left real");
        assert_eq!(vs.rr, Some(real(0.7)), "closest right real");
        assert!(vs.nu.contains(&real(0.4)) && vs.nu.contains(&real(0.7)));
    }

    #[test]
    fn knowledge_is_peer_wide() {
        // The real neighbor is only known to a *different* level: rule 3
        // still finds it because N(u_i) unions all siblings' N_u.
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.levels.entry(1).or_default(); // u_1 at 0.0
        st.level_mut(1).unwrap().nu.insert(real(0.45));
        run_rule(me, &mut st, &[], super::apply);
        assert_eq!(st.level(0).unwrap().rl, Some(real(0.45)));
    }

    #[test]
    fn informs_neighbors_in_interval_and_above() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        let v = real(0.3);
        // `between` must be virtual: a real node at 0.42 would itself be the
        // closest left real. Owner 0.17, level 2 → position 0.42.
        let between = NodeRef::virtual_node(Ident::from_f64(0.17), 2); // v < y < u_i → informed
        let above = real(0.8); // y > u_i       → informed
        let below = real(0.1); // y < v         → not informed (left side)
        for n in [v, between, above, below] {
            st.level_mut(0).unwrap().nu.insert(n);
        }
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let left_informs: Vec<&Msg> =
            msgs.iter().filter(|m| m.kind == EdgeKind::Unmarked && m.edge == v).collect();
        let targets: Vec<NodeRef> = left_informs.iter().map(|m| m.at).collect();
        assert!(targets.contains(&between));
        assert!(targets.contains(&above));
        assert!(!targets.contains(&below));
    }

    #[test]
    fn snapshot_guard_suppresses_redundant_informs() {
        let me = Ident::from_f64(0.5);
        let y_id = Ident::from_f64(0.8);
        let v = real(0.3);
        // y already records rl = 0.3: guard v > rl(y) fails, no message.
        let mut y_state = PeerState::new();
        y_state.level_mut(0).unwrap().rl = Some(v);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nu.insert(v);
        st.level_mut(0).unwrap().nu.insert(NodeRef::real(y_id));
        let msgs = run_rule(me, &mut st, &[(y_id, y_state)], super::apply);
        assert!(
            !msgs.iter().any(|m| m.at == NodeRef::real(y_id) && m.edge == v),
            "y already knows a better-or-equal rl"
        );
    }

    #[test]
    fn stale_register_cleared_when_side_empty() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().rl = Some(real(0.2)); // garbage from initial state
        st.level_mut(0).unwrap().nu.insert(real(0.9)); // only a right real known
        run_rule(me, &mut st, &[], super::apply);
        let vs = st.level(0).unwrap();
        assert_eq!(vs.rl, None, "no left real in knowledge → cleared");
        assert_eq!(vs.rr, Some(real(0.9)));
    }

    #[test]
    fn own_real_node_can_be_a_sibling_register() {
        // A virtual level's closest real is often its own peer: u_0 ∈ N(u).
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.levels.entry(2).or_default(); // u_2 at 0.75
        run_rule(me, &mut st, &[], super::apply);
        assert_eq!(st.level(2).unwrap().rl, Some(NodeRef::real(me)));
    }
}

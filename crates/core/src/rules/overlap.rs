//! Rule 2 — *Overlapping Neighborhood*: a peer re-homes an unmarked edge to
//! the sibling closest to its target.
//!
//! > For each `u_i` check the neighborhood `N_u(u_i)`. If there is a
//! > `w ∈ N_u(u_i)` and a `u_j ∈ S(u_i)` such that `w < u_j < u_i` or
//! > `w > u_j > u_i`, then replace `(u_i, w)` by `(u_j, w)`. This is done
//! > because `u_j` is closer to `w` and `u_i` is aware of this fact as
//! > `u_i` and `u_j` belong to the same real node (Fig. 2).
//!
//! Both the removal and the insertion are immediate (`:=`): siblings live on
//! the same peer. We re-home to the qualifying sibling *closest to `w`*,
//! which is the fixpoint any sequence of single-sibling moves would reach
//! within the round (the paper fires the action "for all combinations of
//! parameters").

use super::RuleCtx;
use rechord_graph::NodeRef;

/// Applies rule 2 to every level.
pub fn apply(ctx: &mut RuleCtx<'_, '_>) {
    let siblings = ctx.state.siblings(ctx.me);
    for lvl in ctx.levels() {
        let ui = ctx.node(lvl);
        let Some(vs) = ctx.state.level(lvl) else { continue };
        let moves: Vec<(NodeRef, NodeRef)> = vs
            .nu
            .iter()
            .filter_map(|&w| best_sibling_between(&siblings, w, ui).map(|uj| (w, uj)))
            .collect();
        for (w, uj) in moves {
            if let Some(vs) = ctx.state.level_mut(lvl) {
                vs.nu.remove(&w);
            }
            if w != uj {
                if let Some(vsj) = ctx.state.level_mut(uj.level) {
                    vsj.nu.insert(w);
                }
            }
        }
    }
}

/// The sibling strictly between `w` and `ui` that is closest to `w`, if any.
fn best_sibling_between(siblings: &[NodeRef], w: NodeRef, ui: NodeRef) -> Option<NodeRef> {
    if w < ui {
        // w < u_j < u_i: the minimal such sibling is closest to w.
        siblings.iter().copied().find(|&s| w < s && s < ui)
    } else if w > ui {
        // w > u_j > u_i: the maximal such sibling is closest to w.
        siblings.iter().rev().copied().find(|&s| w > s && s > ui)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::NodeRef;
    use rechord_id::Ident;

    /// Owner at 0.6 has u_1 = 0.1, u_2 = 0.85; sorted siblings: u_1, u_0, u_2.
    fn peer_with_levels(_me: Ident, levels: &[u8]) -> PeerState {
        let mut st = PeerState::new();
        for &l in levels {
            st.levels.entry(l).or_default();
        }
        st
    }

    #[test]
    fn edge_rehomed_to_closest_sibling_below() {
        let me = Ident::from_f64(0.6);
        let mut st = peer_with_levels(me, &[1, 2]);
        // w at 0.7: for u_2 (0.85), sibling u_0 (0.6)?? w>u_j>u_i fails;
        // use the paper's Fig 2 shape instead: w < u_j < u_i.
        // w = 0.05 is a left neighbor of u_0 (0.6); sibling u_1 (0.1) lies
        // between: 0.05 < 0.1 < 0.6, so the edge moves to u_1.
        let w = NodeRef::real(Ident::from_f64(0.05));
        st.level_mut(0).unwrap().nu.insert(w);
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(msgs.is_empty(), "rule 2 is local to the peer");
        assert!(!st.level(0).unwrap().nu.contains(&w));
        assert!(st.level(1).unwrap().nu.contains(&w));
    }

    #[test]
    fn edge_rehomed_to_closest_sibling_above() {
        let me = Ident::from_f64(0.6);
        let mut st = peer_with_levels(me, &[1, 2]);
        // w = 0.95 right of u_0 (0.6); sibling u_2 (0.85) lies between:
        // 0.95 > 0.85 > 0.6.
        let w = NodeRef::real(Ident::from_f64(0.95));
        st.level_mut(0).unwrap().nu.insert(w);
        run_rule(me, &mut st, &[], super::apply);
        assert!(!st.level(0).unwrap().nu.contains(&w));
        assert!(st.level(2).unwrap().nu.contains(&w));
    }

    #[test]
    fn closest_of_several_siblings_wins() {
        // owner at 0.9: u_1=0.4, u_2=0.15, u_3=0.025 (wrapping). For u_0
        // (0.9) and w=0.3 the only sibling in (0.3, 0.9) is u_1 at 0.4, the
        // qualifying sibling closest to w; deeper levels sit below w.
        let me = Ident::from_f64(0.9);
        let mut st = peer_with_levels(me, &[1, 2, 3]);
        let w = NodeRef::real(Ident::from_f64(0.3));
        st.level_mut(0).unwrap().nu.insert(w);
        run_rule(me, &mut st, &[], super::apply);
        assert!(st.level(1).unwrap().nu.contains(&w));
        assert!(!st.level(2).unwrap().nu.contains(&w));
        assert!(!st.level(3).unwrap().nu.contains(&w));
    }

    #[test]
    fn no_move_when_no_sibling_between() {
        let me = Ident::from_f64(0.6);
        let mut st = peer_with_levels(me, &[1]); // u_1 = 0.1
                                                 // w = 0.3: sibling set between 0.3 and 0.6 is empty (u_1=0.1 < w).
        let w = NodeRef::real(Ident::from_f64(0.3));
        st.level_mut(0).unwrap().nu.insert(w);
        let before = st.clone();
        run_rule(me, &mut st, &[], super::apply);
        assert_eq!(st, before);
    }

    #[test]
    fn already_closest_level_keeps_edge() {
        let me = Ident::from_f64(0.6);
        let mut st = peer_with_levels(me, &[1, 2]);
        // edge held by u_1 (0.1) to w = 0.05: no sibling in (0.05, 0.1).
        let w = NodeRef::real(Ident::from_f64(0.05));
        st.level_mut(1).unwrap().nu.insert(w);
        let before = st.clone();
        run_rule(me, &mut st, &[], super::apply);
        assert_eq!(st, before);
    }

    #[test]
    fn ring_and_connection_edges_untouched() {
        let me = Ident::from_f64(0.6);
        let mut st = peer_with_levels(me, &[1]);
        let w = NodeRef::real(Ident::from_f64(0.05));
        st.level_mut(0).unwrap().nr.insert(w);
        st.level_mut(0).unwrap().nc.insert(w);
        let before = st.clone();
        run_rule(me, &mut st, &[], super::apply);
        assert_eq!(st, before, "rule 2 only reads N_u");
    }
}

//! Rule 5 — *Ring Edge*: close the `[0,1)` wrap-around.
//!
//! Linearization alone produces a sorted *list*; the extremal nodes miss a
//! neighbor. A node missing its left (resp. right) neighbor asks the
//! largest (resp. smallest) node its peer knows to hold a marked ring edge
//! pointing back at it. Holders forward such edges greedily toward the true
//! extremum, or dissolve them into an unmarked edge once they know a node
//! beyond the requester (which proves the requester is not extremal):
//!
//! * `create-ring-edge-left(u_i)`:
//!   `v = max{x ∈ N(u)} ∧ ∄w ∈ N_u(u_i) : w < u_i` → `N_r(v) <- {u_i} ∪ N_r(v)`
//! * `forward-ring-edge-l1(u_i)`: `w ∈ N_r(u_i) ∧ w > u_i ∧
//!   v = min{x ∈ N(u_i)} ∧ v ≠ u_i ∧ ∄x ∈ N(u_i) ∪ N_r(u_i) : x > w`
//!   → `N_r(v) <- {w} ∪ N_r(v); N_r(u_i) := N_r(u_i) \ {w}`
//! * `forward-ring-edge-l2(u_i)`: `w ∈ N_r(u_i) ∧ w > u_i ∧
//!   ∃x ∈ N(u_i) ∪ N_r(u_i) : x > w`
//!   → `N_u(x) <- {w} ∪ N_u(x); N_r(u_i) := N_r(u_i) \ {w}`
//! * `r1`/`r2` symmetric for `w < u_i`.
//!
//! In the stable state the global minimum holds a persistent ring edge to
//! the global maximum and vice versa (they cannot forward: no better
//! candidate exists), while the per-round re-creations flow as a constant
//! in-transit stream along the greedy path — the state is a fixpoint even
//! though edges keep being recreated, because the stream pattern repeats
//! identically each round (DESIGN.md A7).
//!
//! `N(u)` in the create guard is the peer-wide knowledge (DESIGN.md A5);
//! when `l2`/`r2` can choose among several witnesses `x`, we take the one
//! closest to `w` (deterministic, and it minimizes the new edge's range,
//! matching the Phase-5 "unnecessary edges shrink" argument).

use super::{max_below, min_above, RuleCtx};
use rechord_graph::{EdgeKind, NodeRef};
use std::collections::BTreeSet;

/// Applies rule 5 to every level.
pub fn apply(ctx: &mut RuleCtx<'_, '_>) {
    let known = ctx.state.known(ctx.me);
    let global_min = known.iter().next().copied();
    let global_max = known.iter().next_back().copied();

    for lvl in ctx.levels() {
        let ui = ctx.node(lvl);
        let Some(vs) = ctx.state.level(lvl) else { continue };

        // create-ring-edge-left: no unmarked left neighbor.
        let has_left = vs.nu.range(..ui).next_back().is_some();
        if !has_left {
            if let Some(v) = global_max {
                if v != ui {
                    ctx.send_insert(v, EdgeKind::Ring, ui);
                }
            }
        }
        // create-ring-edge-right: no unmarked right neighbor.
        let has_right = {
            use std::ops::Bound;
            ctx.state.level(lvl).is_some_and(|vs| {
                vs.nu.range((Bound::Excluded(ui), Bound::Unbounded)).next().is_some()
            })
        };
        if !has_right {
            if let Some(v) = global_min {
                if v != ui {
                    ctx.send_insert(v, EdgeKind::Ring, ui);
                }
            }
        }

        // forward-ring-edge-{l1,l2,r1,r2}
        let held: Vec<NodeRef> =
            ctx.state.level(lvl).map(|vs| vs.nr.iter().copied().collect()).unwrap_or_default();
        for w in held {
            if w == ui {
                // degenerate self-target from an arbitrary initial state
                if let Some(vs) = ctx.state.level_mut(lvl) {
                    vs.nr.remove(&w);
                }
                continue;
            }
            let nr_now: BTreeSet<NodeRef> =
                ctx.state.level(lvl).map(|vs| vs.nr.clone()).unwrap_or_default();
            let mut pool: BTreeSet<NodeRef> = known.clone();
            pool.extend(nr_now.iter().copied());

            let disposition = if w > ui {
                // the requester believes it is the minimum
                if let Some(x) = min_above(&pool, w) {
                    Disposition::Dissolve(x)
                } else if let Some(v) = global_min.filter(|&v| v != ui && v < ui) {
                    Disposition::Forward(v)
                } else {
                    Disposition::Hold
                }
            } else {
                // w < ui: the requester believes it is the maximum
                if let Some(x) = max_below(&pool, w) {
                    Disposition::Dissolve(x)
                } else if let Some(v) = global_max.filter(|&v| v != ui && v > ui) {
                    Disposition::Forward(v)
                } else {
                    Disposition::Hold
                }
            };

            match disposition {
                Disposition::Dissolve(x) => {
                    ctx.send_insert(x, EdgeKind::Unmarked, w);
                    if let Some(vs) = ctx.state.level_mut(lvl) {
                        vs.nr.remove(&w);
                    }
                }
                Disposition::Forward(v) => {
                    ctx.send_insert(v, EdgeKind::Ring, w);
                    if let Some(vs) = ctx.state.level_mut(lvl) {
                        vs.nr.remove(&w);
                    }
                }
                Disposition::Hold => {}
            }
        }
    }
}

enum Disposition {
    /// A witness beyond `w` exists: convert to an unmarked edge `(x, w)`.
    Dissolve(NodeRef),
    /// Pass the ring edge to a better extremal candidate `v`.
    Forward(NodeRef),
    /// This node is the best candidate it knows: keep holding.
    Hold,
}

#[cfg(test)]
mod tests {
    use crate::msg::Msg;
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::{EdgeKind, NodeRef};
    use rechord_id::Ident;

    fn real(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    fn ring_msgs(msgs: &[Msg]) -> Vec<(NodeRef, NodeRef)> {
        msgs.iter().filter(|m| m.kind == EdgeKind::Ring).map(|m| (m.at, m.edge)).collect()
    }

    #[test]
    fn missing_left_neighbor_requests_edge_from_max_known() {
        let me = Ident::from_f64(0.1);
        let mut st = PeerState::new();
        // only right neighbors known: u believes it may be the minimum
        st.level_mut(0).unwrap().nu.insert(real(0.4));
        st.level_mut(0).unwrap().nu.insert(real(0.8));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(
            ring_msgs(&msgs).contains(&(real(0.8), NodeRef::real(me))),
            "largest known node is asked to hold a ring edge to u"
        );
    }

    #[test]
    fn missing_right_neighbor_requests_edge_from_min_known() {
        let me = Ident::from_f64(0.9);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nu.insert(real(0.2));
        st.level_mut(0).unwrap().nu.insert(real(0.5));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(ring_msgs(&msgs).contains(&(real(0.2), NodeRef::real(me))));
    }

    #[test]
    fn dissolves_when_witness_beyond_target_exists() {
        // u holds a ring edge to w = 0.7 (w thinks it's the max) but u knows
        // x = 0.9 > w: the ring edge becomes the unmarked edge (x, w).
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nr.insert(real(0.7));
        st.level_mut(0).unwrap().nu.insert(real(0.9));
        st.level_mut(0).unwrap().nu.insert(real(0.4)); // keep left side closed
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let unmarked: Vec<(NodeRef, NodeRef)> =
            msgs.iter().filter(|m| m.kind == EdgeKind::Unmarked).map(|m| (m.at, m.edge)).collect();
        assert!(unmarked.contains(&(real(0.9), real(0.7))));
        assert!(st.level(0).unwrap().nr.is_empty(), "ring edge removed");
    }

    #[test]
    fn forwards_toward_better_extremal_candidate() {
        // u (0.5) holds a ring edge to w = 0.9 (w > u: w thinks it is the
        // max and wants the minimum). u knows nothing above w but knows a
        // smaller node v = 0.2: forward the ring edge to v.
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nr.insert(real(0.9));
        st.level_mut(0).unwrap().nu.insert(real(0.2));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(ring_msgs(&msgs).contains(&(real(0.2), real(0.9))));
        assert!(st.level(0).unwrap().nr.is_empty());
    }

    #[test]
    fn extremal_holder_keeps_the_edge() {
        // u = 0.1 holds ring edge to w = 0.9; u knows nobody smaller than
        // itself and nobody above w: u is the best minimum candidate → hold.
        let me = Ident::from_f64(0.1);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nr.insert(real(0.9));
        st.level_mut(0).unwrap().nu.insert(real(0.9)); // knows w as neighbor too
        run_rule(me, &mut st, &[], super::apply);
        assert!(st.level(0).unwrap().nr.contains(&real(0.9)), "held");
    }

    #[test]
    fn self_targeted_ring_edge_is_garbage_collected() {
        let me = Ident::from_f64(0.3);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nr.insert(NodeRef::real(me));
        run_rule(me, &mut st, &[], super::apply);
        assert!(st.level(0).unwrap().nr.is_empty());
    }

    #[test]
    fn lone_peer_creates_no_ring_edges() {
        // A peer that knows nobody: max known = min known = itself.
        let me = Ident::from_f64(0.3);
        let mut st = PeerState::new();
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(ring_msgs(&msgs).is_empty());
    }

    #[test]
    fn stable_two_extremes_hold_each_other() {
        // min holds →max, max holds →min; neither can improve: fixpoint.
        let min_id = Ident::from_f64(0.1);
        let max_id = Ident::from_f64(0.9);
        let mut min_st = PeerState::new();
        min_st.level_mut(0).unwrap().nu.insert(real(0.9)); // right neighbor
        min_st.level_mut(0).unwrap().nr.insert(real(0.9)); // ring edge to max
        let before = min_st.clone();
        let msgs = run_rule(min_id, &mut min_st, &[(max_id, PeerState::new())], super::apply);
        // the held ring edge must survive; the (re)creation toward the max
        // known node is idempotent with the existing state
        assert_eq!(min_st.level(0).unwrap().nr, before.level(0).unwrap().nr);
        assert!(
            ring_msgs(&msgs).contains(&(real(0.9), NodeRef::real(min_id))),
            "min still misses a left neighbor and re-requests from max"
        );
    }
}

//! Rule 4 — *Linearization*: sort the unmarked neighborhood into a line.
//!
//! > For each `u_i`: sort all `w ∈ N_u(u_i), w < u_i` in descending order
//! > and create edges `(w_l, w_{l+1})` [forwarding — the edge's start moves
//! > to a node closer to its endpoint]. Sort all `w > u_i` ascending
//! > likewise. Create backward edges from the closest neighbors to `u_i`
//! > \[mirroring\]. Note: when the mirroring rule is executed, `u_i` has only
//! > its two closest (left and right) neighbors, by rule 3.
//!
//! Formal actions:
//!
//! * `lin-left(u_i)`: `w, v ∈ N_u(u_i) ∧ v, w < u_i ∧ v = max{y : y < w}`
//!   → `N_u(w) <- N_u(w) ∪ {v}; N_u(u_i) := N_u(u_i) \ {v}` — `u_i` keeps
//!   only its closest left neighbor, delegating each farther one to the next
//!   closer one.
//! * `lin-right` symmetric.
//! * `mirroring(u_i)`: `v ∈ N(u_i)` → `N_u(v) <- N_u(v) ∪ {u_i}`, then
//!   `N_u(u_i) := N_u(u_i) ∪ {rl(u_i)} ∪ {rr(u_i)}` — per the paper's note,
//!   the mirror targets are the closest left/right neighbors remaining after
//!   lin-left/lin-right, after which the closest-real edges are re-added so
//!   the stable neighborhood is `{closest-left, closest-right, rl, rr}`.

use super::RuleCtx;
use rechord_graph::{EdgeKind, NodeRef};

/// Applies rule 4 to every level.
pub fn apply(ctx: &mut RuleCtx<'_, '_>) {
    for lvl in ctx.levels() {
        let ui = ctx.node(lvl);
        let Some(vs) = ctx.state.level(lvl) else { continue };

        // lin-left: descending left neighbors w_0 > w_1 > ...; each w_l is
        // told about w_{l+1}; u_i unlearns everything but w_0.
        let lefts: Vec<NodeRef> = vs.nu.range(..ui).rev().copied().collect();
        // lin-right: ascending right neighbors.
        let rights: Vec<NodeRef> = {
            use std::ops::Bound;
            vs.nu.range((Bound::Excluded(ui), Bound::Unbounded)).copied().collect()
        };

        for pair in lefts.windows(2) {
            let (w, v) = (pair[0], pair[1]);
            ctx.send_insert(w, EdgeKind::Unmarked, v);
        }
        for pair in rights.windows(2) {
            let (w, v) = (pair[0], pair[1]);
            ctx.send_insert(w, EdgeKind::Unmarked, v);
        }
        if let Some(vs) = ctx.state.level_mut(lvl) {
            for v in lefts.iter().skip(1) {
                vs.nu.remove(v);
            }
            for v in rights.iter().skip(1) {
                vs.nu.remove(v);
            }
        }

        // mirroring: the remaining closest neighbors learn about u_i...
        let mirror_targets: Vec<NodeRef> =
            ctx.state.level(lvl).map(|vs| vs.nu.iter().copied().collect()).unwrap_or_default();
        for v in mirror_targets {
            ctx.send_insert(v, EdgeKind::Unmarked, ui);
        }
        // ...and the closest-real edges are restored.
        if let Some(vs) = ctx.state.level_mut(lvl) {
            let (rl, rr) = (vs.rl, vs.rr);
            if let Some(rl) = rl {
                if rl != ui {
                    vs.nu.insert(rl);
                }
            }
            if let Some(rr) = rr {
                if rr != ui {
                    vs.nu.insert(rr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::msg::Msg;
    use crate::rules::testkit::run_rule;
    use crate::state::PeerState;
    use rechord_graph::{EdgeKind, NodeRef};
    use rechord_id::Ident;

    fn real(x: f64) -> NodeRef {
        NodeRef::real(Ident::from_f64(x))
    }

    fn unmarked_msgs(msgs: &[Msg]) -> Vec<(NodeRef, NodeRef)> {
        msgs.iter().filter(|m| m.kind == EdgeKind::Unmarked).map(|m| (m.at, m.edge)).collect()
    }

    #[test]
    fn left_side_chains_descending() {
        let me = Ident::from_f64(0.9);
        let mut st = PeerState::new();
        // left neighbors 0.2 < 0.5 < 0.7 — u keeps 0.7; 0.7 learns 0.5;
        // 0.5 learns 0.2.
        for n in [real(0.2), real(0.5), real(0.7)] {
            st.level_mut(0).unwrap().nu.insert(n);
        }
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let sent = unmarked_msgs(&msgs);
        assert!(sent.contains(&(real(0.7), real(0.5))));
        assert!(sent.contains(&(real(0.5), real(0.2))));
        let nu = &st.level(0).unwrap().nu;
        assert!(nu.contains(&real(0.7)));
        assert!(!nu.contains(&real(0.5)) && !nu.contains(&real(0.2)));
    }

    #[test]
    fn right_side_chains_ascending() {
        let me = Ident::from_f64(0.1);
        let mut st = PeerState::new();
        for n in [real(0.3), real(0.6), real(0.8)] {
            st.level_mut(0).unwrap().nu.insert(n);
        }
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let sent = unmarked_msgs(&msgs);
        assert!(sent.contains(&(real(0.3), real(0.6))));
        assert!(sent.contains(&(real(0.6), real(0.8))));
        assert!(st.level(0).unwrap().nu.contains(&real(0.3)));
        assert_eq!(st.level(0).unwrap().nu.len(), 1);
    }

    #[test]
    fn mirroring_targets_closest_survivors_only() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        for n in [real(0.2), real(0.4), real(0.7), real(0.9)] {
            st.level_mut(0).unwrap().nu.insert(n);
        }
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let ui = NodeRef::real(me);
        let mirrors: Vec<NodeRef> = msgs.iter().filter(|m| m.edge == ui).map(|m| m.at).collect();
        assert!(mirrors.contains(&real(0.4)), "closest left is mirrored");
        assert!(mirrors.contains(&real(0.7)), "closest right is mirrored");
        assert!(!mirrors.contains(&real(0.2)) && !mirrors.contains(&real(0.9)));
    }

    #[test]
    fn closest_real_edges_restored_after_stripping() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        // rl register points to a *farther* left real (0.1); a virtual
        // neighbor 0.4 is closer. lin-left would strip 0.1; mirroring
        // restores it because it is the rl register.
        let rl = real(0.1);
        let closer = NodeRef::virtual_node(Ident::from_f64(0.15), 2); // pos 0.4
        st.level_mut(0).unwrap().nu.insert(rl);
        st.level_mut(0).unwrap().nu.insert(closer);
        st.level_mut(0).unwrap().rl = Some(rl);
        run_rule(me, &mut st, &[], super::apply);
        let nu = &st.level(0).unwrap().nu;
        assert!(nu.contains(&closer), "closest left kept");
        assert!(nu.contains(&rl), "rl restored by mirroring step");
    }

    #[test]
    fn stable_neighborhood_is_a_fixpoint_shape() {
        // With nu = {cl, cr, rl, rr} where rl < cl < u < cr < rr and
        // registers set, the round's net effect leaves nu unchanged.
        let me = Ident::from_f64(0.5);
        let (rl, cl, cr, rr) = (real(0.2), real(0.4), real(0.6), real(0.8));
        let mut st = PeerState::new();
        let vs = st.level_mut(0).unwrap();
        for n in [rl, cl, cr, rr] {
            vs.nu.insert(n);
        }
        vs.rl = Some(rl);
        vs.rr = Some(rr);
        let msgs = run_rule(me, &mut st, &[], super::apply);
        let nu = &st.level(0).unwrap().nu;
        assert_eq!(nu.len(), 4, "cl, cr, rl, rr survive the round");
        assert!(nu.contains(&rl) && nu.contains(&cl) && nu.contains(&cr) && nu.contains(&rr));
        // the forwarded edges are exactly (cl -> rl) and (cr -> rr): both
        // already exist in the stable state at their targets.
        let sent = unmarked_msgs(&msgs);
        assert!(sent.contains(&(cl, rl)));
        assert!(sent.contains(&(cr, rr)));
    }

    #[test]
    fn single_neighbor_side_is_untouched() {
        let me = Ident::from_f64(0.5);
        let mut st = PeerState::new();
        st.level_mut(0).unwrap().nu.insert(real(0.4));
        let msgs = run_rule(me, &mut st, &[], super::apply);
        assert!(st.level(0).unwrap().nu.contains(&real(0.4)));
        // only the mirror message is emitted
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].at, real(0.4));
        assert_eq!(msgs[0].edge, NodeRef::real(me));
    }
}

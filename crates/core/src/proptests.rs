//! Property-based tests of the protocol's global invariants.

use crate::network::ReChordNetwork;
use crate::oracle;
use proptest::prelude::*;
use rechord_graph::connectivity;
use rechord_topology::TopologyKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Convergence (Theorem 1.1, bounded n): from random weakly connected
    /// states the network reaches a fixpoint whose desired edges all exist.
    #[test]
    fn converges_from_random_states(n in 2usize..14, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(20_000);
        prop_assert!(report.converged, "n={n} seed={seed} did not stabilize");
        let audit = net.audit();
        prop_assert!(audit.missing_unmarked.is_empty(),
            "missing edges at fixpoint: {:?}", audit.missing_unmarked);
        prop_assert!(audit.weakly_connected);
        prop_assert!(audit.virtual_set_matches);
    }

    /// Peer-level weak connectivity is never lost on the way to stability
    /// (the precondition of the proofs must be an invariant of the rules).
    #[test]
    fn connectivity_is_invariant(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        for _ in 0..60 {
            let out = net.round();
            prop_assert!(
                connectivity::peers_weakly_connected(&net.snapshot()),
                "peers disconnected mid-stabilization (n={n} seed={seed})"
            );
            if !out.changed {
                break;
            }
        }
    }

    /// The engine is deterministic: serial and 4-thread runs agree state-
    /// for-state.
    #[test]
    fn thread_count_invariance(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut serial = ReChordNetwork::from_topology(&topo, 1);
        let mut parallel = ReChordNetwork::from_topology(&topo, 4);
        for _ in 0..25 {
            serial.round();
            parallel.round();
            prop_assert_eq!(serial.snapshot(), parallel.snapshot());
        }
    }

    /// Oracle sanity: the desired topology's per-node out-degree is at most
    /// 4 unmarked edges (paper §2.2: "each node in Re-Chord has at most 4
    /// outgoing unmarked edges").
    #[test]
    fn oracle_degree_bound(n in 1usize..40, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let desired = oracle::desired_unmarked(&topo.ids);
        for node in desired.nodes() {
            let deg = desired.adjacency(node).map(|a| a.unmarked.len()).unwrap_or(0);
            prop_assert!(deg <= 4, "node {node:?} has degree {deg}");
        }
    }

    /// Oracle sanity: every Chord edge's endpoints are real peers and the
    /// edge set grows like Θ(n log n).
    #[test]
    fn chord_edge_set_well_formed(n in 2usize..40, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let edges = oracle::chord_edges(&topo.ids);
        prop_assert!(edges.iter().all(|e| e.from != e.to));
        prop_assert!(edges.iter().all(|e| topo.ids.contains(&e.from) && topo.ids.contains(&e.to)));
        // at least the ring (2n directed edges) and at most ~n * (log2 n + 3)
        prop_assert!(edges.len() >= 2 * n);
    }

    /// Stability is genuinely a fixpoint: running more rounds after
    /// convergence changes nothing.
    #[test]
    fn fixpoint_is_absorbing(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(20_000);
        prop_assert!(report.converged);
        let frozen = net.snapshot();
        for _ in 0..5 {
            net.round();
            prop_assert_eq!(net.snapshot(), frozen.clone());
        }
    }
}

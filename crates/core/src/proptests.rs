//! Property-based tests of the protocol's global invariants.

use crate::network::ReChordNetwork;
use crate::oracle;
use proptest::prelude::*;
use rechord_graph::connectivity;
use rechord_topology::TopologyKind;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Convergence (Theorem 1.1, bounded n): from random weakly connected
    /// states the network reaches a fixpoint whose desired edges all exist.
    #[test]
    fn converges_from_random_states(n in 2usize..14, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(20_000);
        prop_assert!(report.converged, "n={n} seed={seed} did not stabilize");
        let audit = net.audit();
        prop_assert!(audit.missing_unmarked.is_empty(),
            "missing edges at fixpoint: {:?}", audit.missing_unmarked);
        prop_assert!(audit.weakly_connected);
        prop_assert!(audit.virtual_set_matches);
    }

    /// Peer-level weak connectivity is never lost on the way to stability
    /// (the precondition of the proofs must be an invariant of the rules).
    #[test]
    fn connectivity_is_invariant(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        for _ in 0..60 {
            let out = net.round();
            prop_assert!(
                connectivity::peers_weakly_connected(&net.snapshot()),
                "peers disconnected mid-stabilization (n={n} seed={seed})"
            );
            if !out.changed {
                break;
            }
        }
    }

    /// The engine is deterministic: serial and 4-thread runs agree state-
    /// for-state.
    #[test]
    fn thread_count_invariance(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut serial = ReChordNetwork::from_topology(&topo, 1);
        let mut parallel = ReChordNetwork::from_topology(&topo, 4);
        for _ in 0..25 {
            serial.round();
            parallel.round();
            prop_assert_eq!(serial.snapshot(), parallel.snapshot());
        }
    }

    /// Oracle sanity: the desired topology's per-node out-degree is at most
    /// 4 unmarked edges (paper §2.2: "each node in Re-Chord has at most 4
    /// outgoing unmarked edges").
    #[test]
    fn oracle_degree_bound(n in 1usize..40, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let desired = oracle::desired_unmarked(&topo.ids);
        for node in desired.nodes() {
            let deg = desired.adjacency(node).map(|a| a.unmarked.len()).unwrap_or(0);
            prop_assert!(deg <= 4, "node {node:?} has degree {deg}");
        }
    }

    /// Oracle sanity: every Chord edge's endpoints are real peers and the
    /// edge set grows like Θ(n log n).
    #[test]
    fn chord_edge_set_well_formed(n in 2usize..40, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let edges = oracle::chord_edges(&topo.ids);
        prop_assert!(edges.iter().all(|e| e.from != e.to));
        prop_assert!(edges.iter().all(|e| topo.ids.contains(&e.from) && topo.ids.contains(&e.to)));
        // at least the ring (2n directed edges) and at most ~n * (log2 n + 3)
        prop_assert!(edges.len() >= 2 * n);
    }

    /// Stability is genuinely a fixpoint: running more rounds after
    /// convergence changes nothing.
    #[test]
    fn fixpoint_is_absorbing(n in 2usize..10, seed in any::<u64>()) {
        let topo = TopologyKind::Random.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let report = net.run_until_stable(20_000);
        prop_assert!(report.converged);
        let frozen = net.snapshot();
        for _ in 0..5 {
            net.round();
            prop_assert_eq!(net.snapshot(), frozen.clone());
        }
    }

    /// Honest-subset convergence: with a byzantine minority suppressing
    /// their own rules, the honest subset still quiesces and its ring
    /// ordering (level-0 rl/rr against the true sorted order of all live
    /// peers) survives intact. The initial state is a clique so no
    /// knowledge is held *exclusively* by the silent minority — from such
    /// states a byzantine cut vertex can legitimately strand information,
    /// which is an envelope edge the `adversary` binary measures, not a
    /// property to assert.
    #[test]
    fn honest_subset_converges_below_threshold(n in 6usize..14, seed in any::<u64>()) {
        use crate::adversary::{honest_ring_ok, AdversaryMap, HONEST_QUIET_ROUNDS};
        let crimes: crate::CrimeSet = (2u8..=6).map(crate::Crime::ViolateRule).collect();
        let topo = TopologyKind::Clique.generate(n, seed);
        let mut net = ReChordNetwork::from_topology(&topo, 1);
        let map = AdversaryMap::assign(&net.real_ids(), 0.125, crimes, 0.0, 0.0, seed);
        let byz: std::collections::BTreeSet<_> = map.byzantine_peers().into_iter().collect();
        net.set_adversary(std::sync::Arc::new(map));
        let mut quiet = 0;
        let mut converged = false;
        for _ in 0..40_000u64 {
            let (_, dirty) = net.round_dirty();
            if dirty.iter().all(|id| byz.contains(id)) {
                quiet += 1;
                if quiet >= HONEST_QUIET_ROUNDS { converged = true; break; }
            } else {
                quiet = 0;
            }
        }
        prop_assert!(converged, "n={n} seed={seed}: honest subset did not quiesce");
        prop_assert!(honest_ring_ok(&net, &byz),
            "n={n} seed={seed}: a {}-peer byzantine minority corrupted the honest ring",
            byz.len());
    }

    /// A fraction-0 adversarial run *is* the plain protocol: same rounds,
    /// same converged flag, for any seed — not just the pinned ones the
    /// unit tests check.
    #[test]
    fn fraction_zero_is_plain_protocol(n in 2usize..12, seed in any::<u64>()) {
        let crimes = crate::CrimeSet::single(crate::Crime::LieAboutSuccessor);
        let (out, net) = crate::adversary::run_adversarial(n, seed, 0.0, crimes, 20_000);
        let topo = TopologyKind::Random.generate(n, seed);
        let mut plain = ReChordNetwork::from_topology(&topo, 1);
        let report = plain.run_until_stable(20_000);
        prop_assert!(report.converged);
        prop_assert_eq!(out.byzantine, 0);
        prop_assert!(out.converged);
        prop_assert_eq!(net.snapshot(), plain.snapshot());
    }
}

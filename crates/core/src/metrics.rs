//! The quantities the paper's evaluation plots (Figures 5–7, Lemma 3.1).

use rechord_graph::{EdgeCounts, OverlayGraph};
use rechord_id::Ident;

/// A measurement of one network snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkMetrics {
    /// `n`: number of peers (real nodes).
    pub real_nodes: usize,
    /// Number of *simulated* virtual nodes (sum of per-peer `m`).
    pub virtual_nodes: usize,
    /// Edge totals per class.
    pub edges: EdgeCounts,
    /// Largest number of virtual nodes in one real-to-real gap
    /// (Lemma 3.1: `O(log n)` w.h.p.).
    pub max_virtuals_per_gap: usize,
    /// Mean number of virtual nodes per real-to-real gap.
    pub mean_virtuals_per_gap: f64,
}

impl NetworkMetrics {
    /// Figure 5's "virtual nodes" series.
    pub fn total_nodes(&self) -> usize {
        self.real_nodes + self.virtual_nodes
    }

    /// Figure 5's "normal edges" series (everything but connection edges).
    pub fn normal_edges(&self) -> usize {
        self.edges.normal()
    }

    /// Figure 5's "connection edges" series.
    pub fn connection_edges(&self) -> usize {
        self.edges.connection
    }

    /// Figure 7's y-axis: all edges of the final multigraph.
    pub fn total_edges(&self) -> usize {
        self.edges.total()
    }
}

/// Measures a snapshot. `real_ids` are the live peers; `virtual_positions`
/// are the positions of all *simulated* virtual nodes (snapshot targets can
/// reference phantom levels, so the caller supplies the authoritative set).
pub fn measure(
    snapshot: &OverlayGraph,
    real_ids: &[Ident],
    virtual_positions: &[Ident],
) -> NetworkMetrics {
    let mut sorted_reals: Vec<Ident> = real_ids.to_vec();
    sorted_reals.sort_unstable();

    // Virtual nodes per real gap: count virtual positions in each clockwise
    // arc between consecutive reals.
    let (max_gap, mean_gap) = if sorted_reals.len() < 2 {
        (virtual_positions.len(), virtual_positions.len() as f64)
    } else {
        let mut counts = vec![0usize; sorted_reals.len()];
        for &vp in virtual_positions {
            // gap index: the real predecessor of vp (cyclic)
            let idx = match sorted_reals.binary_search(&vp) {
                Ok(i) => i,
                Err(0) => sorted_reals.len() - 1, // wraps before the first real
                Err(i) => i - 1,
            };
            counts[idx] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        (max, mean)
    };

    NetworkMetrics {
        real_nodes: sorted_reals.len(),
        virtual_nodes: virtual_positions.len(),
        edges: snapshot.edge_counts(),
        max_virtuals_per_gap: max_gap,
        mean_virtuals_per_gap: mean_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_graph::{Edge, NodeRef};

    fn id(x: f64) -> Ident {
        Ident::from_f64(x)
    }

    #[test]
    fn gap_attribution_is_cyclic() {
        let reals = vec![id(0.2), id(0.8)];
        // virtuals at 0.3 (gap of 0.2), 0.9 and 0.1 (both in the 0.8→0.2 gap)
        let virts = vec![id(0.3), id(0.9), id(0.1)];
        let m = measure(&OverlayGraph::new(), &reals, &virts);
        assert_eq!(m.max_virtuals_per_gap, 2);
        assert!((m.mean_virtuals_per_gap - 1.5).abs() < 1e-12);
        assert_eq!(m.total_nodes(), 5);
    }

    #[test]
    fn edge_series_split_matches_figure5() {
        let a = NodeRef::real(id(0.1));
        let b = NodeRef::real(id(0.5));
        let g: OverlayGraph =
            [Edge::unmarked(a, b), Edge::ring(b, a), Edge::connection(a, b)].into_iter().collect();
        let m = measure(&g, &[id(0.1), id(0.5)], &[]);
        assert_eq!(m.normal_edges(), 2, "unmarked + ring");
        assert_eq!(m.connection_edges(), 1);
        assert_eq!(m.total_edges(), 3);
    }

    #[test]
    fn single_real_attributes_all_virtuals_to_it() {
        let m = measure(&OverlayGraph::new(), &[id(0.4)], &[id(0.9), id(0.65)]);
        assert_eq!(m.max_virtuals_per_gap, 2);
        assert_eq!(m.real_nodes, 1);
        assert_eq!(m.virtual_nodes, 2);
    }
}

//! Glue: the Re-Chord rules as a [`SyncProtocol`] for the round engine.

use crate::msg::Msg;
use crate::rules::{self, RuleCtx};
use crate::state::PeerState;
use rechord_id::Ident;
use rechord_sim::{Outbox, RoundView, SyncProtocol};

/// The Re-Chord protocol: per round, each peer sanitizes its state,
/// recomputes `m` and its neighborhoods (paper: "Before a node applies the
/// set of rules, it updates its variables"), then fires rules 1–6 in paper
/// order for all of its simulated nodes.
///
/// The `mask` selects which of rules 2–6 run — [`crate::ablation`]'s
/// experiment knob; the default is the full protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReChordProtocol {
    /// Which rules run (default: all).
    pub mask: crate::ablation::RuleMask,
}

impl ReChordProtocol {
    /// The full (paper) protocol.
    pub fn full() -> Self {
        Self::default()
    }

    /// The protocol with only the rules enabled in `mask`.
    pub fn with_mask(mask: crate::ablation::RuleMask) -> Self {
        ReChordProtocol { mask }
    }
}

/// Realizes the paper's *graph-deletion semantics* in message passing: in
/// the paper, deleting a node removes its incident edges from the global
/// graph `G`, but a peer that holds an edge to a since-deleted virtual node
/// cannot know this without checking. Each round, every reference is
/// validated against the previous-round snapshot: references to vanished
/// peers are dropped (their "connections fail", §4.2), and references to a
/// live peer's deleted virtual level are redirected to that peer's deepest
/// level — the same hand-over target rule 1 uses for the deleted node's own
/// neighborhood. Without this, stale refs to deleted virtuals freeze into
/// fixpoints that are not the Re-Chord topology.
fn validate_references(me: Ident, state: &mut PeerState, view: &RoundView<'_, PeerState>) {
    // Own levels as of the round start: a reference to one of the peer's
    // *own* deleted virtual nodes is just as much a phantom as a foreign
    // one (it arises when another node mirrors an edge back after the level
    // was deleted) and is redirected to the deepest live level likewise.
    let own_levels: std::collections::BTreeSet<u8> = state.levels.keys().copied().collect();
    let own_deepest = state.deepest_level();
    let remap = |r: &rechord_graph::NodeRef| -> Option<rechord_graph::NodeRef> {
        if r.owner == me {
            return Some(PeerState::node_ref(me, own_deepest));
        }
        let peer = view.get(r.owner)?; // dead peer → drop the reference
        if peer.levels.contains_key(&r.level) {
            Some(*r)
        } else {
            Some(PeerState::node_ref(r.owner, peer.deepest_level()))
        }
    };
    let levels: Vec<u8> = state.levels.keys().copied().collect();
    for lvl in levels {
        let my_ref = PeerState::node_ref(me, lvl);
        let Some(vs) = state.level_mut(lvl) else { continue };
        for kind in rechord_graph::EdgeKind::ALL {
            let set = vs.of_mut(kind);
            let stale: Vec<rechord_graph::NodeRef> = set
                .iter()
                .copied()
                .filter(|r| {
                    if r.owner == me {
                        !own_levels.contains(&r.level)
                    } else {
                        match view.get(r.owner) {
                            None => true,
                            Some(peer) => !peer.levels.contains_key(&r.level),
                        }
                    }
                })
                .collect();
            for r in stale {
                set.remove(&r);
                if let Some(fixed) = remap(&r) {
                    if fixed != my_ref {
                        set.insert(fixed);
                    }
                }
            }
        }
        // rl/rr point at level-0 nodes; only peer death can invalidate them.
        if vs.rl.is_some_and(|r| r.owner != me && view.get(r.owner).is_none()) {
            vs.rl = None;
        }
        if vs.rr.is_some_and(|r| r.owner != me && view.get(r.owner).is_none()) {
            vs.rr = None;
        }
    }
}

impl SyncProtocol for ReChordProtocol {
    type State = PeerState;
    type Msg = Msg;

    fn step(
        &self,
        me: Ident,
        state: &mut PeerState,
        view: &RoundView<'_, PeerState>,
        out: &mut Outbox<Msg>,
    ) {
        state.sanitize(me);
        validate_references(me, state, view);
        let m = state.compute_m(me);
        let mut ctx = RuleCtx { me, state, view, out };
        rules::virtual_nodes::apply(&mut ctx, m); // rule 1 (always on)
        if self.mask.overlap {
            rules::overlap::apply(&mut ctx); //      rule 2
        }
        if self.mask.closest_real {
            rules::closest_real::apply(&mut ctx); // rule 3
        }
        if self.mask.linearize {
            rules::linearize::apply(&mut ctx); //    rule 4
        }
        if self.mask.ring {
            rules::ring::apply(&mut ctx); //         rule 5
        }
        if self.mask.connection {
            rules::connection::apply(&mut ctx); //   rule 6
        }
    }

    fn deliver(&self, me: Ident, state: &mut PeerState, msg: &Msg) {
        msg.apply(me, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_graph::NodeRef;
    use rechord_sim::Engine;

    #[test]
    fn two_peers_stabilize_into_mutual_knowledge() {
        let a = Ident::from_f64(0.2);
        let b = Ident::from_f64(0.7);
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::with_contacts([NodeRef::real(b)]));
        engine.insert_node(b, PeerState::new());
        let report = engine.run_until_fixpoint(500);
        assert!(report.converged, "two-peer network must stabilize");
        // both peers must know each other as closest real neighbors at level 0
        let sa = engine.state(a).unwrap().level(0).unwrap();
        let sb = engine.state(b).unwrap().level(0).unwrap();
        assert_eq!(sa.rr, Some(NodeRef::real(b)));
        assert_eq!(sb.rl, Some(NodeRef::real(a)));
        assert!(sa.nu.contains(&NodeRef::real(b)));
        assert!(sb.nu.contains(&NodeRef::real(a)));
    }

    #[test]
    fn lone_peer_reaches_a_quiet_fixpoint() {
        let a = Ident::from_f64(0.42);
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::new());
        let report = engine.run_until_fixpoint(100);
        assert!(report.converged, "a singleton must quiesce");
        // it simulates u_1 (m = 1 for a peer that knows no other real node)
        assert!(engine.state(a).unwrap().level(1).is_some());
    }

    #[test]
    fn virtual_levels_track_the_gap() {
        let a = Ident::from_f64(0.0);
        let b = Ident::from_f64(0.26); // gap 0.26: 1/4 <= gap < 1/2 → m = 2
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::with_contacts([NodeRef::real(b)]));
        engine.insert_node(b, PeerState::with_contacts([NodeRef::real(a)]));
        engine.run_until_fixpoint(500);
        let sa = engine.state(a).unwrap();
        assert_eq!(sa.deepest_level(), 2, "m must match the finger condition");
    }
}

//! Glue: the Re-Chord rules as a [`SyncProtocol`] for the round engine.

use crate::adversary::{AdversaryMap, Crime, CrimeSet};
use crate::msg::Msg;
use crate::rules::{self, RuleCtx};
use crate::state::PeerState;
use rechord_graph::NodeRef;
use rechord_id::Ident;
use rechord_sim::{Outbox, RoundView, SyncProtocol};
use std::sync::Arc;

/// The Re-Chord protocol: per round, each peer sanitizes its state,
/// recomputes `m` and its neighborhoods (paper: "Before a node applies the
/// set of rules, it updates its variables"), then fires rules 1–6 in paper
/// order for all of its simulated nodes.
///
/// The `mask` selects which of rules 2–6 run — [`crate::ablation`]'s
/// experiment knob; the default is the full protocol. The optional
/// `adversary` map injects per-peer protocol crimes
/// ([`crate::adversary`]): a byzantine peer may suppress individual rules
/// on its own state ([`Crime::ViolateRule`]) or rewrite its outgoing edge
/// payloads to claim itself as everyone's neighbor
/// ([`Crime::LieAboutSuccessor`]). With no map installed — or a map in
/// which every peer is honest — the step function is byte-for-byte the
/// legacy honest protocol.
#[derive(Clone, Debug, Default)]
pub struct ReChordProtocol {
    /// Which rules run (default: all).
    pub mask: crate::ablation::RuleMask,
    /// Per-peer behavior policies (default: none — all peers honest).
    pub adversary: Option<Arc<AdversaryMap>>,
}

impl ReChordProtocol {
    /// The full (paper) protocol.
    pub fn full() -> Self {
        Self::default()
    }

    /// The protocol with only the rules enabled in `mask`.
    pub fn with_mask(mask: crate::ablation::RuleMask) -> Self {
        ReChordProtocol { mask, adversary: None }
    }
}

/// Realizes the paper's *graph-deletion semantics* in message passing: in
/// the paper, deleting a node removes its incident edges from the global
/// graph `G`, but a peer that holds an edge to a since-deleted virtual node
/// cannot know this without checking. Each round, every reference is
/// validated against the previous-round snapshot: references to vanished
/// peers are dropped (their "connections fail", §4.2), and references to a
/// live peer's deleted virtual level are redirected to that peer's deepest
/// level — the same hand-over target rule 1 uses for the deleted node's own
/// neighborhood. Without this, stale refs to deleted virtuals freeze into
/// fixpoints that are not the Re-Chord topology.
fn validate_references(me: Ident, state: &mut PeerState, view: &RoundView<'_, PeerState>) {
    // Own levels as of the round start: a reference to one of the peer's
    // *own* deleted virtual nodes is just as much a phantom as a foreign
    // one (it arises when another node mirrors an edge back after the level
    // was deleted) and is redirected to the deepest live level likewise.
    let own_levels: std::collections::BTreeSet<u8> = state.levels.keys().copied().collect();
    let own_deepest = state.deepest_level();
    let remap = |r: &rechord_graph::NodeRef| -> Option<rechord_graph::NodeRef> {
        if r.owner == me {
            return Some(PeerState::node_ref(me, own_deepest));
        }
        let peer = view.get(r.owner)?; // dead peer → drop the reference
        if peer.levels.contains_key(&r.level) {
            Some(*r)
        } else {
            Some(PeerState::node_ref(r.owner, peer.deepest_level()))
        }
    };
    let levels: Vec<u8> = state.levels.keys().copied().collect();
    for lvl in levels {
        let my_ref = PeerState::node_ref(me, lvl);
        let Some(vs) = state.level_mut(lvl) else { continue };
        for kind in rechord_graph::EdgeKind::ALL {
            let set = vs.of_mut(kind);
            let stale: Vec<rechord_graph::NodeRef> = set
                .iter()
                .copied()
                .filter(|r| {
                    if r.owner == me {
                        !own_levels.contains(&r.level)
                    } else {
                        match view.get(r.owner) {
                            None => true,
                            Some(peer) => !peer.levels.contains_key(&r.level),
                        }
                    }
                })
                .collect();
            for r in stale {
                set.remove(&r);
                if let Some(fixed) = remap(&r) {
                    if fixed != my_ref {
                        set.insert(fixed);
                    }
                }
            }
        }
        // rl/rr point at level-0 nodes; only peer death can invalidate them.
        if vs.rl.is_some_and(|r| r.owner != me && view.get(r.owner).is_none()) {
            vs.rl = None;
        }
        if vs.rr.is_some_and(|r| r.owner != me && view.get(r.owner).is_none()) {
            vs.rr = None;
        }
    }
}

impl ReChordProtocol {
    /// The shared rule pipeline. `crimes` suppresses individual rules on
    /// this peer only ([`Crime::ViolateRule`]); the empty set is the honest
    /// path and computes exactly what the pre-adversary protocol did.
    fn run_rules(
        &self,
        me: Ident,
        state: &mut PeerState,
        view: &RoundView<'_, PeerState>,
        out: &mut Outbox<Msg>,
        crimes: CrimeSet,
    ) {
        state.sanitize(me);
        validate_references(me, state, view);
        let m = state.compute_m(me);
        let mut ctx = RuleCtx { me, state, view, out };
        if !crimes.contains(Crime::ViolateRule(1)) {
            rules::virtual_nodes::apply(&mut ctx, m); // rule 1 (no global ablation)
        }
        if self.mask.overlap && !crimes.contains(Crime::ViolateRule(2)) {
            rules::overlap::apply(&mut ctx); //      rule 2
        }
        if self.mask.closest_real && !crimes.contains(Crime::ViolateRule(3)) {
            rules::closest_real::apply(&mut ctx); // rule 3
        }
        if self.mask.linearize && !crimes.contains(Crime::ViolateRule(4)) {
            rules::linearize::apply(&mut ctx); //    rule 4
        }
        if self.mask.ring && !crimes.contains(Crime::ViolateRule(5)) {
            rules::ring::apply(&mut ctx); //         rule 5
        }
        if self.mask.connection && !crimes.contains(Crime::ViolateRule(6)) {
            rules::connection::apply(&mut ctx); //   rule 6
        }
    }
}

impl SyncProtocol for ReChordProtocol {
    type State = PeerState;
    type Msg = Msg;

    fn step(
        &self,
        me: Ident,
        state: &mut PeerState,
        view: &RoundView<'_, PeerState>,
        out: &mut Outbox<Msg>,
    ) {
        let crimes = self.adversary.as_ref().map_or(CrimeSet::EMPTY, |a| a.crimes_of(me));
        if crimes.contains(Crime::LieAboutSuccessor) {
            // Run the rules into a scratch outbox, then rewrite every
            // outgoing introduction: whatever neighbor the rules meant to
            // hand out, the liar claims *itself* instead. Messages to its
            // own siblings stay truthful (lying to yourself gains nothing);
            // a receiver that IS the claimed node discards the self-edge on
            // apply, so the lie spreads `real(liar)` everywhere else.
            let mut scratch = Outbox::new();
            self.run_rules(me, state, view, &mut scratch, crimes);
            let lie = NodeRef::real(me);
            for (to, mut msg) in scratch.into_inner() {
                if to != me {
                    msg.edge = lie;
                }
                out.send(to, msg);
            }
        } else {
            self.run_rules(me, state, view, out, crimes);
        }
    }

    fn deliver(&self, me: Ident, state: &mut PeerState, msg: &Msg) {
        msg.apply(me, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rechord_graph::NodeRef;
    use rechord_sim::Engine;

    #[test]
    fn two_peers_stabilize_into_mutual_knowledge() {
        let a = Ident::from_f64(0.2);
        let b = Ident::from_f64(0.7);
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::with_contacts([NodeRef::real(b)]));
        engine.insert_node(b, PeerState::new());
        let report = engine.run_until_fixpoint(500);
        assert!(report.converged, "two-peer network must stabilize");
        // both peers must know each other as closest real neighbors at level 0
        let sa = engine.state(a).unwrap().level(0).unwrap();
        let sb = engine.state(b).unwrap().level(0).unwrap();
        assert_eq!(sa.rr, Some(NodeRef::real(b)));
        assert_eq!(sb.rl, Some(NodeRef::real(a)));
        assert!(sa.nu.contains(&NodeRef::real(b)));
        assert!(sb.nu.contains(&NodeRef::real(a)));
    }

    #[test]
    fn lone_peer_reaches_a_quiet_fixpoint() {
        let a = Ident::from_f64(0.42);
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::new());
        let report = engine.run_until_fixpoint(100);
        assert!(report.converged, "a singleton must quiesce");
        // it simulates u_1 (m = 1 for a peer that knows no other real node)
        assert!(engine.state(a).unwrap().level(1).is_some());
    }

    #[test]
    fn virtual_levels_track_the_gap() {
        let a = Ident::from_f64(0.0);
        let b = Ident::from_f64(0.26); // gap 0.26: 1/4 <= gap < 1/2 → m = 2
        let mut engine = Engine::new(ReChordProtocol::full(), 1);
        engine.insert_node(a, PeerState::with_contacts([NodeRef::real(b)]));
        engine.insert_node(b, PeerState::with_contacts([NodeRef::real(a)]));
        engine.run_until_fixpoint(500);
        let sa = engine.state(a).unwrap();
        assert_eq!(sa.deepest_level(), 2, "m must match the finger condition");
    }
}

//! The sharded data plane: per-ring-arc event queues and the epoch-window
//! worker runtime that drains them in parallel — **bit-identically** for
//! any worker count.
//!
//! The workload simulator's event population splits cleanly in two. The
//! *control plane* (protocol rounds, churn, detector ticks, repair slices)
//! is rare and globally coupled, so it stays on one thread in the global
//! [`crate::EventQueue`]. The *data plane* (request hops and service
//! completions) is the hot 99% and is **arc-local**: an event's entire
//! effect touches state owned by the destination peer's ring arc — its
//! service column, its placement shard, its outcome log. This module
//! partitions those events by [`arc_of`] the destination peer and runs one
//! worker per contiguous arc range between control-event barriers.
//!
//! The determinism argument, in three steps:
//!
//! 1. **`(time, request id)` is a total order over data events.** Every
//!    request has at most one in-flight event, and each handler emits at
//!    most one follow-up at a strictly later instant — so no two data
//!    events share a `(time, id)` pair, and "process in `(time, id)`
//!    order" names one canonical schedule independent of arcs or workers.
//! 2. **A lookahead window is safe to run in parallel.** Every network hop
//!    costs at least [`crate::LatencyModel::min_delay`] ticks, so an event
//!    processed at `t` can only influence *other arcs* at `t + min_delay`
//!    or later. Workers therefore drain `[t, t + min_delay)` concurrently;
//!    only same-arc service completions can land inside the window, and
//!    those stay on their owner worker by construction.
//! 3. **Cross-arc hand-off is a deterministic merge.** At each window edge
//!    every worker sends the events it staged for every other worker plus
//!    its next-event candidate time; each worker folds the identical
//!    candidate set to the identical global minimum, so all workers step
//!    through the same window sequence in lockstep — the exchange carries
//!    no scheduler-dependent information at all.
//!
//! The property tests below pin step 3 directly: any event population,
//! batch split, worker count, and arc count (including one arc, and more
//! arcs than distinct destinations) processes in exactly the canonical
//! `(time, id)` order.

use rechord_placement::arc_of;
use std::collections::BinaryHeap;
use std::sync::mpsc;

/// One scheduled data-plane event. Ordering is **min-first** on
/// `(time, id)` and ignores the payload, so a [`BinaryHeap`] of slots is a
/// min-queue in canonical order.
#[derive(Clone, Debug)]
struct Slot<P> {
    time: u64,
    id: u64,
    payload: P,
}

impl<P> PartialEq for Slot<P> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.id) == (other.time, other.id)
    }
}
impl<P> Eq for Slot<P> {}
impl<P> PartialOrd for Slot<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Slot<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap surfaces the smallest (time, id).
        (other.time, other.id).cmp(&(self.time, self.id))
    }
}

/// The per-arc future-event lists of the data plane: one binary heap per
/// ring arc, keyed by the destination peer's arc. Persists between
/// batches; [`run_batch`] drains it up to a control-event barrier.
#[derive(Debug)]
pub struct ArcQueues<P> {
    heaps: Vec<BinaryHeap<Slot<P>>>,
}

impl<P> ArcQueues<P> {
    /// `arcs >= 1` empty queues.
    pub fn new(arcs: usize) -> Self {
        assert!(arcs >= 1, "the data plane needs at least one arc");
        ArcQueues { heaps: (0..arcs).map(|_| BinaryHeap::new()).collect() }
    }

    /// Number of arcs.
    pub fn arcs(&self) -> usize {
        self.heaps.len()
    }

    /// Schedules an event for the peer whose raw ident is `raw`.
    pub fn push_for(&mut self, raw: u64, time: u64, id: u64, payload: P) {
        let arc = arc_of(raw, self.heaps.len());
        self.heaps[arc].push(Slot { time, id, payload });
    }

    /// Schedules an event on an explicit arc.
    pub fn push(&mut self, arc: usize, time: u64, id: u64, payload: P) {
        self.heaps[arc].push(Slot { time, id, payload });
    }

    /// Total events pending across all arcs.
    pub fn len(&self) -> usize {
        self.heaps.iter().map(BinaryHeap::len).sum()
    }

    /// No events pending anywhere?
    pub fn is_empty(&self) -> bool {
        self.heaps.iter().all(BinaryHeap::is_empty)
    }

    /// The earliest pending instant across all arcs.
    pub fn next_time(&self) -> Option<u64> {
        self.heaps.iter().filter_map(|h| h.peek().map(|s| s.time)).min()
    }

    /// Pops the globally smallest `(time, id)` event (test and drain
    /// introspection; the batch runtime pops through per-worker ranges).
    pub fn pop_min(&mut self) -> Option<(u64, u64, P)> {
        let best = self
            .heaps
            .iter()
            .enumerate()
            .filter_map(|(a, h)| h.peek().map(|s| ((s.time, s.id), a)))
            .min()?;
        let slot = self.heaps[best.1].pop().expect("peeked heap is non-empty");
        Some((slot.time, slot.id, slot.payload))
    }
}

/// One worker's contiguous arc range: mutable heap slice plus the absolute
/// index of its first arc.
struct ArcRange<'q, P> {
    base: usize,
    heaps: &'q mut [BinaryHeap<Slot<P>>],
}

impl<P> ArcRange<'_, P> {
    fn owns(&self, arc: usize) -> bool {
        (self.base..self.base + self.heaps.len()).contains(&arc)
    }

    fn push_abs(&mut self, arc: usize, time: u64, id: u64, payload: P) {
        self.heaps[arc - self.base].push(Slot { time, id, payload });
    }

    fn next_time(&self) -> Option<u64> {
        self.heaps.iter().filter_map(|h| h.peek().map(|s| s.time)).min()
    }

    /// Pops the range's smallest `(time, id)` event strictly before `end`.
    fn pop_before(&mut self, end: u64) -> Option<(u64, u64, P)> {
        let best = self
            .heaps
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|s| ((s.time, s.id), i)))
            .min()
            .filter(|&((t, _), _)| t < end)?;
        let slot = self.heaps[best.1].pop().expect("peeked heap is non-empty");
        Some((slot.time, slot.id, slot.payload))
    }
}

/// Follow-up events a handler emits while processing one event. The
/// runtime routes each to its destination arc: own-range events go
/// straight into the worker's heaps (service completions may land inside
/// the current window), cross-arc events are staged for the window-edge
/// exchange.
pub struct Outbox<P> {
    staged: Vec<(usize, u64, u64, P)>,
}

impl<P> Outbox<P> {
    fn new() -> Self {
        Outbox { staged: Vec::new() }
    }

    /// Emits an event for `arc` at `time` with the given request `id`.
    pub fn push(&mut self, arc: usize, time: u64, id: u64, payload: P) {
        self.staged.push((arc, time, id, payload));
    }
}

/// The per-worker event processor of one batch. `handle` receives events
/// of the worker's arcs in canonical `(time, id)` order and emits
/// follow-ups through the [`Outbox`]; every emission must be at or after
/// the current instant, and cross-arc emissions at least
/// `lookahead` after it (both hold structurally in the simulator: service
/// completions are same-arc, network hops cost `>= min_delay`).
pub trait ShardHandler<P>: Send {
    /// Process one event.
    fn handle(&mut self, time: u64, id: u64, payload: P, out: &mut Outbox<P>);
}

/// The contiguous arc range worker `w` of `workers` owns:
/// `[w·arcs/workers, (w+1)·arcs/workers)`. Non-empty for every worker when
/// `workers <= arcs` — callers clamp the worker count with
/// [`effective_workers`] first.
pub fn worker_ranges(arcs: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let w = workers.clamp(1, arcs.max(1));
    (0..w).map(|i| (i * arcs / w)..((i + 1) * arcs / w)).collect()
}

/// Worker threads actually usable for `arcs` arcs: at least 1, at most one
/// per arc.
pub fn effective_workers(arcs: usize, workers: usize) -> usize {
    workers.clamp(1, arcs.max(1))
}

/// What crosses a window edge: the events one worker staged for another,
/// plus the sender's next-event candidate (`u64::MAX` = nothing pending).
struct Packet<P> {
    events: Vec<(usize, u64, u64, P)>,
    candidate: u64,
}

/// Drains every event with `time < batch_end` from `queues`, running one
/// worker per handler over [`worker_ranges`]`(queues.arcs(),
/// handlers.len())`, and returns the handlers plus the number of events
/// processed. Events at or after `batch_end` stay queued for the next
/// batch. The result — handler state, queue contents, processing order
/// per arc — is a pure function of the inputs, independent of worker
/// count and OS scheduling (see module docs for the argument; the
/// property tests below and `tests/shard_parity.rs` for the proof by
/// execution).
pub fn run_batch<P, H>(
    queues: &mut ArcQueues<P>,
    lookahead: u64,
    batch_end: u64,
    mut handlers: Vec<H>,
) -> (Vec<H>, u64)
where
    P: Send,
    H: ShardHandler<P>,
{
    let workers = handlers.len();
    assert!(
        (1..=queues.arcs()).contains(&workers),
        "need 1..=arcs handlers, got {workers} for {} arcs",
        queues.arcs()
    );
    let lookahead = lookahead.max(1);
    let Some(t0) = queues.next_time() else { return (handlers, 0) };
    if t0 >= batch_end {
        return (handlers, 0);
    }

    if workers == 1 {
        // Serial fast path: a straight pop-min drain *is* the canonical
        // order (emissions are never in the past), no windows, no channels.
        let handler = &mut handlers[0];
        let mut out = Outbox::new();
        let mut events = 0u64;
        let mut range = ArcRange { base: 0, heaps: &mut queues.heaps };
        while let Some((time, id, payload)) = range.pop_before(batch_end) {
            handler.handle(time, id, payload, &mut out);
            events += 1;
            for (arc, t, i, p) in out.staged.drain(..) {
                debug_assert!(t >= time, "handler emitted an event into the past");
                range.push_abs(arc, t, i, p);
            }
        }
        return (handlers, events);
    }

    let arcs = queues.arcs();
    let ranges = worker_ranges(arcs, workers);
    let owner_of: Vec<usize> = {
        let mut owners = vec![0usize; arcs];
        for (w, r) in ranges.iter().enumerate() {
            for a in r.clone() {
                owners[a] = w;
            }
        }
        owners
    };

    // A full W×W channel mesh, one channel per *ordered pair* of workers.
    // A shared per-receiver mailbox would be wrong: a fast worker's next
    // window packet can overtake a slow peer's current one in the merged
    // queue, and the candidate fold would mix windows. One FIFO channel
    // per (sender, receiver) pair plus exactly one receive per peer per
    // window keeps every worker's fold on the same window, always.
    // Channels are unbounded and each window is a strict send-(W−1)-then-
    // receive-(W−1) alternation, so no worker can block a peer.
    let mut mesh_tx: Vec<Vec<Option<mpsc::Sender<Packet<P>>>>> = Vec::with_capacity(workers);
    let mut mesh_rx: Vec<Vec<Option<mpsc::Receiver<Packet<P>>>>> =
        (0..workers).map(|_| (0..workers).map(|_| None).collect()).collect();
    #[allow(clippy::needless_range_loop)] // writes the transpose: mesh_rx[to][from]
    for from in 0..workers {
        let mut row = Vec::with_capacity(workers);
        for to in 0..workers {
            if from == to {
                row.push(None);
            } else {
                let (tx, rx) = mpsc::channel();
                row.push(Some(tx));
                mesh_rx[to][from] = Some(rx);
            }
        }
        mesh_tx.push(row);
    }

    struct Ctx<'q, P, H> {
        range: ArcRange<'q, P>,
        handler: H,
        /// `mail[i]` receives from worker `i` (`None` at `i == me`).
        mail: Vec<Option<mpsc::Receiver<Packet<P>>>>,
        /// `peers[j]` sends to worker `j` (`None` at `j == me`).
        peers: Vec<Option<mpsc::Sender<Packet<P>>>>,
    }

    let mut contexts: Vec<Ctx<'_, P, H>> = Vec::with_capacity(workers);
    let mut rest: &mut [BinaryHeap<Slot<P>>] = &mut queues.heaps;
    let mut cut_base = 0usize;
    for (range, ((handler, mail), peers)) in
        ranges.iter().zip(handlers.drain(..).zip(mesh_rx.drain(..)).zip(mesh_tx.drain(..)))
    {
        let (own, tail) = rest.split_at_mut(range.end - cut_base);
        cut_base = range.end;
        rest = tail;
        contexts.push(Ctx {
            range: ArcRange { base: range.start, heaps: own },
            handler,
            mail,
            peers,
        });
    }

    let owner_of = &owner_of;
    let results = rechord_sim::pool::run_workers(contexts, move |_me, mut ctx| {
        let mut out = Outbox::new();
        let mut staged: Vec<Vec<(usize, u64, u64, P)>> = (0..workers).map(|_| Vec::new()).collect();
        let mut events = 0u64;
        let mut t = t0;
        loop {
            let w_end = t.saturating_add(lookahead).min(batch_end);
            while let Some((time, id, payload)) = ctx.range.pop_before(w_end) {
                ctx.handler.handle(time, id, payload, &mut out);
                events += 1;
                for (arc, et, eid, ep) in out.staged.drain(..) {
                    debug_assert!(et >= time, "handler emitted an event into the past");
                    if ctx.range.owns(arc) {
                        ctx.range.push_abs(arc, et, eid, ep);
                    } else {
                        debug_assert!(
                            et >= w_end,
                            "cross-arc event inside the lookahead window breaks parallel safety"
                        );
                        staged[owner_of[arc]].push((arc, et, eid, ep));
                    }
                }
            }
            // Candidate = my earliest pending instant, counting the events
            // I am about to send away (their receiver cannot see them yet).
            let mut candidate = ctx.range.next_time().unwrap_or(u64::MAX);
            for batch in &staged {
                for &(_, et, _, _) in batch {
                    candidate = candidate.min(et);
                }
            }
            for (j, peer) in ctx.peers.iter().enumerate() {
                let Some(peer) = peer else { continue };
                let outbound = std::mem::take(&mut staged[j]);
                peer.send(Packet { events: outbound, candidate })
                    .expect("peer worker hung up mid-batch");
            }
            // Fold the identical candidate set every worker sees to the
            // identical global minimum — the next window start. Exactly
            // one receive per peer channel: the fold can never mix
            // windows, whatever the thread schedule.
            let mut global = candidate;
            for from in &ctx.mail {
                let Some(from) = from else { continue };
                let pkt = from.recv().expect("peer worker hung up mid-batch");
                for (arc, et, eid, ep) in pkt.events {
                    ctx.range.push_abs(arc, et, eid, ep);
                }
                global = global.min(pkt.candidate);
            }
            if global >= batch_end {
                return (ctx.handler, events);
            }
            t = global;
        }
    });

    let mut total = 0u64;
    for (handler, events) in results {
        handlers.push(handler);
        total += events;
    }
    (handlers, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slots_order_min_first_by_time_then_id() {
        let mut q: ArcQueues<&str> = ArcQueues::new(1);
        q.push(0, 9, 1, "late");
        q.push(0, 3, 7, "early-high-id");
        q.push(0, 3, 2, "early-low-id");
        assert_eq!(q.next_time(), Some(3));
        assert_eq!(q.pop_min(), Some((3, 2, "early-low-id")));
        assert_eq!(q.pop_min(), Some((3, 7, "early-high-id")));
        assert_eq!(q.pop_min(), Some((9, 1, "late")));
        assert_eq!(q.pop_min(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_for_routes_by_destination_arc() {
        let mut q: ArcQueues<()> = ArcQueues::new(4);
        q.push_for(0, 1, 0, ()); // arc 0
        q.push_for(u64::MAX, 1, 1, ()); // arc 3
        q.push_for(u64::MAX / 2, 1, 2, ()); // arc 1 (just below the midpoint)
        assert_eq!(q.heaps.iter().map(BinaryHeap::len).collect::<Vec<_>>(), vec![1, 1, 0, 1]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn worker_ranges_are_a_contiguous_cover() {
        for arcs in 1..20usize {
            for workers in 1..24usize {
                let ranges = worker_ranges(arcs, workers);
                assert_eq!(ranges.len(), effective_workers(arcs, workers));
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, arcs);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "gapless and ordered");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()), "no worker owns zero arcs");
            }
        }
    }

    /// The toy payload: destination raw ident plus remaining fanout depth.
    /// Every handled event deterministically emits at most one follow-up —
    /// mirroring the one-in-flight-event-per-request invariant the real
    /// data plane holds — so `(time, id)` stays a total order.
    #[derive(Clone, Debug, PartialEq)]
    struct Toy {
        raw: u64,
        depth: u32,
    }

    const LOOKAHEAD: u64 = 4;

    /// One processed event, `(time, id, raw)`.
    type Row = (u64, u64, u64);

    /// Records the canonical processing log and re-emits per `Toy::depth`.
    struct ToyHandler {
        arcs: usize,
        log: Vec<Row>, // (time, id, raw)
    }

    impl ShardHandler<Toy> for ToyHandler {
        fn handle(&mut self, time: u64, id: u64, p: Toy, out: &mut Outbox<Toy>) {
            self.log.push((time, id, p.raw));
            if p.depth == 0 {
                return;
            }
            let h = rechord_core::adversary::mix(&[time, id, u64::from(p.depth)]);
            let next = Toy { raw: h, depth: p.depth - 1 };
            if p.depth.is_multiple_of(3) {
                // A service-completion stand-in: same arc, may land inside
                // the current lookahead window.
                let arc = arc_of(p.raw, self.arcs);
                out.push(arc, time + 1 + h % LOOKAHEAD, id, Toy { raw: p.raw, depth: p.depth - 1 });
            } else {
                // A network hop: any arc, at least one lookahead away.
                let arc = arc_of(next.raw, self.arcs);
                out.push(arc, time + LOOKAHEAD + h % 7, id, next);
            }
        }
    }

    /// Runs a population through `run_batch` at the given worker count,
    /// splitting the timeline at `cuts` (batch barriers), and returns the
    /// merged log sorted by `(time, id)` plus the per-worker logs.
    fn drive(
        seeds: &[(u64, u64, u64)], // (raw, time, id)
        arcs: usize,
        workers: usize,
        depth: u32,
        cuts: &[u64],
    ) -> (Vec<Row>, Vec<Vec<Row>>) {
        let mut q: ArcQueues<Toy> = ArcQueues::new(arcs);
        for &(raw, time, id) in seeds {
            q.push_for(raw, time, id, Toy { raw, depth });
        }
        let w = effective_workers(arcs, workers);
        let mut per_worker: Vec<Vec<Row>> = (0..w).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        let mut boundaries: Vec<u64> = cuts.to_vec();
        boundaries.push(u64::MAX);
        for end in boundaries {
            let handlers: Vec<ToyHandler> =
                (0..w).map(|_| ToyHandler { arcs, log: Vec::new() }).collect();
            let (handlers, n) = run_batch(&mut q, LOOKAHEAD, end, handlers);
            total += n;
            for (i, h) in handlers.into_iter().enumerate() {
                per_worker[i].extend(h.log);
            }
        }
        assert!(q.is_empty(), "every event drained by the final batch");
        let mut merged: Vec<Row> = per_worker.iter().flatten().copied().collect();
        assert_eq!(merged.len() as u64, total, "processed count matches the logs");
        merged.sort_unstable();
        (merged, per_worker)
    }

    #[test]
    fn two_workers_match_the_serial_drain_exactly() {
        let seeds: Vec<Row> =
            (0..40u64).map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i % 11, i)).collect();
        let (serial, _) = drive(&seeds, 2, 1, 4, &[20, 37]);
        let (dual, logs) = drive(&seeds, 2, 2, 4, &[20, 37]);
        assert_eq!(serial, dual);
        for log in &logs {
            assert!(log.windows(2).all(|w| w[0] < w[1]), "per-worker log is in canonical order");
        }
    }

    proptest! {
        /// Satellite 3: the window/batch hand-off preserves the canonical
        /// global `(time, id)` order for **any** event population, worker
        /// count, arc count (including 1, and counts far beyond the number
        /// of distinct destinations), and batch split. The serial drain is
        /// the oracle; every parallel configuration must merge to it, and
        /// every worker's own log must already be sorted.
        #[test]
        fn any_worker_and_arc_count_preserves_canonical_order(
            seeds in proptest::collection::vec((any::<u64>(), 0u64..60, 0u64..10_000), 1..40),
            arcs in 1usize..40,
            workers in 1usize..9,
            depth in 0u32..5,
            cuts in proptest::collection::vec(1u64..120, 0..4),
        ) {
            // Unique ids (duplicate (time, id) pairs would make the
            // canonical order ill-defined — the simulator guarantees this
            // by construction, the generator must too).
            let mut seeds = seeds;
            for (i, s) in seeds.iter_mut().enumerate() {
                s.2 = s.2 * 40 + i as u64;
            }
            let mut cuts = cuts;
            cuts.sort_unstable();

            let (oracle, _) = drive(&seeds, arcs, 1, depth, &cuts);
            prop_assert!(oracle.windows(2).all(|w| w[0] < w[1]), "(time, id) is a total order");

            let (merged, logs) = drive(&seeds, arcs, workers, depth, &cuts);
            prop_assert_eq!(&merged, &oracle, "parallel drain diverged from the serial oracle");
            for log in &logs {
                prop_assert!(
                    log.windows(2).all(|w| w[0] < w[1]),
                    "a worker processed its arcs out of canonical order"
                );
            }

            // And a different batch split must not change the result.
            let (resplit, _) = drive(&seeds, arcs, workers, depth, &[]);
            prop_assert_eq!(resplit, oracle, "batch boundaries leaked into the schedule");
        }
    }
}

//! Discrete-event traffic over the self-stabilizing overlay — the question
//! the convergence theorems leave open: **what do clients experience while
//! the network stabilizes?**
//!
//! The paper (Kniesburges/Koutsopoulos/Scheideler, SPAA 2011) bounds how
//! fast Re-Chord returns to its stable topology; this crate measures what
//! that recovery *feels like* from the application side. A [`TrafficSim`]
//! puts protocol rounds, churn, and an open-loop get/put request stream on
//! one virtual clock:
//!
//! * [`EventQueue`] — binary-heap future-event list with deterministic
//!   same-instant ordering;
//! * [`TrafficGen`] — Poisson arrivals over Zipf key popularity, with a
//!   hot-key override for flash crowds;
//! * [`LatencyModel`] — fixed / uniform / exponential per-hop delays;
//! * [`ServiceQueue`] — per-peer service capacity: a hop through a loaded
//!   peer pays deterministic FIFO queueing delay;
//! * request lifecycle — hop-by-hop greedy routing that re-reads the live
//!   routing table between hops (requests issued mid-stabilization can
//!   stall, retry — paying a counted hop and its sampled latency on
//!   re-entry — or be lost), successor-list replication through the shared
//!   `rechord_placement` engine with an **incremental** anti-entropy
//!   repair pass opened at each fixpoint (O(moved keys), not O(all keys));
//! * **paced repair** — `repair_bandwidth` caps keys moved per tick, every
//!   transferred copy is admitted through the receiver's service queue
//!   (repair competes with foreground traffic), `max_keys_per_peer` lets a
//!   full peer refuse surplus repair copies, and churn preempts a pass
//!   mid-drain; until a key's window is re-replicated, gets probing a
//!   not-yet-copied replica surface as `StaleRead` — the client-visible
//!   repair lag an instantaneous model would hide;
//! * [`SloSink`] — p50/p90/p99 virtual latency, availability, throughput,
//!   windowed timelines, and the repair timeline ([`RepairEvent`]: pass
//!   start/end, time-to-full-replication, per-tick backlog gauge);
//! * **fault injection** — [`AdversaryConfig`] corrupts a seeded fraction
//!   of peers with a typed crime set (drop/misroute forwards, poison
//!   reads, sybil join waves, stalled heartbeats — see
//!   `rechord_core::adversary`); the same behavior map drives protocol
//!   rounds *and* the request lifecycle, and poisoned answers surface as
//!   [`OutcomeKind::Corrupted`];
//! * [`FailureDetector`] — per-peer crash-detection lag with false
//!   suspicions: requests bounce off live-but-suspected peers, and the
//!   suspect/clear timeline is reported per run. The all-zero
//!   [`DetectorConfig`] reproduces the legacy global `detection_lag`
//!   constant bit-for-bit;
//! * **sharded execution** — [`shard`] partitions the data plane by ring
//!   arc: per-arc event heaps drained by `WorkloadConfig::workers` scoped
//!   threads between lookahead-sized virtual-time windows, cross-arc
//!   hand-off over a per-ordered-pair channel mesh merged in a
//!   thread-count-independent order, and per-arc `PlacementMap` views.
//!   Every trace is byte-identical at any worker/arc count (pinned by
//!   `tests/shard_parity.rs`); `workers: 1` takes a serial fast path.
//!
//! ```
//! use rechord_core::network::ReChordNetwork;
//! use rechord_topology::TimedChurnPlan;
//! use rechord_workload::{TrafficSim, WorkloadConfig};
//!
//! let (net, report) = ReChordNetwork::bootstrap_stable(10, 42, 1, 50_000);
//! assert!(report.converged);
//!
//! let cfg = WorkloadConfig { seed: 42, traffic_end: 1_000, ..Default::default() };
//! let mut sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
//! sim.preload();
//! let report = sim.run();
//! assert_eq!(report.summary.availability, 1.0); // stable overlay: no failures
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod detector;
mod event;
mod generator;
mod latency;
mod metrics;
pub mod shard;
mod sim;

pub use adversary::AdversaryConfig;
pub use detector::{DetectorConfig, FailureDetector, SuspicionEvent};
pub use event::EventQueue;
pub use generator::{Op, Request, TrafficConfig, TrafficGen};
pub use latency::{LatencyModel, ServiceQueue, ServiceSlice};
pub use metrics::{OutcomeKind, RepairEvent, RequestOutcome, SloSink, SloSummary, WindowStat};
pub use sim::{SimReport, TrafficSim, WorkloadConfig};

//! The discrete-event heart: a binary-heap queue over virtual time with a
//! seeded-in-stone tie-break (same-instant events pop in scheduling order),
//! so every run of a workload is reproducible bit for bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One queued event. Ordering is `(time, seq)` — `seq` is the global
/// scheduling counter, so simultaneous events replay in the order they were
/// scheduled, never in allocator or hash order.
struct Scheduled<E> {
    time: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A future-event list over virtual time (unitless "ticks").
///
/// Popping advances the clock monotonically; pushing into the past is
/// clamped to `now` (an event scheduled "immediately" from a handler runs at
/// the current instant, after every event already queued for it).
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at virtual time `0`.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// The current virtual time (the instant of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Schedules `event` at absolute virtual time `at` (clamped to `now`).
    pub fn push(&mut self, at: u64, event: E) {
        let time = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// The instant of the earliest pending event without popping it —
    /// `None` when the queue is empty. The sharded data plane uses this to
    /// bound a batch: data events run up to (not including) the next
    /// control-event instant.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for k in 0..16u32 {
            q.push(5, k);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn clock_is_monotone_and_past_pushes_clamp() {
        let mut q = EventQueue::new();
        q.push(100, "late");
        assert_eq!(q.pop(), Some((100, "late")));
        assert_eq!(q.now(), 100);
        q.push(3, "past"); // clamped to now
        assert_eq!(q.pop(), Some((100, "past")));
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(40, "b");
        q.push(15, "a");
        assert_eq!(q.next_time(), Some(15));
        assert_eq!(q.now(), 0, "peeking does not advance the clock");
        q.pop();
        assert_eq!(q.next_time(), Some(40));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, 0);
        q.push(1, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.push(0, 0u64);
            let mut next = 1u64;
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if next < 20 {
                    q.push(t + (e % 3), next);
                    next += 1;
                    q.push(t + 2, next);
                    next += 1;
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}

//! Open-loop traffic generation: a Poisson request stream over a Zipf key
//! popularity, with an optional hot-key override for flash-crowd scenarios.

use rand::distributions::{Distribution, Exp, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The DHT operation a request performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Read the value under the key.
    Get,
    /// Write a fresh version under the key.
    Put,
}

impl Op {
    /// Compact label for traces and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Get => "get",
            Op::Put => "put",
        }
    }
}

/// One client request, as injected by the generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Unique, monotonically increasing request id (doubles as the version
    /// written by a put).
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Application key (hashed onto the ring by the driver's `IdSpace`).
    pub key: u64,
    /// Virtual time at which the request entered the system.
    pub issued_at: u64,
}

/// Shape of the offered load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficConfig {
    /// Mean ticks between request injections (Poisson arrivals; must be
    /// `> 0`). Rate = `1000 / mean_interarrival` requests per kilotick.
    pub mean_interarrival: f64,
    /// Keys are drawn from `1..=key_universe`.
    pub key_universe: u64,
    /// Zipf popularity exponent over the key universe (`0` = uniform).
    pub zipf_exponent: f64,
    /// Fraction of requests that are puts (the rest are gets).
    pub put_fraction: f64,
    /// When set to `(key, p)`, each request targets `key` with probability
    /// `p` regardless of the Zipf draw — a flash crowd on one item.
    pub hot_key: Option<(u64, f64)>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            mean_interarrival: 10.0,
            key_universe: 256,
            zipf_exponent: 0.9,
            put_fraction: 0.1,
            hot_key: None,
        }
    }
}

/// The deterministic request source. All randomness comes from one owned
/// [`SmallRng`], and every request consumes a fixed number of draws, so a
/// seed pins the entire stream.
pub struct TrafficGen {
    cfg: TrafficConfig,
    zipf: Zipf,
    gaps: Exp,
    rng: SmallRng,
    next_id: u64,
}

impl TrafficGen {
    /// A generator for `cfg`, seeded independently of every other sampler in
    /// the simulation.
    pub fn new(cfg: TrafficConfig, seed: u64) -> Self {
        assert!(
            cfg.mean_interarrival.is_finite() && cfg.mean_interarrival > 0.0,
            "mean_interarrival must be > 0"
        );
        assert!(cfg.key_universe >= 1, "key universe must be non-empty");
        TrafficGen {
            zipf: Zipf::new(cfg.key_universe, cfg.zipf_exponent),
            gaps: Exp::new(1.0 / cfg.mean_interarrival),
            cfg,
            rng: SmallRng::seed_from_u64(seed ^ 0x7261_6666_6963_2121),
            next_id: 0,
        }
    }

    /// The current configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Replaces the hot-key override (flash crowds switch on and off
    /// mid-run; the change applies from the next request).
    pub fn set_hot_key(&mut self, hot: Option<(u64, f64)>) {
        self.cfg.hot_key = hot;
    }

    /// Ticks until the next arrival (exponential, floored at 1).
    pub fn next_gap(&mut self) -> u64 {
        (self.gaps.sample(&mut self.rng).round() as u64).max(1)
    }

    /// Produces the next request of the stream, stamped `issued_at = now`.
    pub fn next_request(&mut self, now: u64) -> Request {
        let id = self.next_id;
        self.next_id += 1;
        // Fixed draw count and order (op, zipf, hot) — the hot roll is
        // consumed even with no hot key set, so toggling a flash crowd on or
        // off never shifts the op/key/gap stream of an otherwise-equal run.
        let op = if self.rng.gen_bool(self.cfg.put_fraction) { Op::Put } else { Op::Get };
        let mut key = self.zipf.sample(&mut self.rng);
        let hot_roll: f64 = self.rng.gen();
        if let Some((hot, p)) = self.cfg.hot_key {
            if hot_roll < p {
                key = hot;
            }
        }
        Request { id, op, key, issued_at: now }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mk = || {
            let mut g = TrafficGen::new(TrafficConfig::default(), 7);
            (0..64).map(|k| (g.next_gap(), g.next_request(k))).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let mut g = TrafficGen::new(TrafficConfig::default(), 1);
        let ids: Vec<u64> = (0..100).map(|k| g.next_request(k).id).collect();
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn keys_stay_in_universe_and_skew() {
        let cfg = TrafficConfig { key_universe: 50, zipf_exponent: 1.2, ..Default::default() };
        let mut g = TrafficGen::new(cfg, 3);
        let mut counts = [0usize; 51];
        for k in 0..20_000 {
            let r = g.next_request(k);
            assert!((1..=50).contains(&r.key));
            counts[r.key as usize] += 1;
        }
        assert!(counts[1] > counts[25] && counts[1] > counts[50], "Zipf head dominates");
    }

    #[test]
    fn put_fraction_roughly_holds() {
        let cfg = TrafficConfig { put_fraction: 0.25, ..Default::default() };
        let mut g = TrafficGen::new(cfg, 5);
        let puts = (0..10_000).filter(|&k| g.next_request(k).op == Op::Put).count();
        assert!((2_000..3_000).contains(&puts), "{puts} puts out of 10k");
    }

    #[test]
    fn hot_key_override_concentrates_traffic() {
        let mut g = TrafficGen::new(TrafficConfig::default(), 9);
        g.set_hot_key(Some((42, 0.8)));
        let hot = (0..5_000).filter(|&k| g.next_request(k).key == 42).count();
        assert!(hot > 3_700, "only {hot}/5000 hit the hot key");
        g.set_hot_key(None);
        let hot = (0..5_000).filter(|&k| g.next_request(k).key == 42).count();
        assert!(hot < 1_000, "hot key did not cool down: {hot}");
    }

    #[test]
    fn hot_key_toggle_does_not_shift_the_stream() {
        // The invariant the fixed draw count buys: a run that switches a
        // flash crowd on and back off stays aligned with an undisturbed run
        // — same ops and gaps throughout, same keys outside the hot window.
        let mut plain = TrafficGen::new(TrafficConfig::default(), 13);
        let mut crowd = TrafficGen::new(TrafficConfig::default(), 13);
        let sample = |g: &mut TrafficGen, n: u64| {
            (0..n).map(|k| (g.next_request(k), g.next_gap())).collect::<Vec<_>>()
        };
        let (a, b) = (sample(&mut plain, 100), sample(&mut crowd, 100));
        assert_eq!(a, b, "identical before the crowd");
        crowd.set_hot_key(Some((3, 0.7)));
        let (a, b) = (sample(&mut plain, 100), sample(&mut crowd, 100));
        assert!(a.iter().zip(&b).all(|((ra, ga), (rb, gb))| ra.op == rb.op && ga == gb));
        crowd.set_hot_key(None);
        let (a, b) = (sample(&mut plain, 100), sample(&mut crowd, 100));
        assert_eq!(a, b, "streams re-align once the crowd ends");
    }

    #[test]
    fn gaps_are_positive_with_requested_mean() {
        let cfg = TrafficConfig { mean_interarrival: 25.0, ..Default::default() };
        let mut g = TrafficGen::new(cfg, 11);
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|_| g.next_gap()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 25.0).abs() < 1.5, "mean gap {mean}");
    }
}

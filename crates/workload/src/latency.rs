//! Per-link latency models — how many virtual ticks one overlay hop takes —
//! and per-peer service capacity (queueing delay at a loaded peer).

use rand::distributions::{Distribution, Exp};
use rand::rngs::SmallRng;
use rand::Rng;
use rechord_core::adversary::mix;
use rechord_id::Ident;

/// The latency law applied to every peer-to-peer hop (local steps through a
/// peer's own virtual nodes are free — the peer simulates them in memory).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every hop takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` ticks, floored at 1 — a hop always takes at
    /// least one tick of virtual time, like every other model.
    Uniform {
        /// Smallest possible hop latency (a draw of 0 is floored to 1).
        lo: u64,
        /// Largest possible hop latency (inclusive; must be `>= lo`).
        hi: u64,
    },
    /// Exponentially distributed with the given mean, rounded to ticks and
    /// floored at 1 (a heavy-ish tail, the classic network-delay stand-in).
    Exponential {
        /// Mean hop latency in ticks (must be `> 0`).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one hop latency. Every draw consumes exactly one `rng` value,
    /// so swapping models does not shift the stream used by other samplers.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => {
                let _ = rng.gen::<u64>(); // keep the stream aligned
                t.max(1)
            }
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency needs lo <= hi");
                // Inclusive draw: `hi - lo + 1` would overflow at
                // `hi == u64::MAX`, and the result is floored like the
                // other models so `lo: 0` cannot yield a zero-tick hop.
                rng.gen_range(lo..=hi).max(1)
            }
            LatencyModel::Exponential { mean } => {
                let d = Exp::new(1.0 / mean.max(f64::MIN_POSITIVE));
                (d.sample(rng).round() as u64).max(1)
            }
        }
    }

    /// Draws one hop latency as a *pure function* of the given key words
    /// (hashed through the splitmix finalizer), so concurrent workers can
    /// sample without sharing an rng stream. Two draws agree iff their key
    /// words agree — the sharded data plane keys every draw by
    /// `(seed, tag, request id, attempt)` so the trace is independent of
    /// worker count and processing order.
    pub fn sample_keyed(&self, words: &[u64]) -> u64 {
        let h = mix(words);
        match *self {
            LatencyModel::Fixed(t) => t.max(1),
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency needs lo <= hi");
                // Full-width range: `hi - lo + 1` would overflow, and the
                // hash is already uniform over all of u64.
                let x = if hi.wrapping_sub(lo) == u64::MAX { h } else { lo + h % (hi - lo + 1) };
                x.max(1)
            }
            LatencyModel::Exponential { mean } => {
                // Inverse-CDF with 53 uniform bits, mirroring the floored
                // rounding of the rng-stream sampler.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                let draw = -mean.max(f64::MIN_POSITIVE) * (1.0 - u).ln();
                (draw.round() as u64).max(1)
            }
        }
    }

    /// The smallest latency this model can ever produce — the safe
    /// *lookahead* of the sharded data plane: two events at instants less
    /// than `min_delay()` apart can only be causally related if they belong
    /// to the same request, so a window of this width can be processed in
    /// parallel across arcs.
    pub fn min_delay(&self) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => t.max(1),
            LatencyModel::Uniform { lo, .. } => lo.max(1),
            LatencyModel::Exponential { .. } => 1,
        }
    }

    /// The model's mean hop latency in ticks (approximate for a `Uniform`
    /// with `lo: 0`, where the ≥1 floor shifts the true mean slightly up).
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(t) => t.max(1) as f64,
            LatencyModel::Uniform { lo, hi } => ((lo as f64 + hi as f64) / 2.0).max(1.0),
            LatencyModel::Exponential { mean } => mean,
        }
    }
}

/// Deterministic per-peer service capacity: a peer serves one request per
/// `service_time` ticks, FIFO, so a hop *through a loaded peer* waits for
/// the backlog ahead of it — queueing delay without randomness.
///
/// `service_time == 0` models infinite service rate (no queueing, no
/// bookkeeping): the pre-capacity behavior of the simulator.
///
/// Layout is structure-of-arrays: a sorted column of peer idents parallel
/// to a column of free-at instants. Iteration order is therefore the ident
/// order by construction (the pre-SoA `BTreeMap` was also sorted — the
/// audit for hash-order drain dependence found none — but the flat columns
/// make the invariant structural *and* let the sharded data plane hand
/// each worker a disjoint `&mut` slice of its arcs' backlog entries via
/// [`ServiceQueue::split`], no locks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceQueue {
    service_time: u64,
    /// Sorted peer idents; `free_at[i]` belongs to `peers[i]`.
    peers: Vec<Ident>,
    /// Virtual instant each peer's server frees up (0 = idle; a missing
    /// peer is equivalent to an entry at 0).
    free_at: Vec<u64>,
}

impl ServiceQueue {
    /// A queue where every peer serves one request per `service_time` ticks.
    pub fn new(service_time: u64) -> Self {
        ServiceQueue { service_time, peers: Vec::new(), free_at: Vec::new() }
    }

    /// Ticks one request occupies a peer's server (0 = infinite capacity).
    pub fn service_time(&self) -> u64 {
        self.service_time
    }

    /// Admits a request arriving at `peer` at instant `arrival`; returns
    /// when the peer is done serving it. An idle peer serves immediately
    /// (`arrival + service_time`); a busy one appends the request to its
    /// FIFO backlog.
    pub fn admit(&mut self, peer: Ident, arrival: u64) -> u64 {
        if self.service_time == 0 {
            return arrival;
        }
        let i = match self.peers.binary_search(&peer) {
            Ok(i) => i,
            Err(i) => {
                self.peers.insert(i, peer);
                self.free_at.insert(i, 0);
                i
            }
        };
        let done = arrival.max(self.free_at[i]) + self.service_time;
        self.free_at[i] = done;
        done
    }

    /// How many ticks of backlog `peer` has at instant `now`.
    pub fn backlog_of(&self, peer: Ident, now: u64) -> u64 {
        match self.peers.binary_search(&peer) {
            Ok(i) => self.free_at[i].saturating_sub(now),
            Err(_) => 0,
        }
    }

    /// Forgets a departed peer's backlog.
    pub fn forget(&mut self, peer: Ident) {
        if let Ok(i) = self.peers.binary_search(&peer) {
            self.peers.remove(i);
            self.free_at.remove(i);
        }
    }

    /// Ensures every peer in `live` (any order) has an entry, inserting
    /// idle (`free_at = 0`) rows for the missing ones. The sharded data
    /// plane calls this before splitting so that parallel workers — which
    /// cannot insert into a shared column — find every admissible peer
    /// already present. Inserting at 0 is observationally identical to the
    /// peer being absent.
    pub fn sync_peers(&mut self, live: &[Ident]) {
        if self.service_time == 0 {
            return;
        }
        let mut sorted: Vec<Ident> = live.to_vec();
        sorted.sort_unstable();
        let mut merged_peers = Vec::with_capacity(self.peers.len() + sorted.len());
        let mut merged_free = Vec::with_capacity(self.peers.len() + sorted.len());
        let (mut i, mut j) = (0, 0);
        while i < self.peers.len() || j < sorted.len() {
            if i < self.peers.len() && (j >= sorted.len() || self.peers[i] <= sorted[j]) {
                if j < sorted.len() && self.peers[i] == sorted[j] {
                    j += 1;
                }
                merged_peers.push(self.peers[i]);
                merged_free.push(self.free_at[i]);
                i += 1;
            } else {
                merged_peers.push(sorted[j]);
                merged_free.push(0);
                j += 1;
            }
        }
        self.peers = merged_peers;
        self.free_at = merged_free;
    }

    /// Splits the backlog columns into disjoint mutable slices, one per
    /// arc, where `arc_starts[a]` is the smallest raw ident belonging to
    /// arc `a` (so `arc_starts[0] == 0` and the array is ascending). Each
    /// returned [`ServiceSlice`] can admit and query only peers inside its
    /// arc — the split borrows are disjoint, so workers share nothing.
    pub fn split<'q>(&'q mut self, arc_starts: &[u64]) -> Vec<ServiceSlice<'q>> {
        debug_assert!(arc_starts.first().is_none_or(|&s| s == 0));
        debug_assert!(arc_starts.windows(2).all(|w| w[0] <= w[1]));
        let mut out = Vec::with_capacity(arc_starts.len());
        let mut peers_rest: &'q [Ident] = &self.peers;
        let mut free_rest: &'q mut [u64] = &mut self.free_at;
        for (a, &start) in arc_starts.iter().enumerate() {
            let end_raw = arc_starts.get(a + 1).copied();
            let cut = match end_raw {
                Some(e) => peers_rest.partition_point(|p| p.raw() < e),
                None => peers_rest.len(),
            };
            let (peers_here, p_rest) = peers_rest.split_at(cut);
            let (free_here, f_rest) = free_rest.split_at_mut(cut);
            debug_assert!(peers_here.iter().all(|p| p.raw() >= start));
            peers_rest = p_rest;
            free_rest = f_rest;
            out.push(ServiceSlice {
                service_time: self.service_time,
                peers: peers_here,
                free_at: free_here,
            });
        }
        out
    }
}

/// One arc's disjoint view of a [`ServiceQueue`]: the same FIFO admission
/// arithmetic over a `&mut` slice of the backlog column. Produced by
/// [`ServiceQueue::split`]; admissions through a slice are visible in the
/// parent queue once the borrow ends.
pub struct ServiceSlice<'q> {
    service_time: u64,
    peers: &'q [Ident],
    free_at: &'q mut [u64],
}

impl ServiceSlice<'_> {
    /// Slice-local [`ServiceQueue::admit`]. The peer must live inside this
    /// slice's arc (guaranteed when events are partitioned by destination
    /// arc); an unknown peer is served without recording backlog, which
    /// can only happen for a peer admitted mid-batch — impossible, since
    /// membership changes are control-plane events at batch boundaries.
    pub fn admit(&mut self, peer: Ident, arrival: u64) -> u64 {
        if self.service_time == 0 {
            return arrival;
        }
        match self.peers.binary_search(&peer) {
            Ok(i) => {
                let done = arrival.max(self.free_at[i]) + self.service_time;
                self.free_at[i] = done;
                done
            }
            Err(_) => {
                debug_assert!(false, "admit for a peer outside the synced slice: {peer:?}");
                arrival + self.service_time
            }
        }
    }

    /// Slice-local [`ServiceQueue::backlog_of`].
    pub fn backlog_of(&self, peer: Ident, now: u64) -> u64 {
        match self.peers.binary_search(&peer) {
            Ok(i) => self.free_at[i].saturating_sub(now),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed_and_floored() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Fixed(7).sample(&mut rng), 7);
        assert_eq!(LatencyModel::Fixed(0).sample(&mut rng), 1);
        assert_eq!(LatencyModel::Fixed(7).mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = m.sample(&mut rng);
            assert!((5..=15).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 15;
        }
        assert!(seen_lo && seen_hi, "both bounds are reachable");
        assert_eq!(m.mean(), 10.0);
    }

    #[test]
    fn uniform_full_width_and_zero_lo_are_safe() {
        // `hi == u64::MAX` used to overflow in `hi - lo + 1`; the inclusive
        // draw must cover the full width without panicking.
        let mut rng = SmallRng::seed_from_u64(7);
        let full = LatencyModel::Uniform { lo: 0, hi: u64::MAX };
        for _ in 0..100 {
            assert!(full.sample(&mut rng) >= 1, "even the widest draw is floored at 1");
        }
        let top = LatencyModel::Uniform { lo: u64::MAX, hi: u64::MAX };
        assert_eq!(top.sample(&mut rng), u64::MAX);
        // `lo: 0` draws are floored: a hop never takes zero virtual time.
        let low = LatencyModel::Uniform { lo: 0, hi: 3 };
        let mut floored = 0;
        for _ in 0..2_000 {
            let x = low.sample(&mut rng);
            assert!((1..=3).contains(&x));
            floored += u64::from(x == 1);
        }
        assert!(floored > 600, "0 and 1 both collapse onto the 1-tick floor ({floored})");
        assert_eq!(LatencyModel::Uniform { lo: 0, hi: 0 }.mean(), 1.0);
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let m = LatencyModel::Exponential { mean: 20.0 };
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "empirical mean {mean}");
        // never zero
        assert!((0..1000).all(|_| m.sample(&mut rng) >= 1));
    }

    #[test]
    fn service_queue_builds_deterministic_backlog() {
        let p = Ident::from_raw(7);
        let q2 = Ident::from_raw(9);
        let mut q = ServiceQueue::new(10);
        assert_eq!(q.service_time(), 10);
        // Idle peer: served immediately.
        assert_eq!(q.admit(p, 100), 110);
        // Arriving while busy: queue behind the previous request.
        assert_eq!(q.admit(p, 105), 120);
        assert_eq!(q.admit(p, 105), 130);
        assert_eq!(q.backlog_of(p, 105), 25);
        // Another peer is unaffected.
        assert_eq!(q.admit(q2, 105), 115);
        // After the backlog drains the peer is idle again.
        assert_eq!(q.admit(p, 500), 510);
        assert_eq!(q.backlog_of(q2, 400), 0);
        q.forget(p);
        assert_eq!(q.backlog_of(p, 0), 0);
    }

    #[test]
    fn forget_never_resurrects_backlog() {
        // Crash semantics: `forget()` must wipe a peer's backlog for good —
        // a later admission (only possible for a *live* peer of the same
        // ident, e.g. after a rejoin) starts from an idle server, never
        // from the ghost's queue.
        let p = Ident::from_raw(3);
        let mut q = ServiceQueue::new(10);
        q.admit(p, 100);
        q.admit(p, 100);
        q.admit(p, 100);
        assert_eq!(q.backlog_of(p, 100), 30);
        q.forget(p);
        assert_eq!(q.backlog_of(p, 100), 0, "forgotten backlog is gone");
        assert_eq!(q.admit(p, 101), 111, "post-forget admission starts idle");
        assert_eq!(q.backlog_of(p, 101), 10);
        // Forgetting an unknown peer is a no-op, not a panic.
        q.forget(Ident::from_raw(999));
    }

    #[test]
    fn backlog_is_monotone_nonincreasing_between_admissions() {
        // Between admissions the backlog can only drain: for any admission
        // schedule, `backlog_of` evaluated at non-decreasing instants with
        // no admission in between never grows.
        let mut rng = SmallRng::seed_from_u64(11);
        let p = Ident::from_raw(5);
        for _ in 0..200 {
            let mut q = ServiceQueue::new(rng.gen_range(1u64..12));
            let mut now = 0u64;
            for _ in 0..rng.gen_range(1usize..20) {
                now += rng.gen_range(0u64..30);
                q.admit(p, now);
            }
            let mut last = q.backlog_of(p, now);
            for _ in 0..20 {
                now += rng.gen_range(0u64..15);
                let b = q.backlog_of(p, now);
                assert!(b <= last, "backlog grew from {last} to {b} with no admission");
                last = b;
            }
            assert_eq!(q.backlog_of(p, now + 1_000_000), 0, "every backlog drains");
        }
    }

    #[test]
    fn zero_service_time_is_infinite_capacity() {
        let p = Ident::from_raw(1);
        let mut q = ServiceQueue::new(0);
        for t in 0..100 {
            assert_eq!(q.admit(p, t), t, "no queueing at infinite rate");
        }
        assert_eq!(q.backlog_of(p, 0), 0);
    }

    #[test]
    fn keyed_draws_are_pure_bounded_and_key_sensitive() {
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..2_000u64 {
            let x = m.sample_keyed(&[42, 0xabc, id]);
            assert!((5..=15).contains(&x));
            assert_eq!(x, m.sample_keyed(&[42, 0xabc, id]), "same key, same draw");
            seen.insert(x);
        }
        assert_eq!(seen.len(), 11, "all 11 values of [5,15] are reachable");
        // Fixed ignores the key entirely; the floor still applies.
        assert_eq!(LatencyModel::Fixed(0).sample_keyed(&[1, 2]), 1);
        assert_eq!(LatencyModel::Fixed(9).sample_keyed(&[3]), 9);
        // Full-width uniform must not overflow, and stays floored.
        let full = LatencyModel::Uniform { lo: 0, hi: u64::MAX };
        for id in 0..100u64 {
            assert!(full.sample_keyed(&[id]) >= 1);
        }
    }

    #[test]
    fn keyed_exponential_mean_roughly_holds() {
        let m = LatencyModel::Exponential { mean: 20.0 };
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|id| m.sample_keyed(&[7, id])).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "empirical keyed mean {mean}");
    }

    #[test]
    fn min_delay_is_a_true_lower_bound() {
        let models = [
            LatencyModel::Fixed(4),
            LatencyModel::Fixed(0),
            LatencyModel::Uniform { lo: 0, hi: 6 },
            LatencyModel::Uniform { lo: 3, hi: 9 },
            LatencyModel::Exponential { mean: 5.0 },
        ];
        for m in models {
            let floor = m.min_delay();
            assert!(floor >= 1);
            for id in 0..3_000u64 {
                assert!(m.sample_keyed(&[11, id]) >= floor, "{m:?} broke its floor");
            }
        }
    }

    #[test]
    fn split_slices_admit_exactly_like_the_global_queue() {
        // The satellite-5 regression: partition peers into arcs, drive the
        // same admission schedule through per-arc slices and through one
        // global queue — the resulting backlog columns must be identical.
        let peers: Vec<Ident> = [3u64, 10, 25, 40, 77, 90, 150, 200]
            .iter()
            .map(|&r| Ident::from_raw(r << 56))
            .collect();
        let schedule: Vec<(usize, u64)> =
            vec![(0, 5), (3, 5), (3, 6), (7, 9), (1, 12), (3, 14), (6, 20), (0, 21)];

        let mut global = ServiceQueue::new(10);
        global.sync_peers(&peers);
        let mut expect = Vec::new();
        for &(p, at) in &schedule {
            expect.push(global.admit(peers[p], at));
        }

        let mut sharded = ServiceQueue::new(10);
        sharded.sync_peers(&peers);
        // Three arcs over the raw space: [0, 2^62), [2^62, 2^63), rest.
        let starts = [0u64, 1 << 62, 1 << 63];
        let arc_of = |r: u64| starts.iter().rposition(|&s| r >= s).unwrap();
        {
            let mut slices = sharded.split(&starts);
            let mut got = Vec::new();
            for &(p, at) in &schedule {
                got.push(slices[arc_of(peers[p].raw())].admit(peers[p], at));
            }
            assert_eq!(got, expect, "slice admissions == global admissions");
        }
        assert_eq!(sharded, global, "post-batch columns are identical");
        for &p in &peers {
            assert_eq!(sharded.backlog_of(p, 20), global.backlog_of(p, 20));
        }
    }

    #[test]
    fn sync_peers_inserts_idle_rows_only() {
        let a = Ident::from_raw(10);
        let b = Ident::from_raw(20);
        let c = Ident::from_raw(30);
        let mut q = ServiceQueue::new(5);
        q.admit(b, 100);
        let before = q.backlog_of(b, 100);
        q.sync_peers(&[c, a, b]);
        assert_eq!(q.backlog_of(b, 100), before, "existing backlog survives sync");
        assert_eq!(q.backlog_of(a, 0), 0);
        assert_eq!(q.backlog_of(c, 0), 0);
        // Synced-at-idle is observationally identical to absent.
        let mut fresh = ServiceQueue::new(5);
        assert_eq!(q.admit(a, 7), fresh.admit(a, 7));
    }

    #[test]
    fn one_draw_per_sample_keeps_streams_aligned() {
        // Same rng consumption for every model: the *next* value after one
        // sample is identical regardless of which model sampled.
        let probe = |m: LatencyModel| {
            let mut rng = SmallRng::seed_from_u64(9);
            let _ = m.sample(&mut rng);
            rng.gen::<u64>()
        };
        let a = probe(LatencyModel::Fixed(3));
        let b = probe(LatencyModel::Uniform { lo: 1, hi: 8 });
        let c = probe(LatencyModel::Exponential { mean: 5.0 });
        assert!(a == b && b == c);
    }
}

//! Per-link latency models — how many virtual ticks one overlay hop takes —
//! and per-peer service capacity (queueing delay at a loaded peer).

use rand::distributions::{Distribution, Exp};
use rand::rngs::SmallRng;
use rand::Rng;
use rechord_id::Ident;
use std::collections::BTreeMap;

/// The latency law applied to every peer-to-peer hop (local steps through a
/// peer's own virtual nodes are free — the peer simulates them in memory).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every hop takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` ticks, floored at 1 — a hop always takes at
    /// least one tick of virtual time, like every other model.
    Uniform {
        /// Smallest possible hop latency (a draw of 0 is floored to 1).
        lo: u64,
        /// Largest possible hop latency (inclusive; must be `>= lo`).
        hi: u64,
    },
    /// Exponentially distributed with the given mean, rounded to ticks and
    /// floored at 1 (a heavy-ish tail, the classic network-delay stand-in).
    Exponential {
        /// Mean hop latency in ticks (must be `> 0`).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one hop latency. Every draw consumes exactly one `rng` value,
    /// so swapping models does not shift the stream used by other samplers.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => {
                let _ = rng.gen::<u64>(); // keep the stream aligned
                t.max(1)
            }
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency needs lo <= hi");
                // Inclusive draw: `hi - lo + 1` would overflow at
                // `hi == u64::MAX`, and the result is floored like the
                // other models so `lo: 0` cannot yield a zero-tick hop.
                rng.gen_range(lo..=hi).max(1)
            }
            LatencyModel::Exponential { mean } => {
                let d = Exp::new(1.0 / mean.max(f64::MIN_POSITIVE));
                (d.sample(rng).round() as u64).max(1)
            }
        }
    }

    /// The model's mean hop latency in ticks (approximate for a `Uniform`
    /// with `lo: 0`, where the ≥1 floor shifts the true mean slightly up).
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(t) => t.max(1) as f64,
            LatencyModel::Uniform { lo, hi } => ((lo as f64 + hi as f64) / 2.0).max(1.0),
            LatencyModel::Exponential { mean } => mean,
        }
    }
}

/// Deterministic per-peer service capacity: a peer serves one request per
/// `service_time` ticks, FIFO, so a hop *through a loaded peer* waits for
/// the backlog ahead of it — queueing delay without randomness.
///
/// `service_time == 0` models infinite service rate (no queueing, no
/// bookkeeping): the pre-capacity behavior of the simulator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceQueue {
    service_time: u64,
    /// Virtual instant each peer's server frees up (absent = idle forever).
    next_free: BTreeMap<Ident, u64>,
}

impl ServiceQueue {
    /// A queue where every peer serves one request per `service_time` ticks.
    pub fn new(service_time: u64) -> Self {
        ServiceQueue { service_time, next_free: BTreeMap::new() }
    }

    /// Ticks one request occupies a peer's server (0 = infinite capacity).
    pub fn service_time(&self) -> u64 {
        self.service_time
    }

    /// Admits a request arriving at `peer` at instant `arrival`; returns
    /// when the peer is done serving it. An idle peer serves immediately
    /// (`arrival + service_time`); a busy one appends the request to its
    /// FIFO backlog.
    pub fn admit(&mut self, peer: Ident, arrival: u64) -> u64 {
        if self.service_time == 0 {
            return arrival;
        }
        let free = self.next_free.entry(peer).or_insert(0);
        let done = arrival.max(*free) + self.service_time;
        *free = done;
        done
    }

    /// How many ticks of backlog `peer` has at instant `now`.
    pub fn backlog_of(&self, peer: Ident, now: u64) -> u64 {
        self.next_free.get(&peer).map_or(0, |f| f.saturating_sub(now))
    }

    /// Forgets a departed peer's backlog.
    pub fn forget(&mut self, peer: Ident) {
        self.next_free.remove(&peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed_and_floored() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Fixed(7).sample(&mut rng), 7);
        assert_eq!(LatencyModel::Fixed(0).sample(&mut rng), 1);
        assert_eq!(LatencyModel::Fixed(7).mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = m.sample(&mut rng);
            assert!((5..=15).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 15;
        }
        assert!(seen_lo && seen_hi, "both bounds are reachable");
        assert_eq!(m.mean(), 10.0);
    }

    #[test]
    fn uniform_full_width_and_zero_lo_are_safe() {
        // `hi == u64::MAX` used to overflow in `hi - lo + 1`; the inclusive
        // draw must cover the full width without panicking.
        let mut rng = SmallRng::seed_from_u64(7);
        let full = LatencyModel::Uniform { lo: 0, hi: u64::MAX };
        for _ in 0..100 {
            assert!(full.sample(&mut rng) >= 1, "even the widest draw is floored at 1");
        }
        let top = LatencyModel::Uniform { lo: u64::MAX, hi: u64::MAX };
        assert_eq!(top.sample(&mut rng), u64::MAX);
        // `lo: 0` draws are floored: a hop never takes zero virtual time.
        let low = LatencyModel::Uniform { lo: 0, hi: 3 };
        let mut floored = 0;
        for _ in 0..2_000 {
            let x = low.sample(&mut rng);
            assert!((1..=3).contains(&x));
            floored += u64::from(x == 1);
        }
        assert!(floored > 600, "0 and 1 both collapse onto the 1-tick floor ({floored})");
        assert_eq!(LatencyModel::Uniform { lo: 0, hi: 0 }.mean(), 1.0);
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let m = LatencyModel::Exponential { mean: 20.0 };
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "empirical mean {mean}");
        // never zero
        assert!((0..1000).all(|_| m.sample(&mut rng) >= 1));
    }

    #[test]
    fn service_queue_builds_deterministic_backlog() {
        let p = Ident::from_raw(7);
        let q2 = Ident::from_raw(9);
        let mut q = ServiceQueue::new(10);
        assert_eq!(q.service_time(), 10);
        // Idle peer: served immediately.
        assert_eq!(q.admit(p, 100), 110);
        // Arriving while busy: queue behind the previous request.
        assert_eq!(q.admit(p, 105), 120);
        assert_eq!(q.admit(p, 105), 130);
        assert_eq!(q.backlog_of(p, 105), 25);
        // Another peer is unaffected.
        assert_eq!(q.admit(q2, 105), 115);
        // After the backlog drains the peer is idle again.
        assert_eq!(q.admit(p, 500), 510);
        assert_eq!(q.backlog_of(q2, 400), 0);
        q.forget(p);
        assert_eq!(q.backlog_of(p, 0), 0);
    }

    #[test]
    fn forget_never_resurrects_backlog() {
        // Crash semantics: `forget()` must wipe a peer's backlog for good —
        // a later admission (only possible for a *live* peer of the same
        // ident, e.g. after a rejoin) starts from an idle server, never
        // from the ghost's queue.
        let p = Ident::from_raw(3);
        let mut q = ServiceQueue::new(10);
        q.admit(p, 100);
        q.admit(p, 100);
        q.admit(p, 100);
        assert_eq!(q.backlog_of(p, 100), 30);
        q.forget(p);
        assert_eq!(q.backlog_of(p, 100), 0, "forgotten backlog is gone");
        assert_eq!(q.admit(p, 101), 111, "post-forget admission starts idle");
        assert_eq!(q.backlog_of(p, 101), 10);
        // Forgetting an unknown peer is a no-op, not a panic.
        q.forget(Ident::from_raw(999));
    }

    #[test]
    fn backlog_is_monotone_nonincreasing_between_admissions() {
        // Between admissions the backlog can only drain: for any admission
        // schedule, `backlog_of` evaluated at non-decreasing instants with
        // no admission in between never grows.
        let mut rng = SmallRng::seed_from_u64(11);
        let p = Ident::from_raw(5);
        for _ in 0..200 {
            let mut q = ServiceQueue::new(rng.gen_range(1u64..12));
            let mut now = 0u64;
            for _ in 0..rng.gen_range(1usize..20) {
                now += rng.gen_range(0u64..30);
                q.admit(p, now);
            }
            let mut last = q.backlog_of(p, now);
            for _ in 0..20 {
                now += rng.gen_range(0u64..15);
                let b = q.backlog_of(p, now);
                assert!(b <= last, "backlog grew from {last} to {b} with no admission");
                last = b;
            }
            assert_eq!(q.backlog_of(p, now + 1_000_000), 0, "every backlog drains");
        }
    }

    #[test]
    fn zero_service_time_is_infinite_capacity() {
        let p = Ident::from_raw(1);
        let mut q = ServiceQueue::new(0);
        for t in 0..100 {
            assert_eq!(q.admit(p, t), t, "no queueing at infinite rate");
        }
        assert_eq!(q.backlog_of(p, 0), 0);
    }

    #[test]
    fn one_draw_per_sample_keeps_streams_aligned() {
        // Same rng consumption for every model: the *next* value after one
        // sample is identical regardless of which model sampled.
        let probe = |m: LatencyModel| {
            let mut rng = SmallRng::seed_from_u64(9);
            let _ = m.sample(&mut rng);
            rng.gen::<u64>()
        };
        let a = probe(LatencyModel::Fixed(3));
        let b = probe(LatencyModel::Uniform { lo: 1, hi: 8 });
        let c = probe(LatencyModel::Exponential { mean: 5.0 });
        assert!(a == b && b == c);
    }
}

//! Per-link latency models: how many virtual ticks one overlay hop takes.

use rand::distributions::{Distribution, Exp};
use rand::rngs::SmallRng;
use rand::Rng;

/// The latency law applied to every peer-to-peer hop (local steps through a
/// peer's own virtual nodes are free — the peer simulates them in memory).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every hop takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]` ticks.
    Uniform {
        /// Smallest possible hop latency.
        lo: u64,
        /// Largest possible hop latency (inclusive; must be `>= lo`).
        hi: u64,
    },
    /// Exponentially distributed with the given mean, rounded to ticks and
    /// floored at 1 (a heavy-ish tail, the classic network-delay stand-in).
    Exponential {
        /// Mean hop latency in ticks (must be `> 0`).
        mean: f64,
    },
}

impl LatencyModel {
    /// Draws one hop latency. Every draw consumes exactly one `rng` value,
    /// so swapping models does not shift the stream used by other samplers.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            LatencyModel::Fixed(t) => {
                let _ = rng.gen::<u64>(); // keep the stream aligned
                t.max(1)
            }
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency needs lo <= hi");
                lo + rng.gen_range(0..hi - lo + 1)
            }
            LatencyModel::Exponential { mean } => {
                let d = Exp::new(1.0 / mean.max(f64::MIN_POSITIVE));
                (d.sample(rng).round() as u64).max(1)
            }
        }
    }

    /// The model's mean hop latency in ticks.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(t) => t.max(1) as f64,
            LatencyModel::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            LatencyModel::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_fixed_and_floored() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(LatencyModel::Fixed(7).sample(&mut rng), 7);
        assert_eq!(LatencyModel::Fixed(0).sample(&mut rng), 1);
        assert_eq!(LatencyModel::Fixed(7).mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = m.sample(&mut rng);
            assert!((5..=15).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 15;
        }
        assert!(seen_lo && seen_hi, "both bounds are reachable");
        assert_eq!(m.mean(), 10.0);
    }

    #[test]
    fn exponential_mean_roughly_holds() {
        let m = LatencyModel::Exponential { mean: 20.0 };
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "empirical mean {mean}");
        // never zero
        assert!((0..1000).all(|_| m.sample(&mut rng) >= 1));
    }

    #[test]
    fn one_draw_per_sample_keeps_streams_aligned() {
        // Same rng consumption for every model: the *next* value after one
        // sample is identical regardless of which model sampled.
        let probe = |m: LatencyModel| {
            let mut rng = SmallRng::seed_from_u64(9);
            let _ = m.sample(&mut rng);
            rng.gen::<u64>()
        };
        let a = probe(LatencyModel::Fixed(3));
        let b = probe(LatencyModel::Uniform { lo: 1, hi: 8 });
        let c = probe(LatencyModel::Exponential { mean: 5.0 });
        assert!(a == b && b == c);
    }
}

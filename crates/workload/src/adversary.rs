//! Workload-layer adversary wiring: how many peers misbehave, what they
//! do, and when the sybil wave strikes.
//!
//! The crime catalog and behavior policies themselves live in
//! `rechord_core::adversary` (the protocol layer consults the same map);
//! this module owns the *scenario* knobs — fraction corrupted, flaky
//! fraction, sybil timing — and builds the immutable behavior map a
//! [`crate::TrafficSim`] installs into both layers at construction.

use rechord_core::adversary::{mix, AdversaryMap, Behavior, Crime, CrimeSet};
use rechord_id::Ident;

/// Scenario-level adversary knobs. The default is fully honest and is
/// byte-for-byte the legacy simulator: no policy map is installed, no
/// event is scheduled, no random draw is consumed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversaryConfig {
    /// Fraction of the initial peers turned byzantine (⌊fraction·n⌋,
    /// selected deterministically from the seed).
    pub fraction: f64,
    /// The crime set every byzantine peer commits.
    pub crimes: CrimeSet,
    /// Fraction of the remaining peers that are flaky (honest but
    /// unreliable), disjoint from the byzantine set.
    pub flaky_fraction: f64,
    /// A flaky peer's probability of sitting out a protocol round or
    /// dropping a forward.
    pub flaky_drop: f64,
    /// Sybil identities each [`Crime::SybilJoinWave`] attacker injects.
    pub sybil_wave: usize,
    /// Virtual instant the sybil wave strikes.
    pub sybil_at: u64,
}

impl Default for AdversaryConfig {
    fn default() -> Self {
        AdversaryConfig {
            fraction: 0.0,
            crimes: CrimeSet::EMPTY,
            flaky_fraction: 0.0,
            flaky_drop: 0.0,
            sybil_wave: 0,
            sybil_at: 0,
        }
    }
}

impl AdversaryConfig {
    /// Does this configuration corrupt anyone at all?
    pub fn is_active(&self) -> bool {
        (self.fraction > 0.0 && !self.crimes.is_empty()) || self.flaky_fraction > 0.0
    }

    /// Builds the behavior map over the initial `peers`, plus the
    /// `(attacker, sybil)` join list for the wave (empty unless the crime
    /// set includes [`Crime::SybilJoinWave`]). Sybil identities are
    /// precomputed here so the map can be frozen behind an `Arc` before
    /// the simulation starts — a sybil is byzantine from the instant it
    /// joins.
    pub fn build(&self, peers: &[Ident], seed: u64) -> (AdversaryMap, Vec<(Ident, Ident)>) {
        let mut map = AdversaryMap::assign(
            peers,
            self.fraction,
            self.crimes,
            self.flaky_fraction,
            self.flaky_drop,
            seed,
        );
        let mut sybils = Vec::new();
        if self.sybil_wave > 0 && self.crimes.contains(Crime::SybilJoinWave) {
            for attacker in map.byzantine_peers() {
                for k in 0..self.sybil_wave {
                    let sybil = Ident::from_raw(mix(&[seed, attacker.raw(), 0x5b11, k as u64]));
                    map.set(sybil, Behavior::Byzantine(self.crimes));
                    sybils.push((attacker, sybil));
                }
            }
        }
        (map, sybils)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest_and_inactive() {
        let cfg = AdversaryConfig::default();
        assert!(!cfg.is_active());
        let peers: Vec<Ident> = (1..=8).map(Ident::from_raw).collect();
        let (map, sybils) = cfg.build(&peers, 7);
        assert!(map.is_all_honest());
        assert!(sybils.is_empty());
    }

    #[test]
    fn sybil_wave_precomputes_byzantine_identities() {
        let cfg = AdversaryConfig {
            fraction: 0.25,
            crimes: CrimeSet::single(Crime::SybilJoinWave).with(Crime::StaleReadPoison),
            sybil_wave: 3,
            ..Default::default()
        };
        let peers: Vec<Ident> = (0..8).map(|k| Ident::from_raw(k * 1_000_003)).collect();
        let (map, sybils) = cfg.build(&peers, 11);
        assert_eq!(map.byzantine_peers().len(), 2 + 2 * 3, "attackers + their sybils");
        assert_eq!(sybils.len(), 6);
        for &(attacker, sybil) in &sybils {
            assert!(map.commits(attacker, Crime::SybilJoinWave));
            assert!(map.commits(sybil, Crime::StaleReadPoison), "sybils inherit the crimes");
            assert!(!peers.contains(&sybil), "sybils are fresh identities");
        }
        let (again, sybils_again) = cfg.build(&peers, 11);
        assert_eq!(map, again);
        assert_eq!(sybils, sybils_again);
    }

    #[test]
    fn no_wave_without_the_crime() {
        let cfg = AdversaryConfig {
            fraction: 0.5,
            crimes: CrimeSet::single(Crime::DropForward),
            sybil_wave: 4,
            ..Default::default()
        };
        let peers: Vec<Ident> = (1..=6).map(Ident::from_raw).collect();
        let (_, sybils) = cfg.build(&peers, 3);
        assert!(sybils.is_empty(), "sybil_wave is inert without SybilJoinWave");
    }
}

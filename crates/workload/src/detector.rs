//! Per-peer failure detection with false suspicions.
//!
//! The legacy model was one global constant: every crash becomes visible to
//! every survivor exactly `detection_lag` ticks later, and the detector
//! never errs. Real failure detectors are neither uniform nor accurate —
//! they time out different peers at different moments and sometimes
//! suspect peers that are merely slow. [`FailureDetector`] models both
//! imperfections deterministically:
//!
//! * **per-peer lag**: a crash of `v` is detected at
//!   `detection_lag + mix(seed, v) % (lag_jitter + 1)` — each victim has
//!   its own timeout;
//! * **false suspicions**: on a configurable cadence the detector wrongly
//!   suspects a live peer for `suspect_for` ticks; requests bounce off
//!   suspected peers (entry points avoid them, hops landing on them
//!   retry) even though the peer is perfectly healthy — the availability
//!   tax of an over-eager detector. The adversary can weaponize this via
//!   `Crime::StallHeartbeats`: a byzantine peer starves its clockwise
//!   neighbor's heartbeats so the *victim* gets suspected every cadence.
//!
//! All randomness is the pure `mix` hash, so detector behavior never
//! perturbs the simulation's RNG streams: the all-zero [`DetectorConfig`]
//! is bit-identical to the legacy global-lag model.

use rechord_core::adversary::mix;
use rechord_id::Ident;
use std::collections::BTreeMap;

/// Failure-detector knobs. All-zero (the default) reproduces the legacy
/// behavior: uniform lag, no false suspicions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Per-victim jitter added to the base detection lag: crash detection
    /// fires at `base + mix(seed, victim) % (lag_jitter + 1)`. `0` keeps
    /// the uniform global lag.
    pub lag_jitter: u64,
    /// Every this many ticks the detector falsely suspects one live peer
    /// (`0` = the detector never errs on its own; heartbeat-stalling
    /// attackers still fire on the `detection_lag` cadence).
    pub false_suspect_every: u64,
    /// Ticks a suspicion lasts before it clears. `0` makes suspicions
    /// no-ops (the legacy accurate detector).
    pub suspect_for: u64,
}

/// One entry of the suspect/clear timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspicionEvent {
    /// Instant the suspicion was raised.
    pub at: u64,
    /// The suspected (live) peer.
    pub peer: Ident,
    /// Instant the suspicion clears.
    pub until: u64,
}

/// The per-peer failure detector: suspicion state plus the deterministic
/// per-victim crash lag (see module docs).
#[derive(Clone, Debug)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    seed: u64,
    /// Currently suspected peers → instant the suspicion clears.
    suspected: BTreeMap<Ident, u64>,
    timeline: Vec<SuspicionEvent>,
}

impl FailureDetector {
    /// A detector with no active suspicions.
    pub fn new(cfg: DetectorConfig, seed: u64) -> Self {
        FailureDetector { cfg, seed, suspected: BTreeMap::new(), timeline: Vec::new() }
    }

    /// The configuration.
    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// Ticks after `victim`'s crash until survivors scrub their views: the
    /// base lag plus this victim's deterministic jitter.
    pub fn crash_lag(&self, victim: Ident, base: u64) -> u64 {
        if self.cfg.lag_jitter == 0 {
            base
        } else {
            base + mix(&[self.seed, 0xde7e_c701, victim.raw()]) % (self.cfg.lag_jitter + 1)
        }
    }

    /// Suspects `peer` from `now` for the configured duration (extending an
    /// existing suspicion, never shortening it). A zero `suspect_for` is a
    /// no-op.
    pub fn suspect(&mut self, peer: Ident, now: u64) {
        let until = now + self.cfg.suspect_for;
        if until <= now {
            return;
        }
        let entry = self.suspected.entry(peer).or_insert(0);
        *entry = (*entry).max(until);
        self.timeline.push(SuspicionEvent { at: now, peer, until });
    }

    /// Is `peer` under suspicion at `now`?
    pub fn is_suspected(&self, peer: Ident, now: u64) -> bool {
        self.suspected.get(&peer).is_some_and(|&until| until > now)
    }

    /// Is *anyone* under suspicion at `now`? (The fast-path gate: honest
    /// legacy runs never pay for per-peer checks.)
    pub fn has_active(&self, now: u64) -> bool {
        self.suspected.values().any(|&until| until > now)
    }

    /// Drops suspicions that have cleared by `now`.
    pub fn prune(&mut self, now: u64) {
        self.suspected.retain(|_, &mut until| until > now);
    }

    /// The full suspect/clear timeline, in raise order.
    pub fn timeline(&self) -> &[SuspicionEvent] {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_is_the_legacy_detector() {
        let mut d = FailureDetector::new(DetectorConfig::default(), 7);
        let v = Ident::from_raw(42);
        assert_eq!(d.crash_lag(v, 250), 250, "no jitter: the global constant");
        d.suspect(v, 100);
        assert!(!d.is_suspected(v, 100), "suspect_for 0 never suspects");
        assert!(!d.has_active(0));
        assert!(d.timeline().is_empty());
    }

    #[test]
    fn jittered_lag_is_deterministic_and_bounded() {
        let cfg = DetectorConfig { lag_jitter: 100, ..Default::default() };
        let d = FailureDetector::new(cfg, 9);
        let lags: Vec<u64> =
            (0..50).map(|k| d.crash_lag(Ident::from_raw(k * 7 + 1), 250)).collect();
        assert!(lags.iter().all(|&l| (250..=350).contains(&l)));
        assert!(lags.windows(2).any(|w| w[0] != w[1]), "per-victim lags differ");
        let d2 = FailureDetector::new(cfg, 9);
        assert_eq!(lags[3], d2.crash_lag(Ident::from_raw(22), 250));
    }

    #[test]
    fn suspicions_raise_extend_and_clear() {
        let cfg = DetectorConfig { suspect_for: 50, ..Default::default() };
        let mut d = FailureDetector::new(cfg, 1);
        let v = Ident::from_raw(5);
        d.suspect(v, 100);
        assert!(d.is_suspected(v, 100));
        assert!(d.is_suspected(v, 149));
        assert!(!d.is_suspected(v, 150), "clears at now + suspect_for");
        assert!(d.has_active(120));
        assert!(!d.has_active(200));
        // Re-suspecting extends; it never shortens.
        d.suspect(v, 140);
        assert!(d.is_suspected(v, 170));
        d.prune(1_000);
        assert!(!d.has_active(0) || d.timeline().len() == 2);
        assert_eq!(d.timeline().len(), 2, "every raise is on the timeline");
        assert_eq!(d.timeline()[0], SuspicionEvent { at: 100, peer: v, until: 150 });
    }
}

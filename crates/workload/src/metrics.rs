//! The SLO sink: per-request outcomes, latency percentiles, availability,
//! throughput, and windowed timelines — what a client of the DHT actually
//! experiences while the overlay churns underneath.

use crate::generator::Op;
use rechord_analysis::Histogram;
use rechord_placement::RepairStats;
use std::fmt;

/// One anti-entropy repair pass. An unpaced pass starts and ends at the
/// stabilization fixpoint that triggered it; a **paced** pass opens at the
/// fixpoint ([`SloSink::repair_started`]), accumulates bounded
/// [`SloSink::repair_tick`]s, and closes when the backlog drains
/// ([`SloSink::repair_finished`]) or new churn preempts the plan
/// ([`SloSink::repair_preempted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairEvent {
    /// Virtual instant the pass closed (== `started_at` for an unpaced
    /// pass, which repairs at the fixpoint itself).
    pub at: u64,
    /// Virtual instant the pass opened (the stabilization fixpoint).
    pub started_at: u64,
    /// Keys sitting in dirty arcs when the pass opened — what the paced
    /// drain had to work through.
    pub backlog_at_start: usize,
    /// Bounded repair ticks the pass took (1 for an unpaced pass).
    pub ticks: usize,
    /// Repair copies rejected by the per-peer capacity cap.
    pub rejected_copies: usize,
    /// True when churn invalidated the plan before the backlog drained;
    /// the survivors re-enter the next pass's backlog.
    pub preempted: bool,
    /// What the pass did (keys moved, arcs touched, copies).
    pub stats: RepairStats,
}

impl RepairEvent {
    /// Virtual time from the fixpoint to full replication (or to the
    /// preemption): the window in which reads could see stale replicas.
    pub fn duration(&self) -> u64 {
        self.at.saturating_sub(self.started_at)
    }
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Routed to the responsible peer and served (a get of a never-written
    /// key counts as a successful empty read).
    Success,
    /// Routed, but an acknowledged value was not found at any replica — the
    /// data was lost or has not yet been repaired onto the new replica set.
    StaleRead,
    /// Routed and answered — but by a poisoning replica
    /// (`rechord_core::adversary::Crime::StaleReadPoison`): the client got
    /// a deleted/stale copy served as fresh. Worse than [`Lost`]: the
    /// client cannot tell.
    ///
    /// [`Lost`]: OutcomeKind::Lost
    Corrupted,
    /// Dropped after exhausting retries (routing stuck mid-stabilization,
    /// or the resident peer crashed too often).
    Lost,
}

impl OutcomeKind {
    /// Compact label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeKind::Success => "ok",
            OutcomeKind::StaleRead => "stale",
            OutcomeKind::Corrupted => "corrupt",
            OutcomeKind::Lost => "lost",
        }
    }
}

/// The full record of one completed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id (generator order).
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Application key.
    pub key: u64,
    /// Virtual time the request entered the system.
    pub issued_at: u64,
    /// Virtual time it completed (or was declared lost).
    pub completed_at: u64,
    /// Peer-to-peer hops taken, across all retries (replica probes count).
    pub hops: u32,
    /// Retries consumed.
    pub retries: u32,
    /// How it ended.
    pub kind: OutcomeKind,
}

impl RequestOutcome {
    /// End-to-end virtual latency.
    pub fn latency(&self) -> u64 {
        self.completed_at.saturating_sub(self.issued_at)
    }
}

/// Aggregate service-level summary of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSummary {
    /// Requests completed (any outcome).
    pub total: usize,
    /// Successful requests.
    pub success: usize,
    /// Stale reads.
    pub stale: usize,
    /// Reads answered by a poisoning replica ([`OutcomeKind::Corrupted`]).
    pub corrupted: usize,
    /// Lost requests.
    pub lost: usize,
    /// Median latency of successful requests (virtual ticks).
    pub p50: u64,
    /// 90th-percentile latency.
    pub p90: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// Worst successful-request latency.
    pub max_latency: u64,
    /// Mean hops per successful request.
    pub mean_hops: f64,
    /// `success / total` (1.0 for an empty run).
    pub availability: f64,
    /// Successful requests per 1000 ticks of the span they occupied.
    pub throughput_per_ktick: f64,
    /// Anti-entropy repair passes run at stabilization fixpoints.
    pub repairs: usize,
    /// Keys whose replica set actually changed, totalled across repairs.
    pub repair_keys_moved: usize,
    /// Ring arcs examined, totalled across repairs (the incremental-repair
    /// cost — a full rebuild would examine every arc every time).
    pub repair_arcs_touched: usize,
    /// Virtual instant of the last repair pass (0 when none ran).
    pub last_repair_at: u64,
    /// Bounded repair ticks, totalled across paced passes (1 per unpaced
    /// pass).
    pub repair_ticks: usize,
    /// Repair copies rejected by the per-peer capacity cap, totalled.
    pub repair_rejected_copies: usize,
    /// Largest repair backlog (keys in dirty arcs) observed at any pass
    /// start or tick — how far behind anti-entropy ever fell.
    pub repair_backlog_peak: usize,
    /// Longest time-to-full-replication over completed (non-preempted)
    /// passes: the widest stale-read window a repair left open.
    pub slowest_repair: u64,
}

impl fmt::Display for SloSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reqs | avail {:.4} ({} ok / {} stale / {} corrupt / {} lost) | latency p50/p90/p99/max {}/{}/{}/{} | {:.2} hops | {:.1} req/ktick | {} repairs ({} keys moved, {} arcs) | backlog peak {} / slowest repair {}t",
            self.total,
            self.availability,
            self.success,
            self.stale,
            self.corrupted,
            self.lost,
            self.p50,
            self.p90,
            self.p99,
            self.max_latency,
            self.mean_hops,
            self.throughput_per_ktick,
            self.repairs,
            self.repair_keys_moved,
            self.repair_arcs_touched,
            self.repair_backlog_peak,
            self.slowest_repair
        )
    }
}

/// One slice of the availability/latency timeline (requests bucketed by
/// issue time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowStat {
    /// Window start (inclusive), in virtual ticks.
    pub start: u64,
    /// Requests issued in the window.
    pub total: usize,
    /// Of those, how many succeeded.
    pub success: usize,
    /// 99th-percentile latency of the window's successes (0 if none).
    pub p99: u64,
}

impl WindowStat {
    /// `success / total` for this window (1.0 when empty).
    pub fn availability(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.success as f64 / self.total as f64
        }
    }
}

/// Collects [`RequestOutcome`]s and answers SLO questions about them.
#[derive(Debug, Default)]
pub struct SloSink {
    outcomes: Vec<RequestOutcome>,
    repairs: Vec<RepairEvent>,
    /// The paced pass currently accumulating ticks, if any.
    open_pass: Option<RepairEvent>,
    /// `(instant, keys still to repair)` — sampled at every pass start and
    /// after every paced tick: the repair-backlog timeline.
    backlog_gauge: Vec<(u64, usize)>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

impl SloSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, outcome: RequestOutcome) {
        self.outcomes.push(outcome);
    }

    /// Records one **unpaced** anti-entropy pass that ran to completion at
    /// the fixpoint instant `at` (zero-duration: start == end).
    pub fn record_repair(&mut self, at: u64, stats: RepairStats) {
        self.repairs.push(RepairEvent {
            at,
            started_at: at,
            backlog_at_start: stats.keys_examined,
            ticks: 1,
            rejected_copies: 0,
            preempted: false,
            stats,
        });
        self.backlog_gauge.push((at, 0));
    }

    /// Opens a paced pass at fixpoint instant `at` with `backlog_keys` to
    /// drain. A pass already open is closed as preempted first (the sim
    /// preempts explicitly; this is a belt-and-braces guard).
    pub fn repair_started(&mut self, at: u64, backlog_keys: usize) {
        if self.open_pass.is_some() {
            self.repair_preempted(at);
        }
        self.open_pass = Some(RepairEvent {
            at,
            started_at: at,
            backlog_at_start: backlog_keys,
            ticks: 0,
            rejected_copies: 0,
            preempted: false,
            stats: RepairStats::default(),
        });
        self.backlog_gauge.push((at, backlog_keys));
    }

    /// Folds one bounded repair tick into the open pass and samples the
    /// backlog gauge. A tick with no pass open is dropped (debug-asserted).
    pub fn repair_tick(&mut self, at: u64, stats: RepairStats, rejected: usize, backlog: usize) {
        debug_assert!(self.open_pass.is_some(), "repair_tick without repair_started");
        if let Some(pass) = &mut self.open_pass {
            pass.at = at;
            pass.ticks += 1;
            pass.rejected_copies += rejected;
            pass.stats.merge(stats);
            self.backlog_gauge.push((at, backlog));
        }
    }

    /// Closes the open paced pass at instant `at`: the backlog drained and
    /// every surviving key is back on its full replica set.
    pub fn repair_finished(&mut self, at: u64) {
        if let Some(mut pass) = self.open_pass.take() {
            pass.at = at;
            self.repairs.push(pass);
        }
    }

    /// Closes the open paced pass as preempted: churn invalidated the plan
    /// at instant `at`; the unrepaired remainder seeds the next pass.
    pub fn repair_preempted(&mut self, at: u64) {
        if let Some(mut pass) = self.open_pass.take() {
            pass.at = at;
            pass.preempted = true;
            self.repairs.push(pass);
        }
    }

    /// All **closed** repair passes, in virtual-time order.
    pub fn repairs(&self) -> &[RepairEvent] {
        &self.repairs
    }

    /// The repair-backlog timeline: `(instant, keys still to repair)`
    /// sampled at every pass start and paced tick.
    pub fn backlog_gauge(&self) -> &[(u64, usize)] {
        &self.backlog_gauge
    }

    /// Peak repair backlog per `width`-tick window: `(window start, max
    /// keys outstanding)` for every window between the first and last
    /// gauge sample. Empty when no repair ever ran.
    pub fn backlog_windows(&self, width: u64) -> Vec<(u64, usize)> {
        let width = width.max(1);
        let Some(&(first, _)) = self.backlog_gauge.first() else {
            return Vec::new();
        };
        let last = self.backlog_gauge.last().map_or(first, |&(at, _)| at);
        let buckets = ((last - first) / width + 1) as usize;
        let mut out: Vec<(u64, usize)> =
            (0..buckets).map(|i| (first + i as u64 * width, 0)).collect();
        for &(at, keys) in &self.backlog_gauge {
            let i = ((at - first) / width) as usize;
            out[i].1 = out[i].1.max(keys);
        }
        out
    }

    /// All outcomes, in completion order.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Number of recorded outcomes.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The aggregate summary.
    pub fn summary(&self) -> SloSummary {
        let total = self.outcomes.len();
        let success = self.count(OutcomeKind::Success);
        let stale = self.count(OutcomeKind::StaleRead);
        let corrupted = self.count(OutcomeKind::Corrupted);
        let lost = self.count(OutcomeKind::Lost);
        let mut lat: Vec<u64> = self
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Success)
            .map(|o| o.latency())
            .collect();
        lat.sort_unstable();
        let hops: u64 = self
            .outcomes
            .iter()
            .filter(|o| o.kind == OutcomeKind::Success)
            .map(|o| o.hops as u64)
            .sum();
        let span = self.span().max(1);
        let mut repair_total = RepairStats::default();
        for r in &self.repairs {
            repair_total.merge(r.stats);
        }
        SloSummary {
            total,
            success,
            stale,
            corrupted,
            lost,
            p50: percentile(&lat, 0.50),
            p90: percentile(&lat, 0.90),
            p99: percentile(&lat, 0.99),
            max_latency: lat.last().copied().unwrap_or(0),
            mean_hops: if success == 0 { 0.0 } else { hops as f64 / success as f64 },
            availability: if total == 0 { 1.0 } else { success as f64 / total as f64 },
            throughput_per_ktick: success as f64 * 1000.0 / span as f64,
            repairs: self.repairs.len(),
            repair_keys_moved: repair_total.keys_moved,
            repair_arcs_touched: repair_total.arcs_touched,
            last_repair_at: self.repairs.last().map_or(0, |r| r.at),
            repair_ticks: self.repairs.iter().map(|r| r.ticks).sum(),
            repair_rejected_copies: self.repairs.iter().map(|r| r.rejected_copies).sum(),
            repair_backlog_peak: self
                .backlog_gauge
                .iter()
                .map(|&(_, keys)| keys)
                .max()
                .unwrap_or(0),
            slowest_repair: self
                .repairs
                .iter()
                .filter(|r| !r.preempted)
                .map(RepairEvent::duration)
                .max()
                .unwrap_or(0),
        }
    }

    /// Virtual-time span from first issue to last completion.
    pub fn span(&self) -> u64 {
        let first = self.outcomes.iter().map(|o| o.issued_at).min().unwrap_or(0);
        let last = self.outcomes.iter().map(|o| o.completed_at).max().unwrap_or(0);
        last.saturating_sub(first)
    }

    /// The availability/latency timeline: outcomes bucketed into windows of
    /// `width` ticks by issue time, from the first issue on. Empty windows
    /// inside the span are included (total 0).
    pub fn windows(&self, width: u64) -> Vec<WindowStat> {
        let width = width.max(1);
        if self.outcomes.is_empty() {
            return Vec::new();
        }
        let first = self.outcomes.iter().map(|o| o.issued_at).min().unwrap_or(0);
        let last = self.outcomes.iter().map(|o| o.issued_at).max().unwrap_or(0);
        let buckets = ((last - first) / width + 1) as usize;
        let mut lat: Vec<Vec<u64>> = vec![Vec::new(); buckets];
        let mut stats: Vec<WindowStat> = (0..buckets)
            .map(|i| WindowStat { start: first + i as u64 * width, total: 0, success: 0, p99: 0 })
            .collect();
        for o in &self.outcomes {
            let i = ((o.issued_at - first) / width) as usize;
            stats[i].total += 1;
            if o.kind == OutcomeKind::Success {
                stats[i].success += 1;
                lat[i].push(o.latency());
            }
        }
        for (s, l) in stats.iter_mut().zip(lat.iter_mut()) {
            l.sort_unstable();
            s.p99 = percentile(l, 0.99);
        }
        stats
    }

    /// The success-latency distribution as an analysis histogram (`width`
    /// ticks per bucket, `buckets` buckets).
    pub fn latency_histogram(&self, width: u64, buckets: usize) -> Histogram {
        let mut h = Histogram::new(width, buckets);
        h.record_all(
            self.outcomes.iter().filter(|o| o.kind == OutcomeKind::Success).map(|o| o.latency()),
        );
        h
    }

    /// A canonical byte-exact trace of the run, one line per outcome —
    /// what the determinism tests compare across runs.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&format!(
                "{} {} {} {} {} {} {} {}\n",
                o.id,
                o.op.label(),
                o.key,
                o.issued_at,
                o.completed_at,
                o.hops,
                o.retries,
                o.kind.label()
            ));
        }
        out
    }

    fn count(&self, kind: OutcomeKind) -> usize {
        self.outcomes.iter().filter(|o| o.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u64, issued: u64, done: u64, kind: OutcomeKind) -> RequestOutcome {
        RequestOutcome {
            id,
            op: Op::Get,
            key: id,
            issued_at: issued,
            completed_at: done,
            hops: 3,
            retries: 0,
            kind,
        }
    }

    #[test]
    fn summary_counts_and_percentiles() {
        let mut s = SloSink::new();
        for k in 0..98 {
            s.record(outcome(k, 0, 10 + k, OutcomeKind::Success)); // latencies 10..=107
        }
        s.record(outcome(98, 0, 500, OutcomeKind::StaleRead));
        s.record(outcome(99, 0, 500, OutcomeKind::Lost));
        let sum = s.summary();
        assert_eq!(sum.total, 100);
        assert_eq!(sum.success, 98);
        assert_eq!(sum.stale, 1);
        assert_eq!(sum.lost, 1);
        assert_eq!(sum.availability, 0.98);
        assert_eq!(sum.p50, 10 + 48); // 49th of 98 sorted latencies
        assert_eq!(sum.max_latency, 107);
        assert!(sum.p99 >= sum.p90 && sum.p90 >= sum.p50);
        assert_eq!(sum.mean_hops, 3.0);
    }

    #[test]
    fn corrupted_reads_count_against_availability() {
        let mut s = SloSink::new();
        for k in 0..8 {
            s.record(outcome(k, 0, 10, OutcomeKind::Success));
        }
        s.record(outcome(8, 0, 10, OutcomeKind::Corrupted));
        s.record(outcome(9, 0, 10, OutcomeKind::Corrupted));
        let sum = s.summary();
        assert_eq!(sum.corrupted, 2);
        assert_eq!(sum.availability, 0.8, "a poisoned answer is not a success");
        let text = format!("{sum}");
        assert!(text.contains("2 corrupt"), "{text}");
        assert!(s.trace().contains("8 get 8 0 10 3 0 corrupt\n"));
    }

    #[test]
    fn empty_sink_is_vacuously_available() {
        let s = SloSink::new();
        let sum = s.summary();
        assert_eq!(sum.total, 0);
        assert_eq!(sum.availability, 1.0);
        assert_eq!(sum.p99, 0);
        assert!(s.windows(100).is_empty());
    }

    #[test]
    fn windows_bucket_by_issue_time() {
        let mut s = SloSink::new();
        s.record(outcome(0, 100, 120, OutcomeKind::Success));
        s.record(outcome(1, 150, 190, OutcomeKind::Lost));
        s.record(outcome(2, 350, 360, OutcomeKind::Success));
        let w = s.windows(100);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].start, 100);
        assert_eq!((w[0].total, w[0].success), (2, 1));
        assert_eq!(w[0].availability(), 0.5);
        assert_eq!((w[1].total, w[1].success), (0, 0));
        assert_eq!(w[1].availability(), 1.0, "empty window is vacuous");
        assert_eq!((w[2].total, w[2].success), (1, 1));
        assert_eq!(w[2].p99, 10);
    }

    #[test]
    fn trace_is_line_per_outcome_and_stable() {
        let mut s = SloSink::new();
        s.record(outcome(7, 1, 5, OutcomeKind::Success));
        s.record(outcome(8, 2, 9, OutcomeKind::StaleRead));
        let t = s.trace();
        assert_eq!(t.lines().count(), 2);
        assert!(t.starts_with("7 get 7 1 5 3 0 ok\n"));
        assert!(t.contains("8 get 8 2 9 3 0 stale"));
    }

    #[test]
    fn histogram_covers_success_latencies_only() {
        let mut s = SloSink::new();
        s.record(outcome(0, 0, 10, OutcomeKind::Success));
        s.record(outcome(1, 0, 1_000, OutcomeKind::Lost));
        let h = s.latency_histogram(50, 10);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn repair_events_total_into_the_summary() {
        let mut s = SloSink::new();
        assert!(s.repairs().is_empty());
        s.record_repair(
            1_000,
            RepairStats {
                arcs_touched: 3,
                keys_examined: 40,
                keys_moved: 12,
                copies_added: 12,
                copies_dropped: 5,
            },
        );
        s.record_repair(
            2_500,
            RepairStats {
                arcs_touched: 2,
                keys_examined: 10,
                keys_moved: 4,
                copies_added: 4,
                copies_dropped: 4,
            },
        );
        let sum = s.summary();
        assert_eq!(sum.repairs, 2);
        assert_eq!(sum.repair_keys_moved, 16);
        assert_eq!(sum.repair_arcs_touched, 5);
        assert_eq!(sum.last_repair_at, 2_500);
        assert_eq!(sum.repair_ticks, 2, "an unpaced pass counts as one tick");
        assert_eq!(sum.slowest_repair, 0, "unpaced passes are instantaneous");
        let text = format!("{sum}");
        assert!(text.contains("2 repairs (16 keys moved, 5 arcs)"), "{text}");
    }

    #[test]
    fn paced_pass_accumulates_ticks_into_one_event() {
        let mut s = SloSink::new();
        s.repair_started(1_000, 90);
        let tick = |moved| RepairStats {
            arcs_touched: 1,
            keys_examined: 30,
            keys_moved: moved,
            copies_added: moved,
            copies_dropped: 0,
        };
        s.repair_tick(1_001, tick(30), 0, 60);
        s.repair_tick(1_002, tick(30), 2, 30);
        s.repair_tick(1_003, tick(25), 0, 0);
        assert!(s.repairs().is_empty(), "the pass is still open");
        s.repair_finished(1_003);
        let [pass] = s.repairs() else { panic!("exactly one pass") };
        assert_eq!((pass.started_at, pass.at, pass.duration()), (1_000, 1_003, 3));
        assert_eq!(pass.backlog_at_start, 90);
        assert_eq!(pass.ticks, 3);
        assert_eq!(pass.rejected_copies, 2);
        assert_eq!(pass.stats.keys_moved, 85);
        assert!(!pass.preempted);
        assert!(pass.stats.keys_moved <= pass.backlog_at_start);
        let sum = s.summary();
        assert_eq!(sum.repairs, 1);
        assert_eq!(sum.repair_ticks, 3);
        assert_eq!(sum.repair_rejected_copies, 2);
        assert_eq!(sum.repair_backlog_peak, 90);
        assert_eq!(sum.slowest_repair, 3);
        assert_eq!(s.backlog_gauge().len(), 4, "start + one sample per tick");
    }

    #[test]
    fn preempted_pass_is_closed_and_excluded_from_slowest() {
        let mut s = SloSink::new();
        s.repair_started(500, 40);
        s.repair_tick(
            501,
            RepairStats {
                arcs_touched: 1,
                keys_examined: 10,
                keys_moved: 10,
                copies_added: 10,
                copies_dropped: 0,
            },
            0,
            30,
        );
        s.repair_preempted(510);
        // The next fixpoint re-begins from the survivors.
        s.repair_started(900, 30);
        s.repair_tick(
            901,
            RepairStats {
                arcs_touched: 2,
                keys_examined: 30,
                keys_moved: 28,
                copies_added: 28,
                copies_dropped: 3,
            },
            0,
            0,
        );
        s.repair_finished(901);
        assert_eq!(s.repairs().len(), 2);
        assert!(s.repairs()[0].preempted);
        assert!(!s.repairs()[1].preempted);
        let sum = s.summary();
        assert_eq!(sum.repairs, 2);
        assert_eq!(sum.slowest_repair, 1, "preempted passes never count as completed repairs");
        assert_eq!(sum.repair_backlog_peak, 40);
        // Calling finished/preempted with nothing open is a quiet no-op.
        s.repair_finished(999);
        s.repair_preempted(999);
        assert_eq!(s.repairs().len(), 2);
    }

    #[test]
    fn backlog_windows_track_the_peak_per_window() {
        let mut s = SloSink::new();
        s.repair_started(100, 500);
        s.repair_tick(150, RepairStats::default(), 0, 400);
        s.repair_tick(260, RepairStats::default(), 0, 200);
        s.repair_tick(390, RepairStats::default(), 0, 0);
        s.repair_finished(390);
        let w = s.backlog_windows(100);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], (100, 500));
        assert_eq!(w[1], (200, 200));
        assert_eq!(w[2], (300, 0));
        assert!(s.backlog_windows(1).len() >= 4);
        assert!(SloSink::new().backlog_windows(100).is_empty());
    }

    #[test]
    fn throughput_uses_the_span() {
        let mut s = SloSink::new();
        s.record(outcome(0, 0, 500, OutcomeKind::Success));
        s.record(outcome(1, 500, 1_000, OutcomeKind::Success));
        let sum = s.summary();
        assert!((sum.throughput_per_ktick - 2.0).abs() < 1e-9);
    }
}

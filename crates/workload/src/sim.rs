//! The co-simulation driver: protocol rounds, churn, and client requests on
//! one discrete-event clock — with the request lifecycle sharded by ring
//! arc and drained by parallel workers between control-event barriers.
//!
//! A [`TrafficSim`] owns a live [`ReChordNetwork`] and a [`RoutingTable`]
//! kept current through the engine's dirty-peer hook. Requests route **hop
//! by hop** — each hop re-reads the table as it stands at that instant — so
//! a lookup issued mid-stabilization can stall, land on a crashed peer, get
//! retried from another entry point, or be lost: exactly the client
//! experience the convergence theorems are silent about.
//!
//! The event population splits in two (see [`crate::shard`]):
//!
//! * the **control plane** — rounds, churn, detector ticks, sybil joins,
//!   repair slices — is rare, globally coupled, and stays on the main
//!   thread in the global [`EventQueue`];
//! * the **data plane** — request hops and service completions, the hot
//!   99% — is partitioned by the destination peer's ring arc into
//!   [`ArcQueues`] and drained by `cfg.workers` threads between control
//!   barriers. Every mutable column a worker touches (service backlog,
//!   placement shard, outcome log) belongs to its arcs; every random draw
//!   is a pure function of `(seed, tag, request id, attempt)`; worker
//!   buffers merge in canonical order at the barrier. Traces are therefore
//!   **bit-identical for any worker and arc count** — pinned by
//!   `tests/shard_parity.rs`.
//!
//! Storage follows Chord's successor-list replication: a put writes the
//! responsible peer and its `replication - 1` cyclic successors; a get
//! probes the same set (one extra hop per miss). Placement itself — which
//! peers hold which keys — is owned by the shared
//! [`rechord_placement::PlacementMap`] engine: churn events become arc
//! split/merge deltas (graceful leaves hand their copies to the successor,
//! crashes lose them), and when a round leaves the network stable again an
//! **incremental** anti-entropy pass re-replicates only the arcs adjacent
//! to the changed peers — O(moved keys), not O(all keys).
//!
//! Repair is **paced**, not free: with `repair_bandwidth > 0` the fixpoint
//! only *opens* a pass, and `RepairTick`-event slices move at
//! most that many keys per virtual tick, each transferred copy admitted
//! through the receiving peer's [`ServiceQueue`] — repair traffic and
//! foreground requests queue behind one another. While a key's window is
//! still un-repaired, a get landing on a not-yet-copied replica surfaces
//! as a [`OutcomeKind::StaleRead`] — the client-visible cost the old
//! instantaneous-repair model hid. New churn preempts the pass (the plan
//! is invalidated; the next fixpoint re-begins from the surviving dirty
//! set), and `repair_bandwidth: 0` keeps the legacy
//! instantaneous-at-the-fixpoint behavior. The whole timeline — pass
//! start/end instants, per-tick backlog gauge, time-to-full-replication,
//! capacity-cap rejections — is recorded in the [`SloSink`].

use crate::adversary::AdversaryConfig;
use crate::detector::{DetectorConfig, FailureDetector};
use crate::event::EventQueue;
use crate::generator::{Op, Request, TrafficConfig, TrafficGen};
use crate::latency::{LatencyModel, ServiceQueue, ServiceSlice};
use crate::metrics::{OutcomeKind, RequestOutcome, SloSink, SloSummary};
use crate::shard::{self, ArcQueues, Outbox, ShardHandler};
use rechord_core::adversary::{chance, mix, AdversaryMap, Behavior, Crime};
use rechord_core::network::ReChordNetwork;
use rechord_id::{IdSpace, Ident};
use rechord_placement::{arc_of, arc_start, ArcView, Departure, PlacementMap, ShardKey};
use rechord_routing::{route_step, HopDecision, RoutingTable};
use rechord_topology::{ChurnEvent, TimedChurnPlan};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Domain tag for pure per-hop latency draws.
const LAT_TAG: u64 = 0x1a7e_4c1e;
/// Domain tag for pure entry-peer picks.
const ENTRY_TAG: u64 = 0xe417_2ee1;

/// Everything that parameterizes a workload run (traffic shape aside, see
/// [`TrafficConfig`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Master seed: id space, latency draws, entry-point choices, and the
    /// generator stream all derive from it.
    pub seed: u64,
    /// The offered load.
    pub traffic: TrafficConfig,
    /// First request no earlier than this instant.
    pub traffic_start: u64,
    /// No requests injected after this instant.
    pub traffic_end: u64,
    /// Ticks between protocol rounds (the network stabilizes at this pace
    /// while traffic flows).
    pub round_every: u64,
    /// Per-hop latency law.
    pub latency: LatencyModel,
    /// Replica count (responsible peer + successors), clamped to >= 1.
    pub replication: usize,
    /// Retries before a request is declared lost.
    pub max_retries: u32,
    /// Ticks a retry waits before re-entering at a fresh peer.
    pub retry_backoff: u64,
    /// Total peer-to-peer hops a request may take across retries.
    pub hop_budget: u32,
    /// Hard cap on protocol rounds (budget guard; generously above any
    /// realistic stabilization).
    pub max_rounds: u64,
    /// Failure-detection lag: after a crash, survivors' routing-table
    /// entries keep pointing at the ghost for this many ticks (requests
    /// forwarded to it bounce and retry) before the full view is scrubbed.
    /// `0` models an oracle failure detector.
    pub detection_lag: u64,
    /// Per-peer service capacity: ticks one request occupies the receiving
    /// peer's server, FIFO — a hop through a loaded peer waits for the
    /// backlog ahead of it. `0` models infinite service rate (no queueing).
    pub service_time: u64,
    /// Repair bandwidth: at most this many keys move per virtual tick once
    /// a stabilization fixpoint opens an anti-entropy pass, with every
    /// transferred copy admitted through the receiving peer's service
    /// queue (repair competes with foreground traffic). `0` models
    /// infinite bandwidth — the pre-paced behavior where the whole repair
    /// lands instantaneously at the fixpoint.
    pub repair_bandwidth: usize,
    /// Per-peer storage cap for the **paced** repair path
    /// (`repair_bandwidth > 0`): a repair copy headed for a peer already
    /// holding this many keys is rejected (the key stays readable at its
    /// primary, under-replicated until churn re-dirties its arc). `0`
    /// models unlimited storage. Puts are never rejected, and the
    /// instantaneous model (`repair_bandwidth: 0`) is the uncapped legacy
    /// oracle — the cap is ignored there.
    pub max_keys_per_peer: usize,
    /// Byzantine/flaky behavior injection ([`AdversaryConfig`]). The
    /// default is fully honest and reproduces legacy traces bit-for-bit.
    pub adversary: AdversaryConfig,
    /// Per-peer failure-detector knobs ([`DetectorConfig`]). The default
    /// (all zero) is the legacy uniform-lag, never-erring detector.
    pub detector: DetectorConfig,
    /// Data-plane worker threads draining the sharded event queues between
    /// control barriers. `0` and `1` both mean the serial drain; any value
    /// yields bit-identical traces (protocol rounds share the same pool
    /// sizing). Clamped to one worker per arc.
    pub workers: usize,
    /// Ring arcs the data plane is partitioned into. `0` picks
    /// `8 × workers` automatically. The trace is independent of this knob
    /// too; more arcs smooth worker load balance on skewed rings.
    pub arcs: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 1,
            traffic: TrafficConfig::default(),
            traffic_start: 0,
            traffic_end: 10_000,
            round_every: 50,
            latency: LatencyModel::Uniform { lo: 5, hi: 15 },
            replication: 2,
            max_retries: 2,
            retry_backoff: 40,
            hop_budget: 128,
            max_rounds: 50_000,
            detection_lag: 200,
            service_time: 0,
            repair_bandwidth: 0,
            max_keys_per_peer: 0,
            adversary: AdversaryConfig::default(),
            detector: DetectorConfig::default(),
            workers: 1,
            arcs: 0,
        }
    }
}

/// What the run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Aggregate SLO summary.
    pub summary: SloSummary,
    /// The full outcome log (timelines, histograms, traces).
    pub sink: SloSink,
    /// Protocol rounds executed.
    pub rounds: u64,
    /// Was the final round a fixpoint?
    pub stable_at_end: bool,
    /// Peers alive at the end.
    pub final_peers: usize,
    /// Acknowledged keys with no surviving copy anywhere (every replica
    /// crashed before a repair could run).
    pub lost_keys: usize,
    /// Suspicions the failure detector raised (false positives plus
    /// heartbeat-stalling attacks; 0 under the legacy accurate detector).
    pub suspicions: usize,
    /// Data-plane events processed (request hops plus queued service
    /// completions) — the throughput denominator the benches report.
    pub events: u64,
    /// [`PlacementMap::digest`] of the final placement — the parity suites
    /// assert it is identical across worker and arc counts.
    pub placement_digest: u64,
}

/// Control-plane events: rare, globally coupled, main-thread only. The hot
/// request lifecycle lives on the sharded data plane as [`Wire`] events.
enum SimEvent {
    /// One protocol round.
    Round,
    /// A scheduled churn event strikes.
    Churn(ChurnEvent),
    /// Reconfigure the generator's hot key (flash crowds).
    SetHotKey(Option<(u64, f64)>),
    /// The failure detector concludes the named peer's crash: scrub the
    /// routing view of ghosts — unless the peer rejoined in the meantime,
    /// in which case the detection is stale and must be ignored.
    DetectCrash(Ident),
    /// The failure detector's suspicion cadence (false positives and
    /// heartbeat-stalling attacks). Carries the tick ordinal.
    DetectorTick(u64),
    /// One sybil identity joins via its sponsoring attacker.
    SybilJoin {
        /// The byzantine peer sponsoring the join.
        attacker: Ident,
        /// The fresh identity being injected.
        sybil: Ident,
    },
    /// One paced anti-entropy slice: move at most `repair_bandwidth` keys.
    /// The epoch stamps which repair plan the tick belongs to — churn bumps
    /// the epoch, so ticks of a preempted plan land as no-ops.
    RepairTick(u64),
}

/// A data-plane event, keyed in [`ArcQueues`] by `(time, request id)` and
/// routed to the destination peer's arc.
enum Wire {
    /// A request arrives at `peer` after a network hop (it still has to be
    /// admitted through the peer's service queue).
    Hop(InFlight),
    /// The receiving peer's server gets to the request (post-queueing).
    Serve(InFlight),
}

struct InFlight {
    req: Request,
    peer: Ident,
    cursor: Ident,
    hops: u32,
    retries: u32,
}

/// The discrete-event traffic simulator (see module docs).
pub struct TrafficSim {
    cfg: WorkloadConfig,
    net: ReChordNetwork,
    table: RoutingTable,
    space: IdSpace,
    gen: TrafficGen,
    /// Control-plane future-event list (main thread).
    queue: EventQueue<SimEvent>,
    /// Data-plane future-event lists, one heap per ring arc.
    data: ArcQueues<Wire>,
    /// Resolved arc count (`cfg.arcs`, or the auto default).
    arcs: usize,
    /// The next open-loop arrival instant, generated lazily so each batch
    /// can stage exactly the arrivals that fall before its barrier.
    next_arrival: Option<u64>,
    /// Seed for all pure data-plane draws (latency, entry picks).
    draw_seed: u64,
    /// Data-plane events processed so far.
    events_done: u64,
    /// Who stores what: the shared placement engine (replica sets, handoff,
    /// crash loss, incremental repair). Versions are put request ids.
    placement: PlacementMap<()>,
    /// Per-peer FIFO service capacity (queueing delay at loaded peers).
    service: ServiceQueue,
    /// Keys whose put (or preload) was acknowledged to a client.
    acked: BTreeSet<u64>,
    sink: SloSink,
    pending_churn: usize,
    churn_applied: usize,
    round_scheduled: bool,
    rounds_run: u64,
    was_stable: bool,
    /// Paced repair: the plan generation currently valid (churn bumps it,
    /// orphaning any in-flight [`SimEvent::RepairTick`]) and whether a
    /// drain is in progress.
    repair_epoch: u64,
    repair_running: bool,
    /// Per-peer behavior policies, shared with the protocol layer. An
    /// all-honest map takes every fast path and the run is bit-identical
    /// to the pre-adversary simulator.
    adversary: Arc<AdversaryMap>,
    /// Per-peer failure detection (suspicions, jittered crash lags).
    detector: FailureDetector,
}

impl TrafficSim {
    /// Builds a simulator over `net` (in whatever state it is in — stable or
    /// mid-recovery) with `churn` laid onto the clock. Traffic and rounds
    /// are scheduled per `cfg`.
    pub fn new(cfg: WorkloadConfig, mut net: ReChordNetwork, churn: &TimedChurnPlan) -> Self {
        let mut table = RoutingTable::default();
        table.refresh_from_network(&net);
        let mut queue = EventQueue::new();
        for e in churn.events() {
            queue.push(e.at, SimEvent::Churn(e.event));
        }
        let next_arrival = (cfg.traffic_start <= cfg.traffic_end).then_some(cfg.traffic_start);
        queue.push(cfg.round_every.max(1), SimEvent::Round);
        let mut placement = PlacementMap::from_peers(table.peers(), cfg.replication);
        placement.set_peer_capacity(cfg.max_keys_per_peer);
        // Freeze the behavior map and install it into the protocol layer.
        // An all-honest map is not installed at all — the protocol keeps
        // its `adversary: None` fast path and legacy runs stay untouched.
        let (adversary, sybils) = cfg.adversary.build(table.peers(), cfg.seed);
        let adversary = Arc::new(adversary);
        if !adversary.is_all_honest() {
            net.set_adversary(Arc::clone(&adversary));
        }
        for &(attacker, sybil) in &sybils {
            queue.push(cfg.adversary.sybil_at, SimEvent::SybilJoin { attacker, sybil });
        }
        let detector = FailureDetector::new(cfg.detector, cfg.seed);
        if cfg.detector.suspect_for > 0
            && (cfg.detector.false_suspect_every > 0
                || adversary.any_commits(Crime::StallHeartbeats))
        {
            queue.push(Self::detector_period(&cfg), SimEvent::DetectorTick(1));
        }
        // One pool-sizing knob for both planes: protocol rounds fan out
        // across the same number of threads as the data-plane batches.
        net.engine_mut().set_threads(cfg.workers.max(1));
        let arcs = if cfg.arcs > 0 { cfg.arcs } else { cfg.workers.max(1) * 8 };
        TrafficSim {
            space: IdSpace::new(cfg.seed),
            gen: TrafficGen::new(cfg.traffic, cfg.seed),
            draw_seed: cfg.seed ^ 0x6c61_7465_6e63_7921,
            pending_churn: churn.len(),
            placement,
            service: ServiceQueue::new(cfg.service_time),
            data: ArcQueues::new(arcs),
            arcs,
            next_arrival,
            events_done: 0,
            cfg,
            net,
            table,
            queue,
            acked: BTreeSet::new(),
            sink: SloSink::new(),
            churn_applied: 0,
            round_scheduled: true,
            rounds_run: 0,
            was_stable: false,
            repair_epoch: 0,
            repair_running: false,
            adversary,
            detector,
        }
    }

    /// Ticks between [`SimEvent::DetectorTick`]s: the configured false-
    /// suspicion cadence, or the detection lag when only heartbeat
    /// stalling drives the detector.
    fn detector_period(cfg: &WorkloadConfig) -> u64 {
        if cfg.detector.false_suspect_every > 0 {
            cfg.detector.false_suspect_every
        } else {
            cfg.detection_lag.max(1)
        }
    }

    /// Schedules a hot-key reconfiguration at virtual time `at` (call before
    /// [`TrafficSim::run`]).
    pub fn schedule_hot_key(&mut self, at: u64, hot: Option<(u64, f64)>) {
        self.queue.push(at, SimEvent::SetHotKey(hot));
    }

    /// Seeds every key of the universe (version 0) onto its current replica
    /// set, acknowledged — so gets have something to find from tick one.
    /// Bulk-loads the placement shards (sorted group construction instead
    /// of per-key tree inserts), which is what makes 10M-key scenarios
    /// load in seconds.
    pub fn preload(&mut self) {
        let space = self.space;
        let universe = self.gen.config().key_universe;
        self.placement.bulk_load((1..=universe).map(|key| (space.key_position(key), key, 0, ())));
        self.acked.extend(1..=universe);
    }

    /// Runs the simulation to completion: the queues drain once traffic has
    /// ended, every request has resolved, all churn has struck, and the
    /// network has re-stabilized (or the round budget is exhausted).
    ///
    /// The loop alternates data-plane batches with single control events:
    /// all data events strictly before the next control instant drain
    /// (in parallel across arcs), then the control event fires on the main
    /// thread with exclusive access to everything.
    pub fn run(mut self) -> SimReport {
        loop {
            let batch_end = self.queue.next_time().unwrap_or(u64::MAX);
            self.run_data_batch(batch_end);
            let Some((_, ev)) = self.queue.pop() else { break };
            match ev {
                SimEvent::Round => self.on_round(),
                SimEvent::Churn(e) => self.on_churn(e),
                SimEvent::SetHotKey(h) => self.gen.set_hot_key(h),
                SimEvent::DetectCrash(victim) => self.on_detect_crash(victim),
                SimEvent::DetectorTick(k) => self.on_detector_tick(k),
                SimEvent::SybilJoin { attacker, sybil } => self.on_sybil_join(attacker, sybil),
                SimEvent::RepairTick(epoch) => self.on_repair_tick(epoch),
            }
        }
        debug_assert!(self.data.is_empty(), "data plane drained at exit");
        let lost_keys = self
            .acked
            .iter()
            .filter(|&&key| !self.placement.contains(self.space.key_position(key), key))
            .count();
        SimReport {
            summary: self.sink.summary(),
            sink: self.sink,
            rounds: self.rounds_run,
            stable_at_end: self.was_stable,
            final_peers: self.net.len(),
            lost_keys,
            suspicions: self.detector.timeline().len(),
            events: self.events_done,
            placement_digest: self.placement.digest(),
        }
    }

    // ---- the sharded data plane -------------------------------------------

    /// Drains every data-plane event strictly before `batch_end`: stages
    /// the open-loop arrivals that fall inside the batch, splits placement
    /// and service state into disjoint per-arc columns, runs the workers
    /// ([`shard::run_batch`]), and merges their buffered effects — outcome
    /// records, fresh acks, holder-index rows — in canonical order. Every
    /// step is a pure function of the simulator state, so the merged
    /// result is bit-identical for any worker count.
    fn run_data_batch(&mut self, batch_end: u64) {
        // Stage arrivals due before the barrier. The generator runs on the
        // main thread (its rng streams stay sequential); the entry pick is
        // a pure draw so retries on workers share the same scheme.
        let mut door: Vec<RequestOutcome> = Vec::new();
        while let Some(at) = self.next_arrival {
            if at >= batch_end {
                break;
            }
            let req = self.gen.next_request(at);
            let gap = self.gen.next_gap();
            self.next_arrival = (at + gap <= self.cfg.traffic_end).then_some(at + gap);
            match pick_entry(self.table.peers(), &self.detector, at, self.draw_seed, req.id, 0) {
                Some(via) => {
                    // Entering the system is an arrival at the entry peer:
                    // it pays the same service-queue admission a hop does.
                    let f = InFlight { req, peer: via, cursor: via, hops: 0, retries: 0 };
                    self.data.push_for(via.raw(), at, req.id, Wire::Hop(f));
                }
                None => door.push(RequestOutcome {
                    id: req.id,
                    op: req.op,
                    key: req.key,
                    issued_at: at,
                    completed_at: at,
                    hops: 0,
                    retries: 0,
                    kind: OutcomeKind::Lost,
                }),
            }
        }
        if self.data.is_empty() {
            for o in door {
                self.sink.record(o);
            }
            return;
        }
        debug_assert_eq!(
            self.table.peers(),
            self.placement.peers(),
            "routing table and placement map must agree on membership at every barrier"
        );
        let arcs = self.arcs;
        let eff = shard::effective_workers(arcs, self.cfg.workers);
        let ranges = shard::worker_ranges(arcs, eff);
        let lookahead = self.cfg.latency.min_delay();
        self.service.sync_peers(self.table.peers());

        let TrafficSim {
            cfg,
            space,
            table,
            detector,
            adversary,
            acked,
            placement,
            service,
            data,
            draw_seed,
            ..
        } = self;
        let (cfg, space, table, detector) = (&*cfg, &*space, &*table, &*detector);
        let (adversary, acked, draw_seed) = (&**adversary, &*acked, *draw_seed);
        let starts: Vec<u64> = ranges.iter().map(|r| arc_start(r.start, arcs)).collect();
        let mut views = placement.arc_views(arcs).into_iter();
        let slices = service.split(&starts);
        let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(eff);
        for (range, slice) in ranges.iter().zip(slices) {
            lanes.push(Lane {
                cfg,
                space,
                table,
                detector,
                adversary,
                acked,
                arcs,
                arc_lo: range.start,
                views: views.by_ref().take(range.len()).collect(),
                service: slice,
                draw_seed,
                new_acked: BTreeSet::new(),
                outcomes: Vec::new(),
            });
        }
        let (lanes, events) = shard::run_batch(data, lookahead, batch_end, lanes);

        // Merge: lane buffers carry disjoint requests (outcomes) and
        // commuting set insertions (acks, holder rows), so sorted
        // concatenation reproduces the serial engine's record order.
        let mut outcomes = door;
        let mut fresh: Vec<u64> = Vec::new();
        let mut held: Vec<(Ident, ShardKey)> = Vec::new();
        for lane in lanes {
            outcomes.extend(lane.outcomes);
            fresh.extend(lane.new_acked);
            for view in lane.views {
                held.extend(view.into_held_adds());
            }
        }
        placement.apply_held_adds(held);
        self.acked.extend(fresh);
        outcomes.sort_by_key(|o| (o.completed_at, o.id));
        for o in outcomes {
            self.sink.record(o);
        }
        self.events_done += events;
    }

    // ---- control-plane event handlers -------------------------------------

    fn on_round(&mut self) {
        self.round_scheduled = false;
        let (out, dirty) = if self.adversary.has_flaky() {
            // Flaky peers sit out this round with their drop probability —
            // a deterministic coin per (peer, round), so reruns agree.
            let map = Arc::clone(&self.adversary);
            let k = self.rounds_run;
            self.net.engine_mut().round_dirty_with_schedule(move |id| match map.behavior_of(id) {
                Behavior::Flaky(p) => !chance(&[map.seed(), 0xf1a2_2221, k, id.raw()], p),
                _ => true,
            })
        } else {
            self.net.round_dirty()
        };
        self.rounds_run += 1;
        self.table.refresh_dirty(&self.net, &dirty);
        if out.changed {
            self.was_stable = false;
        } else {
            if !self.was_stable {
                // Just reached a fixpoint: open the anti-entropy pass that
                // re-replicates surviving data onto its current replica
                // sets — only the arcs dirtied by churn since the last
                // repair. A fixpoint with nothing dirty (e.g. the first
                // round of an already-placed run) records no repair event.
                self.start_repair();
            }
            self.was_stable = true;
        }
        // Keep rounds ticking while the overlay is off its fixpoint or churn
        // is still due; a stable, churn-free network needs no rounds for
        // traffic to proceed.
        if (!self.was_stable || self.pending_churn > 0) && self.rounds_run < self.cfg.max_rounds {
            self.schedule_round();
        }
    }

    fn on_churn(&mut self, event: ChurnEvent) {
        self.pending_churn -= 1;
        let k = self.churn_applied;
        self.churn_applied += 1;
        // Deterministic but varying victim/contact selector, mirroring
        // `ReChordNetwork::run_churn_plan`.
        let selector = (k as u64).wrapping_mul(0x9e37) ^ self.cfg.seed;
        let applied = self.net.apply_event(&event, selector, self.cfg.seed.wrapping_add(k as u64));
        if let Some(peer) = applied {
            if self.repair_running {
                // Churn invalidates the repair plan mid-drain: orphan any
                // in-flight ticks and let the next fixpoint re-begin from
                // the surviving dirty set.
                self.repair_running = false;
                self.repair_epoch += 1;
                self.sink.repair_preempted(self.queue.now());
            }
            match event {
                ChurnEvent::Join { .. } => {
                    // Only the joiner's state is new; everyone else is
                    // untouched until the next round. The engine splits the
                    // joiner's arc off its successor and marks the window
                    // dirty for the next fixpoint repair.
                    self.table.refresh_peer(&self.net, peer);
                    self.placement.apply_join(peer);
                }
                ChurnEvent::GracefulLeave => {
                    // The leaver hands its copies to the next peer clockwise
                    // before disappearing (a polite shutdown drains itself).
                    self.table.refresh_from_network(&self.net);
                    self.placement.apply_leave(peer, Departure::Graceful);
                    self.service.forget(peer);
                }
                ChurnEvent::Crash => {
                    // Data dies with the peer, and the peer itself is gone
                    // — but survivors only notice once the failure detector
                    // fires: until then the table keeps routing through the
                    // ghost and requests bounce off it.
                    self.placement.apply_leave(peer, Departure::Crash);
                    self.service.forget(peer);
                    self.table.remove_peer(peer);
                    let lag = self.detector.crash_lag(peer, self.cfg.detection_lag);
                    self.queue.push(self.queue.now() + lag, SimEvent::DetectCrash(peer));
                }
            }
        }
        self.was_stable = false;
        if !self.round_scheduled && self.rounds_run < self.cfg.max_rounds {
            self.schedule_round();
        }
    }

    // ---- failure detection & adversary events -----------------------------

    /// The detector concludes a crash `detection_lag (+ jitter)` after the
    /// fact. A peer that *rejoined under the same identity* before the
    /// event fired is alive — the detection is stale and must be ignored,
    /// not scrub the live peer's view entries.
    fn on_detect_crash(&mut self, victim: Ident) {
        if self.net.engine().contains(victim) {
            return; // rejoined before detection: cancelled
        }
        self.table.refresh_from_network(&self.net);
    }

    /// The suspicion cadence: the detector's own false positives plus
    /// heartbeat-stalling attackers framing their clockwise neighbors.
    fn on_detector_tick(&mut self, k: u64) {
        let now = self.queue.now();
        self.detector.prune(now);
        let peers = self.table.peers().to_vec();
        if !peers.is_empty() {
            if self.cfg.detector.false_suspect_every > 0 {
                let idx =
                    (mix(&[self.adversary.seed(), 0xfa15_e000, k]) % peers.len() as u64) as usize;
                self.detector.suspect(peers[idx], now);
            }
            for attacker in self.adversary.byzantine_peers() {
                if !self.adversary.commits(attacker, Crime::StallHeartbeats)
                    || self.table.knowledge_of(attacker).is_none()
                {
                    continue;
                }
                // The victim is the attacker's clockwise successor: the
                // peer whose heartbeats it relays — and starves.
                let idx = match peers.binary_search(&attacker) {
                    Ok(i) => (i + 1) % peers.len(),
                    Err(i) => i % peers.len(),
                };
                if peers[idx] != attacker {
                    self.detector.suspect(peers[idx], now);
                }
            }
        }
        let period = Self::detector_period(&self.cfg);
        if now + period <= self.cfg.traffic_end {
            self.queue.push(now + period, SimEvent::DetectorTick(k + 1));
        }
    }

    /// One sybil identity joins through its sponsoring attacker. The wave
    /// needs its sponsor alive; a crashed attacker injects nothing.
    fn on_sybil_join(&mut self, attacker: Ident, sybil: Ident) {
        if !self.net.join_via(sybil, attacker) {
            return;
        }
        if self.repair_running {
            // Same as organic churn: the join splits an arc and
            // invalidates the repair plan mid-drain.
            self.repair_running = false;
            self.repair_epoch += 1;
            self.sink.repair_preempted(self.queue.now());
        }
        self.table.refresh_peer(&self.net, sybil);
        self.placement.apply_join(sybil);
        self.was_stable = false;
        if !self.round_scheduled && self.rounds_run < self.cfg.max_rounds {
            self.schedule_round();
        }
    }

    // ---- paced anti-entropy -----------------------------------------------

    /// Opens the repair pass a stabilization fixpoint owes. With
    /// `repair_bandwidth == 0` the whole pass lands instantaneously at the
    /// fixpoint (the pre-paced model); otherwise the first bounded slice
    /// runs right here and the rest drains one `RepairTick` per tick. An
    /// unbounded paced budget therefore degenerates to the unpaced
    /// behavior — trace-identically when `service_time == 0` (the
    /// default); with finite service capacity the paced path additionally
    /// admits every transfer through the receivers' queues, which delays
    /// foreground traffic (that contention *is* the model, so the two
    /// modes then agree on placement and repair totals but not on
    /// request timings).
    fn start_repair(&mut self) {
        if self.cfg.repair_bandwidth == 0 {
            let stats = self.placement.repair_delta();
            if stats.arcs_touched > 0 {
                self.sink.record_repair(self.queue.now(), stats);
            }
            return;
        }
        if self.repair_running {
            // A mid-convergence wobble (rounds changing with no churn)
            // cannot dirty placement; the running drain is still valid.
            return;
        }
        let backlog = self.placement.begin_repair();
        if !self.placement.repair_pending() {
            return; // nothing dirty: the fixpoint owes no repair
        }
        self.sink.repair_started(self.queue.now(), backlog);
        self.repair_running = true;
        self.repair_slice();
    }

    fn on_repair_tick(&mut self, epoch: u64) {
        if epoch != self.repair_epoch || !self.repair_running {
            return; // a tick of a plan churn already preempted
        }
        self.repair_slice();
    }

    /// One bounded slice: move at most `repair_bandwidth` keys, push every
    /// transferred copy through the receiving peer's service queue (repair
    /// occupies the same servers foreground hops do — a loaded peer makes
    /// *both* wait), and schedule the next slice until the backlog drains.
    ///
    /// Deliberate simplification: a copy becomes readable at the tick
    /// instant — the admission models the server time the transfer *costs*
    /// (contention with foreground work), not the arrival time of the
    /// bytes. Time-to-full-replication therefore bounds the data-layer
    /// work, slightly optimistically on a deeply backlogged receiver.
    fn repair_slice(&mut self) {
        let now = self.queue.now();
        let step = self.placement.repair_step(self.cfg.repair_bandwidth);
        for &(peer, copies) in &step.transfers {
            for _ in 0..copies {
                self.service.admit(peer, now);
            }
        }
        let backlog = self.placement.repair_backlog_keys();
        self.sink.repair_tick(now, step.stats, step.rejected_copies, backlog);
        if step.done {
            self.repair_running = false;
            self.sink.repair_finished(now);
        } else {
            self.queue.push(now + 1, SimEvent::RepairTick(self.repair_epoch));
        }
    }

    fn schedule_round(&mut self) {
        self.queue.push(self.queue.now() + self.cfg.round_every.max(1), SimEvent::Round);
        self.round_scheduled = true;
    }
}

/// Entry-point choice as a pure draw keyed by `(request id, attempt)`:
/// arrival staging on the main thread (attempt 0) and worker-side retries
/// (attempt = the retry ordinal) share the scheme without sharing an rng,
/// so the pick cannot depend on which thread asks or in what order.
/// Clients avoid suspected entry points: the draw goes over the *filtered*
/// list when any suspicion is active (never taken under the accurate
/// default detector, keeping honest runs on the unfiltered stream).
fn pick_entry(
    peers: &[Ident],
    detector: &FailureDetector,
    now: u64,
    draw_seed: u64,
    req_id: u64,
    attempt: u64,
) -> Option<Ident> {
    if peers.is_empty() {
        return None;
    }
    let h = mix(&[draw_seed, ENTRY_TAG, req_id, attempt]);
    if detector.has_active(now) {
        let clear: Vec<Ident> =
            peers.iter().copied().filter(|&p| !detector.is_suspected(p, now)).collect();
        if !clear.is_empty() {
            return Some(clear[(h % clear.len() as u64) as usize]);
        }
    }
    Some(peers[(h % peers.len() as u64) as usize])
}

/// One worker's slice of the simulator for the duration of one batch:
/// shared read-only control-plane state (routing table, detector,
/// adversary map, acked set — all frozen between barriers) plus
/// exclusively owned per-arc columns (placement views, service backlog).
/// The request lifecycle runs here — the same logic the serial handlers
/// historically ran, with every effect either arc-local or buffered for
/// the deterministic barrier merge.
struct Lane<'b> {
    cfg: &'b WorkloadConfig,
    space: &'b IdSpace,
    table: &'b RoutingTable,
    detector: &'b FailureDetector,
    adversary: &'b AdversaryMap,
    /// Acks from *earlier* batches (frozen); this batch's land in
    /// `new_acked`.
    acked: &'b BTreeSet<u64>,
    arcs: usize,
    /// First arc this lane owns; `views[arc - arc_lo]` is the arc's
    /// placement window.
    arc_lo: usize,
    views: Vec<ArcView<'b, ()>>,
    service: ServiceSlice<'b>,
    draw_seed: u64,
    /// Keys acked by puts completed in this batch. A get for a key always
    /// lands on the same lane as the put that acked it (both complete at
    /// the key's primary), so checking `acked ∪ new_acked` reproduces the
    /// serial engine's view exactly.
    new_acked: BTreeSet<u64>,
    /// Outcome records buffered for the barrier merge.
    outcomes: Vec<RequestOutcome>,
}

impl ShardHandler<Wire> for Lane<'_> {
    fn handle(&mut self, time: u64, _id: u64, payload: Wire, out: &mut Outbox<Wire>) {
        match payload {
            Wire::Hop(f) => self.on_hop(time, f, out),
            Wire::Serve(f) => self.advance(time, f, out),
        }
    }
}

impl Lane<'_> {
    fn arc_of_peer(&self, peer: Ident) -> usize {
        arc_of(peer.raw(), self.arcs)
    }

    /// A hop lands at its receiving peer: admit it through the peer's
    /// service queue. Hop events fire in canonical `(time, id)` order, so
    /// admission is FIFO in *arrival* order; a loaded peer parks the
    /// request until its server gets to it. The `Serve` completion stays
    /// on the same peer — same arc, same lane — so it may legally land
    /// inside the current lookahead window.
    fn on_hop(&mut self, now: u64, f: InFlight, out: &mut Outbox<Wire>) {
        if self.table.knowledge_of(f.peer).is_none() {
            // The receiving peer died while the hop was in flight: nothing
            // is there to serve it (and its forgotten service queue must not
            // be resurrected) — bounce straight to the retry path.
            return self.retry(now, f, out);
        }
        if self.detector.is_suspected(f.peer, now) {
            // Live but suspected: the sender treats the silence as a crash
            // and re-enters elsewhere — the availability tax a false
            // suspicion (or a stalled heartbeat) levies on a healthy peer.
            return self.retry(now, f, out);
        }
        let served_at = self.service.admit(f.peer, now);
        if served_at > now {
            out.push(self.arc_of_peer(f.peer), served_at, f.req.id, Wire::Serve(f));
        } else {
            self.advance(now, f, out);
        }
    }

    /// Drives a request from its current resident peer: free local steps
    /// until the route either needs a network hop (scheduled with a purely
    /// keyed latency draw, `>= min_delay` — the window-safety bound),
    /// completes, or gets stuck.
    fn advance(&mut self, now: u64, mut f: InFlight, out: &mut Outbox<Wire>) {
        let key_pos = self.space.key_position(f.req.key);
        loop {
            if self.table.knowledge_of(f.peer).is_none() {
                // The resident peer crashed while the request was in flight.
                return self.retry(now, f, out);
            }
            match route_step(self.table, f.peer, f.cursor, key_pos) {
                HopDecision::Arrived => return self.complete(now, f, key_pos),
                HopDecision::Next { peer, cursor } => {
                    if peer == f.peer {
                        f.cursor = cursor;
                        continue; // local step through its own virtual nodes
                    }
                    // The *forwarder* (the current resident peer) decides
                    // the hop's fate before the honest greedy choice ships.
                    let mut next = peer;
                    let mut next_cursor = cursor;
                    if !self.adversary.is_all_honest() {
                        match self.adversary.behavior_of(f.peer) {
                            Behavior::Byzantine(crimes) => {
                                if crimes.contains(Crime::DropForward) {
                                    // Silent drop: the client times out and
                                    // pays the full retry price.
                                    return self.retry(now, f, out);
                                }
                                if crimes.contains(Crime::MisrouteForward) {
                                    if let Some(worst) = self.worst_forward(f.peer, key_pos) {
                                        // Ship the request to the worst
                                        // known peer without advancing the
                                        // route cursor: a hop is burned and
                                        // no logical progress is made.
                                        next = worst;
                                        next_cursor = f.cursor;
                                    }
                                }
                            }
                            Behavior::Flaky(p) => {
                                let coin = [
                                    self.adversary.seed(),
                                    0xd201_f0f0,
                                    f.req.id,
                                    u64::from(f.hops),
                                ];
                                if chance(&coin, p) {
                                    return self.retry(now, f, out);
                                }
                            }
                            Behavior::Honest => {}
                        }
                    }
                    f.cursor = next_cursor;
                    f.hops += 1;
                    if f.hops > self.cfg.hop_budget {
                        return self.retry(now, f, out);
                    }
                    f.peer = next;
                    let lat = self.hop_latency(&f);
                    return out.push(self.arc_of_peer(f.peer), now + lat, f.req.id, Wire::Hop(f));
                }
                HopDecision::Stuck => return self.retry(now, f, out),
            }
        }
    }

    /// One purely keyed latency draw. `(request id, hops)` never repeats —
    /// hops increments before every draw, across hops *and* retries — so
    /// every draw is an independent sample of the latency law.
    fn hop_latency(&self, f: &InFlight) -> u64 {
        self.cfg.latency.sample_keyed(&[self.draw_seed, LAT_TAG, f.req.id, u64::from(f.hops)])
    }

    fn retry(&mut self, now: u64, mut f: InFlight, out: &mut Outbox<Wire>) {
        f.retries += 1;
        if f.retries > self.cfg.max_retries {
            return self.finish(now, f, OutcomeKind::Lost);
        }
        let via = pick_entry(
            self.table.peers(),
            self.detector,
            now,
            self.draw_seed,
            f.req.id,
            u64::from(f.retries),
        );
        match via {
            Some(via) => {
                f.peer = via;
                f.cursor = via;
                // Reaching the fresh entry peer is a real network hop:
                // count it against the budget and pay one sampled hop
                // latency on top of the backoff. (Retries used to teleport
                // — zero hops, zero latency — making them *cheaper* per
                // hop than first attempts and skewing p99 optimistic
                // under churn.)
                f.hops += 1;
                if f.hops > self.cfg.hop_budget {
                    return self.finish(now, f, OutcomeKind::Lost);
                }
                let lat = self.hop_latency(&f);
                let at = now + self.cfg.retry_backoff + lat;
                out.push(self.arc_of_peer(via), at, f.req.id, Wire::Hop(f));
            }
            None => self.finish(now, f, OutcomeKind::Lost),
        }
    }

    /// The request reached the responsible peer — which is exactly the
    /// key's placement primary, so its shard lives in this lane's views
    /// (the arc-locality invariant the whole partitioning rests on).
    fn complete(&mut self, now: u64, mut f: InFlight, key_pos: Ident) {
        let vi = self.arc_of_peer(f.peer) - self.arc_lo;
        debug_assert!(vi < self.views.len(), "completion outside the lane's arc range");
        match f.req.op {
            Op::Put => {
                self.views[vi].put(key_pos, f.req.key, f.req.id, ());
                self.new_acked.insert(f.req.key);
                self.finish(now, f, OutcomeKind::Success);
            }
            Op::Get => {
                let view = &self.views[vi];
                let probe = view.lookup(key_pos, f.req.key);
                let kind = match probe.hit {
                    Some((probes, _)) => {
                        f.hops += probes as u32; // each successor probe is a hop
                        if !self.adversary.is_all_honest()
                            && view
                                .replica_set(key_pos)
                                .get(probes)
                                .is_some_and(|&s| self.adversary.commits(s, Crime::StaleReadPoison))
                        {
                            // The replica that answered holds the value but
                            // serves a deliberately stale copy: the client
                            // gets an answer — just the wrong one.
                            OutcomeKind::Corrupted
                        } else {
                            OutcomeKind::Success
                        }
                    }
                    None if self.acked.contains(&f.req.key)
                        || self.new_acked.contains(&f.req.key) =>
                    {
                        f.hops += (probe.replicas as u32).saturating_sub(1);
                        OutcomeKind::StaleRead
                    }
                    None => OutcomeKind::Success, // clean empty read: key never written
                };
                self.finish(now, f, kind);
            }
        }
    }

    fn finish(&mut self, now: u64, f: InFlight, kind: OutcomeKind) {
        self.outcomes.push(RequestOutcome {
            id: f.req.id,
            op: f.req.op,
            key: f.req.key,
            issued_at: f.req.issued_at,
            completed_at: now,
            hops: f.hops,
            retries: f.retries,
            kind,
        });
    }

    /// The misrouter's pick: among everything `from` knows, the live peer
    /// from which `key_pos` is *farthest* clockwise — maximal anti-progress
    /// while still shipping to a real, reachable peer (ties broken by
    /// ident so the crime is deterministic).
    fn worst_forward(&self, from: Ident, key_pos: Ident) -> Option<Ident> {
        let known = self.table.knowledge_of(from)?;
        known
            .iter()
            .map(|r| r.owner)
            .filter(|&p| p != from && self.table.knowledge_of(p).is_some())
            .max_by_key(|&p| (p.dist_cw(key_pos), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_net(n: usize, seed: u64) -> ReChordNetwork {
        let (net, report) = ReChordNetwork::bootstrap_stable(n, seed, 1, 50_000);
        assert!(report.converged);
        net
    }

    fn steady_cfg(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            traffic: TrafficConfig {
                mean_interarrival: 20.0,
                key_universe: 64,
                ..Default::default()
            },
            traffic_end: 4_000,
            ..Default::default()
        }
    }

    #[test]
    fn steady_state_is_fully_available() {
        let mut sim = TrafficSim::new(steady_cfg(5), stable_net(16, 5), &TimedChurnPlan::default());
        sim.preload();
        let report = sim.run();
        assert!(report.summary.total > 100, "enough requests ran");
        assert_eq!(report.summary.availability, 1.0, "{}", report.summary);
        assert_eq!(report.summary.lost, 0);
        assert_eq!(report.lost_keys, 0);
        assert!(report.stable_at_end);
        assert!(report.summary.p50 > 0, "hops cost virtual time");
        assert!(report.summary.p99 >= report.summary.p50);
        assert!(report.events > report.summary.total as u64, "every request takes >= 1 data event");
    }

    #[test]
    fn runs_are_bit_identical() {
        let run = || {
            let mut sim = TrafficSim::new(
                steady_cfg(9),
                stable_net(12, 9),
                &TimedChurnPlan::storm(4, 0.5, 500, 200, 7),
            );
            sim.preload();
            let r = sim.run();
            (r.sink.trace(), format!("{}", r.summary), r.rounds)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn worker_and_arc_knobs_never_change_the_trace() {
        // The headline determinism contract, smoke-sized: any worker and
        // arc count — serial, more workers than arcs, one arc, prime
        // splits — produces byte-identical traces, summaries, and event
        // counts. The full-size sweep lives in tests/shard_parity.rs.
        let run = |workers: usize, arcs: usize| {
            let mut cfg = steady_cfg(13);
            cfg.workers = workers;
            cfg.arcs = arcs;
            cfg.service_time = 3;
            let mut sim = TrafficSim::new(
                cfg,
                stable_net(12, 13),
                &TimedChurnPlan::storm(4, 0.5, 500, 200, 7),
            );
            sim.preload();
            let r = sim.run();
            (r.sink.trace(), format!("{}", r.summary), r.rounds, r.events)
        };
        let serial = run(1, 0);
        assert_eq!(serial, run(2, 0), "two workers, auto arcs");
        assert_eq!(serial, run(4, 64), "four workers, explicit arcs");
        assert_eq!(serial, run(3, 1), "one arc clamps to the serial drain");
        assert_eq!(serial, run(8, 5), "more workers than arcs");
    }

    #[test]
    fn churn_degrades_then_recovers() {
        let mut cfg = steady_cfg(3);
        cfg.traffic_end = 20_000;
        cfg.replication = 3;
        // Aggressive storm: 10 events striking every 120 ticks from t=2000.
        let storm = TimedChurnPlan::storm(10, 0.4, 2_000, 120, 13);
        let mut sim = TrafficSim::new(cfg, stable_net(24, 3), &storm);
        sim.preload();
        let report = sim.run();
        assert!(report.stable_at_end, "network re-stabilized under the round budget");
        let windows = report.sink.windows(2_000);
        let tail = windows.last().unwrap();
        assert_eq!(tail.availability(), 1.0, "tail window fully available: {}", report.summary);
        assert!(report.summary.total > 500);
    }

    #[test]
    fn join_wave_keeps_acked_data_reachable() {
        let mut cfg = steady_cfg(11);
        cfg.traffic_end = 12_000;
        cfg.replication = 2;
        let wave = TimedChurnPlan::join_wave(6, 1_000, 400, 21);
        let mut sim = TrafficSim::new(cfg, stable_net(12, 11), &wave);
        sim.preload();
        let report = sim.run();
        assert_eq!(report.lost_keys, 0, "joins never destroy data");
        assert_eq!(report.final_peers, 18);
        assert!(report.summary.availability > 0.95, "{}", report.summary);
    }

    #[test]
    fn single_peer_network_serves_every_request_locally() {
        // One peer is *not* an empty network: everything routes to itself
        // and succeeds locally, losing nothing.
        let topo = rechord_topology::TopologyKind::SortedLine.generate(1, 1);
        let net = ReChordNetwork::from_topology(&topo, 1);
        let mut cfg = steady_cfg(1);
        cfg.traffic_end = 200;
        let sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
        let report = sim.run();
        assert!(report.summary.total > 0);
        assert_eq!(report.summary.lost, 0);
    }

    #[test]
    fn peerless_network_records_every_request_lost() {
        // A genuinely peer-less network: `pick_entry` has nowhere to
        // inject, so every arrival must be recorded `Lost` — never dropped
        // silently, never panicking.
        let topo = rechord_topology::TopologyKind::SortedLine.generate(0, 1);
        let net = ReChordNetwork::from_topology(&topo, 1);
        assert_eq!(net.len(), 0);
        let mut cfg = steady_cfg(2);
        cfg.traffic_end = 500;
        let sim = TrafficSim::new(cfg, net, &TimedChurnPlan::default());
        let report = sim.run();
        assert!(report.summary.total > 0, "arrivals still fire with no peers");
        assert_eq!(report.summary.lost, report.summary.total, "all lost: {}", report.summary);
        assert_eq!(report.summary.availability, 0.0);
        assert_eq!(report.final_peers, 0);
        for o in report.sink.outcomes() {
            assert_eq!((o.kind, o.hops, o.retries), (OutcomeKind::Lost, 0, 0));
            assert_eq!(o.completed_at, o.issued_at, "lost at the door, instantly");
        }
    }

    #[test]
    fn dead_peer_hop_never_resurrects_service_backlog() {
        // Crash semantics of the service queue: once a peer dies, its
        // queue is forgotten, and a hop still in flight toward it must
        // bounce off the `on_hop` knowledge-check guard *without* admitting
        // anything (which would resurrect backlog for a ghost).
        let mut cfg = steady_cfg(31);
        cfg.service_time = 8;
        let mut sim = TrafficSim::new(cfg, stable_net(8, 31), &TimedChurnPlan::default());
        sim.preload();
        let victim = sim.table.peers()[0];
        sim.service.admit(victim, 0);
        sim.service.admit(victim, 0);
        assert!(sim.service.backlog_of(victim, 0) > 0, "victim has live backlog");

        // The peer crashes: placement loses its copies, the service queue
        // forgets it, the routing view drops it (what `on_churn` does).
        sim.placement.apply_leave(victim, Departure::Crash);
        sim.service.forget(victim);
        sim.table.remove_peer(victim);

        // A hop dispatched before the crash lands now: stage it on the
        // data plane and drain one single-instant batch.
        let req = Request { id: 900, op: Op::Get, key: 3, issued_at: 0 };
        let f = InFlight { req, peer: victim, cursor: victim, hops: 1, retries: 0 };
        sim.next_arrival = None; // no organic traffic in this surgical batch
        sim.data.push_for(victim.raw(), 0, req.id, Wire::Hop(f));
        sim.run_data_batch(1);
        assert_eq!(sim.service.backlog_of(victim, 1), 0, "guard must not resurrect the queue");
        assert_eq!(sim.data.len(), 1, "the request went to the retry path");
    }

    #[test]
    fn retries_pay_a_hop_and_its_latency() {
        // A retry re-enters at a fresh peer: that is a real network hop and
        // must cost one sampled latency on top of the backoff — retried
        // requests can never be cheaper per hop than first attempts.
        let mut cfg = steady_cfg(33);
        cfg.retry_backoff = 40;
        let mut sim = TrafficSim::new(cfg, stable_net(8, 33), &TimedChurnPlan::default());
        sim.preload();
        // Kill a peer so a staged hop bounces straight to the retry path.
        let gone = sim.table.peers()[1];
        sim.placement.apply_leave(gone, Departure::Crash);
        sim.table.remove_peer(gone);
        let req = Request { id: 901, op: Op::Get, key: 5, issued_at: 0 };
        let f = InFlight { req, peer: gone, cursor: gone, hops: 2, retries: 0 };
        sim.next_arrival = None;
        sim.data.push_for(gone.raw(), 0, req.id, Wire::Hop(f));
        sim.run_data_batch(1);
        // The retry hop is the only event left on the data plane.
        let (at, id, wire) = sim.data.pop_min().expect("the retry hop is queued");
        assert_eq!(id, 901);
        let Wire::Hop(f) = wire else { panic!("expected a hop event") };
        assert_eq!(f.retries, 1);
        assert_eq!(f.hops, 3, "re-entry counts as a hop");
        assert!(
            at > sim.cfg.retry_backoff,
            "re-entry pays latency beyond the bare backoff (landed at {at})"
        );
    }

    #[test]
    fn service_capacity_adds_deterministic_queueing_delay() {
        // Same seed, same traffic: finite per-peer service rate must slow
        // requests down (hops queue behind each other at loaded peers) but
        // never fail them — and stay bit-deterministic.
        let run = |service_time: u64| {
            let mut cfg = steady_cfg(21);
            cfg.traffic.mean_interarrival = 4.0; // enough load to collide
            cfg.service_time = service_time;
            let mut sim = TrafficSim::new(cfg, stable_net(10, 21), &TimedChurnPlan::default());
            sim.preload();
            let r = sim.run();
            (r.summary.p50, r.summary.p99, r.summary.availability, r.sink.trace())
        };
        let (p50_inf, p99_inf, avail_inf, _) = run(0);
        let (p50_q, p99_q, avail_q, trace_q) = run(8);
        assert_eq!(avail_inf, 1.0);
        assert_eq!(avail_q, 1.0, "queueing delays, never fails");
        assert!(p50_q > p50_inf, "finite capacity must raise p50 ({p50_inf} -> {p50_q})");
        assert!(p99_q >= p99_inf);
        assert_eq!(trace_q, run(8).3, "queueing is deterministic");
    }

    #[test]
    fn fixpoint_repairs_are_incremental_and_recorded() {
        let mut cfg = steady_cfg(7);
        cfg.traffic_end = 16_000;
        cfg.replication = 3;
        let storm = TimedChurnPlan::storm(6, 0.5, 2_000, 400, 5);
        let mut sim = TrafficSim::new(cfg, stable_net(20, 7), &storm);
        sim.preload();
        let report = sim.run();
        let universe = 64usize; // steady_cfg key universe
        let repairs = report.sink.repairs();
        assert!(!repairs.is_empty(), "churn must trigger fixpoint repairs");
        assert!(report.summary.repair_keys_moved > 0, "churn moves keys");
        assert_eq!(report.summary.repairs, repairs.len());
        for r in repairs {
            assert!(r.stats.keys_moved <= r.stats.keys_examined);
            assert!(
                r.stats.keys_examined <= universe,
                "repair examined {} keys of a {universe}-key universe",
                r.stats.keys_examined
            );
        }
        // Single-event repairs touch only the replication window around the
        // changed peer, never every arc.
        let max_arcs = repairs.iter().map(|r| r.stats.arcs_touched).max().unwrap();
        assert!(
            max_arcs < report.final_peers,
            "incremental repair touched {max_arcs} arcs with {} peers",
            report.final_peers
        );
    }

    #[test]
    fn infinite_bandwidth_paced_repair_matches_the_unpaced_traces() {
        // The paced machinery with an unbounded budget must degenerate to
        // the pre-paced model: one synchronous drain at the fixpoint, the
        // same request outcomes bit for bit — when `service_time == 0`.
        // With finite service capacity the paced path additionally charges
        // the receivers for every transfer (that contention is the model),
        // so there the modes must still agree on placement and repair
        // totals, but request timings legitimately diverge.
        let run = |bandwidth: usize, service_time: u64| {
            let mut cfg = steady_cfg(9);
            cfg.traffic_end = 16_000;
            cfg.replication = 3;
            cfg.repair_bandwidth = bandwidth;
            cfg.service_time = service_time;
            let storm = TimedChurnPlan::storm(6, 0.5, 2_000, 400, 5);
            let mut sim = TrafficSim::new(cfg, stable_net(20, 9), &storm);
            sim.preload();
            sim.run()
        };
        let unpaced = run(0, 0);
        let infinite = run(usize::MAX, 0);
        assert_eq!(unpaced.sink.trace(), infinite.sink.trace(), "traces must be identical");
        assert_eq!(unpaced.rounds, infinite.rounds, "round counts must match");
        assert_eq!(unpaced.summary.repairs, infinite.summary.repairs);
        assert_eq!(unpaced.summary.repair_keys_moved, infinite.summary.repair_keys_moved);

        let unpaced_q = run(0, 4);
        let infinite_q = run(usize::MAX, 4);
        assert_eq!(unpaced_q.summary.repairs, infinite_q.summary.repairs);
        assert_eq!(
            unpaced_q.summary.repair_keys_moved, infinite_q.summary.repair_keys_moved,
            "queued or not, the same keys move"
        );
        assert_eq!(unpaced_q.lost_keys, infinite_q.lost_keys);
        assert_eq!(
            unpaced_q.summary.total, infinite_q.summary.total,
            "every request still completes under repair contention"
        );
    }

    #[test]
    fn throttled_repair_stretches_the_stale_window() {
        let run = |bandwidth: usize| {
            let mut cfg = steady_cfg(23);
            cfg.traffic_end = 16_000;
            cfg.replication = 2;
            cfg.repair_bandwidth = bandwidth;
            let storm = TimedChurnPlan::storm(6, 0.6, 2_000, 500, 11);
            let mut sim = TrafficSim::new(cfg, stable_net(16, 23), &storm);
            sim.preload();
            sim.run()
        };
        let unpaced = run(0);
        let paced = run(2);
        assert_eq!(unpaced.summary.slowest_repair, 0, "unpaced repair is instantaneous");
        let psum = &paced.summary;
        assert!(psum.repairs > 0);
        assert!(psum.repair_ticks > psum.repairs, "a 2-key budget needs many ticks per pass");
        assert!(psum.slowest_repair > 0, "paced repair takes virtual time: {psum}");
        assert!(psum.repair_backlog_peak > 0, "the backlog gauge saw outstanding keys");
        assert!(
            psum.stale >= unpaced.summary.stale,
            "a longer repair window cannot shrink stale reads ({} -> {})",
            unpaced.summary.stale,
            psum.stale
        );
        // The paced run still converges: repair finished and the acked data
        // that survived the crashes is fully re-replicated.
        assert!(paced.stable_at_end);
        let last = paced.sink.repairs().last().unwrap();
        assert!(!last.preempted, "the final pass ran to completion");
        assert_eq!(paced.sink.backlog_gauge().last().unwrap().1, 0, "backlog drained to zero");
    }

    #[test]
    fn churn_mid_drain_preempts_the_repair_pass() {
        // A trickle budget against a dense storm: fixpoints open passes
        // that the next churn event interrupts mid-drain. The preempted
        // pass is recorded as such and its remainder lands in a later pass.
        let mut cfg = steady_cfg(29);
        cfg.traffic_end = 20_000;
        cfg.traffic.key_universe = 2_048; // a backlog deep enough to outlast the storm spacing
        cfg.replication = 3;
        cfg.round_every = 10; // fast fixpoints: passes open between storm strikes
        cfg.repair_bandwidth = 1;
        let storm = TimedChurnPlan::storm(10, 0.5, 2_000, 300, 17);
        let mut sim = TrafficSim::new(cfg, stable_net(20, 29), &storm);
        sim.preload();
        let report = sim.run();
        let repairs = report.sink.repairs();
        assert!(repairs.iter().any(|r| r.preempted), "a 1-key/tick drain must get interrupted");
        assert!(!repairs.last().unwrap().preempted, "but the last pass completes");
        assert!(report.stable_at_end);
        for r in repairs {
            assert!(r.stats.keys_moved <= r.backlog_at_start, "budget accounting: {r:?}");
            assert!(r.at >= r.started_at);
        }
        assert_eq!(report.sink.backlog_gauge().last().unwrap().1, 0);
    }

    #[test]
    fn storage_cap_rejects_surplus_repair_copies() {
        // 64 keys × replication 3 on 10 peers ≈ 19 copies per peer; a cap
        // of 14 leaves no headroom, so post-crash re-replication must
        // reject surplus copies — and the data stays readable at primaries.
        let mut cfg = steady_cfg(27);
        cfg.traffic_end = 12_000;
        cfg.replication = 3;
        cfg.repair_bandwidth = 8;
        cfg.max_keys_per_peer = 14;
        let storm = TimedChurnPlan::storm(3, 1.0, 2_000, 400, 19);
        let mut sim = TrafficSim::new(cfg, stable_net(10, 27), &storm);
        sim.preload();
        let report = sim.run();
        assert!(
            report.summary.repair_rejected_copies > 0,
            "an over-quota network must reject surplus repair copies: {}",
            report.summary
        );
        assert!(report.stable_at_end);
        assert_eq!(report.lost_keys, 0, "rejection never destroys surviving data");
    }

    #[test]
    fn hot_key_schedule_fires() {
        let mut cfg = steady_cfg(17);
        cfg.traffic.mean_interarrival = 5.0;
        cfg.traffic_end = 3_000;
        let mut sim = TrafficSim::new(cfg, stable_net(10, 17), &TimedChurnPlan::default());
        sim.preload();
        sim.schedule_hot_key(1_000, Some((7, 0.9)));
        sim.schedule_hot_key(2_000, None);
        let report = sim.run();
        let mid: Vec<_> = report
            .sink
            .outcomes()
            .iter()
            .filter(|o| (1_000..2_000).contains(&o.issued_at))
            .collect();
        let hot = mid.iter().filter(|o| o.key == 7).count();
        assert!(hot * 10 > mid.len() * 7, "{hot}/{} mid-run requests on the hot key", mid.len());
    }

    // ---- fault injection & failure detection ------------------------------

    use rechord_core::CrimeSet;

    fn adversarial_cfg(seed: u64, fraction: f64, crimes: CrimeSet) -> WorkloadConfig {
        let mut cfg = steady_cfg(seed);
        cfg.adversary = AdversaryConfig { fraction, crimes, ..Default::default() };
        cfg
    }

    #[test]
    fn stale_detection_of_a_rejoined_peer_is_cancelled() {
        // A peer crashes and *rejoins under the same identity* before the
        // failure detector fires. The pending `DetectCrash` is stale: it
        // must be ignored, not act on a live peer. (With natural churn this
        // never happens — rejoining idents are fresh — so the regression is
        // driven by hand.)
        let mut sim =
            TrafficSim::new(steady_cfg(41), stable_net(10, 41), &TimedChurnPlan::default());
        let victim = sim.table.peers()[2];
        let contact = sim.table.peers()[0];
        sim.placement.apply_leave(victim, Departure::Crash);
        sim.table.remove_peer(victim);
        assert!(sim.net.crash(victim), "victim crashed");
        assert!(sim.net.join_via(victim, contact), "…and rejoined as itself");

        // Make the routing table observably stale: drop an unrelated peer
        // from the *view only*. A full refresh would resurrect it.
        let canary = sim.table.peers()[4];
        sim.table.remove_peer(canary);
        assert!(sim.table.knowledge_of(canary).is_none());

        sim.on_detect_crash(victim);
        assert!(
            sim.table.knowledge_of(canary).is_none(),
            "stale detection of a live peer must be a no-op, not a view refresh"
        );

        // The same detection against a peer that stayed dead must scrub.
        let dead = sim.table.peers()[1];
        sim.placement.apply_leave(dead, Departure::Crash);
        sim.table.remove_peer(dead);
        assert!(sim.net.crash(dead));
        sim.on_detect_crash(dead);
        assert!(
            sim.table.knowledge_of(canary).is_some(),
            "a genuine detection refreshes every survivor's view"
        );
    }

    #[test]
    fn poisoned_reads_surface_as_corrupted() {
        let cfg = adversarial_cfg(19, 0.5, CrimeSet::single(Crime::StaleReadPoison));
        let mut sim = TrafficSim::new(cfg, stable_net(12, 19), &TimedChurnPlan::default());
        sim.preload();
        let report = sim.run();
        assert!(report.summary.corrupted > 0, "poisoners must corrupt reads: {}", report.summary);
        assert!(report.summary.availability < 1.0, "corruption counts against the SLO");
        assert_eq!(report.summary.lost, 0, "poison answers; it does not drop");
    }

    #[test]
    fn forward_droppers_degrade_availability_monotonically() {
        let run = |fraction| {
            let cfg = adversarial_cfg(23, fraction, CrimeSet::single(Crime::DropForward));
            let mut sim = TrafficSim::new(cfg, stable_net(16, 23), &TimedChurnPlan::default());
            sim.preload();
            sim.run().summary.availability
        };
        let (clean, mild, heavy) = (run(0.0), run(0.25), run(0.5));
        assert_eq!(clean, 1.0, "fraction 0 is the honest simulator");
        assert!(mild < clean, "a quarter of peers dropping forwards must hurt");
        assert!(heavy <= mild, "more droppers can never help (got {mild} -> {heavy})");
    }

    #[test]
    fn false_suspicions_bounce_requests_off_live_peers() {
        let mut cfg = steady_cfg(29);
        cfg.detector = DetectorConfig { false_suspect_every: 100, suspect_for: 300, lag_jitter: 0 };
        let mut sim = TrafficSim::new(cfg, stable_net(12, 29), &TimedChurnPlan::default());
        sim.preload();
        let report = sim.run();
        assert!(report.suspicions > 0, "the cadence must raise suspicions");
        assert!(
            report.sink.outcomes().iter().any(|o| o.retries > 0),
            "bounces off suspected (live!) peers show up as retries"
        );
        assert!(
            report.summary.availability < 1.0,
            "every peer is healthy, yet the over-eager detector costs real availability"
        );
        assert!(report.summary.availability > 0.5, "{}", report.summary);
    }

    #[test]
    fn sybil_wave_grows_the_network_with_byzantine_identities() {
        let mut cfg = steady_cfg(37);
        cfg.adversary = AdversaryConfig {
            fraction: 0.25,
            crimes: CrimeSet::single(Crime::SybilJoinWave).with(Crime::StaleReadPoison),
            sybil_wave: 2,
            sybil_at: 500,
            ..Default::default()
        };
        let mut sim = TrafficSim::new(cfg, stable_net(12, 37), &TimedChurnPlan::default());
        sim.preload();
        let report = sim.run();
        assert_eq!(report.final_peers, 12 + 3 * 2, "each attacker injected its wave");
        assert!(report.stable_at_end, "the rules absorb the wave");
    }

    #[test]
    fn inert_adversary_config_is_trace_identical_to_honest() {
        // Declaring a fraction with an *empty* crime set corrupts nobody:
        // the run must be byte-for-byte the honest simulator — no policy
        // map installed, no draw key changed, no event reordered.
        let run = |cfg: WorkloadConfig| {
            let mut sim = TrafficSim::new(
                cfg,
                stable_net(10, 43),
                &TimedChurnPlan::storm(3, 0.5, 500, 200, 7),
            );
            sim.preload();
            let r = sim.run();
            (r.sink.trace(), r.rounds, r.suspicions)
        };
        let honest = run(steady_cfg(43));
        let inert = run(adversarial_cfg(43, 0.5, CrimeSet::EMPTY));
        assert_eq!(honest, inert);
        assert_eq!(honest.2, 0, "the legacy detector never suspects");
    }
}

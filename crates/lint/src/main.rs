//! `rechord-lint` binary: lint the workspace, write `results/lint.json`,
//! exit nonzero on unwaived findings.
//!
//! ```text
//! rechord-lint [--root <dir>] [--json <path>] [--fixtures-self-test]
//! ```
//!
//! * `--root` — workspace root to scan (default: current directory).
//! * `--json` — where to write the machine-readable report (default:
//!   `<root>/results/lint.json`).
//! * `--fixtures-self-test` — instead of linting the tree, run the
//!   fixture corpus self-test (exit 0 iff every golden matches and every
//!   rule fired on the bad corpus).
//!
//! Exit codes: `0` clean (or self-test passed), `1` unwaived findings
//! (or self-test failed), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json: Option<PathBuf> = None;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--fixtures-self-test" => self_test = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if self_test {
        return match rechord_lint::fixtures::self_test(&rechord_lint::fixtures::default_root()) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                eprintln!("fixtures self-test FAILED");
                ExitCode::FAILURE
            }
        };
    }

    let report = match rechord_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rechord-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.human());
    let json_path = json.unwrap_or_else(|| root.join("results/lint.json"));
    if let Some(dir) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rechord-lint: cannot create {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, report.json()) {
        eprintln!("rechord-lint: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    println!("report: {}", json_path.display());
    if report.unwaived().next().is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("rechord-lint: {err}");
    eprintln!("usage: rechord-lint [--root <dir>] [--json <path>] [--fixtures-self-test]");
    ExitCode::from(2)
}

//! A hand-rolled Rust lexer: the token stream every lint rule runs on.
//!
//! This is *not* a parser — it produces a flat token stream with byte
//! spans and line numbers, which is exactly enough for the rules in
//! [`crate::rules`]: an identifier inside a string literal or a comment
//! is a single `Str`/`Comment` token, so pattern matches on `Ident`
//! tokens can never fire on quoted or commented-out text. The hard part
//! of lexing Rust without a grammar is the disambiguation this module
//! exists for:
//!
//! * **nested block comments** — `/* /* */ */` nests to arbitrary depth;
//! * **raw strings** — `r"…"`, `r#"…"#`, … with any number of hashes,
//!   including hash runs *inside* the string shorter than the delimiter;
//! * **char literals vs lifetimes** — `'a'` is a char, `'a` is a
//!   lifetime, `'_'` is a char, `'_` is a lifetime;
//! * **raw identifiers vs raw strings** — `r#match` is an identifier,
//!   `r#"match"#` is a string, bare `r` is an identifier;
//! * **byte flavors** — `b'x'`, `b"…"`, `br#"…"#`.
//!
//! Every byte of the input lands in exactly one token (whitespace and
//! comments are tokens too), so `concat(tokens) == input` — the
//! round-trip property the proptests in `tests/` pin.

use std::fmt;

/// Token classes. Rules only distinguish identifiers, literals,
/// comments, and punctuation; keywords are ordinary [`TokKind::Ident`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace (kept so the stream reconstructs the input).
    Ws,
    /// `// …` (doc variants included), without the trailing newline.
    LineComment,
    /// `/* … */`, nesting handled, possibly spanning lines.
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`/`r#"…"#`/`br##"…"##` — raw (byte) string, any hash count.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`, `'\u{1F600}'`.
    Char,
    /// `'ident` (including `'_` and loop labels).
    Lifetime,
    /// An identifier or keyword, including raw `r#ident`.
    Ident,
    /// An integer or float literal, suffix included.
    Num,
    /// A single punctuation character.
    Punct(char),
}

/// One token: kind, exact source text, byte span, 1-based start line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The exact slice of source text this token covers.
    pub text: String,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
}

impl Tok {
    /// The identifier name with any `r#` prefix stripped — `r#match`
    /// names the same thing as `match` for rule-matching purposes.
    pub fn ident_name(&self) -> &str {
        self.text.strip_prefix("r#").unwrap_or(&self.text)
    }

    /// Is this an identifier token with exactly this (r#-stripped) name?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.ident_name() == name
    }

    /// Is this a punctuation token for `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// Is this trivia (whitespace or a comment)?
    pub fn is_trivia(&self) -> bool {
        matches!(self.kind, TokKind::Ws | TokKind::LineComment | TokKind::BlockComment)
    }
}

/// A lexing failure: unterminated literal or comment, or a stray quote.
/// Anything that trips this would not compile, so the linter reports it
/// as a hard diagnostic rather than guessing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the offending token started.
    pub line: u32,
    /// What was being lexed when the input ran out or went wrong.
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Character cursor with line tracking.
struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0, line: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while matches!(self.peek(), Some(c) if pred(c)) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a complete token stream (trivia included).
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let (start, line) = (cur.pos, cur.line);
        let kind = lex_one(&mut cur, c)?;
        toks.push(Tok { kind, text: src[start..cur.pos].to_string(), start, end: cur.pos, line });
    }
    Ok(toks)
}

/// Lexes exactly one token starting at `c` (the cursor's current char).
fn lex_one(cur: &mut Cursor<'_>, c: char) -> Result<TokKind, LexError> {
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return Ok(TokKind::Ws);
    }
    match c {
        '/' => match cur.peek_at(1) {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                Ok(TokKind::LineComment)
            }
            Some('*') => lex_block_comment(cur),
            _ => {
                cur.bump();
                Ok(TokKind::Punct('/'))
            }
        },
        '"' => lex_string(cur),
        '\'' => lex_char_or_lifetime(cur),
        'r' | 'b' => lex_r_or_b(cur, c),
        _ if is_ident_start(c) => {
            cur.eat_while(is_ident_continue);
            Ok(TokKind::Ident)
        }
        _ if c.is_ascii_digit() => {
            lex_number(cur);
            Ok(TokKind::Num)
        }
        _ => {
            cur.bump();
            Ok(TokKind::Punct(c))
        }
    }
}

/// `/* … */` with arbitrary nesting.
fn lex_block_comment(cur: &mut Cursor<'_>) -> Result<TokKind, LexError> {
    let line = cur.line;
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => {
                return Err(LexError { line, msg: "unterminated block comment".into() });
            }
        }
    }
    Ok(TokKind::BlockComment)
}

/// `"…"` with `\x`-style escapes (a backslash always escapes exactly the
/// next character, which is sufficient for tokenization — `\u{…}` bodies
/// are ordinary characters).
fn lex_string(cur: &mut Cursor<'_>) -> Result<TokKind, LexError> {
    let line = cur.line;
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            Some('"') => return Ok(TokKind::Str),
            Some('\\') => {
                cur.bump(); // the escaped character, whatever it is
            }
            Some(_) => {}
            None => return Err(LexError { line, msg: "unterminated string literal".into() }),
        }
    }
}

/// `r"…"` / `r#"…"#` / `br##"…"##`: `hashes` is the delimiter's hash
/// count; the body ends only at `"` followed by that many hashes.
fn lex_raw_string(cur: &mut Cursor<'_>, hashes: usize) -> Result<TokKind, LexError> {
    let line = cur.line;
    cur.bump(); // opening quote (prefix and hashes already consumed)
    loop {
        match cur.bump() {
            Some('"') => {
                let mut seen = 0;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return Ok(TokKind::RawStr);
                }
                // Shorter hash run inside the body: still in the string.
            }
            Some(_) => {}
            None => {
                return Err(LexError { line, msg: "unterminated raw string literal".into() });
            }
        }
    }
}

/// Disambiguates everything that can start with `r` or `b`: raw strings,
/// raw identifiers, byte strings, byte chars — or a plain identifier.
fn lex_r_or_b(cur: &mut Cursor<'_>, c: char) -> Result<TokKind, LexError> {
    // Look past an optional `r`/`b`/`br` prefix and a run of hashes.
    let (prefix_len, allows_raw_ident) = match (c, cur.peek_at(1)) {
        ('b', Some('\'')) => {
            // b'x' — a byte literal lexes exactly like a char literal.
            cur.bump();
            return lex_char_or_lifetime(cur).map(|_| TokKind::Char);
        }
        ('b', Some('"')) => {
            cur.bump();
            return lex_string(cur).map(|_| TokKind::Str);
        }
        ('b', Some('r')) => (2, false), // maybe br#"…"#
        ('r', _) => (1, true),          // maybe r"…", r#"…"#, or r#ident
        _ => (0, false),
    };
    if prefix_len > 0 {
        // Count hashes after the prefix, then decide.
        let mut hashes = 0;
        while cur.peek_at(prefix_len + hashes) == Some('#') {
            hashes += 1;
        }
        match cur.peek_at(prefix_len + hashes) {
            Some('"') => {
                for _ in 0..prefix_len + hashes {
                    cur.bump();
                }
                return lex_raw_string(cur, hashes);
            }
            Some(id) if allows_raw_ident && hashes == 1 && is_ident_start(id) => {
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return Ok(TokKind::Ident);
            }
            _ => {} // fall through: plain identifier starting with r/b
        }
    }
    cur.eat_while(is_ident_continue);
    Ok(TokKind::Ident)
}

/// After a `'`: a char literal, a byte char's tail, or a lifetime.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> Result<TokKind, LexError> {
    let line = cur.line;
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote.
            cur.bump();
            cur.bump(); // escaped character
            loop {
                match cur.bump() {
                    Some('\'') => return Ok(TokKind::Char),
                    Some(_) => {} // \u{…} body
                    None => {
                        return Err(LexError { line, msg: "unterminated char literal".into() });
                    }
                }
            }
        }
        Some(c) if is_ident_start(c) => {
            // Could be 'a' (char) or 'a / 'static (lifetime): scan the
            // identifier run, then look for a closing quote.
            cur.eat_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                Ok(TokKind::Char)
            } else {
                Ok(TokKind::Lifetime)
            }
        }
        Some('\'') => Err(LexError { line, msg: "empty char literal".into() }),
        Some(_) => {
            // Non-identifier single char like '1' or '+': needs a close.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
                Ok(TokKind::Char)
            } else {
                Err(LexError { line, msg: "unterminated char literal".into() })
            }
        }
        None => Err(LexError { line, msg: "unterminated char literal".into() }),
    }
}

/// Integer or float literal: prefix (`0x`/`0o`/`0b`), digits, optional
/// `.digits`, optional exponent, optional type suffix. Never consumes a
/// `.` that is not followed by a digit, so ranges (`1..5`) and method
/// calls on literals (`1.max(2)`) stay separate tokens.
fn lex_number(cur: &mut Cursor<'_>) {
    let radix_prefix = matches!(
        (cur.peek(), cur.peek_at(1)),
        (Some('0'), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'))
    );
    if radix_prefix {
        cur.bump();
        cur.bump();
        cur.eat_while(|c| c.is_alphanumeric() || c == '_');
        return;
    }
    cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    if cur.peek() == Some('.') && matches!(cur.peek_at(1), Some(d) if d.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_digit() || c == '_');
    }
    if matches!(cur.peek(), Some('e' | 'E')) {
        let exp_ok = match cur.peek_at(1) {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => matches!(cur.peek_at(2), Some(d) if d.is_ascii_digit()),
            _ => false,
        };
        if exp_ok {
            cur.bump(); // e
            if matches!(cur.peek(), Some('+' | '-')) {
                cur.bump();
            }
            cur.eat_while(|c| c.is_ascii_digit() || c == '_');
        }
    }
    // Type suffix (u32, f64, usize, …) or the rest of an alphanumeric run.
    cur.eat_while(is_ident_continue);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .expect("fixture input lexes")
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src).expect("input lexes");
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(rebuilt, src, "token concatenation must reproduce the input");
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "spans must be contiguous");
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two /* three */ two */ one */ b";
        let k = kinds(src);
        assert_eq!(k.len(), 2);
        assert!(k.iter().all(|(kind, _)| *kind == TokKind::Ident));
        roundtrip(src);
        // An ident buried in a comment is not an Ident token.
        let toks = lex("/* HashMap */").unwrap();
        assert!(toks.iter().all(|t| t.kind != TokKind::Ident));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("/* /* */").is_err());
        assert!(lex("fn f() { \"open").is_err());
    }

    #[test]
    fn raw_strings_with_hashes() {
        // The body contains a shorter hash run and a bare quote.
        let src = r####"let s = r###"inside "# and "## still inside"###;"####;
        let k = kinds(src);
        assert!(k.iter().any(|(kind, _)| *kind == TokKind::RawStr));
        assert!(!k.iter().any(|(_, text)| text == "inside"));
        roundtrip(src);
        // Zero hashes and byte-raw flavors.
        roundtrip("let a = r\"zero\"; let b = br#\"bytes\"#;");
        let k = kinds("br##\"x\"##");
        assert_eq!(k, vec![(TokKind::RawStr, "br##\"x\"##".to_string())]);
    }

    #[test]
    fn raw_ident_vs_raw_string_vs_plain_r() {
        let k = kinds("r#match r#\"s\"# r rabbit");
        assert_eq!(
            k,
            vec![
                (TokKind::Ident, "r#match".to_string()),
                (TokKind::RawStr, "r#\"s\"#".to_string()),
                (TokKind::Ident, "r".to_string()),
                (TokKind::Ident, "rabbit".to_string()),
            ]
        );
        let t = lex("r#match").unwrap();
        assert_eq!(t[0].ident_name(), "match");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("<'a> 'a' '_ '_' 'static '\\n' '\\'' b'x' 'x: loop");
        let lifetimes: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        let chars: Vec<&str> =
            k.iter().filter(|(kind, _)| *kind == TokKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lifetimes, vec!["'a", "'_", "'static", "'x"]);
        assert_eq!(chars, vec!["'a'", "'_'", "'\\n'", "'\\''", "b'x'"]);
    }

    #[test]
    fn strings_with_escapes_hide_idents() {
        let src = r#"let s = "HashMap \" Instant::now() \\";"#;
        let k = kinds(src);
        assert!(!k.iter().any(|(_, t)| t == "HashMap" || t == "Instant"));
        roundtrip(src);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let k = kinds("1..5 1.5 1.max(2) 0x1f_u64 1e9 1e+9 2.5e-3 x.0");
        let nums: Vec<&str> =
            k.iter().filter(|(kind, _)| *kind == TokKind::Num).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, vec!["1", "5", "1.5", "1", "2", "0x1f_u64", "1e9", "1e+9", "2.5e-3", "0"]);
        roundtrip("for i in 0..n { v[i] = i as u32; }");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\n/* b\nc */\nd \"two\nline\" e";
        let toks = lex(src).unwrap();
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("d"), Some(4));
        assert_eq!(find("e"), Some(5));
    }

    #[test]
    fn doc_comments_and_attributes_roundtrip() {
        roundtrip("/// doc `HashMap`\n//! inner\n#[allow(dead_code)] // why\nfn f() {}\n");
    }
}

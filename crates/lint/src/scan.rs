//! Workspace discovery: which files get linted, and under which policy.
//!
//! The scan covers every member crate's `src/` tree plus the facade
//! package's `src/` at the workspace root. `vendor/` (third-party shims),
//! `target/`, bench `benches/`, integration `tests/` directories, and
//! example files are out of scope: the lint gate protects the library
//! code the reproduction's determinism claims rest on.
//!
//! Each file is classified with the three flags the rules key off:
//!
//! * **crate** — the policy name (`sim`, `net`, …; `rechord` for the
//!   facade), which selects the determinism and net-discipline scopes;
//! * **binary** — `src/bin/*` and `main.rs` targets (exempt from the
//!   unwrap audit: a binary's `main` may panic on broken invariants);
//! * **test file** — a module file declared somewhere in its crate as
//!   `#[cfg(test)] mod name;` (e.g. the `proptests.rs` convention used
//!   throughout this workspace). In-file `#[cfg(test)]` *spans* are
//!   handled separately, per token, by [`crate::rules::test_mask`].

use crate::lexer::{lex, Tok};
use crate::rules;
use std::io;
use std::path::{Path, PathBuf};

/// One file queued for linting, with policy classification and source.
pub struct SourceFile {
    /// Root-relative path with forward slashes (diagnostic prefix).
    pub rel: String,
    /// Policy crate name (`sim`, `net`, `bench`, `rechord`, …).
    pub krate: String,
    /// Is this a binary target (`src/bin/*` or a `main.rs`)?
    pub is_bin: bool,
    /// Was this module declared under `#[cfg(test)]` by its crate?
    pub is_test_file: bool,
    /// Full source text.
    pub text: String,
}

/// Collects and classifies every in-scope `.rs` file under `root`.
/// Paths are sorted, so findings and reports are byte-stable run to run.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut units: Vec<(String, PathBuf)> = Vec::new(); // (crate, src dir)
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let name = member.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
            let src = member.join("src");
            if !name.is_empty() && src.is_dir() {
                units.push((name, src));
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        units.push(("rechord".to_string(), facade_src));
    }

    let mut files = Vec::new();
    for (krate, src) in units {
        let mut paths = Vec::new();
        walk_rs(&src, &mut paths)?;
        paths.sort();
        // Pass 1: which module stems does this crate declare as
        // `#[cfg(test)] mod <name>;`?
        let mut test_mods: Vec<String> = Vec::new();
        let mut loaded = Vec::new();
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            if let Ok(toks) = lex(&text) {
                let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_trivia()).collect();
                test_mods.extend(rules::cfg_test_mod_decls(&sig));
            }
            loaded.push((path, text));
        }
        // Pass 2: classify and emit.
        for (path, text) in loaded {
            let rel = rel_path(root, &path);
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default().to_string();
            let is_bin = rel.contains("/bin/") || stem == "main";
            let is_test_file = test_mods.contains(&stem)
                || path
                    .parent()
                    .and_then(|p| p.file_name())
                    .and_then(|n| n.to_str())
                    .is_some_and(|dir| test_mods.iter().any(|m| m == dir) && stem == "mod");
            files.push(SourceFile { rel, krate: krate.clone(), is_bin, is_test_file, text });
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative display path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/w");
        assert_eq!(rel_path(root, Path::new("/w/crates/sim/src/lib.rs")), "crates/sim/src/lib.rs");
    }
}

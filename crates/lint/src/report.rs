//! The lint report: human diagnostics and machine-readable JSON.
//!
//! The JSON schema (`results/lint.json`, checked by ci.sh) is:
//!
//! ```json
//! {
//!   "schema": "rechord-lint/v1",
//!   "files_scanned": 93,
//!   "rules": {
//!     "determinism": {
//!       "findings": [{"file": "...", "line": 7, "message": "...",
//!                     "waived": true, "justification": "..."}],
//!       "waivers":  [{"file": "...", "line": 7, "kind": "inline",
//!                     "justification": "...", "used": true}],
//!       "finding_count": 1, "waived_count": 1, "unwaived_count": 0,
//!       "waiver_count": 1
//!     }, ...
//!   },
//!   "total_findings": 1, "total_waived": 1, "total_unwaived": 0,
//!   "total_waivers": 12
//! }
//! ```
//!
//! The JSON is hand-rolled (no serde in this workspace); keys are
//! emitted in a fixed order so the file is byte-stable run to run.

use crate::rules::{Finding, WaiverKind, WaiverRecord, RULES};
use std::fmt::Write as _;

/// Everything one lint run produced.
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// All findings, waived or not, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// All justified waivers, sorted by (file, line, rule).
    pub waivers: Vec<WaiverRecord>,
}

impl Report {
    /// Builds a report, sorting both lists into stable order.
    pub fn new(
        files_scanned: usize,
        mut findings: Vec<Finding>,
        mut waivers: Vec<WaiverRecord>,
    ) -> Self {
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        waivers.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        Report { files_scanned, findings, waivers }
    }

    /// Findings not covered by a justified waiver.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Human diagnostics: one `file:line: [rule] message` per finding
    /// (waived ones tagged), then a summary line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = if f.waived { " (waived)" } else { "" };
            let _ = writeln!(out, "{}:{}: [{}]{tag} {}", f.file, f.line, f.rule, f.message);
        }
        let unwaived = self.unwaived().count();
        let _ = writeln!(
            out,
            "rechord-lint: {} file(s), {} finding(s) ({} waived, {} unwaived), {} waiver(s)",
            self.files_scanned,
            self.findings.len(),
            self.findings.len() - unwaived,
            unwaived,
            self.waivers.len(),
        );
        out
    }

    /// The machine-readable report (see module docs for the schema).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"rechord-lint/v1\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        out.push_str("  \"rules\": {\n");
        for (ri, rule) in RULES.iter().enumerate() {
            let findings: Vec<&Finding> =
                self.findings.iter().filter(|f| f.rule == *rule).collect();
            let waivers: Vec<&WaiverRecord> =
                self.waivers.iter().filter(|w| w.rule == *rule).collect();
            let waived = findings.iter().filter(|f| f.waived).count();
            let _ = writeln!(out, "    \"{rule}\": {{");
            out.push_str("      \"findings\": [");
            for (i, f) in findings.iter().enumerate() {
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(
                    out,
                    "{sep}        {{\"file\": {}, \"line\": {}, \"message\": {}, \
                     \"waived\": {}, \"justification\": {}}}",
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message),
                    f.waived,
                    f.justification.as_deref().map_or("null".to_string(), json_str),
                );
            }
            out.push_str(if findings.is_empty() { "],\n" } else { "\n      ],\n" });
            out.push_str("      \"waivers\": [");
            for (i, w) in waivers.iter().enumerate() {
                let kind = match w.kind {
                    WaiverKind::Inline => "inline",
                    WaiverKind::AllowAttr => "allow-attr",
                    WaiverKind::ExpectMessage => "expect-message",
                };
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(
                    out,
                    "{sep}        {{\"file\": {}, \"line\": {}, \"kind\": \"{kind}\", \
                     \"justification\": {}, \"used\": {}}}",
                    json_str(&w.file),
                    w.line,
                    json_str(&w.justification),
                    w.used,
                );
            }
            out.push_str(if waivers.is_empty() { "],\n" } else { "\n      ],\n" });
            let _ = writeln!(out, "      \"finding_count\": {},", findings.len());
            let _ = writeln!(out, "      \"waived_count\": {waived},");
            let _ = writeln!(out, "      \"unwaived_count\": {},", findings.len() - waived);
            let _ = writeln!(out, "      \"waiver_count\": {}", waivers.len());
            out.push_str(if ri + 1 == RULES.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  },\n");
        let waived = self.findings.iter().filter(|f| f.waived).count();
        let _ = writeln!(out, "  \"total_findings\": {},", self.findings.len());
        let _ = writeln!(out, "  \"total_waived\": {waived},");
        let _ = writeln!(out, "  \"total_unwaived\": {},", self.findings.len() - waived);
        let _ = writeln!(out, "  \"total_waivers\": {}", self.waivers.len());
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping for the characters that can occur in paths,
/// messages, and justification strings.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_has_all_rule_keys_and_zero_totals() {
        let r = Report::new(3, Vec::new(), Vec::new());
        let j = r.json();
        for rule in RULES {
            assert!(j.contains(&format!("\"{rule}\"")), "missing rule key {rule}");
        }
        assert!(j.contains("\"total_unwaived\": 0"));
        assert!(j.contains("\"schema\": \"rechord-lint/v1\""));
    }
}
